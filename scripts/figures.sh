#!/usr/bin/env bash
# Regenerate the paper's figures/tables into results/.
#
#   scripts/figures.sh               # quick scale, every experiment
#   scripts/figures.sh fig21         # one experiment
#   scripts/figures.sh fig21 --paper # paper-scale process counts (slow)
#
# Thin wrapper so CI and docs have one entry point; all logic lives in
# crates/bench/src/bin/figures.rs, which writes results/<experiment>.csv
# relative to the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."
exec cargo run --release -q -p cypress-bench --bin figures -- "$@"
