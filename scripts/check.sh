#!/usr/bin/env bash
# Repo gate: formatting, lints, the full test suite, example builds, quick
# streaming/query/net benchmark smoke runs with schema validation, and
# CLI smokes including a serve/submit loopback collection.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings + deprecated) =="
# -D deprecated keeps the repo's own code off the cypress::compat shims;
# the shim module (feature-gated, checked below) opts out locally.
cargo clippy --workspace --all-targets -- -D warnings -D deprecated

echo "== compat feature still builds =="
cargo clippy -q -p cypress --features compat -- -D warnings

echo "== cargo test =="
cargo test --workspace -q

echo "== examples build =="
cargo build -q --examples

echo "== bench_stream smoke (fast mode) =="
CYPRESS_BENCH_FAST=1 cargo bench -q --bench bench_stream -p cypress-bench

echo "== BENCH_stream.json schema =="
json=results/BENCH_stream.json
test -s "$json" || { echo "missing $json"; exit 1; }
for key in '"schema":"bench_stream/v1"' '"workloads":' '"events_per_sec":' \
           '"peak_resident_ctt_bytes":' '"stream_vs_batch":' '"identical_merged_bytes":'; do
  grep -qF "$key" "$json" || { echo "missing $key in $json"; exit 1; }
done
if grep -qF '"identical_merged_bytes":false' "$json"; then
  echo "streaming/batch divergence recorded in $json"
  exit 1
fi

echo "== bench_query smoke (fast mode) =="
CYPRESS_BENCH_FAST=1 cargo bench -q --bench bench_query -p cypress-bench

echo "== BENCH_query.json schema =="
json=results/BENCH_query.json
test -s "$json" || { echo "missing $json"; exit 1; }
for key in '"schema":"bench_query/v1"' '"workloads":' '"scaling":' \
           '"ctt_records":' '"query_ns":' '"decompress_analyze_ns":' '"speedup":'; do
  grep -qF "$key" "$json" || { echo "missing $key in $json"; exit 1; }
done
if grep -qF '"equal":false' "$json"; then
  echo "compressed-domain/decompressed divergence recorded in $json"
  exit 1
fi

echo "== cypress query/inspect smoke =="
smoke=$(mktemp -d)
trap 'rm -rf "$smoke"' EXIT
cat > "$smoke/stencil.mpi" <<'EOF'
fn main() {
    let r = rank();
    let s = size();
    for k in 0..20 {
        if r < s - 1 { send(r + 1, 4096, 0); }
        if r > 0 { recv(r - 1, 4096, 0); }
        allreduce(64);
    }
}
EOF
cargo run -q --bin cypress -- compress "$smoke/stencil.mpi" -n 6 -o "$smoke/stencil.cytc" \
  --stream --per-rank
inspect_out=$(cargo run -q --bin cypress -- inspect "$smoke/stencil.cytc")
echo "$inspect_out" | grep -q "compression ratio" || { echo "inspect missing ratio"; exit 1; }
echo "$inspect_out" | grep -q "MPI events" || { echo "inspect missing event count"; exit 1; }
query_out=$(cargo run -q --bin cypress -- query "$smoke/stencil.cytc")
echo "$query_out" | grep -q "evaluated via symbolic" || { echo "query not symbolic"; exit 1; }
echo "$query_out" | grep -q "Hot spots by GID" || { echo "query missing hot spots"; exit 1; }
expand_out=$(cargo run -q --bin cypress -- query "$smoke/stencil.cytc" --strategy expand)
echo "$expand_out" | grep -q "evaluated via partial-expansion" \
  || { echo "forced expansion failed"; exit 1; }
echo "$inspect_out" | grep -q "crc32 checks verified" \
  || { echo "inspect missing crc coverage note"; exit 1; }

echo "== cypress serve/submit loopback smoke =="
cypress_bin=$(ls target/debug/cypress target/release/cypress 2>/dev/null | head -1)
test -n "$cypress_bin" || { cargo build -q --bin cypress; cypress_bin=target/debug/cypress; }
sock="$smoke/collector.sock"
"$cypress_bin" serve --listen "unix:$sock" --out "$smoke/net.cytc" --per-rank --timeout 60 &
serve_pid=$!
for _ in $(seq 1 50); do [ -S "$sock" ] && break; sleep 0.1; done
test -S "$sock" || { echo "collector socket never appeared"; exit 1; }
for r in 5 3 1 0 4 2; do
  "$cypress_bin" submit "$smoke/stencil.mpi" --rank "$r" -n 6 --connect "unix:$sock" \
    || { echo "submit rank $r failed"; kill "$serve_pid" 2>/dev/null; exit 1; }
done
wait "$serve_pid" || { echo "serve failed"; exit 1; }
# Collected and locally-compressed containers must replay and query alike.
diff <("$cypress_bin" decompress "$smoke/net.cytc" -r 3) \
     <("$cypress_bin" decompress "$smoke/stencil.cytc" -r 3) \
  || { echo "collected replay differs from local"; exit 1; }
diff <("$cypress_bin" query "$smoke/net.cytc" | tail -n +2) \
     <("$cypress_bin" query "$smoke/stencil.cytc" | tail -n +2) \
  || { echo "collected query differs from local"; exit 1; }

echo "== bench_net smoke (fast mode) =="
CYPRESS_BENCH_FAST=1 cargo bench -q --bench bench_net -p cypress-bench

echo "== BENCH_net.json schema =="
json=results/BENCH_net.json
test -s "$json" || { echo "missing $json"; exit 1; }
for key in '"schema":"bench_net/v1"' '"sweeps":' '"clients":' '"net_ns":' \
           '"local_ns":' '"net_vs_local":' '"events_per_sec":' '"identical_merged_bytes":'; do
  grep -qF "$key" "$json" || { echo "missing $key in $json"; exit 1; }
done
if grep -qF '"identical_merged_bytes":false' "$json"; then
  echo "networked/local merge divergence recorded in $json"
  exit 1
fi

echo "all checks passed"
