#!/usr/bin/env bash
# Repo gate: formatting, lints, the full test suite, example builds, and a
# quick streaming-benchmark smoke run with schema validation.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings + deprecated) =="
# -D deprecated keeps the repo's own code off the cypress::compat shims;
# the shim module itself and its tests opt out locally.
cargo clippy --workspace --all-targets -- -D warnings -D deprecated

echo "== cargo test =="
cargo test --workspace -q

echo "== examples build =="
cargo build -q --examples

echo "== bench_stream smoke (fast mode) =="
CYPRESS_BENCH_FAST=1 cargo bench -q --bench bench_stream -p cypress-bench

echo "== BENCH_stream.json schema =="
json=results/BENCH_stream.json
test -s "$json" || { echo "missing $json"; exit 1; }
for key in '"schema":"bench_stream/v1"' '"workloads":' '"events_per_sec":' \
           '"peak_resident_ctt_bytes":' '"stream_vs_batch":' '"identical_merged_bytes":'; do
  grep -qF "$key" "$json" || { echo "missing $key in $json"; exit 1; }
done
if grep -qF '"identical_merged_bytes":false' "$json"; then
  echo "streaming/batch divergence recorded in $json"
  exit 1
fi

echo "== bench_query smoke (fast mode) =="
CYPRESS_BENCH_FAST=1 cargo bench -q --bench bench_query -p cypress-bench

echo "== BENCH_query.json schema =="
json=results/BENCH_query.json
test -s "$json" || { echo "missing $json"; exit 1; }
for key in '"schema":"bench_query/v1"' '"workloads":' '"scaling":' \
           '"ctt_records":' '"query_ns":' '"decompress_analyze_ns":' '"speedup":'; do
  grep -qF "$key" "$json" || { echo "missing $key in $json"; exit 1; }
done
if grep -qF '"equal":false' "$json"; then
  echo "compressed-domain/decompressed divergence recorded in $json"
  exit 1
fi

echo "== cypress query/inspect smoke =="
smoke=$(mktemp -d)
trap 'rm -rf "$smoke"' EXIT
cat > "$smoke/stencil.mpi" <<'EOF'
fn main() {
    let r = rank();
    let s = size();
    for k in 0..20 {
        if r < s - 1 { send(r + 1, 4096, 0); }
        if r > 0 { recv(r - 1, 4096, 0); }
        allreduce(64);
    }
}
EOF
cargo run -q --bin cypress -- compress "$smoke/stencil.mpi" -n 6 -o "$smoke/stencil.cytc" \
  --stream --per-rank
inspect_out=$(cargo run -q --bin cypress -- inspect "$smoke/stencil.cytc")
echo "$inspect_out" | grep -q "compression ratio" || { echo "inspect missing ratio"; exit 1; }
echo "$inspect_out" | grep -q "MPI events" || { echo "inspect missing event count"; exit 1; }
query_out=$(cargo run -q --bin cypress -- query "$smoke/stencil.cytc")
echo "$query_out" | grep -q "evaluated via symbolic" || { echo "query not symbolic"; exit 1; }
echo "$query_out" | grep -q "Hot spots by GID" || { echo "query missing hot spots"; exit 1; }
expand_out=$(cargo run -q --bin cypress -- query "$smoke/stencil.cytc" --strategy expand)
echo "$expand_out" | grep -q "evaluated via partial-expansion" \
  || { echo "forced expansion failed"; exit 1; }

echo "all checks passed"
