#!/usr/bin/env bash
# Repo gate: formatting, lints, the full test suite, example builds, and a
# quick streaming-benchmark smoke run with schema validation.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings + deprecated) =="
# -D deprecated keeps the repo's own code off the cypress::compat shims;
# the shim module itself and its tests opt out locally.
cargo clippy --workspace --all-targets -- -D warnings -D deprecated

echo "== cargo test =="
cargo test --workspace -q

echo "== examples build =="
cargo build -q --examples

echo "== bench_stream smoke (fast mode) =="
CYPRESS_BENCH_FAST=1 cargo bench -q --bench bench_stream -p cypress-bench

echo "== BENCH_stream.json schema =="
json=results/BENCH_stream.json
test -s "$json" || { echo "missing $json"; exit 1; }
for key in '"schema":"bench_stream/v1"' '"workloads":' '"events_per_sec":' \
           '"peak_resident_ctt_bytes":' '"stream_vs_batch":' '"identical_merged_bytes":'; do
  grep -qF "$key" "$json" || { echo "missing $key in $json"; exit 1; }
done
if grep -qF '"identical_merged_bytes":false' "$json"; then
  echo "streaming/batch divergence recorded in $json"
  exit 1
fi

echo "all checks passed"
