//! Compact per-job telemetry persisted inside a `.cytc` container.
//!
//! A traced compression run (`cypress compress --trace-out …`) rolls its
//! [`StageProfile`](cypress_obs::StageProfile) up into a
//! [`TelemetrySummary`] and stores it as a trailing
//! [`SectionKind::Telemetry`](cypress_trace::SectionKind) section, so
//! `cypress inspect` can report *how the job was produced* — wall time,
//! stage attribution, dropped trace events — long after the run, without
//! the full timeline JSON. The section is optional: untraced runs write
//! containers without it, and readers ignore its absence.
//!
//! The payload is self-versioned like the net-layer `Stats` frame: the
//! first byte is [`TELEMETRY_VERSION`], and future fields only append, so
//! older readers keep working on newer containers.

use crate::error::{Error, Result};
use cypress_obs::StageProfile;
use cypress_trace::{Decoder, Encoder};

/// Version of the telemetry payload this build writes.
pub const TELEMETRY_VERSION: u8 = 1;

/// Upper bound on the stage-row count in a decoded payload; rejects absurd
/// length prefixes before allocation.
const MAX_STAGES: u64 = 4096;

/// Exclusive time attributed to one pipeline stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageSummary {
    /// Stage label (`"ingest"`, `"merge"`, `"interp"`, `"(untraced)"`, …).
    pub name: String,
    /// Exclusive wall ns on the driving thread (0 for worker-only stages).
    pub wall_ns: u64,
    /// Exclusive ns summed across all threads.
    pub cpu_ns: u64,
    /// Complete spans contributing.
    pub spans: u64,
}

/// How a compression job was produced: wall time, parallelism, and the
/// stage attribution table, compact enough to ride inside the container.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetrySummary {
    /// Payload version ([`TELEMETRY_VERSION`] here).
    pub version: u8,
    /// End-to-end wall time of the traced region (parse → merge), ns.
    pub wall_ns: u64,
    /// MPI events the job traced.
    pub events: u64,
    pub nprocs: u32,
    /// Worker-pool width the job ran with.
    pub threads: u32,
    /// Timeline events lost to ring overflow (attribution is partial if
    /// nonzero).
    pub dropped_events: u64,
    /// Per-stage exclusive attribution, descending by wall time.
    pub stages: Vec<StageSummary>,
}

impl TelemetrySummary {
    /// Roll a stage profile up into the persistable summary.
    pub fn from_profile(
        profile: &StageProfile,
        nprocs: u32,
        threads: u32,
        events: u64,
    ) -> TelemetrySummary {
        TelemetrySummary {
            version: TELEMETRY_VERSION,
            wall_ns: profile.total_ns,
            events,
            nprocs,
            threads,
            dropped_events: profile.dropped,
            stages: profile
                .stages
                .iter()
                .map(|s| StageSummary {
                    name: s.stage.clone(),
                    wall_ns: s.wall_ns,
                    cpu_ns: s.cpu_ns,
                    spans: s.spans,
                })
                .collect(),
        }
    }

    pub fn to_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.put_u8(self.version);
        enc.put_uvar(self.wall_ns);
        enc.put_uvar(self.events);
        enc.put_uvar(self.nprocs as u64);
        enc.put_uvar(self.threads as u64);
        enc.put_uvar(self.dropped_events);
        enc.put_uvar(self.stages.len() as u64);
        for s in &self.stages {
            enc.put_str(&s.name);
            enc.put_uvar(s.wall_ns);
            enc.put_uvar(s.cpu_ns);
            enc.put_uvar(s.spans);
        }
        enc.finish()
    }

    /// Decode a payload. Accepts any version ≥ 1 (newer writers only append
    /// fields, which are left unread); rejects version 0.
    pub fn from_bytes(bytes: &[u8]) -> Result<TelemetrySummary> {
        let mut dec = Decoder::new(bytes);
        let version = dec.get_u8()?;
        if version == 0 {
            return Err(Error::Invalid("telemetry payload version 0".into()));
        }
        let wall_ns = dec.get_uvar()?;
        let events = dec.get_uvar()?;
        let nprocs = dec.get_uvar()? as u32;
        let threads = dec.get_uvar()? as u32;
        let dropped_events = dec.get_uvar()?;
        let nstages = dec.get_uvar()?;
        if nstages > MAX_STAGES {
            return Err(Error::Invalid(format!(
                "telemetry claims {nstages} stage rows"
            )));
        }
        let mut stages = Vec::with_capacity(nstages as usize);
        for _ in 0..nstages {
            stages.push(StageSummary {
                name: dec.get_str()?,
                wall_ns: dec.get_uvar()?,
                cpu_ns: dec.get_uvar()?,
                spans: dec.get_uvar()?,
            });
        }
        Ok(TelemetrySummary {
            version,
            wall_ns,
            events,
            nprocs,
            threads,
            dropped_events,
            stages,
        })
    }

    /// Human-readable rendering for `cypress inspect`.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "telemetry (v{}): {} events across {} ranks in {:.3} ms wall, {} thread(s)\n",
            self.version,
            self.events,
            self.nprocs,
            self.wall_ns as f64 / 1e6,
            self.threads
        ));
        if self.dropped_events > 0 {
            out.push_str(&format!(
                "  {} trace events dropped (attribution is partial)\n",
                self.dropped_events
            ));
        }
        for s in &self.stages {
            let pct = if self.wall_ns == 0 {
                0.0
            } else {
                s.wall_ns as f64 / self.wall_ns as f64 * 100.0
            };
            out.push_str(&format!(
                "  {:<12} wall {:>10.3} ms ({:>5.1}%)  cpu {:>10.3} ms  {} span(s)\n",
                s.name,
                s.wall_ns as f64 / 1e6,
                pct,
                s.cpu_ns as f64 / 1e6,
                s.spans
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TelemetrySummary {
        TelemetrySummary {
            version: TELEMETRY_VERSION,
            wall_ns: 12_345_678,
            events: 40_000,
            nprocs: 8,
            threads: 4,
            dropped_events: 0,
            stages: vec![
                StageSummary {
                    name: "ingest".into(),
                    wall_ns: 9_000_000,
                    cpu_ns: 30_000_000,
                    spans: 1,
                },
                StageSummary {
                    name: "merge".into(),
                    wall_ns: 2_000_000,
                    cpu_ns: 2_000_000,
                    spans: 1,
                },
                StageSummary {
                    name: "(untraced)".into(),
                    wall_ns: 1_345_678,
                    cpu_ns: 1_345_678,
                    spans: 1,
                },
            ],
        }
    }

    #[test]
    fn telemetry_round_trip() {
        let t = sample();
        let got = TelemetrySummary::from_bytes(&t.to_bytes()).unwrap();
        assert_eq!(got, t);
    }

    #[test]
    fn version_zero_rejected_and_appended_fields_tolerated() {
        let mut t = sample();
        t.version = 0;
        assert!(TelemetrySummary::from_bytes(&t.to_bytes()).is_err());

        t.version = TELEMETRY_VERSION + 1;
        let mut bytes = t.to_bytes();
        bytes.push(0x2a); // a field from the future
        let got = TelemetrySummary::from_bytes(&bytes).unwrap();
        assert_eq!(got.stages.len(), 3);
        assert_eq!(got.events, 40_000);
    }

    #[test]
    fn text_render_names_stages() {
        let text = sample().to_text();
        assert!(text.contains("40000 events across 8 ranks"));
        assert!(text.contains("ingest"));
        assert!(text.contains("(untraced)"));
    }
}
