//! The `Pipeline` facade — one builder for the whole CYPRESS flow.
//!
//! The original API surface made callers wire four crates by hand: parse
//! with `minilang`, analyze with `cst`, trace every rank with `runtime`,
//! then compress, merge, and persist with `core` — five imports and a page
//! of plumbing for the common "compress this program" case. [`Pipeline`]
//! folds that into one builder:
//!
//! ```
//! use cypress::Pipeline;
//!
//! let mut job = Pipeline::new("fn main() { for i in 0..64 { allreduce(32); } }")
//!     .ranks(8)
//!     .run()
//!     .unwrap();
//! assert_eq!(job.nprocs, 8);
//! assert_eq!(job.ctts[0].record_count(), 1);   // 64 iterations fold to 1 record
//! assert_eq!(job.merge().group_count(), 2);    // all 8 ranks share one group
//! assert_eq!(job.decompress(3).unwrap().len(), 64);
//! ```
//!
//! How events flow from interpreters to compressors is one typed knob,
//! [`PipelineConfig::mode`]:
//!
//! * [`Ingest::Sequential`] (default) — each rank's interpreter feeds a
//!   [`CompressSession`] event-by-event on a work-stealing worker pool, so
//!   the raw trace never materializes — the paper's online PMPI deployment.
//! * [`Ingest::Pipelined`] — same online compression, but generation and
//!   compression are decoupled by a bounded SPSC ring per rank
//!   ([`cypress_runtime::ring`]): interpreters produce event batches while a
//!   consumer thread drains every rank's ring into its session.
//! * [`Ingest::Batch`] — record raw traces first, then compress; linearly
//!   growing memory, kept as the offline baseline.
//!
//! All three produce byte-identical CTTs (pinned by `tests/streaming.rs`
//! and `tests/pipelined.rs`).

use crate::error::{Error, Result};
use cypress_core::{
    compress_trace, decompress, merge_all_parallel, CompressConfig, CompressSession, Ctt,
    MergedCtt, ReplayOp, SessionConfig, SessionStats,
};
use cypress_cst::{analyze_program, Cst, StaticInfo};
use cypress_deflate::Level;
use cypress_minilang::{check_program, parse};
use cypress_query::{query_ctts, query_merged, QueryOptions, QueryResult};
use cypress_runtime::{
    run_rank_with_sink, run_ranks, run_ranks_pipelined, trace_program_parallel, InterpConfig,
    DEFAULT_BATCH_EVENTS, DEFAULT_RING_CAPACITY,
};
use cypress_trace::{
    assemble, encode_section, Codec, Container, ContainerError, Decoder, EncodedSection, Encoder,
    SectionKind,
};
use std::path::Path;
use std::sync::OnceLock;

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Pipeline stage timing (scope `pipeline`): with `--metrics` the report
/// attributes wall time to ingest (rank execution + compression) vs merge vs
/// encode (section serialization/deflate) vs I/O (atomic file write).
struct PipelineMetrics {
    ingest_ns: cypress_obs::Histogram,
    merge_ns: cypress_obs::Histogram,
    encode_ns: cypress_obs::Histogram,
    io_ns: cypress_obs::Histogram,
}

fn obs() -> &'static PipelineMetrics {
    static M: OnceLock<PipelineMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let s = cypress_obs::scope("pipeline");
        PipelineMetrics {
            ingest_ns: s.histogram("ingest_ns", &cypress_obs::TIME_BOUNDS_NS),
            merge_ns: s.histogram("merge_ns", &cypress_obs::TIME_BOUNDS_NS),
            encode_ns: s.histogram("encode_ns", &cypress_obs::TIME_BOUNDS_NS),
            io_ns: s.histogram("io_ns", &cypress_obs::TIME_BOUNDS_NS),
        }
    })
}

/// Serialize a container image, deflating sections at `level` — on the
/// work-stealing pool when `threads > 1` and compression is on (sections are
/// independent, so per-section deflate parallelizes embarrassingly).
/// Byte-identical to the sequential [`Container::to_bytes_with`] at every
/// level and thread count.
pub(crate) fn encode_container_parallel(
    c: &Container,
    level: Option<Level>,
    threads: usize,
) -> std::result::Result<Vec<u8>, ContainerError> {
    c.check_no_empty_sections()?;
    let _span = obs().encode_ns.start_span();
    let mut _t = cypress_obs::trace_span("encode", "container");
    _t.set_arg(c.sections.len() as u64);
    let encoded: Vec<EncodedSection> = if level.is_some() && threads > 1 && c.sections.len() > 1 {
        run_ranks(c.sections.len() as u32, threads, |i| {
            encode_section(&c.sections[i as usize], level)
        })
    } else {
        c.sections
            .iter()
            .map(|s| encode_section(s, level))
            .collect()
    };
    Ok(assemble(c.nprocs, &encoded))
}

/// Write a container atomically with parallel section encoding plus I/O span
/// accounting.
pub(crate) fn write_container_parallel(
    c: &Container,
    path: &Path,
    level: Option<Level>,
    threads: usize,
) -> std::result::Result<(), ContainerError> {
    let image = encode_container_parallel(c, level, threads)?;
    let _span = obs().io_ns.start_span();
    let mut _t = cypress_obs::trace_span("io", "write_container");
    _t.set_arg(image.len() as u64);
    Container::write_image(path, &image)
}

/// How rank event streams reach their compressors.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Ingest {
    /// Record each rank's full raw trace, then compress — the offline
    /// baseline. Memory grows linearly with trace length; no session stats.
    Batch,
    /// Compress online: interpreter and [`CompressSession`] in lockstep on
    /// the same worker thread (the paper's PMPI deployment). Default.
    #[default]
    Sequential,
    /// Compress online with generation and compression decoupled: each
    /// rank's interpreter pushes event batches into a bounded SPSC ring
    /// (`capacity` batches of up to
    /// [`DEFAULT_BATCH_EVENTS`](cypress_runtime::DEFAULT_BATCH_EVENTS)
    /// events) and a consumer thread drains every ring into its rank's
    /// session. Backpressure blocks the producer when the consumer falls
    /// behind, so memory stays bounded.
    Pipelined {
        /// Ring capacity in batches (clamped to ≥ 1).
        capacity: usize,
    },
}

impl Ingest {
    /// [`Ingest::Pipelined`] with the default ring capacity.
    pub fn pipelined() -> Self {
        Ingest::Pipelined {
            capacity: DEFAULT_RING_CAPACITY,
        }
    }
}

/// Everything a [`Pipeline`] run needs beyond the program and rank count —
/// the typed replacement for the builder's accreted per-knob methods.
///
/// ```
/// use cypress::{Ingest, Pipeline, PipelineConfig};
///
/// let cfg = PipelineConfig {
///     threads: 2,
///     mode: Ingest::pipelined(),
///     ..PipelineConfig::default()
/// };
/// let job = Pipeline::new("fn main() { barrier(); }")
///     .ranks(2)
///     .configure(cfg)
///     .run()
///     .unwrap();
/// assert_eq!(job.nprocs, 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineConfig {
    /// Compression knobs (window, time mode, relative ranks).
    pub compress: CompressConfig,
    /// Interpreter knobs (step budget, virtual time model).
    pub interp: InterpConfig,
    /// Streaming-session knobs (checkpoint cadence, soft byte budget).
    pub session: SessionConfig,
    /// Worker-pool width for rank execution, merging, and section encoding.
    pub threads: usize,
    /// How events travel from interpreters to compressors.
    pub mode: Ingest,
    /// DEFLATE container sections at this level when persisting
    /// ([`CompressedJob::write_container`]); `None` stores raw sections.
    pub level: Option<Level>,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            compress: CompressConfig::default(),
            interp: InterpConfig::default(),
            session: SessionConfig::default(),
            threads: default_threads(),
            mode: Ingest::Sequential,
            level: None,
        }
    }
}

/// Builder for a full compression run over a MiniMPI program.
#[derive(Debug, Clone)]
pub struct Pipeline {
    source: String,
    nprocs: u32,
    cfg: PipelineConfig,
}

impl Pipeline {
    /// Start a pipeline over MiniMPI source text. Defaults: 4 ranks and
    /// [`PipelineConfig::default`] (sequential streaming compression, one
    /// worker per available core).
    pub fn new(source: impl Into<String>) -> Self {
        Pipeline {
            source: source.into(),
            nprocs: 4,
            cfg: PipelineConfig::default(),
        }
    }

    /// Number of simulated MPI ranks.
    pub fn ranks(mut self, nprocs: u32) -> Self {
        self.nprocs = nprocs;
        self
    }

    /// Replace the whole run configuration.
    pub fn configure(mut self, cfg: PipelineConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// The current run configuration (what [`Pipeline::run`] will use).
    pub fn config_ref(&self) -> &PipelineConfig {
        &self.cfg
    }

    /// Compression knobs (window, time mode, relative ranks).
    #[deprecated(
        since = "0.2.0",
        note = "set `PipelineConfig::compress` via `configure`"
    )]
    pub fn config(mut self, cfg: CompressConfig) -> Self {
        self.cfg.compress = cfg;
        self
    }

    /// Interpreter knobs (step budget, virtual time model).
    #[deprecated(since = "0.2.0", note = "set `PipelineConfig::interp` via `configure`")]
    pub fn interp_config(mut self, cfg: InterpConfig) -> Self {
        self.cfg.interp = cfg;
        self
    }

    /// Streaming-session knobs (checkpoint cadence, soft byte budget).
    #[deprecated(
        since = "0.2.0",
        note = "set `PipelineConfig::session` via `configure`"
    )]
    pub fn session_config(mut self, cfg: SessionConfig) -> Self {
        self.cfg.session = cfg;
        self
    }

    /// Worker-pool width for rank execution and merging.
    #[deprecated(
        since = "0.2.0",
        note = "set `PipelineConfig::threads` via `configure`"
    )]
    pub fn threads(mut self, threads: usize) -> Self {
        self.cfg.threads = threads.max(1);
        self
    }

    /// `true`: compress online while each rank executes. `false`: record
    /// raw traces first, then compress — same CTT bytes, linearly growing
    /// memory.
    #[deprecated(
        since = "0.2.0",
        note = "set `PipelineConfig::mode` to `Ingest::Sequential` / `Ingest::Batch` via `configure`"
    )]
    pub fn streaming(mut self, on: bool) -> Self {
        self.cfg.mode = if on {
            Ingest::Sequential
        } else {
            Ingest::Batch
        };
        self
    }

    /// DEFLATE container sections at this level when persisting
    /// ([`CompressedJob::write_container`]). `None` (default) stores raw
    /// sections in the version-1 layout.
    #[deprecated(since = "0.2.0", note = "set `PipelineConfig::level` via `configure`")]
    pub fn level(mut self, level: Option<Level>) -> Self {
        self.cfg.level = level;
        self
    }

    /// Parse, analyze, execute every rank, and compress. Rank execution runs
    /// on a work-stealing pool of [`PipelineConfig::threads`] workers; how
    /// events reach the compressors is [`PipelineConfig::mode`].
    pub fn run(self) -> Result<CompressedJob> {
        if self.nprocs == 0 {
            return Err(Error::Invalid("pipeline needs at least 1 rank".into()));
        }
        let Pipeline {
            source,
            nprocs,
            cfg,
        } = self;
        let (prog, info) = {
            let _t = cypress_obs::trace_span("parse", "analyze");
            let prog = parse(&source)?;
            check_program(&prog)?;
            let info = analyze_program(&prog);
            (prog, info)
        };

        let _ingest = obs().ingest_ns.start_span();
        let mut _ingest_t = cypress_obs::trace_span("ingest", "run_ranks");
        _ingest_t.set_arg(nprocs as u64);
        let (ctts, stats) = match cfg.mode {
            Ingest::Sequential => {
                let per_rank = run_ranks(nprocs, cfg.threads, |rank| {
                    // Rank span on the worker thread: the session's synthetic
                    // complete event nests inside it, splitting interpreter
                    // time from compression time in the profile.
                    let _t = cypress_obs::trace_span("interp", "rank");
                    let mut session = CompressSession::new(
                        &info.cst,
                        rank,
                        nprocs,
                        cfg.compress.clone(),
                        cfg.session.clone(),
                    );
                    let app_time =
                        run_rank_with_sink(&prog, &info, rank, nprocs, &cfg.interp, &mut session)?;
                    Ok(session.finish(app_time))
                });
                let mut ctts = Vec::with_capacity(per_rank.len());
                let mut stats = Vec::with_capacity(per_rank.len());
                for r in per_rank {
                    let (ctt, st) = r.map_err(Error::Runtime)?;
                    ctts.push(ctt);
                    stats.push(st);
                }
                (ctts, stats)
            }
            Ingest::Pipelined { capacity } => {
                let per_rank = run_ranks_pipelined(
                    nprocs,
                    cfg.threads,
                    capacity,
                    DEFAULT_BATCH_EVENTS,
                    |rank, sink| {
                        let _t = cypress_obs::trace_span("interp", "rank");
                        run_rank_with_sink(&prog, &info, rank, nprocs, &cfg.interp, sink)
                    },
                    |rank| {
                        CompressSession::new(
                            &info.cst,
                            rank,
                            nprocs,
                            cfg.compress.clone(),
                            cfg.session.clone(),
                        )
                    },
                    |session, batch| session.push_batch(batch),
                    |session, app_time| session.finish(app_time),
                )
                .map_err(Error::Runtime)?;
                let mut ctts = Vec::with_capacity(per_rank.len());
                let mut stats = Vec::with_capacity(per_rank.len());
                for (ctt, st) in per_rank {
                    ctts.push(ctt);
                    stats.push(st);
                }
                (ctts, stats)
            }
            Ingest::Batch => {
                let traces =
                    trace_program_parallel(&prog, &info, nprocs, &cfg.interp, cfg.threads)?;
                let ctts = traces
                    .iter()
                    .map(|t| compress_trace(&info.cst, t, &cfg.compress))
                    .collect();
                (ctts, Vec::new())
            }
        };

        drop(_ingest_t);
        drop(_ingest);

        Ok(CompressedJob {
            info,
            nprocs,
            ctts,
            stats,
            merged: None,
            threads: cfg.threads,
            level: cfg.level,
        })
    }
}

/// The output of [`Pipeline::run`]: static analysis plus every rank's CTT,
/// with merging, decompression, and persistence as methods.
pub struct CompressedJob {
    /// Static analysis (CST, site map) of the program.
    pub info: StaticInfo,
    pub nprocs: u32,
    /// Per-rank compressed trace trees, indexed by rank.
    pub ctts: Vec<Ctt>,
    /// Per-rank session accounting (empty on the batch path).
    pub stats: Vec<SessionStats>,
    /// Cached merge result; populated by [`CompressedJob::merge`].
    pub merged: Option<MergedCtt>,
    threads: usize,
    /// Section compression level for [`CompressedJob::write_container`].
    level: Option<Level>,
}

impl CompressedJob {
    /// Merge all rank CTTs (parallel, cached). Subsequent calls return the
    /// cached tree.
    pub fn merge(&mut self) -> &MergedCtt {
        if self.merged.is_none() {
            let _span = obs().merge_ns.start_span();
            let mut _t = cypress_obs::trace_span("merge", "merge_parallel");
            _t.set_arg(self.ctts.len() as u64);
            self.merged = Some(merge_all_parallel(&self.ctts, self.threads));
        }
        self.merged.as_ref().expect("just populated")
    }

    /// Replay one rank's exact MPI operation sequence.
    pub fn decompress(&self, rank: u32) -> Result<Vec<ReplayOp>> {
        let ctt = self
            .ctts
            .get(rank as usize)
            .ok_or_else(|| Error::Invalid(format!("rank {rank} out of 0..{}", self.nprocs)))?;
        Ok(decompress(&self.info.cst, ctt))
    }

    /// Run the full compressed-domain query suite (volume matrix, per-op
    /// profile, per-rank totals, GID hot spots) directly on the per-rank
    /// CTTs — no decompression, O(|CTT|) for non-recursive programs.
    pub fn query(&self) -> Result<QueryResult> {
        self.query_with(&QueryOptions::default())
    }

    /// [`CompressedJob::query`] with explicit strategy/reporting knobs.
    pub fn query_with(&self, opts: &QueryOptions) -> Result<QueryResult> {
        Ok(query_ctts(&self.info.cst, &self.ctts, opts)?)
    }

    /// Total MPI events this job traced (from session accounting when
    /// streaming, otherwise from the stored record counts — identical).
    pub fn total_events(&self) -> u64 {
        if self.stats.is_empty() {
            self.ctts.iter().map(|c| c.op_count()).sum()
        } else {
            self.stats.iter().map(|s| s.mpi_events).sum()
        }
    }

    /// Serialized size of the raw MPI records this job would have written
    /// without compression (streaming path only; 0 on the batch path).
    pub fn raw_mpi_bytes(&self) -> u64 {
        self.stats.iter().map(|s| s.raw_mpi_bytes).sum()
    }

    /// Peak live CTT bytes across ranks (streaming path only; 0 otherwise).
    pub fn peak_ctt_bytes(&self) -> usize {
        self.stats
            .iter()
            .map(|s| s.peak_ctt_bytes)
            .max()
            .unwrap_or(0)
    }

    /// Persist the job as a versioned container: tool metadata, CST text,
    /// the merged CTT, and (when `per_rank` is set) every rank's CTT as its
    /// own CRC-framed section. Merges first if not already merged.
    pub fn write_container(&mut self, path: impl AsRef<Path>, per_rank: bool) -> Result<()> {
        self.write_container_with(path, per_rank, None)
    }

    /// [`CompressedJob::write_container`] with an optional telemetry
    /// summary persisted as a trailing [`SectionKind::Telemetry`] section
    /// (see [`crate::telemetry`]), so `cypress inspect` can report how the
    /// job was produced.
    pub fn write_container_with(
        &mut self,
        path: impl AsRef<Path>,
        per_rank: bool,
        telemetry: Option<&crate::telemetry::TelemetrySummary>,
    ) -> Result<()> {
        self.merge();
        let mut c = Container::new(self.nprocs);
        c.push(
            SectionKind::Meta,
            None,
            meta_payload(self.nprocs, self.total_events(), self.raw_mpi_bytes()),
        );
        c.push(
            SectionKind::CstText,
            None,
            self.info.cst.to_text().into_bytes(),
        );
        c.push(
            SectionKind::MergedCtt,
            None,
            self.merged.as_ref().expect("merged above").to_bytes(),
        );
        if per_rank {
            for ctt in &self.ctts {
                c.push(SectionKind::RankCtt, Some(ctt.rank), ctt.to_bytes());
            }
        }
        if let Some(t) = telemetry {
            c.push(SectionKind::Telemetry, None, t.to_bytes());
        }
        write_container_parallel(&c, path.as_ref(), self.level, self.threads)?;
        Ok(())
    }
}

/// Tool metadata stored in a container's `Meta` section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetaInfo {
    pub tool: String,
    pub version: String,
    pub nprocs: u32,
    /// Total MPI events the job traced (0 in containers written before the
    /// field existed).
    pub events: u64,
    /// Serialized size of the raw MPI records before compression (0 when
    /// unknown: batch-path jobs and older containers).
    pub raw_bytes: u64,
}

impl MetaInfo {
    /// Raw-over-compressed compression ratio against a given compressed
    /// size, when the raw size is known.
    pub fn compression_ratio(&self, compressed_bytes: usize) -> Option<f64> {
        if self.raw_bytes == 0 || compressed_bytes == 0 {
            None
        } else {
            Some(self.raw_bytes as f64 / compressed_bytes as f64)
        }
    }
}

pub(crate) fn meta_payload(nprocs: u32, events: u64, raw_bytes: u64) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.put_str("cypress");
    enc.put_str(env!("CARGO_PKG_VERSION"));
    enc.put_uvar(nprocs as u64);
    enc.put_uvar(events);
    enc.put_uvar(raw_bytes);
    enc.finish()
}

fn parse_meta(payload: &[u8]) -> Result<MetaInfo> {
    let mut dec = Decoder::new(payload);
    let tool = dec.get_str()?;
    let version = dec.get_str()?;
    let nprocs = dec.get_uvar()? as u32;
    // Trailing fields added after v0 containers shipped: absent means 0.
    let events = if dec.is_done() { 0 } else { dec.get_uvar()? };
    let raw_bytes = if dec.is_done() { 0 } else { dec.get_uvar()? };
    Ok(MetaInfo {
        tool,
        version,
        nprocs,
        events,
        raw_bytes,
    })
}

/// A compression job reloaded from a container file — everything needed to
/// inspect or decompress without re-running the simulation.
pub struct LoadedJob {
    pub nprocs: u32,
    pub meta: Option<MetaInfo>,
    pub cst: Cst,
    pub merged: Option<MergedCtt>,
    /// Rank-scoped CTT sections, in file order.
    pub rank_ctts: Vec<Ctt>,
    /// How the job was produced, when the writer traced itself
    /// (`cypress compress --trace-out`); absent otherwise.
    pub telemetry: Option<crate::telemetry::TelemetrySummary>,
}

impl LoadedJob {
    /// Run the compressed-domain query suite on the loaded job. A complete
    /// per-rank CTT set is preferred (exact per-rank timing); otherwise the
    /// query runs on the merged tree.
    pub fn query(&self) -> Result<QueryResult> {
        self.query_with(&QueryOptions::default())
    }

    /// [`LoadedJob::query`] with explicit strategy/reporting knobs.
    pub fn query_with(&self, opts: &QueryOptions) -> Result<QueryResult> {
        let complete = self.rank_ctts.len() as u32 == self.nprocs
            && self.nprocs > 0
            && (0..self.nprocs).all(|r| self.rank_ctts.iter().any(|c| c.rank == r));
        if complete {
            return Ok(query_ctts(&self.cst, &self.rank_ctts, opts)?);
        }
        if let Some(merged) = &self.merged {
            return Ok(query_merged(&self.cst, merged, opts)?);
        }
        Err(Error::Container(ContainerError::MissingSection(
            "merged-ctt or complete rank-ctt set",
        )))
    }

    /// Replay one rank's sequence, preferring its dedicated section and
    /// falling back to extraction from the merged tree.
    pub fn decompress(&self, rank: u32) -> Result<Vec<ReplayOp>> {
        if rank >= self.nprocs {
            return Err(Error::Invalid(format!(
                "rank {rank} out of 0..{}",
                self.nprocs
            )));
        }
        if let Some(ctt) = self.rank_ctts.iter().find(|c| c.rank == rank) {
            return Ok(decompress(&self.cst, ctt));
        }
        if let Some(merged) = &self.merged {
            return Ok(decompress(&self.cst, &merged.extract_rank(rank, &self.cst)));
        }
        Err(Error::Container(ContainerError::MissingSection(
            "merged-ctt or rank-ctt",
        )))
    }
}

/// Load and verify a container file written by
/// [`CompressedJob::write_container`].
pub fn read_container(path: impl AsRef<Path>) -> Result<LoadedJob> {
    let c = Container::read_file(path)?;
    let cst_text = c
        .find(SectionKind::CstText)
        .ok_or(Error::Container(ContainerError::MissingSection("cst-text")))?;
    let cst_text = String::from_utf8(cst_text.payload.clone())
        .map_err(|e| Error::Invalid(format!("cst section is not utf-8: {e}")))?;
    let cst = Cst::from_text(&cst_text)?;

    let meta = match c.find(SectionKind::Meta) {
        Some(s) => Some(parse_meta(&s.payload)?),
        None => None,
    };
    let merged = match c.find(SectionKind::MergedCtt) {
        Some(s) => Some(MergedCtt::from_bytes(&s.payload)?),
        None => None,
    };
    let rank_ctts = c
        .rank_sections()
        .map(|s| Ctt::from_bytes(&s.payload))
        .collect::<std::result::Result<Vec<_>, _>>()?;
    let telemetry = match c.find(SectionKind::Telemetry) {
        Some(s) => Some(crate::telemetry::TelemetrySummary::from_bytes(&s.payload)?),
        None => None,
    };

    Ok(LoadedJob {
        nprocs: c.nprocs,
        meta,
        cst,
        merged,
        rank_ctts,
        telemetry,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const STENCIL: &str = r#"fn main() {
        for it in 0..40 {
            let up = isend((rank() + 1) % size(), 512, 1);
            let dn = irecv((rank() + size() - 1) % size(), 512, 1);
            waitall(up, dn);
            if it % 10 == 0 { allreduce(8); }
        }
        barrier();
    }"#;

    #[test]
    fn streaming_and_batch_produce_identical_ctts() {
        let cfg = PipelineConfig {
            threads: 3,
            ..PipelineConfig::default()
        };
        let a = Pipeline::new(STENCIL)
            .ranks(6)
            .configure(cfg.clone())
            .run()
            .unwrap();
        let b = Pipeline::new(STENCIL)
            .ranks(6)
            .configure(PipelineConfig {
                mode: Ingest::Batch,
                ..cfg
            })
            .run()
            .unwrap();
        assert_eq!(a.ctts, b.ctts);
        assert_eq!(a.stats.len(), 6);
        assert!(b.stats.is_empty());
        assert!(a.peak_ctt_bytes() > 0);
    }

    #[test]
    fn container_round_trip_preserves_replay() {
        let dir = std::env::temp_dir().join(format!("cypress-pipe-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("job.cytc");

        let mut job = Pipeline::new(STENCIL).ranks(4).run().unwrap();
        job.write_container(&path, true).unwrap();

        let loaded = read_container(&path).unwrap();
        assert_eq!(loaded.nprocs, 4);
        assert_eq!(loaded.meta.as_ref().unwrap().tool, "cypress");
        assert_eq!(loaded.rank_ctts.len(), 4);
        for rank in 0..4 {
            assert_eq!(
                loaded.decompress(rank).unwrap(),
                job.decompress(rank).unwrap(),
                "rank {rank}"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn zero_ranks_is_an_error_not_a_panic() {
        assert!(matches!(
            Pipeline::new(STENCIL).ranks(0).run(),
            Err(Error::Invalid(_))
        ));
    }

    #[test]
    fn parse_errors_surface_as_lang() {
        assert!(matches!(
            Pipeline::new("fn main( {").run(),
            Err(Error::Lang(_))
        ));
    }
}
