//! # cypress — hybrid static-dynamic top-down MPI trace compression
//!
//! Umbrella crate for the CYPRESS reproduction (SC'14, Zhai et al.). The
//! front door is [`Pipeline`]: parse → static analysis → per-rank execution
//! with online streaming compression on a work-stealing pool → merge →
//! container persistence, all behind one builder:
//!
//! ```
//! use cypress::Pipeline;
//!
//! let mut job = Pipeline::new("fn main() { for i in 0..50 { allreduce(64); } }")
//!     .ranks(8)
//!     .run()
//!     .unwrap();
//! assert_eq!(job.merge().group_count(), 2);
//! assert_eq!(job.decompress(0).unwrap().len(), 50);
//! ```
//!
//! The individual layers stay available as re-exported subcrates for code
//! that needs one piece (e.g. just the CST builder), and the types a typical
//! caller touches ([`PipelineConfig`], [`Ingest`], [`QueryOptions`],
//! [`Level`]) are re-exported at the root so examples never reach into
//! subcrates. Errors from every layer unify into [`Error`]. Networked
//! collection (the `cypress serve` / `cypress submit` daemon pair) lives in
//! [`collect`] atop the [`net`](cypress_net) subcrate. See `README.md` for
//! the architecture and `DESIGN.md` for the per-experiment index.

pub mod collect;
pub mod error;
pub mod pipeline;
pub mod telemetry;

pub use collect::{
    loaded_from_collected, write_collected_container, write_collected_container_with,
};
pub use error::{Error, Result};
pub use pipeline::{
    read_container, CompressedJob, Ingest, LoadedJob, MetaInfo, Pipeline, PipelineConfig,
};
pub use telemetry::{StageSummary, TelemetrySummary, TELEMETRY_VERSION};

pub use cypress_deflate::Level;
pub use cypress_query::QueryOptions;

pub use cypress_analysis as analysis;
pub use cypress_baselines as baselines;
pub use cypress_core as core;
pub use cypress_cst as cst;
pub use cypress_deflate as deflate;
pub use cypress_minilang as minilang;
pub use cypress_net as net;
pub use cypress_obs as obs;
pub use cypress_query as query;
pub use cypress_runtime as runtime;
pub use cypress_simmpi as simmpi;
pub use cypress_staticir as staticir;
pub use cypress_store as store;
pub use cypress_trace as trace;
pub use cypress_workloads as workloads;
