//! # cypress — hybrid static-dynamic top-down MPI trace compression
//!
//! Umbrella crate re-exporting the whole CYPRESS reproduction (SC'14,
//! Zhai et al.). See `README.md` for the architecture and `DESIGN.md` for
//! the per-experiment index.

pub use cypress_baselines as baselines;
pub use cypress_core as core;
pub use cypress_cst as cst;
pub use cypress_deflate as deflate;
pub use cypress_minilang as minilang;
pub use cypress_obs as obs;
pub use cypress_runtime as runtime;
pub use cypress_simmpi as simmpi;
pub use cypress_staticir as staticir;
pub use cypress_trace as trace;
pub use cypress_workloads as workloads;
