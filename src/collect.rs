//! Bridging networked collection into the local job model.
//!
//! A [`CollectedJob`](cypress_net::CollectedJob) produced by `cypress serve`
//! carries exactly what a locally-run [`Pipeline`](crate::Pipeline) job
//! does — CST, merged CTT, optional per-rank CTTs, event accounting — so
//! this module makes the two interchangeable: write a collected job into
//! the same `.cytc` container format ([`write_collected_container`]) and
//! lift one into a [`LoadedJob`] ([`loaded_from_collected`]) so the
//! query/inspect/decompress surface works on it unchanged. Byte-identity
//! between the two paths is pinned by `tests/net_collect.rs`.

use crate::error::Result;
use crate::pipeline::{meta_payload, write_container_parallel, LoadedJob, MetaInfo};
use cypress_deflate::Level;
use cypress_net::CollectedJob;
use cypress_trace::{Codec, Container, SectionKind};
use std::path::Path;

/// Persist a collected job as a versioned `.cytc` container with the same
/// section layout [`CompressedJob::write_container`](crate::CompressedJob::write_container)
/// uses: tool metadata, the CST text exactly as the clients submitted it,
/// the binomially-merged CTT, and (when `per_rank` is set and the collector
/// kept them) every rank's CTT as its own CRC-framed section.
pub fn write_collected_container(
    job: &CollectedJob,
    path: impl AsRef<Path>,
    per_rank: bool,
) -> Result<()> {
    write_collected_container_with(job, path, per_rank, None, 1)
}

/// [`write_collected_container`] with a section compression level and a
/// worker count for parallel per-section (and per-rank CTT) encoding.
pub fn write_collected_container_with(
    job: &CollectedJob,
    path: impl AsRef<Path>,
    per_rank: bool,
    level: Option<Level>,
    threads: usize,
) -> Result<()> {
    let mut c = Container::new(job.nprocs);
    c.push(
        SectionKind::Meta,
        None,
        meta_payload(job.nprocs, job.total_events, job.raw_mpi_bytes),
    );
    c.push(
        SectionKind::CstText,
        None,
        job.cst_text.clone().into_bytes(),
    );
    c.push(SectionKind::MergedCtt, None, job.merged.to_bytes());
    if per_rank {
        for ctt in &job.rank_ctts {
            c.push(SectionKind::RankCtt, Some(ctt.rank), ctt.to_bytes());
        }
    }
    write_container_parallel(&c, path.as_ref(), level, threads)?;
    Ok(())
}

/// Lift a collected job into the [`LoadedJob`] surface without a disk
/// round trip, so query/decompress work on it exactly as on a reloaded
/// container.
pub fn loaded_from_collected(job: CollectedJob) -> LoadedJob {
    LoadedJob {
        nprocs: job.nprocs,
        meta: Some(MetaInfo {
            tool: "cypress".into(),
            version: env!("CARGO_PKG_VERSION").into(),
            nprocs: job.nprocs,
            events: job.total_events,
            raw_bytes: job.raw_mpi_bytes,
        }),
        cst: job.cst,
        merged: Some(job.merged),
        rank_ctts: job.rank_ctts,
        telemetry: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::read_container;
    use crate::Pipeline;
    use cypress_core::merge_all;

    const SRC: &str = r#"fn main() {
        for it in 0..24 {
            let up = isend((rank() + 1) % size(), 256, 7);
            let dn = irecv((rank() + size() - 1) % size(), 256, 7);
            waitall(up, dn);
        }
        allreduce(8);
    }"#;

    /// Build a CollectedJob out of a local pipeline run (the loopback
    /// network path itself is pinned in crates/net and tests/net_collect.rs;
    /// here we only exercise the container/LoadedJob bridge).
    fn fake_collected(nprocs: u32) -> (CollectedJob, crate::CompressedJob) {
        let job = Pipeline::new(SRC).ranks(nprocs).run().unwrap();
        let merged = merge_all(&job.ctts);
        let collected = CollectedJob {
            nprocs,
            cst: cypress_cst::Cst::from_text(&job.info.cst.to_text()).unwrap(),
            cst_text: job.info.cst.to_text(),
            merged,
            rank_ctts: job.ctts.clone(),
            total_events: job.total_events(),
            raw_mpi_bytes: job.raw_mpi_bytes(),
            peak_ctt_bytes: job.peak_ctt_bytes(),
        };
        (collected, job)
    }

    #[test]
    fn collected_container_loads_like_a_local_one() {
        let dir = std::env::temp_dir().join(format!("cypress-collect-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("collected.cytc");

        let (collected, job) = fake_collected(4);
        write_collected_container(&collected, &path, true).unwrap();

        let loaded = read_container(&path).unwrap();
        assert_eq!(loaded.nprocs, 4);
        let meta = loaded.meta.as_ref().unwrap();
        assert_eq!(meta.tool, "cypress");
        assert_eq!(meta.events, job.total_events());
        assert_eq!(loaded.rank_ctts.len(), 4);
        for rank in 0..4 {
            assert_eq!(
                loaded.decompress(rank).unwrap(),
                job.decompress(rank).unwrap(),
                "rank {rank}"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn loaded_from_collected_queries_like_local() {
        let (collected, job) = fake_collected(3);
        let loaded = loaded_from_collected(collected);
        let a = loaded.query().unwrap();
        let b = job.query().unwrap();
        assert_eq!(a, b, "collected and local query results must match");
    }
}
