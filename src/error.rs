//! One public error type for the whole pipeline.
//!
//! Every layer of the reproduction has its own error vocabulary — the
//! MiniMPI front end ([`LangError`]), the interpreter ([`RuntimeError`]),
//! the codec ([`DecodeError`]), the on-disk container
//! ([`ContainerError`]) — and the CLI used to flatten all of them into
//! strings (or worse, panic). [`Error`] is the single top-level sum that
//! `cypress::Pipeline`, the container loaders, and the `cypress` binary all
//! return, with `From` conversions from each layer so `?` composes across
//! the whole stack.

use cypress_minilang::LangError;
use cypress_runtime::RuntimeError;
use cypress_trace::{ContainerError, DecodeError};
use std::fmt;

/// Any failure the CYPRESS pipeline can report.
#[derive(Debug)]
pub enum Error {
    /// MiniMPI lex/parse/resolve failure.
    Lang(LangError),
    /// Interpreter failure (arithmetic fault, step budget, deadlock).
    Runtime(RuntimeError),
    /// Malformed codec bytes.
    Decode(DecodeError),
    /// Container file problems (magic, version, CRC, missing sections).
    Container(ContainerError),
    /// Filesystem I/O.
    Io(std::io::Error),
    /// Networked collection failure (wire protocol, transport, collector).
    Net(cypress_net::NetError),
    /// Invalid request (bad rank, empty job, malformed CST text, …).
    Invalid(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Lang(e) => write!(f, "{e}"),
            Error::Runtime(e) => write!(f, "{e}"),
            Error::Decode(e) => write!(f, "{e}"),
            Error::Container(e) => write!(f, "{e}"),
            Error::Io(e) => write!(f, "io error: {e}"),
            Error::Net(e) => write!(f, "{e}"),
            Error::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Lang(e) => Some(e),
            Error::Runtime(e) => Some(e),
            Error::Decode(e) => Some(e),
            Error::Container(e) => Some(e),
            Error::Io(e) => Some(e),
            Error::Net(e) => Some(e),
            Error::Invalid(_) => None,
        }
    }
}

impl From<LangError> for Error {
    fn from(e: LangError) -> Self {
        Error::Lang(e)
    }
}

impl From<RuntimeError> for Error {
    fn from(e: RuntimeError) -> Self {
        Error::Runtime(e)
    }
}

impl From<DecodeError> for Error {
    fn from(e: DecodeError) -> Self {
        Error::Decode(e)
    }
}

impl From<ContainerError> for Error {
    fn from(e: ContainerError) -> Self {
        Error::Container(e)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

impl From<cypress_net::NetError> for Error {
    fn from(e: cypress_net::NetError) -> Self {
        Error::Net(e)
    }
}

/// `Cst::from_text` and a few other seams report plain strings.
impl From<String> for Error {
    fn from(msg: String) -> Self {
        Error::Invalid(msg)
    }
}

/// Compressed-domain query failures map onto the layer they came from.
impl From<cypress_query::QueryError> for Error {
    fn from(e: cypress_query::QueryError) -> Self {
        match e {
            cypress_query::QueryError::Container(c) => Error::Container(c),
            cypress_query::QueryError::Decode(d) => Error::Decode(d),
            cypress_query::QueryError::BadCst(msg) | cypress_query::QueryError::Invalid(msg) => {
                Error::Invalid(msg)
            }
        }
    }
}

/// Trace-store failures map onto the layer they came from; store-specific
/// conditions (missing job, daemon rejection) become `Invalid` with the
/// store's own message.
impl From<cypress_store::StoreError> for Error {
    fn from(e: cypress_store::StoreError) -> Self {
        use cypress_store::StoreError as S;
        match e {
            S::Io(e) => Error::Io(e),
            S::Container(c) => Error::Container(c),
            S::Decode(d) => Error::Decode(d),
            S::Query(q) => q.into(),
            S::Net(n) => Error::Net(n),
            e @ (S::NotFound(_) | S::Remote { .. } | S::Invalid(_)) => {
                Error::Invalid(e.to_string())
            }
        }
    }
}

/// Convenience alias used across the umbrella crate and the CLI.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_passes_layer_messages_through() {
        let e = Error::from(RuntimeError("step budget exhausted".into()));
        assert!(e.to_string().contains("step budget exhausted"));
        let e = Error::from("rank 9 out of range".to_owned());
        assert_eq!(e.to_string(), "rank 9 out of range");
    }

    #[test]
    fn question_mark_composes_across_layers() {
        fn parse_and_fail() -> Result<()> {
            cypress_minilang::parse("fn main( {")?;
            Ok(())
        }
        assert!(matches!(parse_and_fail(), Err(Error::Lang(_))));

        fn decode_and_fail() -> Result<()> {
            use cypress_trace::Codec;
            cypress_core::Ctt::from_bytes(&[0xff])?;
            Ok(())
        }
        assert!(matches!(decode_and_fail(), Err(Error::Decode(_))));

        fn container_and_fail() -> Result<()> {
            cypress_trace::Container::from_bytes(b"nope")?;
            Ok(())
        }
        assert!(matches!(container_and_fail(), Err(Error::Container(_))));
    }
}
