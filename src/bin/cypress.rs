//! `cypress` — command-line driver for the trace-compression pipeline.
//!
//! ```text
//! cypress cst <prog.mpi>                      print the communication structure tree
//! cypress trace <prog.mpi> -n P -o DIR        write per-rank raw traces
//! cypress compress <prog.mpi> -n P -o FILE    trace + compress + merge to FILE
//!   --stream                                  compress online into a .cytc container
//!   --per-rank                                also store each rank's CTT section
//!   --level fast|default|best                 DEFLATE container sections (v2 layout)
//!   --threads N                               parallel section encoding workers
//! cypress decompress FILE [-r R]              replay rank R (default 0); containers
//!   [--cst CST]                               are self-describing, legacy dumps need --cst
//! cypress inspect FILE [--json]               container header, sections, CRCs,
//!                                             per-section sizes + compression ratio
//!                                             (lazy view: raw sections are never
//!                                             copied, nothing is inflated up front)
//! cypress query FILE                          compressed-domain analysis of a .cytc
//!   [--hotspots N] [--strategy auto|symbolic|expand] [--window S:E] [--json]
//! cypress query --connect ADDR JOB            same analysis served by a queryd
//!                                             daemon (byte-identical to local)
//! cypress analyze predict FILE                CTT-native LogGP replay prediction
//!   [--window S:E] [--json]                   (no decompression of steady loops)
//! cypress analyze latesender FILE             wait-state detection: per-rank wait
//!   [--limit N] [--window S:E] [--json]       time + top offending call paths
//! cypress analyze diff FILE_A FILE_B          cross-job comparison: comm matrix,
//!   [--window S:E] [--json]                   profile and prediction deltas
//! cypress analyze ... --connect ADDR JOB...   any of the above served by queryd
//! cypress queryd --listen ADDR --store DIR    resident query daemon: LRU cache of
//!   [--max-jobs N] [--max-bytes B]            open containers, serves QueryRequest
//!                                             frames until killed
//! cypress stats <prog.mpi> -n P               op histogram + communication matrix
//! cypress stats --connect ADDR [--json]       poll a collector's live telemetry
//! cypress simulate <prog.mpi> -n P            measured vs predicted LogGP times
//! cypress serve --listen ADDR --out FILE      collector daemon: accept rank
//!   [--per-rank] [--timeout S]                submissions, merge incrementally,
//!   [--stats-addr ADDR]                       write a .cytc container; optionally
//!                                             serve live stats on a second endpoint
//! cypress submit <prog.mpi> --rank R -n P     run one rank and stream its trace
//!   --connect ADDR [--mode stream|ctt]        to a collector (with retry/backoff)
//! ```
//!
//! Program files contain MiniMPI source (see `cypress-minilang`). All
//! commands report failures through [`cypress::Error`] — no panics on bad
//! input files.

use cypress::analysis::{AnalyzeOptions, DiffReport, JobSummary};
use cypress::core::{
    compress_trace, decompress, merge_all_parallel, CompressConfig, CompressSession, MergedCtt,
    SessionConfig,
};
use cypress::cst::{analyze_program, Cst, StaticInfo};
use cypress::deflate::Level as ZLevel;
use cypress::minilang::{check_program, parse, Program};
use cypress::net::{
    fetch_stats, spawn_tree, submit_ctt, submit_stream, Addr, ClientConfig, Collector,
    CollectorConfig, TreeConfig,
};
use cypress::query::{query_container_path, QueryOptions, QueryResult, Strategy, Window};
use cypress::runtime::{run_rank_with_sink, trace_program_parallel, InterpConfig};
use cypress::simmpi::{from_raw_traces, simulate, LogGp, SimOp};
use cypress::store::{analyze_remote, query_remote, JobStore, QueryClient, StoreConfig, StoreJob};
use cypress::trace::codec::Codec;
use cypress::trace::commmatrix::CommMatrix;
use cypress::trace::raw::{raw_mpi_size, RawTrace};
use cypress::trace::{is_container, ContainerView, SectionKind};
use cypress::{read_container, write_collected_container_with, Error, Pipeline};
use std::fs;
use std::path::Path;
use std::process::exit;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let metrics = if let Some(i) = args.iter().position(|a| a == "--metrics") {
        args.remove(i);
        cypress::obs::set_enabled(true);
        true
    } else {
        false
    };
    let trace_out = match args.iter().position(|a| a == "--trace-out") {
        Some(i) if i + 1 < args.len() => {
            let path = args.remove(i + 1);
            args.remove(i);
            Some(path)
        }
        Some(_) => {
            eprintln!("--trace-out needs a file argument");
            exit(2);
        }
        None => None,
    };
    let profile = if let Some(i) = args.iter().position(|a| a == "--profile") {
        args.remove(i);
        true
    } else {
        false
    };
    if trace_out.is_some() || profile {
        cypress::obs::set_trace_enabled(true);
    }
    let Some(cmd) = args.first() else {
        usage();
        exit(2);
    };
    let rest = &args[1..];
    // Root span for the whole command; the stage profiler attributes its
    // wall time across parse/ingest/merge/encode/io (inert when tracing
    // is off).
    let root = cypress::obs::trace_span("cli", "total");
    let result = match cmd.as_str() {
        "cst" => cmd_cst(rest),
        "trace" => cmd_trace(rest),
        "dump" => cmd_dump(rest),
        "compress" => cmd_compress(rest),
        "decompress" => cmd_decompress(rest),
        "inspect" => cmd_inspect(rest),
        "query" => cmd_query(rest),
        "analyze" => cmd_analyze(rest),
        "queryd" => cmd_queryd(rest),
        "stats" => cmd_stats(rest),
        "simulate" => cmd_simulate(rest),
        "serve" => cmd_serve(rest),
        "submit" => cmd_submit(rest),
        "-h" | "--help" | "help" => {
            usage();
            Ok(())
        }
        other => {
            eprintln!("unknown command `{other}`");
            usage();
            exit(2);
        }
    };
    drop(root);
    if trace_out.is_some() || profile {
        let dump = cypress::obs::trace_drain();
        if let Some(path) = &trace_out {
            match fs::write(path, dump.to_chrome_json()) {
                Ok(()) => eprintln!(
                    "trace written to {path} ({} events{}) — load in Perfetto or chrome://tracing",
                    dump.events.len(),
                    if dump.dropped > 0 {
                        format!(", {} dropped", dump.dropped)
                    } else {
                        String::new()
                    }
                ),
                Err(e) => eprintln!("warning: could not write {path}: {e}"),
            }
        }
        if profile {
            println!("\n== profile ==\n{}", dump.profile("total").to_text());
        }
    }
    if metrics {
        emit_metrics();
    }
    if let Err(e) = result {
        eprintln!("error: {e}");
        exit(1);
    }
}

/// Dump the pipeline-wide metrics report: human table to stdout, JSON lines
/// appended to `results/metrics.jsonl` (best-effort — failure to write is
/// non-fatal). The append is atomic (temp + rename), so concurrent runs
/// never leave a torn file, and `results/` is created on demand.
fn emit_metrics() {
    let report = cypress::obs::report();
    println!("\n== metrics ==\n{}", report.to_text());
    let path = Path::new("results/metrics.jsonl");
    if cypress::obs::append_atomic(path, report.to_jsonl().as_bytes()).is_ok() {
        eprintln!("metrics appended to {}", path.display());
    } else {
        eprintln!("warning: could not write {}", path.display());
    }
}

fn usage() {
    eprintln!(
        "cypress — hybrid static-dynamic MPI trace compression

USAGE:
  cypress cst <prog.mpi>
  cypress trace <prog.mpi> -n <procs> -o <dir>
  cypress dump <prog.mpi> -n <procs> [-r <rank>]
  cypress compress <prog.mpi> -n <procs> -o <file> [--stream] [--per-rank]
               [--level fast|default|best] [--threads <n>]
               [--pipelined [--ring-capacity <batches>]]
  cypress decompress <file> [-r <rank>] [--cst <cst.txt>]
  cypress inspect <file> [--json]
  cypress query <file> [--hotspots <n>] [--strategy auto|symbolic|expand]
               [--window <start>:<end>] [--json]
  cypress query --connect <addr> <job> [--hotspots <n>] [--strategy ...] [--json]
  cypress analyze predict <file> [--window <start>:<end>] [--json]
  cypress analyze latesender <file> [--limit <n>] [--window <start>:<end>] [--json]
  cypress analyze diff <fileA> <fileB> [--window <start>:<end>] [--json]
  cypress analyze <sub> --connect <addr> <job>... [same options]
  cypress queryd --listen <addr> --store <dir> [--max-jobs <n>] [--max-bytes <b>]
  cypress stats <prog.mpi> -n <procs>
  cypress stats --connect <addr> [--json]
  cypress simulate <prog.mpi> -n <procs>
  cypress serve --listen <addr> --out <file> [--per-rank] [--timeout <secs>]
               [--workers <n>] [--level fast|default|best] [--threads <n>]
               [--stats-addr <addr>] [--tree <relays> -n <procs>]
  cypress submit <prog.mpi> --rank <r> -n <procs> --connect <addr>
               [--mode stream|ctt] [--attempts <n>] [--level <l>|none]

OPTIONS:
  --stream     compress online (streaming sessions) into a versioned
               .cytc container instead of a bare merged dump
  --per-rank   with --stream: add one CRC-framed CTT section per rank
  --pipelined  with --stream: decouple trace generation from compression
               with one bounded SPSC ring per rank (byte-identical output)
  --ring-capacity  with --pipelined: ring capacity in batches (default 8)
  --level      compress/serve: DEFLATE container sections at this effort
               (fast, default, best; omitted = raw v1 layout);
               submit --mode ctt: wire compression level, or `none`
  --threads    compress/serve: workers for parallel section encoding
  --hotspots   number of GID hot spots to print (default 10)
  --strategy   query evaluation: auto (default), symbolic (always fold the
               CTT in O(|CTT|)), expand (always stream-decompress)
  --window     query/analyze: restrict to ops whose reconstructed start time
               falls in [start, end) nanoseconds (forces O(events) replay)
  --limit      analyze latesender: wait sites to print (default 10)
  --metrics    collect pipeline metrics; print a report and append
               results/metrics.jsonl on exit
  --trace-out  record a structured timeline and write Chrome trace-event
               JSON (Perfetto / chrome://tracing) to this file on exit;
               compress --stream also embeds a telemetry section
  --profile    print a per-stage wall-time attribution table on exit
               (implies tracing; combine with --trace-out to keep the
               timeline too)
  --stats-addr serve: answer `cypress stats --connect` on this second
               endpoint with live per-client collection telemetry
  --tree       serve: spawn this many relay collectors in front of the
               root (requires -n; clients submit to the printed per-shard
               leaf endpoints; unix root at unix:P puts relay k at
               unix:P.rk)
  --json       inspect, query, stats --connect: machine-readable output
  --store      queryd: directory of `<job>.cytc` containers to serve
  --max-jobs   queryd: LRU entry budget for resident containers (default
               unbounded)
  --max-bytes  queryd: LRU byte budget for resident containers (default
               unbounded)
  --listen     collector/queryd address: host:port (host:0 = ephemeral)
               or unix:<path>
  --connect    collector or queryd address (same syntax as --listen)
  --timeout    serve: fail listing missing ranks after this many seconds
  --mode       submit: stream events for server-side compression (default)
               or compress locally and send the finished ctt
  --attempts   submit: connect/send attempts before giving up (default 5)
  CYPRESS_LOG=error|warn|info|debug|trace   structured logging to stderr"
    );
}

type CliResult = cypress::Result<()>;

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn nprocs_of(args: &[String]) -> cypress::Result<u32> {
    flag(args, "-n")
        .ok_or_else(|| Error::Invalid("missing -n <procs>".into()))?
        .parse()
        .map_err(|e| Error::Invalid(format!("bad -n value: {e}")))
}

/// Parse `--level` into a section/wire compression level. `none` is
/// accepted so `submit` (which compresses by default) can opt out.
fn level_of(args: &[String]) -> cypress::Result<Option<Option<ZLevel>>> {
    match flag(args, "--level").as_deref() {
        None => Ok(None),
        Some("none") => Ok(Some(None)),
        Some(s) => ZLevel::from_name(s).map(|l| Some(Some(l))).ok_or_else(|| {
            Error::Invalid(format!(
                "unknown --level `{s}` (expected fast, default, best, or none)"
            ))
        }),
    }
}

/// Parse `--pipelined` / `--ring-capacity` into an ingest mode.
fn ingest_of(args: &[String]) -> cypress::Result<cypress::Ingest> {
    let capacity = match flag(args, "--ring-capacity") {
        None => None,
        Some(s) => Some(
            s.parse::<usize>()
                .map_err(|e| Error::Invalid(format!("bad --ring-capacity value: {e}")))?,
        ),
    };
    if has_flag(args, "--pipelined") {
        Ok(match capacity {
            Some(capacity) => cypress::Ingest::Pipelined { capacity },
            None => cypress::Ingest::pipelined(),
        })
    } else if capacity.is_some() {
        Err(Error::Invalid(
            "--ring-capacity requires --pipelined".into(),
        ))
    } else {
        Ok(cypress::Ingest::Sequential)
    }
}

fn threads_of(args: &[String]) -> cypress::Result<Option<usize>> {
    match flag(args, "--threads") {
        None => Ok(None),
        Some(s) => s
            .parse()
            .map(Some)
            .map_err(|e| Error::Invalid(format!("bad --threads value: {e}"))),
    }
}

fn rank_of(args: &[String]) -> cypress::Result<u32> {
    match flag(args, "-r") {
        None => Ok(0),
        Some(s) => s
            .parse()
            .map_err(|e| Error::Invalid(format!("bad -r value: {e}"))),
    }
}

fn file_arg(args: &[String], what: &str) -> cypress::Result<String> {
    args.iter()
        .find(|a| !a.starts_with('-'))
        .cloned()
        .ok_or_else(|| Error::Invalid(format!("missing {what}")))
}

/// Flags that consume the following argument, so positional scans can skip
/// flag *values* too (e.g. `--connect addr` before a positional).
const TAKES_VALUE: &[&str] = &[
    "--connect",
    "--hotspots",
    "--strategy",
    "--window",
    "--limit",
    "--listen",
    "--store",
    "--max-jobs",
    "--max-bytes",
    "--level",
    "--threads",
    "--cst",
    "--timeout",
    "--workers",
    "--stats-addr",
    "--tree",
    "--rank",
    "--mode",
    "--attempts",
    "--ring-capacity",
    "-n",
    "-r",
    "-o",
];

/// All positional arguments, in order, skipping flags and their values.
fn positionals(args: &[String]) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = 0;
    while let Some(a) = args.get(i) {
        if TAKES_VALUE.contains(&a.as_str()) {
            i += 2;
        } else if a.starts_with('-') {
            i += 1;
        } else {
            out.push(a.clone());
            i += 1;
        }
    }
    out
}

/// First positional argument.
fn positional(args: &[String], what: &str) -> cypress::Result<String> {
    positionals(args)
        .into_iter()
        .next()
        .ok_or_else(|| Error::Invalid(format!("missing {what}")))
}

/// Parse `--window start:end` (nanoseconds, half-open).
fn window_of(args: &[String]) -> cypress::Result<Option<Window>> {
    let Some(s) = flag(args, "--window") else {
        return Ok(None);
    };
    let parsed = s.split_once(':').and_then(|(a, b)| {
        Some(Window {
            start_ns: a.parse().ok()?,
            end_ns: b.parse().ok()?,
        })
    });
    match parsed {
        Some(w) if w.start_ns <= w.end_ns => Ok(Some(w)),
        _ => Err(Error::Invalid(format!(
            "bad --window `{s}` (expected <start>:<end> in ns, start <= end)"
        ))),
    }
}

/// Minimal JSON string escaping for CLI-emitted values (paths, names).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn read_source(args: &[String]) -> cypress::Result<(String, String)> {
    let path = file_arg(args, "program file")?;
    let src = fs::read_to_string(&path).map_err(|e| Error::Invalid(format!("read {path}: {e}")))?;
    Ok((path, src))
}

fn load_program(args: &[String]) -> cypress::Result<(Program, StaticInfo)> {
    let (_, src) = read_source(args)?;
    let prog = parse(&src)?;
    check_program(&prog)?;
    let info = analyze_program(&prog);
    Ok((prog, info))
}

fn run_traces(args: &[String]) -> cypress::Result<(Program, StaticInfo, Vec<RawTrace>)> {
    let (prog, info) = load_program(args)?;
    let n = nprocs_of(args)?;
    let threads = std::thread::available_parallelism()
        .map(|t| t.get())
        .unwrap_or(4);
    let traces = trace_program_parallel(&prog, &info, n, &InterpConfig::default(), threads)?;
    Ok((prog, info, traces))
}

fn cmd_cst(args: &[String]) -> CliResult {
    let (_, info) = load_program(args)?;
    println!("{}", info.cst.to_compact_string());
    println!();
    print!("{}", info.cst.to_text());
    eprintln!(
        "\n{} vertices ({} MPI leaves), {} instrumentation entries",
        info.cst.len(),
        info.cst.mpi_leaf_count(),
        info.sitemap.entry_count()
    );
    Ok(())
}

fn cmd_trace(args: &[String]) -> CliResult {
    let (_, _, traces) = run_traces(args)?;
    let dir = flag(args, "-o").ok_or_else(|| Error::Invalid("missing -o <dir>".into()))?;
    fs::create_dir_all(&dir)?;
    let mut total = 0usize;
    for t in &traces {
        let path = format!("{dir}/rank{:05}.trace", t.rank);
        let bytes = t.to_bytes();
        total += bytes.len();
        fs::write(&path, &bytes)?;
    }
    println!(
        "wrote {} raw traces to {dir}/ ({} bytes total)",
        traces.len(),
        total
    );
    Ok(())
}

fn cmd_dump(args: &[String]) -> CliResult {
    let (_, _, traces) = run_traces(args)?;
    let rank = rank_of(args)? as usize;
    let t = traces
        .get(rank)
        .ok_or_else(|| Error::Invalid(format!("rank {rank} out of range")))?;
    print!("{}", cypress::trace::format_trace(t));
    Ok(())
}

fn cmd_compress(args: &[String]) -> CliResult {
    let out = flag(args, "-o").ok_or_else(|| Error::Invalid("missing -o <file>".into()))?;
    if has_flag(args, "--stream") {
        return cmd_compress_stream(args, &out);
    }
    if has_flag(args, "--pipelined") || flag(args, "--ring-capacity").is_some() {
        return Err(Error::Invalid(
            "--pipelined/--ring-capacity require --stream".into(),
        ));
    }
    // Legacy batch path: bare merged-CTT dump + CST text sidecar.
    let (_, info, traces) = run_traces(args)?;
    let raw: usize = traces.iter().map(raw_mpi_size).sum();
    let cfg = CompressConfig::default();
    let ctts: Vec<_> = traces
        .iter()
        .map(|t| compress_trace(&info.cst, t, &cfg))
        .collect();
    let merged = merge_all_parallel(&ctts, 8);
    let bytes = merged.to_bytes();
    fs::write(&out, &bytes)?;
    let cst_path = format!("{out}.cst");
    fs::write(&cst_path, info.cst.to_text())?;
    println!(
        "raw {} B -> merged {} B (+{} B CST) — {:.1}x",
        raw,
        bytes.len(),
        info.cst.to_text().len(),
        raw as f64 / (bytes.len() + info.cst.to_text().len()) as f64
    );
    println!("wrote {out} and {cst_path}");
    Ok(())
}

/// Streaming compression: every rank feeds a session online (the raw trace
/// never materializes) and the result persists as a versioned container.
fn cmd_compress_stream(args: &[String], out: &str) -> CliResult {
    let t0 = cypress::obs::trace_now_ns();
    let (_, src) = read_source(args)?;
    let n = nprocs_of(args)?;
    let threads = threads_of(args)?;
    let mut cfg = cypress::PipelineConfig {
        level: level_of(args)?.unwrap_or(None),
        mode: ingest_of(args)?,
        ..cypress::PipelineConfig::default()
    };
    if let Some(t) = threads {
        cfg.threads = t.max(1);
    }
    let mut job = Pipeline::new(src).ranks(n).configure(cfg).run()?;
    let events: u64 = job.stats.iter().map(|s| s.events).sum();
    let peak = job.peak_ctt_bytes();
    job.merge();
    // When the run traces itself, roll the compute phases (parse → merge)
    // into a compact summary and persist it as a trailing section; the
    // final encode/io spans still land in the full --trace-out timeline.
    let telemetry = if cypress::obs::trace_enabled() {
        let wall = cypress::obs::trace_now_ns().saturating_sub(t0);
        cypress::obs::trace_complete("cli", "compress", t0, wall, events);
        let p = cypress::obs::trace_snapshot().profile("compress");
        let threads = threads.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|t| t.get())
                .unwrap_or(4)
        });
        Some(cypress::TelemetrySummary::from_profile(
            &p,
            n,
            threads as u32,
            job.total_events(),
        ))
    } else {
        None
    };
    job.write_container_with(out, has_flag(args, "--per-rank"), telemetry.as_ref())?;
    let written = fs::metadata(out).map(|m| m.len()).unwrap_or(0);
    println!("streamed {events} events across {n} ranks; peak resident CTT {peak} B/rank");
    println!(
        "wrote {out} ({written} B container: cst + merged{} )",
        if has_flag(args, "--per-rank") {
            format!(" + {n} rank sections")
        } else {
            String::new()
        }
    );
    Ok(())
}

fn cmd_decompress(args: &[String]) -> CliResult {
    let file = file_arg(args, "compressed trace file")?;
    let rank = rank_of(args)?;
    let bytes = fs::read(&file)?;
    let ops = if is_container(&bytes) {
        // Self-describing container: CST travels inside.
        read_container(&file)?.decompress(rank)?
    } else {
        // Legacy bare merged dump: CST text comes from --cst.
        let cst_path = flag(args, "--cst").ok_or_else(|| {
            Error::Invalid("missing --cst <cst.txt> (not a container file)".into())
        })?;
        let merged = MergedCtt::from_bytes(&bytes)?;
        let cst_text = fs::read_to_string(&cst_path)?;
        let cst = Cst::from_text(&cst_text)?;
        let ctt = merged.extract_rank(rank, &cst);
        decompress(&cst, &ctt)
    };
    println!("# rank {rank}: {} operations", ops.len());
    for o in &ops {
        let p = &o.params;
        let mut fields = Vec::new();
        if p.dest >= 0 {
            fields.push(format!("dest={}", p.dest));
        }
        if p.src != cypress::trace::event::NONE {
            fields.push(format!("src={}", p.src));
        }
        if p.count >= 0 {
            fields.push(format!("bytes={}", p.count));
        }
        if p.tag >= 0 {
            fields.push(format!("tag={}", p.tag));
        }
        if p.root >= 0 {
            fields.push(format!("root={}", p.root));
        }
        if !p.req_gids.is_empty() {
            fields.push(format!("reqs={:?}", p.req_gids));
        }
        println!(
            "g{:<4} {:<14} {}  ~{}ns",
            o.gid,
            o.op.name(),
            fields.join(" "),
            o.mean_dur
        );
    }
    Ok(())
}

/// Print a container's header and section table through the lazy
/// [`ContainerView`]: framing and every CRC are verified by the parse, raw
/// section payloads are served zero-copy out of the mapped image, and only
/// the deflated sections the report actually reads (meta, merged CTT,
/// telemetry) are inflated. For an all-raw container the command asserts
/// that **no inflation happened at all**.
fn cmd_inspect(args: &[String]) -> CliResult {
    let file = positional(args, "container file")?;
    let image = fs::read(&file)?;
    let file_bytes = image.len() as u64;
    let view = ContainerView::parse(&image)?;
    let table = view.table();
    let json = has_flag(args, "--json");

    // Meta payload: tool, version, nprocs, then (newer containers) traced
    // event count and raw MPI byte size (see cypress::pipeline).
    let mut written_by: Option<(String, String)> = None;
    let mut events: Option<u64> = None;
    let mut raw_bytes = 0u64;
    if let Some(meta) = view.find_payload(SectionKind::Meta) {
        let mut dec = cypress::trace::Decoder::new(meta?);
        if let (Ok(tool), Ok(tool_version), Ok(_nprocs)) =
            (dec.get_str(), dec.get_str(), dec.get_uvar())
        {
            written_by = Some((tool, tool_version));
            if let (Ok(ev), Ok(raw)) = (dec.get_uvar(), dec.get_uvar()) {
                events = Some(ev);
                raw_bytes = raw;
            }
        }
    }
    let merged_stats = match table.find(SectionKind::MergedCtt) {
        Some(i) => {
            let merged = MergedCtt::from_bytes(view.payload(i)?)?;
            Some((merged.vertices.len(), merged.group_count()))
        }
        None => None,
    };

    if json {
        let mut out = String::from("{");
        out.push_str(&format!("\"file\":{},", json_str(&file)));
        out.push_str(&format!("\"version\":{},", view.version()));
        out.push_str(&format!("\"nprocs\":{},", view.nprocs()));
        if let Some((tool, v)) = &written_by {
            out.push_str(&format!(
                "\"written_by\":{{\"tool\":{},\"version\":{}}},",
                json_str(tool),
                json_str(v)
            ));
        }
        if let Some(ev) = events {
            out.push_str(&format!("\"events\":{ev},\"raw_bytes\":{raw_bytes},"));
        }
        out.push_str("\"sections\":[");
        for (i, s) in table.sections().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let rank = match s.rank {
                Some(r) => r.to_string(),
                None => "null".into(),
            };
            out.push_str(&format!(
                "{{\"kind\":{},\"rank\":{rank},\"payload_bytes\":{},\"stored_bytes\":{},\"deflated\":{}}}",
                json_str(s.kind.name()),
                s.raw_len,
                s.stored_len(),
                s.is_deflated()
            ));
        }
        out.push_str("],");
        if let Some((vertices, groups)) = merged_stats {
            out.push_str(&format!(
                "\"merged_ctt\":{{\"vertices\":{vertices},\"rank_groups\":{groups}}},"
            ));
        }
        out.push_str(&format!(
            "\"payload_bytes\":{},\"file_bytes\":{file_bytes},\"crc_checks\":{},\"inflations\":{}}}",
            table.payload_bytes(),
            table.len(),
            view.inflations()
        ));
        println!("{out}");
        return Ok(());
    }

    println!(
        "{file}: cypress container v{}, {} ranks",
        view.version(),
        view.nprocs()
    );
    if let Some((tool, v)) = &written_by {
        println!("written by {tool} {v}");
    }
    if let Some(ev) = events {
        println!("traced {ev} MPI events, raw record size {raw_bytes} B");
    }
    let payload = table.payload_bytes();
    println!("{} sections, {payload} payload bytes:", table.len());
    // Every section frame carries its own crc32 over the stored bytes,
    // verified by the table parse (which fails before we get here if any
    // check misses), so "crc ok" below is a statement, not a hope.
    println!(
        "integrity: {} per-section crc32 checks verified on load (coverage: every payload byte)",
        table.len()
    );
    for (i, s) in table.sections().iter().enumerate() {
        let scope = match s.rank {
            Some(r) => format!(" rank {r}"),
            None => String::new(),
        };
        let share = if payload == 0 {
            0.0
        } else {
            s.raw_len as f64 / payload as f64 * 100.0
        };
        let stored = if s.is_deflated() {
            format!("  (deflate {} B)", s.stored_len())
        } else {
            String::new()
        };
        println!(
            "  [{i}] {:<10}{scope:<9} {:>8} B {share:>5.1}%  crc ok{stored}",
            s.kind.name(),
            s.raw_len
        );
    }
    if let Some((vertices, groups)) = merged_stats {
        println!("merged CTT: {vertices} vertices, {groups} rank groups");
    }
    if let Some(s) = view.find_payload(SectionKind::Telemetry) {
        match cypress::TelemetrySummary::from_bytes(s?) {
            Ok(t) => print!("{}", t.to_text()),
            Err(e) => println!("telemetry section unreadable: {e}"),
        }
    }
    if raw_bytes > 0 && file_bytes > 0 {
        println!(
            "compression ratio: {:.1}x (raw {} B / container {} B)",
            raw_bytes as f64 / file_bytes as f64,
            raw_bytes,
            file_bytes
        );
    }
    // The lazy-view contract, pinned where it is most visible: inspecting a
    // raw-layout container must not inflate anything, ever.
    if table.sections().iter().any(|s| s.is_deflated()) {
        println!(
            "lazy view: {} deflated sections inflated on demand, raw sections served zero-copy",
            view.inflations()
        );
    } else {
        assert_eq!(view.inflations(), 0, "raw-only inspect must not inflate");
        println!("lazy view: no inflation performed (all sections served zero-copy)");
    }
    Ok(())
}

/// Analyze a container directly in the compressed domain — no decompression.
/// `--connect ADDR JOB` asks a resident `cypress queryd` daemon instead of
/// reading a local file; the answer is byte-identical either way.
fn cmd_query(args: &[String]) -> CliResult {
    let limit: usize = match flag(args, "--hotspots") {
        None => 10,
        Some(s) => s
            .parse()
            .map_err(|e| Error::Invalid(format!("bad --hotspots value: {e}")))?,
    };
    let strategy = match flag(args, "--strategy").as_deref() {
        None | Some("auto") => Strategy::Auto,
        Some("symbolic") => Strategy::Symbolic,
        Some("expand") => Strategy::PartialExpansion,
        Some(other) => {
            return Err(Error::Invalid(format!(
                "unknown strategy `{other}` (expected auto, symbolic, or expand)"
            )))
        }
    };
    let opts = QueryOptions {
        strategy,
        hotspot_limit: limit,
        window: window_of(args)?,
    };
    let (label, q) = if let Some(connect) = flag(args, "--connect") {
        let addr = Addr::parse(&connect)?;
        let job = positional(args, "job name")?;
        let q = query_remote(&addr, &job, &opts, Duration::from_secs(10))?;
        (format!("{job} @ {addr}"), q)
    } else {
        let file = positional(args, "container file")?;
        let q = query_container_path(&file, &opts).map_err(Error::from)?;
        (file, q)
    };
    render_query(&label, &q, limit, has_flag(args, "--json"));
    Ok(())
}

fn render_query(label: &str, q: &QueryResult, limit: usize, json: bool) {
    if json {
        println!("{}", q.render_json());
        return;
    }
    println!(
        "{label}: {} ranks, evaluated via {}\n",
        q.nprocs,
        q.strategy.name()
    );
    print!("{}", q.render(limit));
    if q.nprocs <= 64 && q.total_volume() > 0 {
        println!("\nvolume heatmap (row = sender):");
        print!("{}", q.matrix.to_ascii());
    }
}

/// Compressed-domain analysis: CTT-native LogGP replay prediction,
/// late-sender wait-state detection, and cross-job diffing — evaluated
/// without decompressing steady loops (symbolic lowering + trip
/// extrapolation), locally or against a resident queryd daemon. Remote
/// answers are byte-identical to local ones: the daemon runs the same
/// engine with the same canonical `LogGp::default()` model.
fn cmd_analyze(args: &[String]) -> CliResult {
    let pos = positionals(args);
    let sub = pos.first().map(String::as_str).ok_or_else(|| {
        Error::Invalid("missing analyze subcommand (predict, latesender, or diff)".into())
    })?;
    let json = has_flag(args, "--json");
    let window = window_of(args)?;
    let opts = AnalyzeOptions { window };
    let limit: usize = match flag(args, "--limit") {
        None => 10,
        Some(s) => s
            .parse()
            .map_err(|e| Error::Invalid(format!("bad --limit value: {e}")))?,
    };
    let connect = match flag(args, "--connect") {
        Some(c) => Some(Addr::parse(&c)?),
        None => None,
    };
    let operand = |i: usize, what: &str| -> cypress::Result<String> {
        pos.get(i)
            .cloned()
            .ok_or_else(|| Error::Invalid(format!("missing {what}")))
    };
    match sub {
        "predict" | "latesender" => {
            let target = operand(1, "container file (or job name with --connect)")?;
            // Keep the opened job alive so latesender can render call paths
            // from its CST; remote reports carry GIDs only.
            let (label, report, local_job) = match &connect {
                Some(addr) => {
                    let r = analyze_remote(addr, &target, &opts, Duration::from_secs(10))?;
                    (format!("{target} @ {addr}"), r, None)
                }
                None => {
                    let job = StoreJob::open(Path::new(&target), &target)?;
                    let r = job.analyze(&opts)?;
                    (target.clone(), r, Some(job))
                }
            };
            if json {
                println!("{}", report.render_json());
            } else if sub == "predict" {
                println!("{label}:");
                print!("{}", report.render_predict());
            } else {
                println!("{label}:");
                print!(
                    "{}",
                    report.render_latesender(limit, local_job.as_ref().map(|j| j.cst()))
                );
            }
            Ok(())
        }
        "diff" => {
            let a = operand(1, "first container/job")?;
            let b = operand(2, "second container/job")?;
            let qopts = QueryOptions {
                strategy: Strategy::Auto,
                hotspot_limit: limit,
                window,
            };
            let summarize = |name: &str| -> cypress::Result<JobSummary> {
                let (query, analyze) = match &connect {
                    Some(addr) => {
                        let mut c = QueryClient::connect(addr, Duration::from_secs(10))?;
                        (c.query(name, &qopts)?, c.analyze(name, &opts)?)
                    }
                    None => {
                        let job = StoreJob::open(Path::new(name), name)?;
                        (job.query(&qopts)?, job.analyze(&opts)?)
                    }
                };
                Ok(JobSummary {
                    label: name.to_string(),
                    query,
                    analyze,
                })
            };
            let d = DiffReport {
                a: summarize(&a)?,
                b: summarize(&b)?,
            };
            if json {
                println!("{}", d.render_json());
            } else {
                print!("{}", d.render());
            }
            Ok(())
        }
        other => Err(Error::Invalid(format!(
            "unknown analyze subcommand `{other}` (expected predict, latesender, or diff)"
        ))),
    }
}

/// Resident query daemon: an LRU [`JobStore`] over a directory of `.cytc`
/// containers, served on the framed net transport until the process is
/// killed. Opened jobs stay hot across queries and connections.
fn cmd_queryd(args: &[String]) -> CliResult {
    let listen = flag(args, "--listen").ok_or_else(|| {
        Error::Invalid("missing --listen <addr> (host:port or unix:<path>)".into())
    })?;
    let dir = flag(args, "--store")
        .ok_or_else(|| Error::Invalid("missing --store <dir> of .cytc containers".into()))?;
    let mut cfg = StoreConfig::default();
    if let Some(n) = flag(args, "--max-jobs") {
        cfg.max_jobs = n
            .parse()
            .map_err(|e| Error::Invalid(format!("bad --max-jobs value: {e}")))?;
    }
    if let Some(b) = flag(args, "--max-bytes") {
        cfg.max_bytes = b
            .parse()
            .map_err(|e| Error::Invalid(format!("bad --max-bytes value: {e}")))?;
    }
    let addr = Addr::parse(&listen)?;
    let store = Arc::new(JobStore::new(&dir, cfg)?);
    let jobs = store.list()?.len();
    let server = cypress::store::spawn(store, &addr)?;
    eprintln!(
        "cypress queryd serving {jobs} jobs from {dir} on {} (query with `cypress query --connect {} <job>`)",
        server.addr(),
        server.addr()
    );
    // The daemon runs until killed; the server threads do all the work.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

fn cmd_stats(args: &[String]) -> CliResult {
    // `stats --connect ADDR` polls a running collector's live telemetry
    // endpoint instead of profiling a local program.
    if let Some(connect) = flag(args, "--connect") {
        let addr = Addr::parse(&connect)?;
        let stats = fetch_stats(&addr, std::time::Duration::from_secs(5))?;
        if has_flag(args, "--json") {
            println!("{}", stats.to_json());
        } else {
            print!("{}", stats.to_text());
        }
        return Ok(());
    }
    let (_, _, traces) = run_traces(args)?;
    print!("{}", cypress::trace::Profile::from_traces(&traces).report());
    let m = CommMatrix::from_traces(&traces);
    println!(
        "\npoint-to-point volume: {} bytes across {} edges",
        m.total(),
        (0..traces.len())
            .map(|r| m.peers_of(r).len())
            .sum::<usize>()
    );
    if traces.len() <= 64 {
        println!("\nheatmap (row = sender):");
        print!("{}", m.to_ascii());
    }
    Ok(())
}

/// Collector daemon: bind, serve until every rank of the job has merged
/// (or the deadline expires), then persist the collected job as a `.cytc`
/// container indistinguishable from a locally-compressed one.
fn cmd_serve(args: &[String]) -> CliResult {
    let listen = flag(args, "--listen").ok_or_else(|| {
        Error::Invalid("missing --listen <addr> (host:port or unix:<path>)".into())
    })?;
    let out = flag(args, "--out").ok_or_else(|| Error::Invalid("missing --out <file>".into()))?;
    let addr = Addr::parse(&listen)?;
    let per_rank = has_flag(args, "--per-rank");

    let mut cfg = CollectorConfig {
        keep_rank_ctts: per_rank,
        ..CollectorConfig::default()
    };
    if let Some(secs) = flag(args, "--timeout") {
        let secs: f64 = secs
            .parse()
            .map_err(|e| Error::Invalid(format!("bad --timeout value: {e}")))?;
        cfg.deadline = Some(std::time::Duration::from_secs_f64(secs));
    }
    if let Some(w) = flag(args, "--workers") {
        cfg.workers = w
            .parse()
            .map_err(|e| Error::Invalid(format!("bad --workers value: {e}")))?;
    }

    let level = level_of(args)?.unwrap_or(None);
    let threads = threads_of(args)?.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .min(8)
    });

    if let Some(relays) = flag(args, "--tree") {
        let relays: u32 = relays
            .parse()
            .map_err(|e| Error::Invalid(format!("bad --tree value: {e}")))?;
        if relays == 0 {
            return Err(Error::Invalid("--tree needs at least 1 relay".into()));
        }
        // The topology is sized up front: relays must know their shard
        // before the first client connects, so -n is mandatory here.
        let n = nprocs_of(args).map_err(|_| {
            Error::Invalid("serve --tree requires -n <procs> (shards are fixed up front)".into())
        })?;
        let mut cfg = cfg;
        if per_rank {
            eprintln!(
                "warning: --per-rank is unavailable with --tree (relays forward merged \
                 blocks, not rank CTTs); writing the merged container only"
            );
            cfg.keep_rank_ctts = false;
        }
        if let Some(sa) = flag(args, "--stats-addr") {
            cfg.stats_addr = Some(Addr::parse(&sa)?);
        }
        let tree = spawn_tree(
            &addr,
            &TreeConfig {
                relays,
                nprocs: n,
                collector: cfg,
                client: ClientConfig::default(),
            },
        )?;
        if let Some(sa) = tree.stats_addr() {
            eprintln!("cypress collector stats endpoint on {sa} (poll with `cypress stats --connect {sa}`)");
        }
        for (leaf, &(first, last)) in tree.leaves().iter().zip(tree.ranges()) {
            eprintln!("cypress relay for ranks {first}..{last} listening on {leaf}");
        }
        eprintln!("cypress collector tree root on {addr} ({relays} relays, {n} ranks)");
        let job = tree.join()?;
        let merged_bytes = job.merged.to_bytes().len();
        write_collected_container_with(&job, &out, false, level, threads)?;
        println!(
            "collected {} ranks, {} MPI events; merged CTT {} B ({} rank groups)",
            job.nprocs,
            job.total_events,
            merged_bytes,
            job.merged.group_count()
        );
        println!("wrote {out}");
        return Ok(());
    }

    let mut collector = Collector::bind(&addr)?;
    if let Some(sa) = flag(args, "--stats-addr") {
        let resolved = collector.bind_stats(&Addr::parse(&sa)?)?;
        eprintln!("cypress collector stats endpoint on {resolved} (poll with `cypress stats --connect {resolved}`)");
    }
    eprintln!(
        "cypress collector listening on {} (job size set by the first client)",
        collector.local_addr()?
    );
    let job = collector.run(&cfg)?;
    let merged_bytes = job.merged.to_bytes().len();
    write_collected_container_with(&job, &out, per_rank, level, threads)?;
    println!(
        "collected {} ranks, {} MPI events; merged CTT {} B ({} rank groups)",
        job.nprocs,
        job.total_events,
        merged_bytes,
        job.merged.group_count()
    );
    println!("wrote {out}");
    Ok(())
}

/// Run one simulated rank locally and submit its trace to a collector —
/// the per-process side of the paper's deployment, over a socket instead
/// of `MPI_Finalize`.
fn cmd_submit(args: &[String]) -> CliResult {
    let (prog, info) = load_program(args)?;
    let n = nprocs_of(args)?;
    let rank: u32 = flag(args, "--rank")
        .ok_or_else(|| Error::Invalid("missing --rank <r>".into()))?
        .parse()
        .map_err(|e| Error::Invalid(format!("bad --rank value: {e}")))?;
    if rank >= n {
        return Err(Error::Invalid(format!("rank {rank} out of 0..{n}")));
    }
    let connect =
        flag(args, "--connect").ok_or_else(|| Error::Invalid("missing --connect <addr>".into()))?;
    let addr = Addr::parse(&connect)?;
    let mut cfg = ClientConfig::default();
    if let Some(a) = flag(args, "--attempts") {
        cfg.attempts = a
            .parse()
            .map_err(|e| Error::Invalid(format!("bad --attempts value: {e}")))?;
    }
    if let Some(level) = level_of(args)? {
        cfg.ctt_level = level;
    }
    let cst_text = info.cst.to_text();
    let interp = InterpConfig::default();

    let outcome = match flag(args, "--mode").as_deref() {
        None | Some("stream") => submit_stream(&addr, &cfg, rank, n, &cst_text, |sink| {
            run_rank_with_sink(&prog, &info, rank, n, &interp, &mut &mut *sink)
                .map_err(|e| e.to_string())
        })?,
        Some("ctt") => {
            let mut session = CompressSession::new(
                &info.cst,
                rank,
                n,
                CompressConfig::default(),
                SessionConfig::default(),
            );
            let app_time = run_rank_with_sink(&prog, &info, rank, n, &interp, &mut session)?;
            let (ctt, _stats) = session.finish(app_time);
            submit_ctt(&addr, &cfg, &ctt, &cst_text)?
        }
        Some(other) => {
            return Err(Error::Invalid(format!(
                "unknown --mode `{other}` (expected stream or ctt)"
            )))
        }
    };

    if outcome.already_done {
        println!("rank {rank}: collector already has this rank (previous attempt landed)");
    } else {
        println!(
            "rank {rank}: submitted ({} events streamed, attempt {}/{}); collector has {} ranks",
            outcome.events_sent, outcome.attempts, cfg.attempts, outcome.ranks_done
        );
    }
    Ok(())
}

fn cmd_simulate(args: &[String]) -> CliResult {
    let (_, info, traces) = run_traces(args)?;
    let model = LogGp::default();
    let measured =
        simulate(&from_raw_traces(&traces), &model).map_err(|e| Error::Invalid(e.to_string()))?;
    let cfg = CompressConfig::default();
    let predicted_ops: Vec<Vec<SimOp>> = traces
        .iter()
        .map(|t| {
            let ctt = compress_trace(&info.cst, t, &cfg);
            decompress(&info.cst, &ctt)
                .into_iter()
                .map(|o| SimOp {
                    gid: o.gid,
                    op: o.op,
                    params: o.params,
                    pre_gap: o.mean_gap,
                })
                .collect()
        })
        .collect();
    let predicted = simulate(&predicted_ops, &model).map_err(|e| Error::Invalid(e.to_string()))?;
    println!(
        "measured (raw traces):        {:.3} ms",
        measured.total as f64 / 1e6
    );
    println!(
        "predicted (compressed):       {:.3} ms",
        predicted.total as f64 / 1e6
    );
    println!(
        "prediction error:             {:.2}%",
        (predicted.total as f64 - measured.total as f64).abs() / measured.total.max(1) as f64
            * 100.0
    );
    println!(
        "communication time share:     {:.2}%",
        measured.comm_fraction() * 100.0
    );
    Ok(())
}
