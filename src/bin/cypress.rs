//! `cypress` — command-line driver for the trace-compression pipeline.
//!
//! ```text
//! cypress cst <prog.mpi>                      print the communication structure tree
//! cypress trace <prog.mpi> -n P -o DIR        write per-rank raw traces
//! cypress compress <prog.mpi> -n P -o FILE    trace + compress + merge to FILE
//! cypress decompress FILE --cst CST [-r R]    replay rank R (default 0) from a merged trace
//! cypress stats <prog.mpi> -n P               op histogram + communication matrix
//! cypress simulate <prog.mpi> -n P            measured vs predicted LogGP times
//! ```
//!
//! Program files contain MiniMPI source (see `cypress-minilang`).

use cypress::core::{compress_trace, decompress, merge_all_parallel, CompressConfig, MergedCtt};
use cypress::cst::{analyze_program, Cst, StaticInfo};
use cypress::minilang::{check_program, parse, Program};
use cypress::runtime::{trace_program_parallel, InterpConfig};
use cypress::simmpi::{from_raw_traces, simulate, LogGp, SimOp};
use cypress::trace::codec::Codec;
use cypress::trace::commmatrix::CommMatrix;
use cypress::trace::raw::{raw_mpi_size, RawTrace};
use std::fs;
use std::process::exit;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let metrics = if let Some(i) = args.iter().position(|a| a == "--metrics") {
        args.remove(i);
        cypress::obs::set_enabled(true);
        true
    } else {
        false
    };
    let Some(cmd) = args.first() else {
        usage();
        exit(2);
    };
    let rest = &args[1..];
    let result = match cmd.as_str() {
        "cst" => cmd_cst(rest),
        "trace" => cmd_trace(rest),
        "dump" => cmd_dump(rest),
        "compress" => cmd_compress(rest),
        "decompress" => cmd_decompress(rest),
        "stats" => cmd_stats(rest),
        "simulate" => cmd_simulate(rest),
        "-h" | "--help" | "help" => {
            usage();
            Ok(())
        }
        other => {
            eprintln!("unknown command `{other}`");
            usage();
            exit(2);
        }
    };
    if metrics {
        emit_metrics();
    }
    if let Err(e) = result {
        eprintln!("error: {e}");
        exit(1);
    }
}

/// Dump the pipeline-wide metrics report: human table to stdout, JSON lines
/// to `results/metrics.jsonl` (best-effort — failure to write is non-fatal).
fn emit_metrics() {
    let report = cypress::obs::report();
    println!("\n== metrics ==\n{}", report.to_text());
    let path = "results/metrics.jsonl";
    let ok = fs::create_dir_all("results")
        .and_then(|()| fs::write(path, report.to_jsonl()))
        .is_ok();
    if ok {
        eprintln!("metrics written to {path}");
    } else {
        eprintln!("warning: could not write {path}");
    }
}

fn usage() {
    eprintln!(
        "cypress — hybrid static-dynamic MPI trace compression

USAGE:
  cypress cst <prog.mpi>
  cypress trace <prog.mpi> -n <procs> -o <dir>
  cypress dump <prog.mpi> -n <procs> [-r <rank>]
  cypress compress <prog.mpi> -n <procs> -o <file>
  cypress decompress <file> --cst <cst.txt> [-r <rank>]
  cypress stats <prog.mpi> -n <procs>
  cypress simulate <prog.mpi> -n <procs>

OPTIONS:
  --metrics    collect pipeline metrics; print a report and write
               results/metrics.jsonl on exit
  CYPRESS_LOG=error|warn|info|debug|trace   structured logging to stderr"
    );
}

type CliResult = Result<(), String>;

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn nprocs_of(args: &[String]) -> Result<u32, String> {
    flag(args, "-n")
        .ok_or_else(|| "missing -n <procs>".to_string())?
        .parse()
        .map_err(|e| format!("bad -n value: {e}"))
}

fn load_program(args: &[String]) -> Result<(Program, StaticInfo), String> {
    let path = args
        .iter()
        .find(|a| !a.starts_with('-'))
        .ok_or("missing program file")?;
    let src = fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let prog = parse(&src).map_err(|e| format!("{path}: {e}"))?;
    check_program(&prog).map_err(|e| format!("{path}: {e}"))?;
    let info = analyze_program(&prog);
    Ok((prog, info))
}

fn run_traces(args: &[String]) -> Result<(Program, StaticInfo, Vec<RawTrace>), String> {
    let (prog, info) = load_program(args)?;
    let n = nprocs_of(args)?;
    let threads = std::thread::available_parallelism()
        .map(|t| t.get())
        .unwrap_or(4);
    let traces = trace_program_parallel(&prog, &info, n, &InterpConfig::default(), threads)
        .map_err(|e| e.to_string())?;
    Ok((prog, info, traces))
}

fn cmd_cst(args: &[String]) -> CliResult {
    let (_, info) = load_program(args)?;
    println!("{}", info.cst.to_compact_string());
    println!();
    print!("{}", info.cst.to_text());
    eprintln!(
        "\n{} vertices ({} MPI leaves), {} instrumentation entries",
        info.cst.len(),
        info.cst.mpi_leaf_count(),
        info.sitemap.entry_count()
    );
    Ok(())
}

fn cmd_trace(args: &[String]) -> CliResult {
    let (_, _, traces) = run_traces(args)?;
    let dir = flag(args, "-o").ok_or("missing -o <dir>")?;
    fs::create_dir_all(&dir).map_err(|e| format!("mkdir {dir}: {e}"))?;
    let mut total = 0usize;
    for t in &traces {
        let path = format!("{dir}/rank{:05}.trace", t.rank);
        let bytes = t.to_bytes();
        total += bytes.len();
        fs::write(&path, &bytes).map_err(|e| format!("write {path}: {e}"))?;
    }
    println!(
        "wrote {} raw traces to {dir}/ ({} bytes total)",
        traces.len(),
        total
    );
    Ok(())
}

fn cmd_dump(args: &[String]) -> CliResult {
    let (_, _, traces) = run_traces(args)?;
    let rank: usize = flag(args, "-r").map_or(Ok(0), |s| {
        s.parse().map_err(|e| format!("bad -r value: {e}"))
    })?;
    let t = traces
        .get(rank)
        .ok_or_else(|| format!("rank {rank} out of range"))?;
    print!("{}", cypress::trace::format_trace(t));
    Ok(())
}

fn cmd_compress(args: &[String]) -> CliResult {
    let (_, info, traces) = run_traces(args)?;
    let out = flag(args, "-o").ok_or("missing -o <file>")?;
    let raw: usize = traces.iter().map(raw_mpi_size).sum();
    let cfg = CompressConfig::default();
    let ctts: Vec<_> = traces
        .iter()
        .map(|t| compress_trace(&info.cst, t, &cfg))
        .collect();
    let merged = merge_all_parallel(&ctts, 8);
    let bytes = merged.to_bytes();
    fs::write(&out, &bytes).map_err(|e| format!("write {out}: {e}"))?;
    let cst_path = format!("{out}.cst");
    fs::write(&cst_path, info.cst.to_text()).map_err(|e| format!("write {cst_path}: {e}"))?;
    println!(
        "raw {} B -> merged {} B (+{} B CST) — {:.1}x",
        raw,
        bytes.len(),
        info.cst.to_text().len(),
        raw as f64 / (bytes.len() + info.cst.to_text().len()) as f64
    );
    println!("wrote {out} and {cst_path}");
    Ok(())
}

fn cmd_decompress(args: &[String]) -> CliResult {
    let file = args
        .iter()
        .find(|a| !a.starts_with('-'))
        .ok_or("missing merged trace file")?;
    let cst_path = flag(args, "--cst").ok_or("missing --cst <cst.txt>")?;
    let rank: u32 = flag(args, "-r").map_or(Ok(0), |s| {
        s.parse().map_err(|e| format!("bad -r value: {e}"))
    })?;
    let bytes = fs::read(file).map_err(|e| format!("read {file}: {e}"))?;
    let merged = MergedCtt::from_bytes(&bytes).map_err(|e| e.to_string())?;
    let cst_text = fs::read_to_string(&cst_path).map_err(|e| format!("read {cst_path}: {e}"))?;
    let cst = Cst::from_text(&cst_text)?;
    let ctt = merged.extract_rank(rank, &cst);
    let ops = decompress(&cst, &ctt);
    println!("# rank {rank}: {} operations", ops.len());
    for o in &ops {
        let p = &o.params;
        let mut fields = Vec::new();
        if p.dest >= 0 {
            fields.push(format!("dest={}", p.dest));
        }
        if p.src != cypress::trace::event::NONE {
            fields.push(format!("src={}", p.src));
        }
        if p.count >= 0 {
            fields.push(format!("bytes={}", p.count));
        }
        if p.tag >= 0 {
            fields.push(format!("tag={}", p.tag));
        }
        if p.root >= 0 {
            fields.push(format!("root={}", p.root));
        }
        if !p.req_gids.is_empty() {
            fields.push(format!("reqs={:?}", p.req_gids));
        }
        println!(
            "g{:<4} {:<14} {}  ~{}ns",
            o.gid,
            o.op.name(),
            fields.join(" "),
            o.mean_dur
        );
    }
    Ok(())
}

fn cmd_stats(args: &[String]) -> CliResult {
    let (_, _, traces) = run_traces(args)?;
    print!("{}", cypress::trace::Profile::from_traces(&traces).report());
    let m = CommMatrix::from_traces(&traces);
    println!(
        "\npoint-to-point volume: {} bytes across {} edges",
        m.total(),
        (0..traces.len())
            .map(|r| m.peers_of(r).len())
            .sum::<usize>()
    );
    if traces.len() <= 64 {
        println!("\nheatmap (row = sender):");
        print!("{}", m.to_ascii());
    }
    Ok(())
}

fn cmd_simulate(args: &[String]) -> CliResult {
    let (_, info, traces) = run_traces(args)?;
    let model = LogGp::default();
    let measured = simulate(&from_raw_traces(&traces), &model).map_err(|e| e.to_string())?;
    let cfg = CompressConfig::default();
    let predicted_ops: Vec<Vec<SimOp>> = traces
        .iter()
        .map(|t| {
            let ctt = compress_trace(&info.cst, t, &cfg);
            decompress(&info.cst, &ctt)
                .into_iter()
                .map(|o| SimOp {
                    gid: o.gid,
                    op: o.op,
                    params: o.params,
                    pre_gap: o.mean_gap,
                })
                .collect()
        })
        .collect();
    let predicted = simulate(&predicted_ops, &model).map_err(|e| e.to_string())?;
    println!(
        "measured (raw traces):        {:.3} ms",
        measured.total as f64 / 1e6
    );
    println!(
        "predicted (compressed):       {:.3} ms",
        predicted.total as f64 / 1e6
    );
    println!(
        "prediction error:             {:.2}%",
        (predicted.total as f64 - measured.total as f64).abs() / measured.total.max(1) as f64
            * 100.0
    );
    println!(
        "communication time share:     {:.2}%",
        measured.comm_fraction() * 100.0
    );
    Ok(())
}
