//! Deprecated pre-`Pipeline` entry points.
//!
//! Before the [`Pipeline`](crate::Pipeline) facade, callers drove the stack
//! through these free functions (still the spelling inside the subcrates,
//! which keep them undeprecated for internal use). At the umbrella level
//! they are shims: same signatures, same behavior, marked `#[deprecated]`
//! so downstream code migrates at its own pace while `scripts/check.sh`
//! keeps *this* repo's own code off them. See the migration table in
//! `README.md`.

use cypress_core::{CompressConfig, Ctt, MergedCtt};
use cypress_cst::StaticInfo;
use cypress_minilang::Program;
use cypress_runtime::{InterpConfig, RunResult};
use cypress_trace::RawTrace;

/// Trace every rank serially and collect raw traces.
#[deprecated(
    since = "0.1.0",
    note = "use cypress::Pipeline::new(src).ranks(n).streaming(false).run()"
)]
pub fn trace_program(
    prog: &Program,
    info: &StaticInfo,
    nprocs: u32,
    cfg: &InterpConfig,
) -> RunResult<Vec<RawTrace>> {
    cypress_runtime::trace_program(prog, info, nprocs, cfg)
}

/// Compress one recorded raw trace offline.
#[deprecated(
    since = "0.1.0",
    note = "use cypress::Pipeline (streaming sessions compress online; job.ctts holds the result)"
)]
pub fn compress_trace(cst: &cypress_cst::Cst, trace: &RawTrace, cfg: &CompressConfig) -> Ctt {
    cypress_core::compress_trace(cst, trace, cfg)
}

/// Merge per-rank CTTs with an explicit thread count.
#[deprecated(since = "0.1.0", note = "use cypress::CompressedJob::merge()")]
pub fn merge_all_parallel(ctts: &[Ctt], threads: usize) -> MergedCtt {
    cypress_core::merge_all_parallel(ctts, threads)
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use cypress_cst::analyze_program;
    use cypress_minilang::{check_program, parse};

    /// The shims must stay behavior-identical to the Pipeline they wrap.
    #[test]
    fn shims_match_pipeline_output() {
        let src = "fn main() { for i in 0..32 { allreduce(16); } }";
        let prog = parse(src).unwrap();
        check_program(&prog).unwrap();
        let info = analyze_program(&prog);

        let traces =
            super::trace_program(&prog, &info, 4, &cypress_runtime::InterpConfig::default())
                .unwrap();
        let ctts: Vec<_> = traces
            .iter()
            .map(|t| super::compress_trace(&info.cst, t, &Default::default()))
            .collect();
        let merged = super::merge_all_parallel(&ctts, 2);

        let mut job = crate::Pipeline::new(src).ranks(4).threads(2).run().unwrap();
        assert_eq!(job.ctts, ctts);
        assert_eq!(job.merge(), &merged);
    }
}
