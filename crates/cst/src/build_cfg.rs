//! Algorithm 1 — intra-procedural CST construction over the CFG.
//!
//! The paper builds each procedure's intermediate CST from its control-flow
//! graph: loops are found with the dominator-based algorithm, every
//! conditional path gets a branch vertex, and MPI/user-call invocations
//! become leaves. This implementation walks the CFG regions structurally:
//! loop headers (identified via back edges/dominators) open loop vertices
//! whose body region is walked until the back edge; conditional blocks open
//! one branch vertex per arm, each walked until the branch's immediate
//! post-dominator (the merge point).
//!
//! The resulting tree is validated against the direct AST oracle
//! ([`crate::build_ast`]) by unit and property tests: after pruning, the two
//! builders agree on every program.

use crate::tree::{mpi_op_of_builtin, Arm, Cst, VertexKind};
use cypress_minilang::ast::{Callee, Func};
use cypress_staticir::cfg::{lower_function, BlockId, Cfg, CondKind, Terminator};
use cypress_staticir::dom::{natural_loops, Dominators, PostDominators};
use std::collections::HashSet;

/// Build the intra-procedural CST of one function via its CFG (Algorithm 1).
pub fn build_intra_cfg(f: &Func) -> Cst {
    let cfg = lower_function(f);
    let dom = Dominators::compute(&cfg);
    let loops = natural_loops(&cfg, &dom);
    let pdom = PostDominators::compute(&cfg);
    let loop_headers: HashSet<BlockId> = loops.iter().map(|l| l.header).collect();

    let mut t = Cst::with_root();
    let root = t.root();
    let mut w = Walker {
        cfg: &cfg,
        pdom: &pdom,
        loop_headers: &loop_headers,
        tree: &mut t,
    };
    let mut stops = Vec::new();
    w.walk(cfg.entry, &mut stops, root);
    t
}

struct Walker<'a> {
    cfg: &'a Cfg,
    pdom: &'a PostDominators,
    loop_headers: &'a HashSet<BlockId>,
    tree: &'a mut Cst,
}

impl Walker<'_> {
    /// Append vertices for the region starting at `b` under `parent`,
    /// stopping (exclusively) whenever control reaches a block on the
    /// `stops` stack — loop headers of enclosing loops (back edges) and
    /// merge points of enclosing branches.
    fn walk(&mut self, b: BlockId, stops: &mut Vec<BlockId>, parent: usize) {
        let mut cur = b;
        loop {
            if stops.contains(&cur) {
                return;
            }
            // Loop headers are handled before emitting their invocations so
            // that `while`-condition calls land inside the loop vertex.
            if self.loop_headers.contains(&cur) {
                let Terminator::Cond {
                    origin,
                    kind: CondKind::Loop,
                    then_bb,
                    else_bb,
                } = self.cfg.block(cur).term.clone()
                else {
                    unreachable!("loop header must end in a loop conditional");
                };
                let lv = self.tree.add(
                    parent,
                    VertexKind::Loop {
                        origin,
                        pseudo: false,
                    },
                );
                self.emit_invocations(cur, lv);
                // Walk the body until control returns to the header.
                stops.push(cur);
                self.walk(then_bb, stops, lv);
                stops.pop();
                cur = else_bb; // continue after the loop
                continue;
            }

            self.emit_invocations(cur, parent);
            match self.cfg.block(cur).term.clone() {
                Terminator::Return => return,
                Terminator::Goto(nxt) => {
                    cur = nxt;
                }
                Terminator::Cond {
                    origin,
                    kind: CondKind::If,
                    then_bb,
                    else_bb,
                } => {
                    let merge = self.pdom.ipdom(cur);
                    if let Some(m) = merge {
                        stops.push(m);
                    }
                    let bt = self.tree.add(
                        parent,
                        VertexKind::Branch {
                            origin,
                            arm: Arm::Then,
                        },
                    );
                    self.walk(then_bb, stops, bt);
                    let be = self.tree.add(
                        parent,
                        VertexKind::Branch {
                            origin,
                            arm: Arm::Else,
                        },
                    );
                    self.walk(else_bb, stops, be);
                    match merge {
                        Some(m) => {
                            stops.pop();
                            cur = m;
                        }
                        // No merge before the function exit: every path
                        // either returns or re-enters an enclosing stop, and
                        // the arm walks above covered them.
                        None => return,
                    }
                }
                Terminator::Cond {
                    kind: CondKind::Loop,
                    ..
                } => {
                    unreachable!("loop conditional outside a detected loop header");
                }
            }
        }
    }

    fn emit_invocations(&mut self, b: BlockId, parent: usize) {
        for inv in &self.cfg.block(b).invocations {
            match &inv.callee {
                Callee::Builtin(bi) => {
                    if let Some(op) = mpi_op_of_builtin(*bi) {
                        self.tree.add(
                            parent,
                            VertexKind::Mpi {
                                origin: inv.expr_id,
                                op,
                            },
                        );
                    }
                }
                Callee::User(name) => {
                    self.tree.add(
                        parent,
                        VertexKind::UserCall {
                            origin: inv.expr_id,
                            name: name.clone(),
                        },
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build_ast::build_intra_ast;
    use cypress_minilang::parse;

    /// Both builders must agree after pruning.
    fn assert_equivalent(src: &str) {
        let p = parse(src).unwrap();
        for f in &p.funcs {
            let (a, _) = build_intra_ast(f).prune_and_finalize();
            let (b, _) = build_intra_cfg(f).prune_and_finalize();
            assert_eq!(
                a.to_compact_string(),
                b.to_compact_string(),
                "builders disagree for fn {} in:\n{src}",
                f.name
            );
        }
    }

    #[test]
    fn equivalence_simple_loop() {
        assert_equivalent("fn main() { for i in 0..4 { barrier(); } }");
    }

    #[test]
    fn equivalence_branches() {
        assert_equivalent(
            "fn main() { if rank() % 2 == 0 { send(1, 8, 0); } else { recv(0, 8, 0); } }",
        );
    }

    #[test]
    fn equivalence_jacobi() {
        assert_equivalent(
            r#"fn main() {
                let r = rank(); let s = size();
                for k in 0..10 {
                    if r < s - 1 { send(r + 1, 64, 0); }
                    if r > 0 { recv(r - 1, 64, 0); }
                    if r > 0 { send(r - 1, 64, 1); }
                    if r < s - 1 { recv(r + 1, 64, 1); }
                }
            }"#,
        );
    }

    #[test]
    fn equivalence_nested_loops_and_calls() {
        assert_equivalent(
            r#"fn bar() { for k in 0..3 { bcast(0, 8); } }
               fn main() {
                for i in 0..10 {
                    if rank() % 2 == 0 { send(rank()+1, 4, 0); }
                    else { recv(rank()-1, 4, 0); }
                    bar();
                }
                if rank() % 2 == 0 { reduce(0, 4); }
            }"#,
        );
    }

    #[test]
    fn equivalence_while_loop() {
        assert_equivalent("fn main() { let i = 0; while i < 5 { barrier(); i = i + 1; } }");
    }

    #[test]
    fn equivalence_else_if_chain() {
        assert_equivalent(
            r#"fn main() {
                for i in 0..8 {
                    if i % 3 == 0 { send(1, 8, 0); }
                    else if i % 3 == 1 { recv(0, 8, 0); }
                    else { barrier(); }
                }
            }"#,
        );
    }

    #[test]
    fn equivalence_deep_nesting() {
        assert_equivalent(
            r#"fn main() {
                for a in 0..2 {
                    for b in 0..2 {
                        if a + b > 1 {
                            for c in 0..b { allreduce(8); }
                        } else {
                            alltoall(16);
                        }
                    }
                }
            }"#,
        );
    }

    #[test]
    fn equivalence_return_in_branch() {
        assert_equivalent("fn main() { if rank() == 0 { barrier(); return; } bcast(0, 8); }");
    }

    #[test]
    fn equivalence_both_arms_return() {
        assert_equivalent(
            "fn main() { if rank() == 0 { barrier(); return; } else { bcast(0,8); return; } }",
        );
    }

    #[test]
    fn cfg_builder_jacobi_compact_shape() {
        let p = parse(
            r#"fn main() {
                for k in 0..10 {
                    if rank() < size() - 1 { send(rank() + 1, 64, 0); }
                    if rank() > 0 { recv(rank() - 1, 64, 0); }
                }
            }"#,
        )
        .unwrap();
        let (t, _) = build_intra_cfg(p.main().unwrap()).prune_and_finalize();
        assert_eq!(
            t.to_compact_string(),
            "Root(Loop(BrT(Mpi:MPI_Send) BrT(Mpi:MPI_Recv)))"
        );
    }
}
