//! The Communication Structure Tree (CST) — paper §III.
//!
//! An ordered tree whose pre-order traversal matches the static structure of
//! the program: leaf vertices are MPI invocations, non-leaf vertices are
//! control structures (loop and branch vertices), and — before
//! inter-procedural inlining — user-defined function calls appear as
//! placeholder leaves that Algorithm 2 later replaces. Each vertex of the
//! final tree gets a unique global id (GID) assigned in pre-order.

use cypress_minilang::ast::{Builtin, NodeId};
use cypress_trace::event::MpiOp;
use std::fmt;

/// Global id of a CST vertex, assigned in pre-order over the final tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Gid(pub u32);

impl fmt::Display for Gid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// Which arm of an `if` a branch vertex represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Arm {
    Then,
    Else,
}

/// Vertex payload.
#[derive(Debug, Clone, PartialEq)]
pub enum VertexKind {
    /// The virtual root connecting all first-level vertices (paper §III-A).
    Root,
    /// A loop vertex. `pseudo` marks the approximate loop inserted at the
    /// entry of a recursive function (paper §III-B, Fig. 8).
    Loop { origin: NodeId, pseudo: bool },
    /// A branch vertex — one per path of a conditional.
    Branch { origin: NodeId, arm: Arm },
    /// An MPI invocation leaf; `origin` is the call expression's AST id.
    Mpi { origin: NodeId, op: MpiOp },
    /// A user-defined function call placeholder (intra-procedural trees
    /// only; eliminated by inter-procedural analysis).
    UserCall { origin: NodeId, name: String },
}

impl VertexKind {
    pub fn is_mpi(&self) -> bool {
        matches!(self, VertexKind::Mpi { .. })
    }

    pub fn is_loop(&self) -> bool {
        matches!(self, VertexKind::Loop { .. })
    }

    pub fn is_branch(&self) -> bool {
        matches!(self, VertexKind::Branch { .. })
    }

    pub fn is_user_call(&self) -> bool {
        matches!(self, VertexKind::UserCall { .. })
    }

    /// Short tag used by the text serialization.
    pub fn tag(&self) -> &'static str {
        match self {
            VertexKind::Root => "Root",
            VertexKind::Loop { pseudo: false, .. } => "Loop",
            VertexKind::Loop { pseudo: true, .. } => "PseudoLoop",
            VertexKind::Branch { arm: Arm::Then, .. } => "BrT",
            VertexKind::Branch { arm: Arm::Else, .. } => "BrE",
            VertexKind::Mpi { .. } => "Mpi",
            VertexKind::UserCall { .. } => "Call",
        }
    }
}

/// One vertex of a CST.
#[derive(Debug, Clone, PartialEq)]
pub struct Vertex {
    pub kind: VertexKind,
    /// Indices of children, in program order.
    pub children: Vec<usize>,
    /// Index of the parent (`None` for the root).
    pub parent: Option<usize>,
}

/// An ordered tree of [`Vertex`]s. In a *finalized* CST (after pruning and
/// GID assignment) the vertex index **is** the GID: vertices are stored in
/// pre-order and `vertices\[0\]` is the root.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Cst {
    pub vertices: Vec<Vertex>,
}

impl Cst {
    /// Create a tree containing only a root vertex.
    pub fn with_root() -> Self {
        Cst {
            vertices: vec![Vertex {
                kind: VertexKind::Root,
                children: Vec::new(),
                parent: None,
            }],
        }
    }

    pub fn root(&self) -> usize {
        0
    }

    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    pub fn vertex(&self, i: usize) -> &Vertex {
        &self.vertices[i]
    }

    /// Append a vertex under `parent`, returning its index.
    pub fn add(&mut self, parent: usize, kind: VertexKind) -> usize {
        let idx = self.vertices.len();
        self.vertices.push(Vertex {
            kind,
            children: Vec::new(),
            parent: Some(parent),
        });
        self.vertices[parent].children.push(idx);
        idx
    }

    /// Pre-order traversal (root first, children in order).
    pub fn pre_order(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.vertices.len());
        let mut stack = vec![self.root()];
        while let Some(v) = stack.pop() {
            out.push(v);
            for &c in self.vertices[v].children.iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// Delete leaf vertices that are not MPI invocations, repeating until
    /// every leaf is an MPI invocation (the paper's two-step pruning pass,
    /// §III-B). The root is never deleted. Returns a *finalized* tree in
    /// pre-order plus, for each old index, its new index (or `None` if
    /// pruned).
    pub fn prune_and_finalize(&self) -> (Cst, Vec<Option<usize>>) {
        let n = self.vertices.len();
        let mut alive = vec![true; n];
        // Iteratively kill non-MPI leaves. A vertex is a leaf if it has no
        // live children.
        let mut changed = true;
        while changed {
            changed = false;
            for i in 0..n {
                if !alive[i] || i == self.root() {
                    continue;
                }
                let v = &self.vertices[i];
                if v.kind.is_mpi() {
                    continue;
                }
                let has_live_child = v.children.iter().any(|&c| alive[c]);
                if !has_live_child {
                    alive[i] = false;
                    changed = true;
                }
            }
        }

        // Rebuild in pre-order over live vertices.
        let mut map: Vec<Option<usize>> = vec![None; n];
        let mut out = Cst::default();
        // Pre-order walk restricted to live vertices.
        let mut stack: Vec<(usize, Option<usize>)> = vec![(self.root(), None)];
        // Use explicit recursion via stack while keeping child order: push
        // children reversed.
        while let Some((old, new_parent)) = stack.pop() {
            if !alive[old] {
                continue;
            }
            let new_idx = out.vertices.len();
            out.vertices.push(Vertex {
                kind: self.vertices[old].kind.clone(),
                children: Vec::new(),
                parent: new_parent,
            });
            if let Some(p) = new_parent {
                out.vertices[p].children.push(new_idx);
            }
            map[old] = Some(new_idx);
            for &c in self.vertices[old].children.iter().rev() {
                stack.push((c, Some(new_idx)));
            }
        }
        (out, map)
    }

    /// Verify the finalized-tree invariant: vertices stored in pre-order.
    pub fn is_preorder(&self) -> bool {
        self.pre_order() == (0..self.vertices.len()).collect::<Vec<_>>()
    }

    /// Number of MPI leaves.
    pub fn mpi_leaf_count(&self) -> usize {
        self.vertices.iter().filter(|v| v.kind.is_mpi()).count()
    }

    /// Is `anc` an ancestor of `v` (reflexive)?
    pub fn is_ancestor(&self, anc: usize, v: usize) -> bool {
        let mut cur = v;
        loop {
            if cur == anc {
                return true;
            }
            match self.vertices[cur].parent {
                Some(p) => cur = p,
                None => return false,
            }
        }
    }

    /// Depth of vertex `v` (root = 0).
    pub fn depth(&self, v: usize) -> usize {
        let mut d = 0;
        let mut cur = v;
        while let Some(p) = self.vertices[cur].parent {
            d += 1;
            cur = p;
        }
        d
    }

    /// Compact single-line rendering, e.g.
    /// `Root(Loop(BrT(Mpi:MPI_Send) BrE(Mpi:MPI_Recv)) Mpi:MPI_Reduce)`.
    pub fn to_compact_string(&self) -> String {
        fn rec(t: &Cst, v: usize, out: &mut String) {
            let vx = &t.vertices[v];
            match &vx.kind {
                VertexKind::Mpi { op, .. } => {
                    out.push_str("Mpi:");
                    out.push_str(op.name());
                }
                VertexKind::UserCall { name, .. } => {
                    out.push_str("Call:");
                    out.push_str(name);
                }
                k => out.push_str(k.tag()),
            }
            if !vx.children.is_empty() {
                out.push('(');
                for (i, &c) in vx.children.iter().enumerate() {
                    if i > 0 {
                        out.push(' ');
                    }
                    rec(t, c, out);
                }
                out.push(')');
            }
        }
        let mut s = String::new();
        rec(self, self.root(), &mut s);
        s
    }

    /// The paper stores the program CST in a compressed text file; this is
    /// our text serialization: one line per vertex in pre-order:
    /// `gid parent tag origin [extra]`.
    pub fn to_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        writeln!(out, "cst {}", self.vertices.len()).unwrap();
        for (i, v) in self.vertices.iter().enumerate() {
            let parent = v.parent.map(|p| p as i64).unwrap_or(-1);
            match &v.kind {
                VertexKind::Root => writeln!(out, "{i} {parent} Root").unwrap(),
                VertexKind::Loop { origin, pseudo } => writeln!(
                    out,
                    "{i} {parent} {} {}",
                    if *pseudo { "PseudoLoop" } else { "Loop" },
                    origin.0
                )
                .unwrap(),
                VertexKind::Branch { origin, arm } => writeln!(
                    out,
                    "{i} {parent} {} {}",
                    if *arm == Arm::Then { "BrT" } else { "BrE" },
                    origin.0
                )
                .unwrap(),
                VertexKind::Mpi { origin, op } => {
                    writeln!(out, "{i} {parent} Mpi {} {}", origin.0, op.name()).unwrap()
                }
                VertexKind::UserCall { origin, name } => {
                    writeln!(out, "{i} {parent} Call {} {}", origin.0, name).unwrap()
                }
            }
        }
        out
    }

    /// Parse the [`Cst::to_text`] format.
    pub fn from_text(s: &str) -> Result<Cst, String> {
        let mut lines = s.lines();
        let header = lines.next().ok_or("empty CST text")?;
        let n: usize = header
            .strip_prefix("cst ")
            .ok_or("missing `cst` header")?
            .trim()
            .parse()
            .map_err(|e| format!("bad vertex count: {e}"))?;
        let mut tree = Cst::default();
        for line in lines.take(n) {
            let mut it = line.split_whitespace();
            let _idx: usize = it
                .next()
                .ok_or("missing idx")?
                .parse()
                .map_err(|_| "bad idx")?;
            let parent: i64 = it
                .next()
                .ok_or("missing parent")?
                .parse()
                .map_err(|_| "bad parent")?;
            let tag = it.next().ok_or("missing tag")?;
            let kind = match tag {
                "Root" => VertexKind::Root,
                "Loop" | "PseudoLoop" => VertexKind::Loop {
                    origin: NodeId(
                        it.next()
                            .ok_or("missing origin")?
                            .parse()
                            .map_err(|_| "bad origin")?,
                    ),
                    pseudo: tag == "PseudoLoop",
                },
                "BrT" | "BrE" => VertexKind::Branch {
                    origin: NodeId(
                        it.next()
                            .ok_or("missing origin")?
                            .parse()
                            .map_err(|_| "bad origin")?,
                    ),
                    arm: if tag == "BrT" { Arm::Then } else { Arm::Else },
                },
                "Mpi" => {
                    let origin = NodeId(
                        it.next()
                            .ok_or("missing origin")?
                            .parse()
                            .map_err(|_| "bad origin")?,
                    );
                    let name = it.next().ok_or("missing op name")?;
                    let op = MpiOp::ALL
                        .iter()
                        .copied()
                        .find(|o| o.name() == name)
                        .ok_or_else(|| format!("unknown op {name}"))?;
                    VertexKind::Mpi { origin, op }
                }
                "Call" => VertexKind::UserCall {
                    origin: NodeId(
                        it.next()
                            .ok_or("missing origin")?
                            .parse()
                            .map_err(|_| "bad origin")?,
                    ),
                    name: it.next().ok_or("missing call name")?.to_owned(),
                },
                other => return Err(format!("unknown vertex tag {other}")),
            };
            let idx = tree.vertices.len();
            tree.vertices.push(Vertex {
                kind,
                children: Vec::new(),
                parent: if parent < 0 {
                    None
                } else {
                    Some(parent as usize)
                },
            });
            if parent >= 0 {
                tree.vertices[parent as usize].children.push(idx);
            }
        }
        if tree.vertices.len() != n {
            return Err(format!(
                "expected {n} vertices, parsed {}",
                tree.vertices.len()
            ));
        }
        Ok(tree)
    }
}

/// Map a MiniMPI builtin to its MPI operation (communication builtins only).
pub fn mpi_op_of_builtin(b: Builtin) -> Option<MpiOp> {
    Some(match b {
        Builtin::Send => MpiOp::Send,
        Builtin::Recv => MpiOp::Recv,
        Builtin::Isend => MpiOp::Isend,
        Builtin::Irecv => MpiOp::Irecv,
        Builtin::Wait => MpiOp::Wait,
        Builtin::Waitall => MpiOp::Waitall,
        Builtin::Waitany => MpiOp::Waitany,
        Builtin::Barrier => MpiOp::Barrier,
        Builtin::Bcast => MpiOp::Bcast,
        Builtin::Reduce => MpiOp::Reduce,
        Builtin::Allreduce => MpiOp::Allreduce,
        Builtin::Alltoall => MpiOp::Alltoall,
        Builtin::Allgather => MpiOp::Allgather,
        Builtin::Sendrecv => MpiOp::Sendrecv,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Cst {
        // Root(Loop(BrT(Send) BrE(Recv)) Reduce)
        let mut t = Cst::with_root();
        let l = t.add(
            t.root(),
            VertexKind::Loop {
                origin: NodeId(1),
                pseudo: false,
            },
        );
        let bt = t.add(
            l,
            VertexKind::Branch {
                origin: NodeId(2),
                arm: Arm::Then,
            },
        );
        t.add(
            bt,
            VertexKind::Mpi {
                origin: NodeId(3),
                op: MpiOp::Send,
            },
        );
        let be = t.add(
            l,
            VertexKind::Branch {
                origin: NodeId(2),
                arm: Arm::Else,
            },
        );
        t.add(
            be,
            VertexKind::Mpi {
                origin: NodeId(4),
                op: MpiOp::Recv,
            },
        );
        t.add(
            t.root(),
            VertexKind::Mpi {
                origin: NodeId(5),
                op: MpiOp::Reduce,
            },
        );
        t
    }

    #[test]
    fn pre_order_matches_insertion_for_sample() {
        let t = sample();
        assert!(t.is_preorder());
        assert_eq!(t.mpi_leaf_count(), 3);
    }

    #[test]
    fn compact_string_shape() {
        let t = sample();
        assert_eq!(
            t.to_compact_string(),
            "Root(Loop(BrT(Mpi:MPI_Send) BrE(Mpi:MPI_Recv)) Mpi:MPI_Reduce)"
        );
    }

    #[test]
    fn pruning_removes_empty_structures() {
        let mut t = sample();
        // Add a loop with no MPI descendants and a dangling user call.
        let dead_loop = t.add(
            t.root(),
            VertexKind::Loop {
                origin: NodeId(9),
                pseudo: false,
            },
        );
        t.add(
            dead_loop,
            VertexKind::Branch {
                origin: NodeId(10),
                arm: Arm::Then,
            },
        );
        t.add(
            t.root(),
            VertexKind::UserCall {
                origin: NodeId(11),
                name: "f".into(),
            },
        );
        let (pruned, map) = t.prune_and_finalize();
        assert!(pruned.is_preorder());
        assert_eq!(pruned.mpi_leaf_count(), 3);
        // All leaves of the pruned tree are MPI invocations.
        for v in &pruned.vertices {
            if v.children.is_empty() && !matches!(v.kind, VertexKind::Root) {
                assert!(v.kind.is_mpi());
            }
        }
        // The dead loop maps to nothing.
        assert_eq!(map[dead_loop], None);
    }

    #[test]
    fn pruning_keeps_deep_mpi() {
        let mut t = Cst::with_root();
        let l1 = t.add(
            t.root(),
            VertexKind::Loop {
                origin: NodeId(1),
                pseudo: false,
            },
        );
        let l2 = t.add(
            l1,
            VertexKind::Loop {
                origin: NodeId(2),
                pseudo: false,
            },
        );
        t.add(
            l2,
            VertexKind::Mpi {
                origin: NodeId(3),
                op: MpiOp::Barrier,
            },
        );
        let (pruned, _) = t.prune_and_finalize();
        assert_eq!(pruned.len(), 4);
    }

    #[test]
    fn prune_of_all_dead_yields_root_only() {
        let mut t = Cst::with_root();
        let l = t.add(
            t.root(),
            VertexKind::Loop {
                origin: NodeId(1),
                pseudo: false,
            },
        );
        t.add(
            l,
            VertexKind::UserCall {
                origin: NodeId(2),
                name: "g".into(),
            },
        );
        let (pruned, _) = t.prune_and_finalize();
        assert_eq!(pruned.len(), 1);
        assert!(matches!(pruned.vertex(0).kind, VertexKind::Root));
    }

    #[test]
    fn text_round_trip() {
        let t = sample();
        let txt = t.to_text();
        let back = Cst::from_text(&txt).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn from_text_rejects_garbage() {
        assert!(Cst::from_text("").is_err());
        assert!(Cst::from_text("cst 1\n0 -1 Wat").is_err());
    }

    #[test]
    fn ancestor_and_depth() {
        let t = sample();
        // vertex 1 = Loop, vertex 3 = Send leaf
        assert!(t.is_ancestor(0, 3));
        assert!(t.is_ancestor(1, 3));
        assert!(!t.is_ancestor(3, 1));
        assert_eq!(t.depth(0), 0);
        assert_eq!(t.depth(3), 3);
    }

    #[test]
    fn builtin_mapping_covers_all_comm_ops() {
        assert_eq!(mpi_op_of_builtin(Builtin::Send), Some(MpiOp::Send));
        assert_eq!(mpi_op_of_builtin(Builtin::Rank), None);
        assert_eq!(mpi_op_of_builtin(Builtin::Compute), None);
    }
}
