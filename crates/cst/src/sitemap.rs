//! The instrumentation site map — compile-time output consumed at runtime.
//!
//! The paper instruments the program with `PMPI_COMM_Structure(type, id)` /
//! `..._Exit(id)` calls carrying the CST GID of each control structure. In
//! this reproduction the "instrumented program" is the original AST plus this
//! map: because inter-procedural inlining copies a function's subtree once
//! per (transitive) call site, a single AST node can correspond to several
//! CST vertices — one per *call path*. The interpreter therefore keeps a
//! current [`PathId`] (an interned chain of call-site expression ids) and
//! looks up `(path, ast-node)` here to learn which GID to emit, exactly as
//! the inserted instrumentation calls would report.

use crate::tree::{Arm, Gid};
use cypress_minilang::ast::NodeId;
use std::collections::HashMap;

/// Interned call path (chain of call-site expression ids from `main`).
/// `PathId(0)` is the empty path (code in `main` itself).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PathId(pub u32);

pub const ROOT_PATH: PathId = PathId(0);

/// What the runtime does when it executes a user-function call site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallAction {
    /// Plain (non-recursive) call: descend into `path`.
    Inline { path: PathId },
    /// First entry into a recursive function: each invocation is one
    /// iteration of the pseudo loop `pseudo` (emit `Enter`), and the
    /// matching `Exit` fires when the *outermost* invocation returns.
    /// `pseudo` is `None` when the pseudo loop was pruned (no MPI inside).
    EnterRecursive { pseudo: Option<Gid>, path: PathId },
    /// A recursive re-invocation (the callee is already on the inline
    /// stack): emit another `Enter` of the pseudo loop — the next
    /// iteration — and continue at `path` (the callee's body path).
    BackCall { pseudo: Option<Gid>, path: PathId },
}

/// Compile-time map from `(call path, AST node)` to CST GIDs and call
/// actions. Entries exist only for vertices that survived pruning; a missing
/// entry means "emit nothing" (the structure contains no MPI).
#[derive(Debug, Clone, Default)]
pub struct SiteMap {
    /// Number of distinct paths interned.
    pub n_paths: u32,
    /// For debugging: the call-site chain of each path.
    pub path_sites: Vec<Vec<NodeId>>,
    /// `for`/`while` statement (and pseudo-loop-free structures) → loop GID.
    pub loops: HashMap<(PathId, NodeId), Gid>,
    /// `(path, if-stmt, arm)` → branch GID.
    pub branches: HashMap<(PathId, NodeId, Arm), Gid>,
    /// `(path, call-expr)` → MPI leaf GID.
    pub mpi: HashMap<(PathId, NodeId), Gid>,
    /// `(path, call-expr)` → what to do for this user-function call.
    pub actions: HashMap<(PathId, NodeId), CallAction>,
}

impl SiteMap {
    pub fn loop_gid(&self, path: PathId, stmt: NodeId) -> Option<Gid> {
        self.loops.get(&(path, stmt)).copied()
    }

    pub fn branch_gid(&self, path: PathId, stmt: NodeId, arm: Arm) -> Option<Gid> {
        self.branches.get(&(path, stmt, arm)).copied()
    }

    pub fn mpi_gid(&self, path: PathId, call_expr: NodeId) -> Option<Gid> {
        self.mpi.get(&(path, call_expr)).copied()
    }

    pub fn call_action(&self, path: PathId, call_expr: NodeId) -> Option<CallAction> {
        self.actions.get(&(path, call_expr)).copied()
    }

    /// Total number of instrumentation entries (a proxy for the size of the
    /// compile-time artifact).
    pub fn entry_count(&self) -> usize {
        self.loops.len() + self.branches.len() + self.mpi.len() + self.actions.len()
    }
}
