//! # cypress-cst — Communication Structure Tree construction (paper §III)
//!
//! The static half of CYPRESS: build each procedure's intermediate CST from
//! its control-flow graph (Algorithm 1, [`build_cfg`]; a direct-AST oracle
//! lives in [`build_ast`]), combine them over the program call graph into a
//! whole-program CST with recursion converted to pseudo loops (Algorithm 2,
//! [`interproc`]), prune non-MPI leaves, assign pre-order GIDs, and emit the
//! [`sitemap::SiteMap`] that stands in for the paper's inserted
//! `PMPI_COMM_Structure` instrumentation.
//!
//! ```
//! use cypress_minilang::{parse, check_program};
//! use cypress_cst::analyze_program;
//!
//! let prog = parse(r#"
//!     fn main() {
//!         for i in 0..10 {
//!             if rank() % 2 == 0 { send(rank() + 1, 4, 0); }
//!             else { recv(rank() - 1, 4, 0); }
//!         }
//!     }
//! "#).unwrap();
//! check_program(&prog).unwrap();
//! let info = analyze_program(&prog);
//! assert_eq!(
//!     info.cst.to_compact_string(),
//!     "Root(Loop(BrT(Mpi:MPI_Send) BrE(Mpi:MPI_Recv)))"
//! );
//! ```

pub mod build_ast;
pub mod build_cfg;
pub mod interproc;
pub mod sitemap;
pub mod tree;

pub use build_ast::build_intra_ast;
pub use build_cfg::build_intra_cfg;
pub use interproc::{analyze_program, analyze_program_with, IntraBuilder, StaticInfo};
pub use sitemap::{CallAction, PathId, SiteMap, ROOT_PATH};
pub use tree::{mpi_op_of_builtin, Arm, Cst, Gid, Vertex, VertexKind};
