//! Algorithm 2 — inter-procedural CST construction.
//!
//! Combines the per-procedure intermediate CSTs into the whole-program CST by
//! replacing every user-defined-function leaf with the callee's tree. The
//! paper iterates a work-list bottom-up over the program call graph until no
//! `UserCall` vertex remains; this implementation performs the equivalent
//! expansion as a top-down recursive copy from `main`, which visits exactly
//! the vertices the fixed point would produce, one call-path at a time —
//! and simultaneously records the [`SiteMap`] entries the runtime needs.
//!
//! Recursion (paper §III-B, Fig. 8): on the first entry into a recursive
//! function a *pseudo loop* vertex is inserted at its entry point; call sites
//! that re-enter a function already being inlined are cut (each re-invocation
//! becomes one more iteration of the pseudo loop at runtime).
//!
//! After expansion the tree is pruned (every leaf must be an MPI invocation)
//! and GIDs are assigned in pre-order.

use crate::build_ast::build_intra_ast;
use crate::build_cfg::build_intra_cfg;
use crate::sitemap::{CallAction, PathId, SiteMap, ROOT_PATH};
use crate::tree::{Arm, Cst, Gid, VertexKind};
use cypress_minilang::ast::{NodeId, Program};
use cypress_staticir::callgraph::CallGraph;
use std::collections::HashMap;

/// The complete static-analysis output for one program: the finalized
/// whole-program CST plus the runtime instrumentation map.
#[derive(Debug, Clone)]
pub struct StaticInfo {
    pub cst: Cst,
    pub sitemap: SiteMap,
}

/// Which intra-procedural builder to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntraBuilder {
    /// CFG + dominators (Algorithm 1) — the production pipeline.
    Cfg,
    /// Direct AST walk — the test oracle.
    Ast,
}

/// Run the full static analysis (intra- + inter-procedural) on a checked
/// program, using the CFG-based Algorithm 1.
pub fn analyze_program(prog: &Program) -> StaticInfo {
    analyze_program_with(prog, IntraBuilder::Cfg)
}

/// Run the full static analysis with an explicit intra-procedural builder.
pub fn analyze_program_with(prog: &Program, builder: IntraBuilder) -> StaticInfo {
    let intra: Vec<Cst> = prog
        .funcs
        .iter()
        .map(|f| match builder {
            IntraBuilder::Cfg => build_intra_cfg(f),
            IntraBuilder::Ast => build_intra_ast(f),
        })
        .collect();
    let cg = CallGraph::build(prog);

    let mut inl = Inliner {
        prog,
        intra: &intra,
        cg: &cg,
        tree: Cst::with_root(),
        raw: RawSiteMap::default(),
        active: HashMap::new(),
        stack: Vec::new(),
    };
    let main_idx = prog.func_index("main").expect("checked programs have main");
    inl.raw.path_sites.push(Vec::new()); // ROOT_PATH
    let root = inl.tree.root();
    inl.inline_func(main_idx, ROOT_PATH, root);

    let Inliner { tree, raw, .. } = inl;
    let (cst, map) = tree.prune_and_finalize();

    // Rewrite raw vertex indices into final GIDs, dropping pruned entries.
    let remap = |v: usize| -> Option<Gid> { map[v].map(|nv| Gid(nv as u32)) };
    let mut sm = SiteMap {
        n_paths: raw.path_sites.len() as u32,
        path_sites: raw.path_sites,
        ..SiteMap::default()
    };
    for ((p, n), v) in raw.loops {
        if let Some(g) = remap(v) {
            sm.loops.insert((p, n), g);
        }
    }
    for ((p, n, a), v) in raw.branches {
        if let Some(g) = remap(v) {
            sm.branches.insert((p, n, a), g);
        }
    }
    for ((p, n), v) in raw.mpi {
        if let Some(g) = remap(v) {
            sm.mpi.insert((p, n), g);
        }
    }
    for ((p, n), a) in raw.actions {
        let action = match a {
            RawAction::Inline { path } => CallAction::Inline { path },
            RawAction::EnterRecursive { pseudo, path } => CallAction::EnterRecursive {
                pseudo: remap(pseudo),
                path,
            },
            RawAction::BackCall { pseudo, path } => CallAction::BackCall {
                pseudo: remap(pseudo),
                path,
            },
        };
        sm.actions.insert((p, n), action);
    }
    StaticInfo { cst, sitemap: sm }
}

#[derive(Default)]
struct RawSiteMap {
    path_sites: Vec<Vec<NodeId>>,
    loops: HashMap<(PathId, NodeId), usize>,
    branches: HashMap<(PathId, NodeId, Arm), usize>,
    mpi: HashMap<(PathId, NodeId), usize>,
    actions: HashMap<(PathId, NodeId), RawAction>,
}

enum RawAction {
    Inline { path: PathId },
    EnterRecursive { pseudo: usize, path: PathId },
    BackCall { pseudo: usize, path: PathId },
}

struct Inliner<'a> {
    prog: &'a Program,
    intra: &'a [Cst],
    cg: &'a CallGraph,
    tree: Cst,
    raw: RawSiteMap,
    /// Functions currently being inlined → (pseudo-loop vertex, body path).
    /// Only recursive functions are registered here.
    active: HashMap<usize, (usize, PathId)>,
    /// Inline stack of function indices (for diagnostics/assertions).
    stack: Vec<usize>,
}

impl Inliner<'_> {
    fn fresh_path(&mut self, parent: PathId, site: NodeId) -> PathId {
        let mut sites = self.raw.path_sites[parent.0 as usize].clone();
        sites.push(site);
        let id = PathId(self.raw.path_sites.len() as u32);
        self.raw.path_sites.push(sites);
        id
    }

    /// Copy the body of `fidx`'s intra-procedural CST under `parent`.
    fn inline_func(&mut self, fidx: usize, path: PathId, parent: usize) {
        let intra = &self.intra[fidx];
        if intra.is_empty() {
            return;
        }
        let root_children: Vec<usize> = intra.vertex(intra.root()).children.clone();
        for c in root_children {
            self.copy_vertex(fidx, c, path, parent);
        }
    }

    fn copy_vertex(&mut self, fidx: usize, v: usize, path: PathId, parent: usize) {
        let kind = self.intra[fidx].vertex(v).kind.clone();
        match kind {
            VertexKind::Root => unreachable!("root is never copied"),
            VertexKind::Loop { origin, pseudo } => {
                let nv = self.tree.add(parent, VertexKind::Loop { origin, pseudo });
                self.raw.loops.insert((path, origin), nv);
                self.copy_children(fidx, v, path, nv);
            }
            VertexKind::Branch { origin, arm } => {
                let nv = self.tree.add(parent, VertexKind::Branch { origin, arm });
                self.raw.branches.insert((path, origin, arm), nv);
                self.copy_children(fidx, v, path, nv);
            }
            VertexKind::Mpi { origin, op } => {
                let nv = self.tree.add(parent, VertexKind::Mpi { origin, op });
                self.raw.mpi.insert((path, origin), nv);
            }
            VertexKind::UserCall { origin, name } => {
                let callee = self
                    .prog
                    .func_index(&name)
                    .expect("checked programs only call defined functions");
                if let Some(&(pseudo, body_path)) = self.active.get(&callee) {
                    // Re-entering a function on the inline stack: cut the
                    // recursion. No vertex is created — at runtime this call
                    // is the next iteration of the callee's pseudo loop.
                    self.raw.actions.insert(
                        (path, origin),
                        RawAction::BackCall {
                            pseudo,
                            path: body_path,
                        },
                    );
                } else if self.cg.recursive[callee] {
                    let new_path = self.fresh_path(path, origin);
                    let pseudo = self.tree.add(
                        parent,
                        VertexKind::Loop {
                            origin: self.prog.funcs[callee].id,
                            pseudo: true,
                        },
                    );
                    self.raw.actions.insert(
                        (path, origin),
                        RawAction::EnterRecursive {
                            pseudo,
                            path: new_path,
                        },
                    );
                    self.active.insert(callee, (pseudo, new_path));
                    self.stack.push(callee);
                    self.inline_func(callee, new_path, pseudo);
                    self.stack.pop();
                    self.active.remove(&callee);
                } else {
                    let new_path = self.fresh_path(path, origin);
                    self.raw
                        .actions
                        .insert((path, origin), RawAction::Inline { path: new_path });
                    self.stack.push(callee);
                    // Splice the callee's children in place of the call.
                    self.inline_func(callee, new_path, parent);
                    self.stack.pop();
                }
            }
        }
    }

    fn copy_children(&mut self, fidx: usize, v: usize, path: PathId, new_parent: usize) {
        let children: Vec<usize> = self.intra[fidx].vertex(v).children.clone();
        for c in children {
            self.copy_vertex(fidx, c, path, new_parent);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cypress_minilang::{check_program, parse};

    fn analyze(src: &str) -> StaticInfo {
        let p = parse(src).unwrap();
        check_program(&p).unwrap();
        analyze_program(&p)
    }

    /// The paper's running example (Fig. 5 → Fig. 7): after inlining `bar`
    /// and pruning `foo`, the final CST matches Fig. 7.
    #[test]
    fn paper_fig7_complete_cst() {
        let info = analyze(
            r#"
            fn bar() {
                for k in 0..5 { bcast(0, 4); }
            }
            fn foo() {
                let sum = 0;
                for j in 0..7 { sum = sum + j; }
            }
            fn main() {
                for i in 0..10 {
                    if rank() % 2 == 0 { send(rank() + 1, 4, 0); }
                    else { recv(rank() - 1, 4, 0); }
                    bar();
                }
                foo();
                if rank() % 2 == 0 { reduce(0, 4); }
            }
        "#,
        );
        assert_eq!(
            info.cst.to_compact_string(),
            "Root(Loop(BrT(Mpi:MPI_Send) BrE(Mpi:MPI_Recv) Loop(Mpi:MPI_Bcast)) BrT(Mpi:MPI_Reduce))"
        );
        // GIDs are dense pre-order: Fig. 7 numbering (0..=9) minus the nodes
        // that only exist pre-pruning.
        assert!(info.cst.is_preorder());
        assert_eq!(info.cst.mpi_leaf_count(), 4);
    }

    #[test]
    fn same_function_two_sites_gets_two_subtrees() {
        let info = analyze(
            r#"
            fn halo() { sendrecv(rank() + 1, 8, 0, rank() - 1, 8, 0); }
            fn main() { halo(); barrier(); halo(); }
        "#,
        );
        assert_eq!(
            info.cst.to_compact_string(),
            "Root(Mpi:MPI_Sendrecv Mpi:MPI_Barrier Mpi:MPI_Sendrecv)"
        );
        // Two distinct paths exist for the two call sites.
        assert!(info.sitemap.n_paths >= 3);
    }

    #[test]
    fn recursion_gets_pseudo_loop_fig8() {
        let info = analyze(
            r#"
            fn walk(n) {
                if n == 0 {
                } else if n < 5 {
                    bcast(0, 8);
                    reduce(0, 8);
                    walk(n - 1);
                } else {
                    bcast(0, 8);
                    walk(n - 1);
                    reduce(0, 8);
                }
            }
            fn main() { walk(7); }
        "#,
        );
        // A pseudo loop wraps walk's body; the recursive call sites create
        // no vertices (Fig. 8 conversion).
        let s = info.cst.to_compact_string();
        assert!(
            s.starts_with("Root(PseudoLoop("),
            "expected pseudo loop at entry, got {s}"
        );
        assert_eq!(info.cst.mpi_leaf_count(), 4);
        // The two recursive call sites are BackCall actions.
        let back_calls = info
            .sitemap
            .actions
            .values()
            .filter(|a| matches!(a, CallAction::BackCall { .. }))
            .count();
        assert_eq!(back_calls, 2);
        let enters = info
            .sitemap
            .actions
            .values()
            .filter(|a| {
                matches!(
                    a,
                    CallAction::EnterRecursive {
                        pseudo: Some(_),
                        ..
                    }
                )
            })
            .count();
        assert_eq!(enters, 1);
    }

    #[test]
    fn mutual_recursion_single_pseudo_loop_at_entry() {
        let info = analyze(
            r#"
            fn ping(n) { if n > 0 { send(1, 4, 0); pong(n - 1); } }
            fn pong(n) { if n > 0 { recv(0, 4, 0); ping(n - 1); } }
            fn main() { ping(6); }
        "#,
        );
        let s = info.cst.to_compact_string();
        // ping wraps in a pseudo loop; pong is inlined within (it is
        // entered fresh from ping), and pong's call back to ping is cut.
        assert_eq!(
            s,
            "Root(PseudoLoop(BrT(Mpi:MPI_Send PseudoLoop(BrT(Mpi:MPI_Recv)))))"
        );
    }

    #[test]
    fn functions_without_mpi_vanish() {
        let info = analyze(
            r#"
            fn noise() { let x = 1; for i in 0..3 { x = x * 2; } }
            fn main() { noise(); barrier(); noise(); }
        "#,
        );
        assert_eq!(info.cst.to_compact_string(), "Root(Mpi:MPI_Barrier)");
    }

    #[test]
    fn sitemap_covers_every_final_vertex() {
        let info = analyze(
            r#"
            fn halo(dir) {
                if rank() + dir >= 0 { send(rank() + dir, 64, 0); }
                if rank() - dir >= 0 { recv(rank() - dir, 64, 0); }
            }
            fn main() {
                for s in 0..20 { halo(1); halo(0 - 1); }
                allreduce(8);
            }
        "#,
        );
        // Every non-root vertex is reachable through exactly one sitemap
        // entry (loops ∪ branches ∪ mpi ∪ pseudo loops via actions).
        let mut covered = vec![false; info.cst.len()];
        covered[0] = true;
        for g in info.sitemap.loops.values() {
            covered[g.0 as usize] = true;
        }
        for g in info.sitemap.branches.values() {
            covered[g.0 as usize] = true;
        }
        for g in info.sitemap.mpi.values() {
            covered[g.0 as usize] = true;
        }
        for a in info.sitemap.actions.values() {
            if let CallAction::EnterRecursive {
                pseudo: Some(g), ..
            } = a
            {
                covered[g.0 as usize] = true;
            }
        }
        assert!(
            covered.iter().all(|&c| c),
            "uncovered vertices in {}",
            info.cst.to_compact_string()
        );
    }

    #[test]
    fn ast_and_cfg_pipelines_agree_end_to_end() {
        let src = r#"
            fn stage(n) {
                for i in 0..n {
                    if i % 2 == 0 { isendwrap(i); } else { barrier(); }
                }
            }
            fn isendwrap(i) {
                let r = isend(rank() + 1, 128, i);
                wait(r);
            }
            fn main() {
                stage(4);
                for k in 0..3 { stage(k); reduce(0, 64); }
            }
        "#;
        let p = parse(src).unwrap();
        check_program(&p).unwrap();
        let a = analyze_program_with(&p, IntraBuilder::Ast);
        let b = analyze_program_with(&p, IntraBuilder::Cfg);
        assert_eq!(a.cst.to_compact_string(), b.cst.to_compact_string());
        assert_eq!(a.sitemap.loops, b.sitemap.loops);
        assert_eq!(a.sitemap.mpi, b.sitemap.mpi);
        assert_eq!(a.sitemap.branches, b.sitemap.branches);
    }

    #[test]
    fn pruned_branch_has_no_sitemap_entry() {
        let info = analyze("fn main() { if rank() == 0 { barrier(); } else { compute(5); } }");
        // Only the then-arm survives.
        let arms: Vec<_> = info.sitemap.branches.keys().collect();
        assert_eq!(arms.len(), 1);
        assert_eq!(arms[0].2, Arm::Then);
    }
}
