//! Direct AST-structural intra-procedural CST builder.
//!
//! Because MiniMPI is fully structured, the intra-procedural CST can be read
//! straight off the AST. The production pipeline uses the CFG-based builder
//! ([`crate::build_cfg`]) — faithful to the paper's Algorithm 1, which
//! operates on the control-flow graph — and this builder serves as its
//! *test oracle*: for any program, both must produce identical trees after
//! pruning (see the equivalence property tests).

use crate::tree::{mpi_op_of_builtin, Arm, Cst, VertexKind};
use cypress_minilang::ast::{Block, Callee, Expr, ExprKind, Func, NodeId, Stmt, StmtKind};

/// Build the intra-procedural CST of one function directly from its AST.
pub fn build_intra_ast(f: &Func) -> Cst {
    let mut t = Cst::with_root();
    let root = t.root();
    build_block(&f.body, root, &mut t);
    t
}

fn build_block(b: &Block, parent: usize, t: &mut Cst) {
    build_stmts(&b.stmts, parent, t);
}

/// Does control definitely leave the enclosing function at the end of this
/// block (a `return`, or an `if` whose two arms both terminate)?
fn terminates(b: &Block) -> bool {
    for s in &b.stmts {
        match &s.kind {
            StmtKind::Return { .. } => return true,
            StmtKind::If {
                then_blk,
                else_blk: Some(e),
                ..
            } if terminates(then_blk) && terminates(e) => return true,
            _ => {}
        }
    }
    false
}

fn build_stmts(stmts: &[Stmt], parent: usize, t: &mut Cst) {
    for (i, s) in stmts.iter().enumerate() {
        match &s.kind {
            StmtKind::Let { init, .. } => add_expr_calls(init, s.id, parent, t),
            StmtKind::Assign { value, .. } => add_expr_calls(value, s.id, parent, t),
            StmtKind::Expr { expr } => add_expr_calls(expr, s.id, parent, t),
            StmtKind::Return { value } => {
                if let Some(v) = value {
                    add_expr_calls(v, s.id, parent, t);
                }
                // Statements after a `return` are dead code; the CFG builder
                // never reaches them, so the oracle skips them too.
                return;
            }
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                // The condition evaluates unconditionally, before either arm.
                add_expr_calls(cond, s.id, parent, t);
                let bt = t.add(
                    parent,
                    VertexKind::Branch {
                        origin: s.id,
                        arm: Arm::Then,
                    },
                );
                build_stmts(&then_blk.stmts, bt, t);
                // One branch vertex per CFG path: the else arm always exists
                // as a path even when the source has no `else` (pruned later
                // if empty), matching the CFG builder.
                let be = t.add(
                    parent,
                    VertexKind::Branch {
                        origin: s.id,
                        arm: Arm::Else,
                    },
                );
                if let Some(e) = else_blk {
                    build_stmts(&e.stmts, be, t);
                }
                // When exactly one arm always returns, control only reaches
                // the remainder of this block through the other arm — the CFG
                // builder nests it there (no merge point before the exit),
                // and so does the oracle.
                let t_term = terminates(then_blk);
                let e_term = else_blk.as_ref().map(terminates).unwrap_or(false);
                let rest = &stmts[i + 1..];
                match (t_term, e_term) {
                    (true, true) => return,
                    (true, false) => {
                        build_stmts(rest, be, t);
                        return;
                    }
                    (false, true) => {
                        build_stmts(rest, bt, t);
                        return;
                    }
                    (false, false) => {}
                }
            }
            StmtKind::For {
                start,
                end,
                step,
                body,
                ..
            } => {
                // Loop bounds evaluate once, before the loop.
                add_expr_calls(start, s.id, parent, t);
                add_expr_calls(end, s.id, parent, t);
                if let Some(st) = step {
                    add_expr_calls(st, s.id, parent, t);
                }
                let lv = t.add(
                    parent,
                    VertexKind::Loop {
                        origin: s.id,
                        pseudo: false,
                    },
                );
                build_stmts(&body.stmts, lv, t);
            }
            StmtKind::While { cond, body } => {
                let lv = t.add(
                    parent,
                    VertexKind::Loop {
                        origin: s.id,
                        pseudo: false,
                    },
                );
                // The condition re-evaluates each iteration: its calls belong
                // inside the loop (first children), like the CFG header block.
                add_expr_calls(cond, s.id, lv, t);
                build_stmts(&body.stmts, lv, t);
            }
        }
    }
}

/// Append leaves for every MPI and user-function call in `e`, in evaluation
/// order. Non-communication builtins (`rank`, `size`, `compute`, ...) do not
/// become vertices.
fn add_expr_calls(e: &Expr, stmt_id: NodeId, parent: usize, t: &mut Cst) {
    let _ = stmt_id;
    match &e.kind {
        ExprKind::Int(_) | ExprKind::Bool(_) | ExprKind::Var(_) => {}
        ExprKind::Unary(_, inner) => add_expr_calls(inner, stmt_id, parent, t),
        ExprKind::Binary(_, l, r) => {
            add_expr_calls(l, stmt_id, parent, t);
            add_expr_calls(r, stmt_id, parent, t);
        }
        ExprKind::Call(c) => {
            for a in &c.args {
                add_expr_calls(a, stmt_id, parent, t);
            }
            match &c.callee {
                Callee::Builtin(b) => {
                    if let Some(op) = mpi_op_of_builtin(*b) {
                        t.add(parent, VertexKind::Mpi { origin: e.id, op });
                    }
                }
                Callee::User(name) => {
                    t.add(
                        parent,
                        VertexKind::UserCall {
                            origin: e.id,
                            name: name.clone(),
                        },
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cypress_minilang::parse;

    fn intra(src: &str) -> Cst {
        let p = parse(src).unwrap();
        build_intra_ast(p.main().unwrap())
    }

    #[test]
    fn paper_figure6_shape() {
        // Fig. 5/6 of the paper: main with a loop containing send/recv
        // branches and a bar() call, then foo() and a guarded reduce.
        let src = r#"
            fn main() {
                for i in 0..10 {
                    if rank() % 2 == 0 {
                        send(rank() + 1, 4, 0);
                    } else {
                        recv(rank() - 1, 4, 0);
                    }
                    bar();
                }
                foo();
                if rank() % 2 == 0 {
                    reduce(0, 4);
                }
            }
        "#;
        let t = intra(src);
        // Pre-prune: user calls are placeholder leaves (Fig. 6) and the
        // empty else arm of the trailing `if` is still present.
        assert_eq!(
            t.to_compact_string(),
            "Root(Loop(BrT(Mpi:MPI_Send) BrE(Mpi:MPI_Recv) Call:bar) Call:foo BrT(Mpi:MPI_Reduce) BrE)"
        );
        // Intra-procedural pruning would drop the user-call placeholders —
        // they are only consumed by the inter-procedural phase.
        let (pruned, _) = t.prune_and_finalize();
        assert_eq!(
            pruned.to_compact_string(),
            "Root(Loop(BrT(Mpi:MPI_Send) BrE(Mpi:MPI_Recv)) BrT(Mpi:MPI_Reduce))"
        );
    }

    #[test]
    fn nested_loop_fig10_shape() {
        let src = r#"
            fn main() {
                for i in 0..10 {
                    bcast(0, 8);
                    for j in 0..i {
                        let a = isend(rank() + 1, 8, 0);
                        let b = irecv(rank() - 1, 8, 0);
                        waitall(a, b);
                    }
                }
            }
        "#;
        let (t, _) = intra(src).prune_and_finalize();
        assert_eq!(
            t.to_compact_string(),
            "Root(Loop(Mpi:MPI_Bcast Loop(Mpi:MPI_Isend Mpi:MPI_Irecv Mpi:MPI_Waitall)))"
        );
    }

    #[test]
    fn condition_calls_precede_arms() {
        let src = "fn main() { if check() > 0 { barrier(); } }";
        let t = intra(src);
        let root_children = &t.vertex(t.root()).children;
        assert!(matches!(
            t.vertex(root_children[0]).kind,
            VertexKind::UserCall { .. }
        ));
    }

    #[test]
    fn while_condition_calls_inside_loop() {
        let src = "fn main() { while probe() > 0 { barrier(); } }";
        let t = intra(src);
        let loop_idx = t.vertex(t.root()).children[0];
        assert!(t.vertex(loop_idx).kind.is_loop());
        let first_child = t.vertex(loop_idx).children[0];
        assert!(t.vertex(first_child).kind.is_user_call());
    }

    #[test]
    fn dead_code_after_return_excluded() {
        let src = "fn main() { return; barrier(); }";
        let t = intra(src);
        assert_eq!(t.len(), 1); // root only
    }

    #[test]
    fn compute_and_rank_do_not_create_leaves() {
        let t = intra("fn main() { compute(rank() + size()); }");
        assert_eq!(t.len(), 1);
    }
}
