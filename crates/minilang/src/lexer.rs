//! Hand-written lexer for MiniMPI.

use crate::error::{LangError, Result};
use crate::token::{Pos, Tok, Token};

/// Converts MiniMPI source text into a token stream.
///
/// Supports `//` line comments and `/* ... */` block comments (non-nesting).
pub struct Lexer<'a> {
    src: &'a [u8],
    idx: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    pub fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            idx: 0,
            line: 1,
            col: 1,
        }
    }

    fn pos(&self) -> Pos {
        Pos::new(self.line, self.col)
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.idx).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.idx + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.idx += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn skip_trivia(&mut self) -> Result<()> {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let start = self.pos();
                    self.bump();
                    self.bump();
                    loop {
                        match self.peek() {
                            Some(b'*') if self.peek2() == Some(b'/') => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            Some(_) => {
                                self.bump();
                            }
                            None => {
                                return Err(LangError::lex(start, "unterminated block comment"))
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn lex_number(&mut self) -> Result<Token> {
        let pos = self.pos();
        let mut v: i64 = 0;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                v = v
                    .checked_mul(10)
                    .and_then(|v| v.checked_add((c - b'0') as i64))
                    .ok_or_else(|| LangError::lex(pos, "integer literal overflows i64"))?;
                self.bump();
            } else {
                break;
            }
        }
        Ok(Token::new(Tok::Int(v), pos))
    }

    fn lex_ident(&mut self) -> Token {
        let pos = self.pos();
        let start = self.idx;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.bump();
            } else {
                break;
            }
        }
        let s = std::str::from_utf8(&self.src[start..self.idx]).expect("ascii ident");
        let tok = match s {
            "fn" => Tok::Fn,
            "let" => Tok::Let,
            "if" => Tok::If,
            "else" => Tok::Else,
            "for" => Tok::For,
            "in" => Tok::In,
            "while" => Tok::While,
            "return" => Tok::Return,
            "true" => Tok::True,
            "false" => Tok::False,
            "step" => Tok::Step,
            _ => Tok::Ident(s.to_owned()),
        };
        Token::new(tok, pos)
    }

    /// Produce the next token, or `Eof` at end of input.
    pub fn next_token(&mut self) -> Result<Token> {
        self.skip_trivia()?;
        let pos = self.pos();
        let c = match self.peek() {
            None => return Ok(Token::new(Tok::Eof, pos)),
            Some(c) => c,
        };
        if c.is_ascii_digit() {
            return self.lex_number();
        }
        if c.is_ascii_alphabetic() || c == b'_' {
            return Ok(self.lex_ident());
        }
        macro_rules! two {
            ($second:expr, $yes:expr, $no:expr) => {{
                self.bump();
                if self.peek() == Some($second) {
                    self.bump();
                    Tok::from($yes)
                } else {
                    Tok::from($no)
                }
            }};
        }
        let tok = match c {
            b'(' => {
                self.bump();
                Tok::LParen
            }
            b')' => {
                self.bump();
                Tok::RParen
            }
            b'{' => {
                self.bump();
                Tok::LBrace
            }
            b'}' => {
                self.bump();
                Tok::RBrace
            }
            b',' => {
                self.bump();
                Tok::Comma
            }
            b';' => {
                self.bump();
                Tok::Semi
            }
            b'+' => {
                self.bump();
                Tok::Plus
            }
            b'-' => {
                self.bump();
                Tok::Minus
            }
            b'*' => {
                self.bump();
                Tok::Star
            }
            b'/' => {
                self.bump();
                Tok::Slash
            }
            b'%' => {
                self.bump();
                Tok::Percent
            }
            b'.' => {
                self.bump();
                if self.peek() == Some(b'.') {
                    self.bump();
                    Tok::DotDot
                } else {
                    return Err(LangError::lex(pos, "expected '..'"));
                }
            }
            b'=' => two!(b'=', Tok::EqEq, Tok::Assign),
            b'!' => two!(b'=', Tok::NotEq, Tok::Not),
            b'<' => two!(b'=', Tok::Le, Tok::Lt),
            b'>' => two!(b'=', Tok::Ge, Tok::Gt),
            b'&' => {
                self.bump();
                if self.peek() == Some(b'&') {
                    self.bump();
                    Tok::AndAnd
                } else {
                    return Err(LangError::lex(pos, "expected '&&'"));
                }
            }
            b'|' => {
                self.bump();
                if self.peek() == Some(b'|') {
                    self.bump();
                    Tok::OrOr
                } else {
                    return Err(LangError::lex(pos, "expected '||'"));
                }
            }
            other => {
                return Err(LangError::lex(
                    pos,
                    format!("unexpected character {:?}", other as char),
                ))
            }
        };
        Ok(Token::new(tok, pos))
    }

    /// Lex the whole input into a vector ending with `Eof`.
    pub fn tokenize(mut self) -> Result<Vec<Token>> {
        let mut out = Vec::new();
        loop {
            let t = self.next_token()?;
            let done = t.tok == Tok::Eof;
            out.push(t);
            if done {
                return Ok(out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        Lexer::new(src)
            .tokenize()
            .unwrap()
            .into_iter()
            .map(|t| t.tok)
            .collect()
    }

    #[test]
    fn lexes_keywords_and_idents() {
        assert_eq!(
            toks("fn main for in while"),
            vec![
                Tok::Fn,
                Tok::Ident("main".into()),
                Tok::For,
                Tok::In,
                Tok::While,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(
            toks("0 42 123456789"),
            vec![Tok::Int(0), Tok::Int(42), Tok::Int(123456789), Tok::Eof]
        );
    }

    #[test]
    fn rejects_overflowing_number() {
        assert!(Lexer::new("99999999999999999999999").tokenize().is_err());
    }

    #[test]
    fn lexes_operators() {
        assert_eq!(
            toks("== != <= >= < > && || ! = .."),
            vec![
                Tok::EqEq,
                Tok::NotEq,
                Tok::Le,
                Tok::Ge,
                Tok::Lt,
                Tok::Gt,
                Tok::AndAnd,
                Tok::OrOr,
                Tok::Not,
                Tok::Assign,
                Tok::DotDot,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn skips_comments() {
        assert_eq!(
            toks("1 // comment\n 2 /* block\n comment */ 3"),
            vec![Tok::Int(1), Tok::Int(2), Tok::Int(3), Tok::Eof]
        );
    }

    #[test]
    fn unterminated_block_comment_errors() {
        assert!(Lexer::new("/* nope").tokenize().is_err());
    }

    #[test]
    fn tracks_positions() {
        let ts = Lexer::new("a\n  b").tokenize().unwrap();
        assert_eq!(ts[0].pos, Pos::new(1, 1));
        assert_eq!(ts[1].pos, Pos::new(2, 3));
    }

    #[test]
    fn rejects_stray_characters() {
        assert!(Lexer::new("a $ b").tokenize().is_err());
        assert!(Lexer::new("a & b").tokenize().is_err());
        assert!(Lexer::new("a | b").tokenize().is_err());
    }
}
