//! Pretty printer for MiniMPI ASTs.
//!
//! The printer emits valid MiniMPI source: `parse(print(ast))` yields an AST
//! equal to the original modulo node ids and positions. This is exercised by
//! the round-trip property test in `tests/roundtrip.rs`.

use crate::ast::*;
use std::fmt::Write;

/// Render a whole program as source text.
pub fn print_program(p: &Program) -> String {
    let mut out = String::new();
    for (i, f) in p.funcs.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        print_func(&mut out, f);
    }
    out
}

fn print_func(out: &mut String, f: &Func) {
    write!(out, "fn {}(", f.name).unwrap();
    for (i, p) in f.params.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(p);
    }
    out.push_str(") ");
    print_block(out, &f.body, 0);
    out.push('\n');
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn print_block(out: &mut String, b: &Block, level: usize) {
    out.push_str("{\n");
    for s in &b.stmts {
        indent(out, level + 1);
        print_stmt(out, s, level + 1);
        out.push('\n');
    }
    indent(out, level);
    out.push('}');
}

fn print_stmt(out: &mut String, s: &Stmt, level: usize) {
    match &s.kind {
        StmtKind::Let { name, init } => {
            write!(out, "let {name} = ").unwrap();
            print_expr(out, init);
            out.push(';');
        }
        StmtKind::Assign { name, value } => {
            write!(out, "{name} = ").unwrap();
            print_expr(out, value);
            out.push(';');
        }
        StmtKind::If {
            cond,
            then_blk,
            else_blk,
        } => {
            out.push_str("if ");
            print_expr(out, cond);
            out.push(' ');
            print_block(out, then_blk, level);
            if let Some(e) = else_blk {
                out.push_str(" else ");
                print_block(out, e, level);
            }
        }
        StmtKind::For {
            var,
            start,
            end,
            step,
            body,
        } => {
            write!(out, "for {var} in ").unwrap();
            print_expr(out, start);
            out.push_str("..");
            print_expr(out, end);
            if let Some(st) = step {
                out.push_str(" step ");
                print_expr(out, st);
            }
            out.push(' ');
            print_block(out, body, level);
        }
        StmtKind::While { cond, body } => {
            out.push_str("while ");
            print_expr(out, cond);
            out.push(' ');
            print_block(out, body, level);
        }
        StmtKind::Return { value } => {
            out.push_str("return");
            if let Some(v) = value {
                out.push(' ');
                print_expr(out, v);
            }
            out.push(';');
        }
        StmtKind::Expr { expr } => {
            print_expr(out, expr);
            out.push(';');
        }
    }
}

/// Render an expression, fully parenthesised (so precedence never matters).
pub fn print_expr(out: &mut String, e: &Expr) {
    match &e.kind {
        ExprKind::Int(v) => {
            // Negative literals are re-printed as unary negation of the
            // magnitude so the lexer (which has no negative literals)
            // accepts them.
            if *v < 0 {
                write!(out, "(-{})", v.unsigned_abs()).unwrap();
            } else {
                write!(out, "{v}").unwrap();
            }
        }
        ExprKind::Bool(b) => {
            write!(out, "{b}").unwrap();
        }
        ExprKind::Var(n) => out.push_str(n),
        ExprKind::Unary(op, inner) => {
            out.push('(');
            out.push_str(match op {
                UnOp::Neg => "-",
                UnOp::Not => "!",
            });
            print_expr(out, inner);
            out.push(')');
        }
        ExprKind::Binary(op, l, r) => {
            out.push('(');
            print_expr(out, l);
            write!(out, " {} ", op.symbol()).unwrap();
            print_expr(out, r);
            out.push(')');
        }
        ExprKind::Call(c) => {
            write!(out, "{}(", c.callee).unwrap();
            for (i, a) in c.args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                print_expr(out, a);
            }
            out.push(')');
        }
    }
}

/// Structural equality that ignores node ids and positions — used to compare
/// a re-parsed program with the original.
pub fn structurally_equal(a: &Program, b: &Program) -> bool {
    a.funcs.len() == b.funcs.len()
        && a.funcs.iter().zip(&b.funcs).all(|(fa, fb)| {
            fa.name == fb.name && fa.params == fb.params && blk_eq(&fa.body, &fb.body)
        })
}

fn blk_eq(a: &Block, b: &Block) -> bool {
    a.stmts.len() == b.stmts.len() && a.stmts.iter().zip(&b.stmts).all(|(x, y)| stmt_eq(x, y))
}

fn stmt_eq(a: &Stmt, b: &Stmt) -> bool {
    use StmtKind::*;
    match (&a.kind, &b.kind) {
        (Let { name: n1, init: e1 }, Let { name: n2, init: e2 }) => n1 == n2 && expr_eq(e1, e2),
        (
            Assign {
                name: n1,
                value: e1,
            },
            Assign {
                name: n2,
                value: e2,
            },
        ) => n1 == n2 && expr_eq(e1, e2),
        (
            If {
                cond: c1,
                then_blk: t1,
                else_blk: e1,
            },
            If {
                cond: c2,
                then_blk: t2,
                else_blk: e2,
            },
        ) => {
            expr_eq(c1, c2)
                && blk_eq(t1, t2)
                && match (e1, e2) {
                    (None, None) => true,
                    (Some(x), Some(y)) => blk_eq(x, y),
                    _ => false,
                }
        }
        (
            For {
                var: v1,
                start: s1,
                end: en1,
                step: st1,
                body: b1,
            },
            For {
                var: v2,
                start: s2,
                end: en2,
                step: st2,
                body: b2,
            },
        ) => {
            v1 == v2
                && expr_eq(s1, s2)
                && expr_eq(en1, en2)
                && match (st1, st2) {
                    (None, None) => true,
                    (Some(x), Some(y)) => expr_eq(x, y),
                    _ => false,
                }
                && blk_eq(b1, b2)
        }
        (While { cond: c1, body: b1 }, While { cond: c2, body: b2 }) => {
            expr_eq(c1, c2) && blk_eq(b1, b2)
        }
        (Return { value: v1 }, Return { value: v2 }) => match (v1, v2) {
            (None, None) => true,
            (Some(x), Some(y)) => expr_eq(x, y),
            _ => false,
        },
        (Expr { expr: e1 }, Expr { expr: e2 }) => expr_eq(e1, e2),
        _ => false,
    }
}

fn expr_eq(a: &Expr, b: &Expr) -> bool {
    use ExprKind::*;
    match (&a.kind, &b.kind) {
        (Int(x), Int(y)) => x == y,
        // A negative literal prints as unary negation, so accept that
        // asymmetry in either direction.
        (Int(x), Unary(UnOp::Neg, inner)) | (Unary(UnOp::Neg, inner), Int(x)) if *x < 0 => {
            matches!(inner.kind, Int(m) if m == x.unsigned_abs() as i64)
        }
        (Bool(x), Bool(y)) => x == y,
        (Var(x), Var(y)) => x == y,
        (Unary(o1, i1), Unary(o2, i2)) => o1 == o2 && expr_eq(i1, i2),
        (Binary(o1, l1, r1), Binary(o2, l2, r2)) => o1 == o2 && expr_eq(l1, l2) && expr_eq(r1, r2),
        (Call(c1), Call(c2)) => {
            c1.callee == c2.callee
                && c1.args.len() == c2.args.len()
                && c1.args.iter().zip(&c2.args).all(|(x, y)| expr_eq(x, y))
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn print_parse_round_trip() {
        let src = r#"
            fn work(n) {
                for i in 0..n step 2 {
                    if i % 2 == 0 && n > 3 { send(rank() + 1, 64, i); }
                    else { recv(rank() - 1, 64, i); }
                }
                return;
            }
            fn main() {
                let r = irecv(any_source(), 8, 0);
                work(size());
                wait(r);
                while rank() < 0 { barrier(); }
            }
        "#;
        let p1 = parse_program(src).unwrap();
        let printed = print_program(&p1);
        let p2 = parse_program(&printed).unwrap();
        assert!(structurally_equal(&p1, &p2), "printed:\n{printed}");
    }

    #[test]
    fn prints_negative_literal_parseably() {
        let mut out = String::new();
        let e = Expr {
            id: NodeId(0),
            pos: crate::token::Pos::new(1, 1),
            kind: ExprKind::Int(-5),
        };
        print_expr(&mut out, &e);
        assert_eq!(out, "(-5)");
    }
}
