//! # cypress-minilang — the MiniMPI language front end
//!
//! MiniMPI is a small C-like SPMD language standing in for "C/Fortran + MPI
//! compiled by LLVM" in this reproduction of the SC'14 CYPRESS paper. It
//! expresses exactly what CYPRESS's static analysis consumes — loops,
//! branches, user function calls (including recursion), and MPI invocations —
//! plus integer/boolean expressions over `rank()`/`size()` so control flow
//! can depend on the process rank, as in real MPI codes.
//!
//! ```
//! use cypress_minilang::{parse, check_program};
//!
//! let prog = parse(r#"
//!     fn main() {
//!         let r = rank();
//!         for k in 0..10 {
//!             if r < size() - 1 { send(r + 1, 1024, 0); }
//!             if r > 0 { recv(r - 1, 1024, 0); }
//!             compute(100);
//!         }
//!     }
//! "#).unwrap();
//! check_program(&prog).unwrap();
//! assert_eq!(prog.funcs.len(), 1);
//! ```

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod resolve;
pub mod token;

pub use ast::{
    BinOp, Block, Builtin, Call, Callee, Expr, ExprKind, Func, NodeId, Program, Stmt, StmtKind,
    Type, UnOp,
};
pub use error::{LangError, Result};
pub use parser::parse_program;
pub use pretty::{print_program, structurally_equal};
pub use resolve::{check_program, Resolved};

/// Parse MiniMPI source into an AST (no semantic checks).
pub fn parse(src: &str) -> Result<Program> {
    parser::parse_program(src)
}

/// Parse and type check MiniMPI source.
pub fn compile(src: &str) -> Result<(Program, Resolved)> {
    let prog = parse(src)?;
    let resolved = check_program(&prog)?;
    Ok((prog, resolved))
}
