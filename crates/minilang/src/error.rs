//! Error types shared by the MiniMPI front end.

use crate::token::Pos;
use std::fmt;

/// A front-end error (lexing, parsing, or semantic analysis).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LangError {
    pub phase: Phase,
    pub pos: Option<Pos>,
    pub msg: String,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    Lex,
    Parse,
    Resolve,
}

impl LangError {
    pub fn lex(pos: Pos, msg: impl Into<String>) -> Self {
        LangError {
            phase: Phase::Lex,
            pos: Some(pos),
            msg: msg.into(),
        }
    }

    pub fn parse(pos: Pos, msg: impl Into<String>) -> Self {
        LangError {
            phase: Phase::Parse,
            pos: Some(pos),
            msg: msg.into(),
        }
    }

    pub fn resolve(pos: Option<Pos>, msg: impl Into<String>) -> Self {
        LangError {
            phase: Phase::Resolve,
            pos,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let phase = match self.phase {
            Phase::Lex => "lex",
            Phase::Parse => "parse",
            Phase::Resolve => "resolve",
        };
        match self.pos {
            Some(p) => write!(f, "{phase} error at {p}: {}", self.msg),
            None => write!(f, "{phase} error: {}", self.msg),
        }
    }
}

impl std::error::Error for LangError {}

pub type Result<T> = std::result::Result<T, LangError>;
