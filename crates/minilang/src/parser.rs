//! Recursive-descent parser for MiniMPI.
//!
//! Grammar (EBNF):
//! ```text
//! program   := func*
//! func      := "fn" IDENT "(" (IDENT ("," IDENT)*)? ")" block
//! block     := "{" stmt* "}"
//! stmt      := "let" IDENT "=" expr ";"
//!            | "if" expr block ("else" (block | if-stmt))?
//!            | "for" IDENT "in" expr ".." expr ("step" expr)? block
//!            | "while" expr block
//!            | "return" expr? ";"
//!            | IDENT "=" expr ";"          (assignment)
//!            | expr ";"                    (call statement)
//! expr      := or
//! or        := and ("||" and)*
//! and       := cmp ("&&" cmp)*
//! cmp       := add (("=="|"!="|"<"|"<="|">"|">=") add)?
//! add       := mul (("+"|"-") mul)*
//! mul       := unary (("*"|"/"|"%") unary)*
//! unary     := ("-"|"!") unary | primary
//! primary   := INT | "true" | "false" | IDENT ("(" args ")")? | "(" expr ")"
//! ```

use crate::ast::*;
use crate::error::{LangError, Result};
use crate::lexer::Lexer;
use crate::token::{Pos, Tok, Token};

/// Parse a full MiniMPI program from source text.
pub fn parse_program(src: &str) -> Result<Program> {
    let tokens = Lexer::new(src).tokenize()?;
    Parser::new(tokens).program()
}

struct Parser {
    tokens: Vec<Token>,
    idx: usize,
    next_id: u32,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser {
            tokens,
            idx: 0,
            next_id: 0,
        }
    }

    fn fresh(&mut self) -> NodeId {
        let id = NodeId(self.next_id);
        self.next_id += 1;
        id
    }

    fn peek(&self) -> &Tok {
        &self.tokens[self.idx].tok
    }

    fn pos(&self) -> Pos {
        self.tokens[self.idx].pos
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.idx].clone();
        if self.idx + 1 < self.tokens.len() {
            self.idx += 1;
        }
        t
    }

    fn eat(&mut self, want: &Tok) -> Result<Token> {
        if self.peek() == want {
            Ok(self.bump())
        } else {
            Err(LangError::parse(
                self.pos(),
                format!("expected `{want}`, found `{}`", self.peek()),
            ))
        }
    }

    fn eat_ident(&mut self) -> Result<(String, Pos)> {
        let pos = self.pos();
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok((s, pos))
            }
            other => Err(LangError::parse(
                pos,
                format!("expected identifier, found `{other}`"),
            )),
        }
    }

    fn program(&mut self) -> Result<Program> {
        let mut funcs = Vec::new();
        while *self.peek() != Tok::Eof {
            funcs.push(self.func()?);
        }
        Ok(Program {
            funcs,
            node_count: self.next_id,
        })
    }

    fn func(&mut self) -> Result<Func> {
        let pos = self.pos();
        self.eat(&Tok::Fn)?;
        let id = self.fresh();
        let (name, _) = self.eat_ident()?;
        self.eat(&Tok::LParen)?;
        let mut params = Vec::new();
        if *self.peek() != Tok::RParen {
            loop {
                let (p, _) = self.eat_ident()?;
                params.push(p);
                if *self.peek() == Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.eat(&Tok::RParen)?;
        let body = self.block()?;
        Ok(Func {
            id,
            pos,
            name,
            params,
            body,
        })
    }

    fn block(&mut self) -> Result<Block> {
        self.eat(&Tok::LBrace)?;
        let mut stmts = Vec::new();
        while *self.peek() != Tok::RBrace {
            if *self.peek() == Tok::Eof {
                return Err(LangError::parse(self.pos(), "unterminated block"));
            }
            stmts.push(self.stmt()?);
        }
        self.eat(&Tok::RBrace)?;
        Ok(Block { stmts })
    }

    fn stmt(&mut self) -> Result<Stmt> {
        let pos = self.pos();
        match self.peek().clone() {
            Tok::Let => {
                self.bump();
                let id = self.fresh();
                let (name, _) = self.eat_ident()?;
                self.eat(&Tok::Assign)?;
                let init = self.expr()?;
                self.eat(&Tok::Semi)?;
                Ok(Stmt {
                    id,
                    pos,
                    kind: StmtKind::Let { name, init },
                })
            }
            Tok::If => self.if_stmt(),
            Tok::For => {
                self.bump();
                let id = self.fresh();
                let (var, _) = self.eat_ident()?;
                self.eat(&Tok::In)?;
                let start = self.expr()?;
                self.eat(&Tok::DotDot)?;
                let end = self.expr()?;
                let step = if *self.peek() == Tok::Step {
                    self.bump();
                    Some(self.expr()?)
                } else {
                    None
                };
                let body = self.block()?;
                Ok(Stmt {
                    id,
                    pos,
                    kind: StmtKind::For {
                        var,
                        start,
                        end,
                        step,
                        body,
                    },
                })
            }
            Tok::While => {
                self.bump();
                let id = self.fresh();
                let cond = self.expr()?;
                let body = self.block()?;
                Ok(Stmt {
                    id,
                    pos,
                    kind: StmtKind::While { cond, body },
                })
            }
            Tok::Return => {
                self.bump();
                let id = self.fresh();
                let value = if *self.peek() == Tok::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.eat(&Tok::Semi)?;
                Ok(Stmt {
                    id,
                    pos,
                    kind: StmtKind::Return { value },
                })
            }
            Tok::Ident(name) => {
                // Either assignment `x = e;` or a call statement `f(..);`
                if self.tokens[self.idx + 1].tok == Tok::Assign {
                    let id = self.fresh();
                    self.bump(); // ident
                    self.bump(); // '='
                    let value = self.expr()?;
                    self.eat(&Tok::Semi)?;
                    Ok(Stmt {
                        id,
                        pos,
                        kind: StmtKind::Assign { name, value },
                    })
                } else {
                    let id = self.fresh();
                    let expr = self.expr()?;
                    if !matches!(expr.kind, ExprKind::Call(_)) {
                        return Err(LangError::parse(
                            pos,
                            "only call expressions may be used as statements",
                        ));
                    }
                    self.eat(&Tok::Semi)?;
                    Ok(Stmt {
                        id,
                        pos,
                        kind: StmtKind::Expr { expr },
                    })
                }
            }
            other => Err(LangError::parse(
                pos,
                format!("expected statement, found `{other}`"),
            )),
        }
    }

    fn if_stmt(&mut self) -> Result<Stmt> {
        let pos = self.pos();
        self.eat(&Tok::If)?;
        let id = self.fresh();
        let cond = self.expr()?;
        let then_blk = self.block()?;
        let else_blk = if *self.peek() == Tok::Else {
            self.bump();
            if *self.peek() == Tok::If {
                // `else if` desugars to an else-block containing one if-stmt.
                let inner = self.if_stmt()?;
                Some(Block { stmts: vec![inner] })
            } else {
                Some(self.block()?)
            }
        } else {
            None
        };
        Ok(Stmt {
            id,
            pos,
            kind: StmtKind::If {
                cond,
                then_blk,
                else_blk,
            },
        })
    }

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.and_expr()?;
        while *self.peek() == Tok::OrOr {
            let pos = self.pos();
            self.bump();
            let rhs = self.and_expr()?;
            lhs = Expr {
                id: self.fresh(),
                pos,
                kind: ExprKind::Binary(BinOp::Or, Box::new(lhs), Box::new(rhs)),
            };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.cmp_expr()?;
        while *self.peek() == Tok::AndAnd {
            let pos = self.pos();
            self.bump();
            let rhs = self.cmp_expr()?;
            lhs = Expr {
                id: self.fresh(),
                pos,
                kind: ExprKind::Binary(BinOp::And, Box::new(lhs), Box::new(rhs)),
            };
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Tok::EqEq => BinOp::Eq,
            Tok::NotEq => BinOp::Ne,
            Tok::Lt => BinOp::Lt,
            Tok::Le => BinOp::Le,
            Tok::Gt => BinOp::Gt,
            Tok::Ge => BinOp::Ge,
            _ => return Ok(lhs),
        };
        let pos = self.pos();
        self.bump();
        let rhs = self.add_expr()?;
        Ok(Expr {
            id: self.fresh(),
            pos,
            kind: ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)),
        })
    }

    fn add_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => return Ok(lhs),
            };
            let pos = self.pos();
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr {
                id: self.fresh(),
                pos,
                kind: ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)),
            };
        }
    }

    fn mul_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                Tok::Percent => BinOp::Rem,
                _ => return Ok(lhs),
            };
            let pos = self.pos();
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = Expr {
                id: self.fresh(),
                pos,
                kind: ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)),
            };
        }
    }

    fn unary_expr(&mut self) -> Result<Expr> {
        let pos = self.pos();
        match self.peek() {
            Tok::Minus => {
                self.bump();
                let inner = self.unary_expr()?;
                Ok(Expr {
                    id: self.fresh(),
                    pos,
                    kind: ExprKind::Unary(UnOp::Neg, Box::new(inner)),
                })
            }
            Tok::Not => {
                self.bump();
                let inner = self.unary_expr()?;
                Ok(Expr {
                    id: self.fresh(),
                    pos,
                    kind: ExprKind::Unary(UnOp::Not, Box::new(inner)),
                })
            }
            _ => self.primary(),
        }
    }

    fn primary(&mut self) -> Result<Expr> {
        let pos = self.pos();
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(Expr {
                    id: self.fresh(),
                    pos,
                    kind: ExprKind::Int(v),
                })
            }
            Tok::True => {
                self.bump();
                Ok(Expr {
                    id: self.fresh(),
                    pos,
                    kind: ExprKind::Bool(true),
                })
            }
            Tok::False => {
                self.bump();
                Ok(Expr {
                    id: self.fresh(),
                    pos,
                    kind: ExprKind::Bool(false),
                })
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.eat(&Tok::RParen)?;
                Ok(e)
            }
            Tok::Ident(name) => {
                self.bump();
                if *self.peek() == Tok::LParen {
                    self.bump();
                    let mut args = Vec::new();
                    if *self.peek() != Tok::RParen {
                        loop {
                            args.push(self.expr()?);
                            if *self.peek() == Tok::Comma {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    self.eat(&Tok::RParen)?;
                    let callee = match Builtin::from_name(&name) {
                        Some(b) => Callee::Builtin(b),
                        None => Callee::User(name),
                    };
                    Ok(Expr {
                        id: self.fresh(),
                        pos,
                        kind: ExprKind::Call(Call { callee, args }),
                    })
                } else {
                    Ok(Expr {
                        id: self.fresh(),
                        pos,
                        kind: ExprKind::Var(name),
                    })
                }
            }
            other => Err(LangError::parse(
                pos,
                format!("expected expression, found `{other}`"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_jacobi_like_program() {
        let src = r#"
            fn main() {
                let r = rank();
                let s = size();
                for k in 0..10 {
                    if r < s - 1 { send(r + 1, 1024, 0); }
                    if r > 0 { recv(r - 1, 1024, 0); }
                    if r > 0 { send(r - 1, 1024, 1); }
                    if r < s - 1 { recv(r + 1, 1024, 1); }
                    compute(100);
                }
            }
        "#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.funcs.len(), 1);
        assert_eq!(p.funcs[0].name, "main");
        assert_eq!(p.funcs[0].body.stmts.len(), 3);
    }

    #[test]
    fn parses_else_if_chain() {
        let src = "fn main() { if rank() == 0 { barrier(); } else if rank() == 1 { barrier(); } else { barrier(); } }";
        let p = parse_program(src).unwrap();
        let StmtKind::If { else_blk, .. } = &p.funcs[0].body.stmts[0].kind else {
            panic!("expected if");
        };
        let inner = else_blk.as_ref().unwrap();
        assert!(matches!(inner.stmts[0].kind, StmtKind::If { .. }));
    }

    #[test]
    fn parses_for_with_step() {
        let src = "fn main() { for i in 0..10 step 2 { barrier(); } }";
        let p = parse_program(src).unwrap();
        let StmtKind::For { step, .. } = &p.funcs[0].body.stmts[0].kind else {
            panic!("expected for");
        };
        assert!(step.is_some());
    }

    #[test]
    fn precedence_binds_mul_tighter_than_add() {
        let src = "fn main() { let x = 1 + 2 * 3; }";
        let p = parse_program(src).unwrap();
        let StmtKind::Let { init, .. } = &p.funcs[0].body.stmts[0].kind else {
            panic!();
        };
        let ExprKind::Binary(BinOp::Add, _, rhs) = &init.kind else {
            panic!("expected add at top");
        };
        assert!(matches!(rhs.kind, ExprKind::Binary(BinOp::Mul, _, _)));
    }

    #[test]
    fn rejects_non_call_expression_statement() {
        assert!(parse_program("fn main() { 1 + 2; }").is_err());
    }

    #[test]
    fn rejects_unterminated_block() {
        assert!(parse_program("fn main() { barrier();").is_err());
    }

    #[test]
    fn node_ids_are_dense_and_unique() {
        let src = "fn main() { for i in 0..3 { if i % 2 == 0 { send(1, 8, 0); } } }";
        let p = parse_program(src).unwrap();
        let mut seen = std::collections::HashSet::new();
        p.funcs[0].body.visit_stmts(&mut |s| {
            assert!(seen.insert(s.id), "duplicate id {:?}", s.id);
            assert!(s.id.0 < p.node_count);
        });
    }

    #[test]
    fn error_positions_point_at_offender() {
        let err = parse_program("fn main() {\n    let x = ;\n}").unwrap_err();
        let pos = err.pos.expect("parse errors carry positions");
        assert_eq!(pos.line, 2);
        assert!(err.to_string().contains("expected expression"));
    }

    #[test]
    fn deeply_nested_expressions_parse() {
        let mut expr = String::from("1");
        for _ in 0..200 {
            expr = format!("({expr} + 1)");
        }
        let src = format!("fn main() {{ compute({expr}); }}");
        assert!(parse_program(&src).is_ok());
    }

    #[test]
    fn chained_comparisons_rejected() {
        // `a < b < c` is not in the grammar (cmp is non-associative).
        assert!(parse_program("fn main() { if 1 < 2 < 3 { barrier(); } }").is_err());
    }

    #[test]
    fn waitany_parses_as_builtin() {
        let p = parse_program(
            "fn main() { let a = isend(0, 8, 0); let b = isend(0, 8, 0); waitany(a, b); wait(b); }",
        )
        .unwrap();
        let mut found = false;
        p.funcs[0].body.visit_stmts(&mut |s| {
            if let StmtKind::Expr { expr } = &s.kind {
                if let ExprKind::Call(c) = &expr.kind {
                    if c.callee == Callee::Builtin(Builtin::Waitany) {
                        found = true;
                    }
                }
            }
        });
        assert!(found);
    }

    #[test]
    fn builtin_vs_user_callee() {
        let src = "fn helper() { barrier(); } fn main() { helper(); send(0, 1, 2); }";
        let p = parse_program(src).unwrap();
        let calls: Vec<_> = p.funcs[1]
            .body
            .stmts
            .iter()
            .map(|s| match &s.kind {
                StmtKind::Expr { expr } => match &expr.kind {
                    ExprKind::Call(c) => c.callee.clone(),
                    _ => panic!(),
                },
                _ => panic!(),
            })
            .collect();
        assert_eq!(calls[0], Callee::User("helper".into()));
        assert_eq!(calls[1], Callee::Builtin(Builtin::Send));
    }
}
