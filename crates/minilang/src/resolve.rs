//! Name resolution and type checking for MiniMPI.
//!
//! Validates a parsed [`Program`]:
//! - `main` exists and takes no parameters,
//! - every called user function exists, with matching arity,
//! - variables are defined before use (lexical scoping, `let` shadows),
//! - expressions are well typed (`if`/`while` conditions are `bool`,
//!   `for` bounds are `int`, builtin signatures respected),
//! - request handles (`req`) flow only from `isend`/`irecv` into
//!   `wait`/`waitall` (no arithmetic on requests, no `req` parameters),
//! - all `return` statements of a function agree on value-ness.

use crate::ast::*;
use crate::error::{LangError, Result};
use std::collections::HashMap;

/// Summary of a checked program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Resolved {
    /// Return type of each function, indexed like `Program::funcs`.
    pub ret_types: Vec<Type>,
}

/// Type check `prog`, returning per-function return types.
pub fn check_program(prog: &Program) -> Result<Resolved> {
    let mut by_name: HashMap<&str, usize> = HashMap::new();
    for (i, f) in prog.funcs.iter().enumerate() {
        if by_name.insert(f.name.as_str(), i).is_some() {
            return Err(LangError::resolve(
                Some(f.pos),
                format!("duplicate function `{}`", f.name),
            ));
        }
    }
    let main = prog
        .main()
        .ok_or_else(|| LangError::resolve(None, "program has no `main` function".to_string()))?;
    if !main.params.is_empty() {
        return Err(LangError::resolve(
            Some(main.pos),
            "`main` must take no parameters",
        ));
    }

    // Infer return types syntactically: a function whose body contains any
    // `return <expr>` returns int; otherwise unit. Mixing is checked below.
    let mut ret_types = vec![Type::Unit; prog.funcs.len()];
    for (i, f) in prog.funcs.iter().enumerate() {
        let mut with_value = false;
        let mut without_value = false;
        f.body.visit_stmts(&mut |s| {
            if let StmtKind::Return { value } = &s.kind {
                if value.is_some() {
                    with_value = true;
                } else {
                    without_value = true;
                }
            }
        });
        if with_value && without_value {
            return Err(LangError::resolve(
                Some(f.pos),
                format!("function `{}` mixes `return;` and `return <expr>;`", f.name),
            ));
        }
        ret_types[i] = if with_value { Type::Int } else { Type::Unit };
    }

    // `return` is only allowed as the *last* top-level statement of a
    // function body. Early returns interact badly with structural CST
    // construction (they force tail duplication in CFG region walking), and
    // everything the paper's workloads express is writable with `if`/`else`
    // instead, so the language forbids them outright.
    for f in &prog.funcs {
        let last_id = f.body.stmts.last().map(|s| s.id);
        let mut bad: Option<crate::token::Pos> = None;
        f.body.visit_stmts(&mut |s| {
            if matches!(s.kind, StmtKind::Return { .. }) && Some(s.id) != last_id && bad.is_none() {
                bad = Some(s.pos);
            }
        });
        if let Some(pos) = bad {
            return Err(LangError::resolve(
                Some(pos),
                format!(
                    "`return` must be the last statement of function `{}`",
                    f.name
                ),
            ));
        }
    }

    for f in &prog.funcs {
        let mut ck = Checker {
            prog,
            by_name: &by_name,
            ret_types: &ret_types,
            scopes: vec![HashMap::new()],
            func: f,
        };
        for p in &f.params {
            ck.declare(p, Type::Int);
        }
        ck.check_block(&f.body)?;
    }

    Ok(Resolved { ret_types })
}

/// Reject MPI-op builtins and user-function calls anywhere in `e`.
fn forbid_comm_calls(e: &Expr) -> Result<()> {
    match &e.kind {
        ExprKind::Int(_) | ExprKind::Bool(_) | ExprKind::Var(_) => Ok(()),
        ExprKind::Unary(_, i) => forbid_comm_calls(i),
        ExprKind::Binary(_, l, r) => {
            forbid_comm_calls(l)?;
            forbid_comm_calls(r)
        }
        ExprKind::Call(c) => {
            match &c.callee {
                Callee::User(name) => {
                    return Err(LangError::resolve(
                        Some(e.pos),
                        format!("call to `{name}` not allowed in a `while` condition"),
                    ))
                }
                Callee::Builtin(b) if b.is_mpi_op() => {
                    return Err(LangError::resolve(
                        Some(e.pos),
                        format!(
                            "MPI operation `{}` not allowed in a `while` condition",
                            b.name()
                        ),
                    ))
                }
                Callee::Builtin(_) => {}
            }
            for a in &c.args {
                forbid_comm_calls(a)?;
            }
            Ok(())
        }
    }
}

struct Checker<'a> {
    prog: &'a Program,
    by_name: &'a HashMap<&'a str, usize>,
    ret_types: &'a [Type],
    scopes: Vec<HashMap<String, Type>>,
    func: &'a Func,
}

impl<'a> Checker<'a> {
    fn declare(&mut self, name: &str, ty: Type) {
        self.scopes
            .last_mut()
            .expect("scope stack never empty")
            .insert(name.to_owned(), ty);
    }

    fn lookup(&self, name: &str) -> Option<Type> {
        self.scopes.iter().rev().find_map(|s| s.get(name).copied())
    }

    fn check_block(&mut self, b: &Block) -> Result<()> {
        self.scopes.push(HashMap::new());
        for s in &b.stmts {
            self.check_stmt(s)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn check_stmt(&mut self, s: &Stmt) -> Result<()> {
        match &s.kind {
            StmtKind::Let { name, init } => {
                let ty = self.check_expr(init)?;
                if ty == Type::Unit {
                    return Err(LangError::resolve(
                        Some(s.pos),
                        format!("cannot bind `{name}` to a unit-valued expression"),
                    ));
                }
                self.declare(name, ty);
                Ok(())
            }
            StmtKind::Assign { name, value } => {
                let var_ty = self.lookup(name).ok_or_else(|| {
                    LangError::resolve(Some(s.pos), format!("assignment to undefined `{name}`"))
                })?;
                let val_ty = self.check_expr(value)?;
                if var_ty != val_ty {
                    return Err(LangError::resolve(
                        Some(s.pos),
                        format!("assigning {val_ty} to `{name}: {var_ty}`"),
                    ));
                }
                Ok(())
            }
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                self.expect(cond, Type::Bool)?;
                self.check_block(then_blk)?;
                if let Some(e) = else_blk {
                    self.check_block(e)?;
                }
                Ok(())
            }
            StmtKind::For {
                var,
                start,
                end,
                step,
                body,
            } => {
                self.expect(start, Type::Int)?;
                self.expect(end, Type::Int)?;
                if let Some(st) = step {
                    self.expect(st, Type::Int)?;
                }
                self.scopes.push(HashMap::new());
                self.declare(var, Type::Int);
                for st in &body.stmts {
                    self.check_stmt(st)?;
                }
                self.scopes.pop();
                Ok(())
            }
            StmtKind::While { cond, body } => {
                self.expect(cond, Type::Bool)?;
                // A `while` condition re-evaluates once more than the body
                // runs; MPI operations (or user calls, which may contain
                // them) there would break the CST's sequence-preservation
                // guarantee, so they are rejected. Pure builtins like
                // `rank()` remain allowed.
                forbid_comm_calls(cond)?;
                self.check_block(body)
            }
            StmtKind::Return { value } => {
                let want = self.ret_types[self
                    .by_name
                    .get(self.func.name.as_str())
                    .copied()
                    .expect("current function is registered")];
                match (value, want) {
                    (Some(e), Type::Int) => self.expect(e, Type::Int),
                    (None, Type::Unit) => Ok(()),
                    // Unreachable given the syntactic inference, but keep a
                    // defensive error for future inference changes.
                    _ => Err(LangError::resolve(Some(s.pos), "return type mismatch")),
                }
            }
            StmtKind::Expr { expr } => {
                self.check_expr(expr)?;
                Ok(())
            }
        }
    }

    fn expect(&mut self, e: &Expr, want: Type) -> Result<()> {
        let got = self.check_expr(e)?;
        if got != want {
            return Err(LangError::resolve(
                Some(e.pos),
                format!("expected {want}, found {got}"),
            ));
        }
        Ok(())
    }

    fn check_expr(&mut self, e: &Expr) -> Result<Type> {
        match &e.kind {
            ExprKind::Int(_) => Ok(Type::Int),
            ExprKind::Bool(_) => Ok(Type::Bool),
            ExprKind::Var(name) => self.lookup(name).ok_or_else(|| {
                LangError::resolve(Some(e.pos), format!("undefined variable `{name}`"))
            }),
            ExprKind::Unary(op, inner) => match op {
                UnOp::Neg => {
                    self.expect(inner, Type::Int)?;
                    Ok(Type::Int)
                }
                UnOp::Not => {
                    self.expect(inner, Type::Bool)?;
                    Ok(Type::Bool)
                }
            },
            ExprKind::Binary(op, l, r) => match op {
                BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Rem => {
                    self.expect(l, Type::Int)?;
                    self.expect(r, Type::Int)?;
                    Ok(Type::Int)
                }
                BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                    self.expect(l, Type::Int)?;
                    self.expect(r, Type::Int)?;
                    Ok(Type::Bool)
                }
                BinOp::And | BinOp::Or => {
                    self.expect(l, Type::Bool)?;
                    self.expect(r, Type::Bool)?;
                    Ok(Type::Bool)
                }
            },
            ExprKind::Call(call) => self.check_call(e, call),
        }
    }

    fn check_call(&mut self, e: &Expr, call: &Call) -> Result<Type> {
        match &call.callee {
            Callee::User(name) => {
                let idx = *self.by_name.get(name.as_str()).ok_or_else(|| {
                    LangError::resolve(Some(e.pos), format!("call to undefined function `{name}`"))
                })?;
                let f = &self.prog.funcs[idx];
                if f.params.len() != call.args.len() {
                    return Err(LangError::resolve(
                        Some(e.pos),
                        format!(
                            "`{name}` expects {} argument(s), got {}",
                            f.params.len(),
                            call.args.len()
                        ),
                    ));
                }
                for a in &call.args {
                    self.expect(a, Type::Int)?;
                }
                Ok(self.ret_types[idx])
            }
            Callee::Builtin(b @ (Builtin::Waitall | Builtin::Waitany)) => {
                if call.args.is_empty() {
                    return Err(LangError::resolve(
                        Some(e.pos),
                        format!("`{}` needs at least one request", b.name()),
                    ));
                }
                for a in &call.args {
                    self.expect(a, Type::Req)?;
                }
                Ok(Type::Unit)
            }
            Callee::Builtin(b) => {
                let (params, ret) = b.signature();
                if params.len() != call.args.len() {
                    return Err(LangError::resolve(
                        Some(e.pos),
                        format!(
                            "`{}` expects {} argument(s), got {}",
                            b.name(),
                            params.len(),
                            call.args.len()
                        ),
                    ));
                }
                for (a, &want) in call.args.iter().zip(params) {
                    self.expect(a, want)?;
                }
                Ok(ret)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn check(src: &str) -> Result<Resolved> {
        check_program(&parse_program(src).unwrap())
    }

    #[test]
    fn accepts_well_typed_program() {
        check(
            "fn work(n) { for i in 0..n { send(rank() + 1, 8, 0); } }
             fn main() { work(3); let r = irecv(any_source(), 8, 0); wait(r); }",
        )
        .unwrap();
    }

    #[test]
    fn rejects_missing_main() {
        assert!(check("fn helper() { barrier(); }").is_err());
    }

    #[test]
    fn rejects_main_with_params() {
        assert!(check("fn main(x) { barrier(); }").is_err());
    }

    #[test]
    fn rejects_duplicate_function() {
        assert!(check("fn main() { } fn main() { }").is_err());
    }

    #[test]
    fn rejects_undefined_variable() {
        assert!(check("fn main() { let x = y + 1; }").is_err());
    }

    #[test]
    fn rejects_bool_condition_mismatch() {
        assert!(check("fn main() { if 1 + 2 { barrier(); } }").is_err());
        assert!(check("fn main() { while 3 { barrier(); } }").is_err());
    }

    #[test]
    fn rejects_arithmetic_on_requests() {
        assert!(check("fn main() { let r = isend(0, 8, 0); let x = r + 1; }").is_err());
    }

    #[test]
    fn rejects_wait_on_int() {
        assert!(check("fn main() { wait(3); }").is_err());
    }

    #[test]
    fn waitall_is_variadic_over_requests() {
        check("fn main() { let a = isend(0, 8, 0); let b = irecv(0, 8, 0); waitall(a, b); }")
            .unwrap();
        assert!(check("fn main() { waitall(); }").is_err());
        assert!(check("fn main() { let a = isend(0,8,0); waitall(a, 3); }").is_err());
    }

    #[test]
    fn rejects_wrong_arity_builtin() {
        assert!(check("fn main() { send(1, 2); }").is_err());
        assert!(check("fn main() { barrier(1); }").is_err());
    }

    #[test]
    fn rejects_wrong_arity_user_call() {
        assert!(check("fn f(a, b) { } fn main() { f(1); }").is_err());
    }

    #[test]
    fn rejects_call_to_undefined_function() {
        assert!(check("fn main() { nope(); }").is_err());
    }

    #[test]
    fn infers_int_return() {
        let r = check("fn half(n) { return n / 2; } fn main() { let x = half(8); compute(x); }")
            .unwrap();
        assert_eq!(r.ret_types, vec![Type::Int, Type::Unit]);
    }

    #[test]
    fn rejects_mixed_returns() {
        assert!(check("fn f(n) { if n > 0 { return 1; } return; } fn main() { f(1); }").is_err());
    }

    #[test]
    fn rejects_early_return() {
        assert!(check("fn main() { return; barrier(); }").is_err());
        assert!(check("fn f(n) { if n > 0 { return; } barrier(); } fn main() { f(1); }").is_err());
        assert!(check("fn f(n) { for i in 0..n { return; } } fn main() { f(1); }").is_err());
    }

    #[test]
    fn rejects_comm_in_while_condition() {
        assert!(check("fn p() { barrier(); return 1; } fn main() { while p() > 0 { } }").is_err());
        // (also rejected because `while barrier()` would not type check, but
        // the dedicated error fires first for int-returning wrappers)
        assert!(check("fn q() { return 1; } fn main() { while q() > 0 { barrier(); } }").is_err());
        check("fn main() { let i = 0; while i < size() { barrier(); i = i + 1; } }").unwrap();
    }

    #[test]
    fn accepts_tail_return() {
        check("fn f(n) { let r = 0; if n > 0 { r = 1; } return r; } fn main() { compute(f(2)); }")
            .unwrap();
    }

    #[test]
    fn rejects_binding_unit() {
        assert!(check("fn main() { let x = barrier(); }").is_err());
    }

    #[test]
    fn let_shadows_in_inner_scope() {
        check(
            "fn main() { let x = 1; if x > 0 { let x = true; if x { barrier(); } } compute(x); }",
        )
        .unwrap();
    }

    #[test]
    fn assignment_type_must_match() {
        assert!(check("fn main() { let x = 1; x = true; }").is_err());
    }
}
