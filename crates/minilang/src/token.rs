//! Token definitions for the MiniMPI language.
//!
//! MiniMPI is a small C-like SPMD language: it expresses exactly the program
//! features the CYPRESS static analysis consumes (loops, branches, function
//! calls, MPI invocations) plus enough integer/boolean expression power for
//! rank-dependent control flow (`if rank % 2 == 0 { ... }`).

use std::fmt;

/// A source position (1-based line and column), carried on every token and
/// propagated into AST nodes for diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Pos {
    pub line: u32,
    pub col: u32,
}

impl Pos {
    pub const fn new(line: u32, col: u32) -> Self {
        Pos { line, col }
    }
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// The kinds of tokens produced by the lexer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    // Literals and identifiers
    Int(i64),
    Ident(String),

    // Keywords
    Fn,
    Let,
    If,
    Else,
    For,
    In,
    While,
    Return,
    True,
    False,
    Step,

    // Punctuation
    LParen,
    RParen,
    LBrace,
    RBrace,
    Comma,
    Semi,
    DotDot,
    Assign,

    // Operators
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    EqEq,
    NotEq,
    Lt,
    Le,
    Gt,
    Ge,
    AndAnd,
    OrOr,
    Not,

    /// End of input sentinel.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Int(v) => write!(f, "{v}"),
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Fn => write!(f, "fn"),
            Tok::Let => write!(f, "let"),
            Tok::If => write!(f, "if"),
            Tok::Else => write!(f, "else"),
            Tok::For => write!(f, "for"),
            Tok::In => write!(f, "in"),
            Tok::While => write!(f, "while"),
            Tok::Return => write!(f, "return"),
            Tok::True => write!(f, "true"),
            Tok::False => write!(f, "false"),
            Tok::Step => write!(f, "step"),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::LBrace => write!(f, "{{"),
            Tok::RBrace => write!(f, "}}"),
            Tok::Comma => write!(f, ","),
            Tok::Semi => write!(f, ";"),
            Tok::DotDot => write!(f, ".."),
            Tok::Assign => write!(f, "="),
            Tok::Plus => write!(f, "+"),
            Tok::Minus => write!(f, "-"),
            Tok::Star => write!(f, "*"),
            Tok::Slash => write!(f, "/"),
            Tok::Percent => write!(f, "%"),
            Tok::EqEq => write!(f, "=="),
            Tok::NotEq => write!(f, "!="),
            Tok::Lt => write!(f, "<"),
            Tok::Le => write!(f, "<="),
            Tok::Gt => write!(f, ">"),
            Tok::Ge => write!(f, ">="),
            Tok::AndAnd => write!(f, "&&"),
            Tok::OrOr => write!(f, "||"),
            Tok::Not => write!(f, "!"),
            Tok::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token paired with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub tok: Tok,
    pub pos: Pos,
}

impl Token {
    pub fn new(tok: Tok, pos: Pos) -> Self {
        Token { tok, pos }
    }
}
