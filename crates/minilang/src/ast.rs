//! Abstract syntax tree for MiniMPI.
//!
//! Every statement and expression carries a [`NodeId`] unique within its
//! program. The CST builder (crate `cypress-cst`) uses these ids to map
//! control structures and MPI call sites to CST vertices, and the runtime
//! interpreter uses the same ids to emit matching structure events — this is
//! the moral equivalent of the `PMPI_COMM_Structure(type, id)` instrumentation
//! the paper inserts at compile time.

use crate::token::Pos;
use std::collections::HashMap;
use std::fmt;

/// Identifier of an AST node, unique within one [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The static types of MiniMPI values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Type {
    Int,
    Bool,
    /// An asynchronous-communication request handle (`isend`/`irecv` result).
    Req,
    Unit,
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Type::Int => "int",
            Type::Bool => "bool",
            Type::Req => "req",
            Type::Unit => "unit",
        };
        f.write_str(s)
    }
}

/// MPI and intrinsic builtins callable from MiniMPI source.
///
/// The source-level names are the lower-case forms (`send`, `irecv`, ...);
/// see [`Builtin::from_name`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Builtin {
    /// `rank()` — this process's rank in the world communicator.
    Rank,
    /// `size()` — number of processes.
    Size,
    /// `any_source()` — the wildcard source value (`MPI_ANY_SOURCE`).
    AnySource,
    /// `compute(cost)` — synthetic sequential computation of `cost` units.
    Compute,
    Send,
    Recv,
    Isend,
    Irecv,
    Wait,
    Waitall,
    /// Partial completion (`MPI_Waitany`-style, §IV-A): completes exactly
    /// one of the given requests — deterministically the first one in this
    /// implementation — identified in the trace by its posting GID.
    Waitany,
    Barrier,
    Bcast,
    Reduce,
    Allreduce,
    Alltoall,
    Allgather,
    Sendrecv,
}

impl Builtin {
    /// Resolve a source identifier to a builtin, if it names one.
    pub fn from_name(name: &str) -> Option<Builtin> {
        Some(match name {
            "rank" => Builtin::Rank,
            "size" => Builtin::Size,
            "any_source" => Builtin::AnySource,
            "compute" => Builtin::Compute,
            "send" => Builtin::Send,
            "recv" => Builtin::Recv,
            "isend" => Builtin::Isend,
            "irecv" => Builtin::Irecv,
            "wait" => Builtin::Wait,
            "waitall" => Builtin::Waitall,
            "waitany" => Builtin::Waitany,
            "barrier" => Builtin::Barrier,
            "bcast" => Builtin::Bcast,
            "reduce" => Builtin::Reduce,
            "allreduce" => Builtin::Allreduce,
            "alltoall" => Builtin::Alltoall,
            "allgather" => Builtin::Allgather,
            "sendrecv" => Builtin::Sendrecv,
            _ => return None,
        })
    }

    /// The canonical source name of the builtin.
    pub fn name(&self) -> &'static str {
        match self {
            Builtin::Rank => "rank",
            Builtin::Size => "size",
            Builtin::AnySource => "any_source",
            Builtin::Compute => "compute",
            Builtin::Send => "send",
            Builtin::Recv => "recv",
            Builtin::Isend => "isend",
            Builtin::Irecv => "irecv",
            Builtin::Wait => "wait",
            Builtin::Waitall => "waitall",
            Builtin::Waitany => "waitany",
            Builtin::Barrier => "barrier",
            Builtin::Bcast => "bcast",
            Builtin::Reduce => "reduce",
            Builtin::Allreduce => "allreduce",
            Builtin::Alltoall => "alltoall",
            Builtin::Allgather => "allgather",
            Builtin::Sendrecv => "sendrecv",
        }
    }

    /// Whether this builtin produces an MPI communication event
    /// (i.e. becomes a leaf in the CST).
    pub fn is_mpi_op(&self) -> bool {
        !matches!(
            self,
            Builtin::Rank | Builtin::Size | Builtin::AnySource | Builtin::Compute
        )
    }

    /// Parameter types; `None` in the slice means "variadic tail of Req".
    pub fn signature(&self) -> (&'static [Type], Type) {
        use Type::*;
        match self {
            Builtin::Rank | Builtin::Size | Builtin::AnySource => (&[], Int),
            Builtin::Compute => (&[Int], Unit),
            Builtin::Send | Builtin::Recv => (&[Int, Int, Int], Unit),
            Builtin::Isend | Builtin::Irecv => (&[Int, Int, Int], Req),
            Builtin::Wait => (&[Req], Unit),
            // `waitall`/`waitany` are variadic over Req; validated specially
            // in resolve.
            Builtin::Waitall | Builtin::Waitany => (&[Req], Unit),
            Builtin::Barrier => (&[], Unit),
            Builtin::Bcast | Builtin::Reduce => (&[Int, Int], Unit),
            Builtin::Allreduce | Builtin::Alltoall | Builtin::Allgather => (&[Int], Unit),
            Builtin::Sendrecv => (&[Int, Int, Int, Int, Int, Int], Unit),
        }
    }
}

/// Binary operators, by precedence class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

impl BinOp {
    pub fn symbol(&self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    Neg,
    Not,
}

/// Who a call targets.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Callee {
    /// A user-defined function, by name.
    User(String),
    /// A builtin / MPI operation.
    Builtin(Builtin),
}

impl fmt::Display for Callee {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Callee::User(s) => f.write_str(s),
            Callee::Builtin(b) => f.write_str(b.name()),
        }
    }
}

/// A call expression (user function or builtin).
#[derive(Debug, Clone, PartialEq)]
pub struct Call {
    pub callee: Callee,
    pub args: Vec<Expr>,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    pub id: NodeId,
    pub pos: Pos,
    pub kind: ExprKind,
}

#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    Int(i64),
    Bool(bool),
    Var(String),
    Unary(UnOp, Box<Expr>),
    Binary(BinOp, Box<Expr>, Box<Expr>),
    Call(Call),
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    pub id: NodeId,
    pub pos: Pos,
    pub kind: StmtKind,
}

#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// `let name = init;`
    Let { name: String, init: Expr },
    /// `name = value;`
    Assign { name: String, value: Expr },
    /// `if cond { .. } else { .. }` — `else` optional.
    If {
        cond: Expr,
        then_blk: Block,
        else_blk: Option<Block>,
    },
    /// `for var in start..end [step s] { .. }` — half-open range.
    For {
        var: String,
        start: Expr,
        end: Expr,
        step: Option<Expr>,
        body: Block,
    },
    /// `while cond { .. }`
    While { cond: Expr, body: Block },
    /// `return;` / `return expr;`
    Return { value: Option<Expr> },
    /// An expression evaluated for effect (must be a call).
    Expr { expr: Expr },
}

/// A `{ ... }` block of statements.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Block {
    pub stmts: Vec<Stmt>,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Func {
    pub id: NodeId,
    pub pos: Pos,
    pub name: String,
    pub params: Vec<String>,
    pub body: Block,
}

/// A whole MiniMPI program.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    pub funcs: Vec<Func>,
    /// Number of NodeIds allocated; ids are dense in `0..node_count`.
    pub node_count: u32,
}

impl Program {
    /// Look up a function index by name.
    pub fn func_index(&self, name: &str) -> Option<usize> {
        self.funcs.iter().position(|f| f.name == name)
    }

    /// Get a function by name.
    pub fn func(&self, name: &str) -> Option<&Func> {
        self.funcs.iter().find(|f| f.name == name)
    }

    /// The entry function, `main`.
    pub fn main(&self) -> Option<&Func> {
        self.func("main")
    }

    /// Build a map from function name to index.
    pub fn func_map(&self) -> HashMap<&str, usize> {
        self.funcs
            .iter()
            .enumerate()
            .map(|(i, f)| (f.name.as_str(), i))
            .collect()
    }
}

/// Visitor helpers used by several passes.
impl Block {
    /// Visit all statements recursively in source (pre-)order.
    pub fn visit_stmts<'a>(&'a self, f: &mut impl FnMut(&'a Stmt)) {
        for s in &self.stmts {
            f(s);
            match &s.kind {
                StmtKind::If {
                    then_blk, else_blk, ..
                } => {
                    then_blk.visit_stmts(f);
                    if let Some(e) = else_blk {
                        e.visit_stmts(f);
                    }
                }
                StmtKind::For { body, .. } | StmtKind::While { body, .. } => {
                    body.visit_stmts(f);
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_round_trips_names() {
        for b in [
            Builtin::Rank,
            Builtin::Size,
            Builtin::AnySource,
            Builtin::Compute,
            Builtin::Send,
            Builtin::Recv,
            Builtin::Isend,
            Builtin::Irecv,
            Builtin::Wait,
            Builtin::Waitall,
            Builtin::Barrier,
            Builtin::Bcast,
            Builtin::Reduce,
            Builtin::Allreduce,
            Builtin::Alltoall,
            Builtin::Allgather,
            Builtin::Sendrecv,
        ] {
            assert_eq!(Builtin::from_name(b.name()), Some(b));
        }
        assert_eq!(Builtin::from_name("frobnicate"), None);
    }

    #[test]
    fn mpi_op_classification() {
        assert!(Builtin::Send.is_mpi_op());
        assert!(Builtin::Waitall.is_mpi_op());
        assert!(!Builtin::Rank.is_mpi_op());
        assert!(!Builtin::Compute.is_mpi_op());
    }
}
