//! LESlie3d — the real-world CFD application of the paper's case study
//! (§VII-D): a 3-D finite-volume stencil with a 2×4×(P/8) decomposition.
//!
//! The skeleton reproduces the properties Fig. 20 shows: communication
//! locality (rank 0 talks only to ranks 1, 2, and 8 at P=32 — the x, y and
//! z face neighbours under strides 1, 2 and 8) and exactly two message
//! sizes, 43 KB for x/y faces and 83 KB for z faces. The computation-time
//! budget is fixed per job, so the communication-time share grows with P
//! (the speedup-saturation effect of Fig. 21).

use crate::{Scale, Workload};

/// Build the LESlie3d skeleton. `nprocs` must be a multiple of 8 (the 2×4
/// x/y plane) and at least 16.
pub fn leslie3d(nprocs: u32, scale: Scale) -> Workload {
    assert!(
        nprocs >= 16 && nprocs.is_multiple_of(8),
        "leslie3d needs a multiple of 8 processes ≥ 16, got {nprocs}"
    );
    let steps = scale.steps(150);
    // 193³ grid worth of work divided across ranks: fixed total, so per-rank
    // compute shrinks with P while per-face messages stay constant.
    let total_work: u64 = 400_000_000;
    let compute = total_work / nprocs as u64;
    let source = format!(
        r#"
// LESlie3d skeleton: 6-face halo exchange on a 2 x 4 x (P/8) grid.
// x faces: stride 1 (43 KB); y faces: stride 2 (43 KB); z: stride 8 (83 KB).
fn face(peer, bytes, tag) {{
    let a = isend(peer, bytes, tag);
    let b = irecv(peer, bytes, tag);
    waitall(a, b);
}}
fn main() {{
    let r = rank();
    let x = r % 2;
    let y = (r / 2) % 4;
    let z = r / 8;
    let nz = size() / 8;
    let xy_bytes = 43 * 1024;
    let z_bytes = 83 * 1024;
    for tstep in 0..{steps} {{
        if x < 1 {{ face(r + 1, xy_bytes, 0) ; }}
        if x > 0 {{ face(r - 1, xy_bytes, 0); }}
        if y < 3 {{ face(r + 2, xy_bytes, 1); }}
        if y > 0 {{ face(r - 2, xy_bytes, 1); }}
        if z < nz - 1 {{ face(r + 8, z_bytes, 2); }}
        if z > 0 {{ face(r - 8, z_bytes, 2); }}
        compute({compute});
        // Timestep CFL reduction.
        allreduce(8);
    }}
}}
"#
    );
    Workload::new("leslie3d", source, nprocs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cypress_trace::commmatrix::CommMatrix;

    #[test]
    fn rank0_talks_to_1_2_8_only() {
        let traces = leslie3d(32, Scale::Quick).trace().unwrap();
        let m = CommMatrix::from_traces(&traces);
        assert_eq!(m.peers_of(0), vec![1, 2, 8]);
    }

    #[test]
    fn exactly_two_message_sizes() {
        let traces = leslie3d(16, Scale::Quick).trace().unwrap();
        let mut sizes: Vec<i64> = traces
            .iter()
            .flat_map(|t| t.mpi_only())
            .filter(|r| r.op.is_send_like())
            .map(|r| r.params.count)
            .collect();
        sizes.sort_unstable();
        sizes.dedup();
        assert_eq!(sizes, vec![43 * 1024, 83 * 1024]);
    }

    #[test]
    fn per_rank_compute_shrinks_with_p() {
        let w16 = leslie3d(16, Scale::Quick);
        let w32 = leslie3d(32, Scale::Quick);
        // The generated source embeds total_work / P.
        assert!(w16.source.contains("25000000"));
        assert!(w32.source.contains("12500000"));
    }

    #[test]
    #[should_panic(expected = "multiple of 8")]
    fn rejects_bad_process_count() {
        leslie3d(12, Scale::Quick);
    }
}
