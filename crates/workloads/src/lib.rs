//! # cypress-workloads — benchmark communication skeletons in MiniMPI
//!
//! MiniMPI implementations of the communication behaviour of the paper's
//! evaluation programs: the NAS Parallel Benchmarks (BT, CG, DT, EP, FT, LU,
//! MG, SP — §VII, Fig. 15–18, Table I) and the LESlie3d CFD application
//! (§VII-D, Fig. 19–21), plus the Jacobi example of Fig. 3. Each skeleton
//! reproduces the *communication structure* that drives compression
//! behaviour — loop nesting, branch irregularity, neighbour topology, and
//! parameter variability across ranks and iterations — with iteration
//! counts scaled for laptop runs ([`Scale::Quick`]) or paper-shaped runs
//! ([`Scale::Paper`]).

pub mod jacobi;
pub mod leslie3d;
pub mod npb;

use cypress_cst::{analyze_program, StaticInfo};
use cypress_minilang::ast::Program;
use cypress_minilang::{check_program, parse};
use cypress_runtime::{trace_program, trace_program_parallel, InterpConfig, RunResult};
use cypress_trace::raw::RawTrace;

/// Iteration-count scaling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced step counts for tests and quick runs.
    Quick,
    /// Paper-shaped step counts (CLASS-D-like iteration structure).
    Paper,
}

impl Scale {
    /// Scale a paper step count.
    pub fn steps(&self, paper: u32) -> u32 {
        match self {
            Scale::Quick => (paper / 25).max(3),
            Scale::Paper => paper,
        }
    }
}

/// A ready-to-run workload: a MiniMPI program plus its process count.
#[derive(Debug, Clone)]
pub struct Workload {
    pub name: String,
    pub source: String,
    pub nprocs: u32,
}

impl Workload {
    pub fn new(name: impl Into<String>, source: String, nprocs: u32) -> Self {
        Workload {
            name: name.into(),
            source,
            nprocs,
        }
    }

    /// Parse, check, and statically analyze the program.
    pub fn compile(&self) -> (Program, StaticInfo) {
        let prog = parse(&self.source)
            .unwrap_or_else(|e| panic!("workload {}: parse error: {e}", self.name));
        check_program(&prog).unwrap_or_else(|e| panic!("workload {}: check error: {e}", self.name));
        let info = analyze_program(&prog);
        (prog, info)
    }

    /// Trace all ranks sequentially.
    pub fn trace(&self) -> RunResult<Vec<RawTrace>> {
        let (prog, info) = self.compile();
        trace_program(&prog, &info, self.nprocs, &InterpConfig::default())
    }

    /// Trace all ranks across worker threads.
    pub fn trace_parallel(&self, threads: usize) -> RunResult<Vec<RawTrace>> {
        let (prog, info) = self.compile();
        trace_program_parallel(&prog, &info, self.nprocs, &InterpConfig::default(), threads)
    }
}

/// Names of the NPB skeletons, in the paper's order.
pub const NPB_NAMES: [&str; 8] = ["bt", "cg", "dt", "ep", "ft", "lu", "mg", "sp"];

/// Look up a workload by name. Returns `None` for unknown names; panics if
/// `nprocs` is invalid for that benchmark (see each constructor).
pub fn by_name(name: &str, nprocs: u32, scale: Scale) -> Option<Workload> {
    Some(match name {
        "jacobi" => jacobi::jacobi(nprocs, scale),
        "bt" => npb::bt(nprocs, scale),
        "cg" => npb::cg(nprocs, scale),
        "dt" => npb::dt(nprocs, scale),
        "ep" => npb::ep(nprocs, scale),
        "ft" => npb::ft(nprocs, scale),
        "lu" => npb::lu(nprocs, scale),
        "mg" => npb::mg(nprocs, scale),
        "sp" => npb::sp(nprocs, scale),
        "leslie3d" => leslie3d::leslie3d(nprocs, scale),
        _ => return None,
    })
}

/// The process counts each benchmark uses in the paper's figures.
pub fn paper_procs(name: &str) -> &'static [u32] {
    match name {
        "bt" | "sp" => &[64, 121, 256, 400],
        "dt" => &[48, 64, 128, 256],
        "leslie3d" => &[32, 64, 128, 256, 512],
        _ => &[64, 128, 256, 512],
    }
}

/// Small process counts valid for each benchmark (used by tests).
pub fn quick_procs(name: &str) -> u32 {
    match name {
        "bt" | "sp" => 9,
        "dt" => 8,
        "leslie3d" => 16,
        _ => 8,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_workload_compiles_and_traces_quick() {
        for name in NPB_NAMES.iter().chain(["jacobi", "leslie3d"].iter()) {
            let w = by_name(name, quick_procs(name), Scale::Quick)
                .unwrap_or_else(|| panic!("unknown workload {name}"));
            let traces = w
                .trace()
                .unwrap_or_else(|e| panic!("workload {name} failed: {e}"));
            assert_eq!(traces.len(), w.nprocs as usize);
            let total: usize = traces.iter().map(|t| t.mpi_count()).sum();
            assert!(total > 0, "workload {name} produced no MPI events");
        }
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(by_name("nope", 4, Scale::Quick).is_none());
    }

    #[test]
    fn scale_quick_reduces_steps() {
        assert!(Scale::Quick.steps(250) < Scale::Paper.steps(250));
        assert!(Scale::Quick.steps(250) >= 3);
    }
}
