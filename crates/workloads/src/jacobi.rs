//! The paper's running example: 1-D Jacobi iteration (Fig. 3).

use crate::{Scale, Workload};

/// Jacobi iteration over a 1-D domain decomposition: each step exchanges
/// halo rows with both neighbours.
pub fn jacobi(nprocs: u32, scale: Scale) -> Workload {
    let steps = scale.steps(100);
    let n = 4096; // row of N doubles
    let source = format!(
        r#"
// Jacobi iteration (paper Fig. 3): 1-D halo exchange.
fn main() {{
    let r = rank();
    let s = size();
    for k in 0..{steps} {{
        if r < s - 1 {{ send(r + 1, {bytes}, 0); }}
        if r > 0 {{ recv(r - 1, {bytes}, 0); }}
        if r > 0 {{ send(r - 1, {bytes}, 1); }}
        if r < s - 1 {{ recv(r + 1, {bytes}, 1); }}
        compute({compute});
    }}
}}
"#,
        bytes = n * 8,
        compute = 200_000,
    );
    Workload::new("jacobi", source, nprocs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jacobi_compiles_and_traces() {
        let w = jacobi(4, Scale::Quick);
        let traces = w.trace().unwrap();
        assert_eq!(traces.len(), 4);
        assert!(traces[1].mpi_count() > traces[0].mpi_count());
    }
}
