//! NAS Parallel Benchmark communication skeletons (NPB 3.3 shapes, §VII-A).
//!
//! Each generator emits the MiniMPI program whose *communication structure*
//! mirrors the corresponding NPB code: the topology (square grids for BT/SP,
//! butterflies for CG, wavefront pipelines for LU, level-dependent tori for
//! MG), the loop nesting, and — where the paper calls it out — the
//! irregularities that stress compressors (SP's per-rank/per-iteration
//! varying sizes and tags; MG's rank-dependent active sets).

use crate::{Scale, Workload};

fn isqrt(p: u32) -> u32 {
    let mut q = 1;
    while (q + 1) * (q + 1) <= p {
        q += 1;
    }
    q
}

fn assert_square(name: &str, p: u32) -> u32 {
    let q = isqrt(p);
    assert_eq!(q * q, p, "{name} needs a square process count, got {p}");
    q
}

fn assert_pow2(name: &str, p: u32) {
    assert!(
        p.is_power_of_two(),
        "{name} needs a power-of-two process count, got {p}"
    );
}

/// BT — block-tridiagonal ADI solver on a √P×√P grid: three sweep phases
/// per step, each exchanging cell faces with cyclic row/column/diagonal
/// neighbours; residual reductions before and after the time-stepping loop.
pub fn bt(nprocs: u32, scale: Scale) -> Workload {
    let q = assert_square("bt", nprocs);
    let steps = scale.steps(200);
    // CLASS-D-shaped cell faces: (408/q+1)^2 * 5 solution doubles.
    let source = format!(
        r#"
// NPB BT skeleton: multi-partition ADI sweeps on a {q}x{q} grid.
fn phase(peer_fwd, peer_bwd, bytes, tag) {{
    let a = isend(peer_fwd, bytes, tag);
    let b = irecv(peer_bwd, bytes, tag);
    waitall(a, b);
    let c = isend(peer_bwd, bytes, tag + 1);
    let d = irecv(peer_fwd, bytes, tag + 1);
    waitall(c, d);
}}
fn main() {{
    let q = {q};
    let row = rank() / q;
    let col = rank() % q;
    let cells = 408 / q + 1;
    let bytes = cells * cells * 40;
    allreduce(40);
    for k in 0..{steps} {{
        // x sweep: cyclic east/west along the row.
        phase(row * q + (col + 1) % q, row * q + (col + q - 1) % q, bytes, 0);
        compute({compute});
        // y sweep: cyclic north/south along the column.
        phase(((row + 1) % q) * q + col, ((row + q - 1) % q) * q + col, bytes, 2);
        compute({compute});
        // z sweep: diagonal shift.
        phase(((row + 1) % q) * q + (col + 1) % q,
              ((row + q - 1) % q) * q + (col + q - 1) % q, bytes, 4);
        compute({compute});
    }}
    allreduce(40);
}}
"#,
        compute = 150_000,
    );
    Workload::new("bt", source, nprocs)
}

/// SP — scalar-pentadiagonal solver, same grid as BT but with the
/// non-uniform behaviour the paper highlights: message sizes and tags vary
/// per iteration *and* per process row, defeating parameter merging.
pub fn sp(nprocs: u32, scale: Scale) -> Workload {
    let q = assert_square("sp", nprocs);
    let steps = scale.steps(400);
    let source = format!(
        r#"
// NPB SP skeleton: ADI sweeps with per-iteration and per-row varying
// message sizes and tags (the paper's hard case for CYPRESS).
fn phase(peer_fwd, peer_bwd, bytes, tag) {{
    let a = isend(peer_fwd, bytes, tag);
    let b = irecv(peer_bwd, bytes, tag);
    waitall(a, b);
}}
fn main() {{
    let q = {q};
    let row = rank() / q;
    let col = rank() % q;
    let cells = 408 / q + 1;
    let base = cells * cells * 24;
    allreduce(40);
    for k in 0..{steps} {{
        // Sizes drift with iteration phase and process row; tags cycle.
        let bytes = base + (k % 3) * 64 + row * 16;
        let tag = k % 16;
        phase(row * q + (col + 1) % q, row * q + (col + q - 1) % q, bytes, tag);
        compute({compute});
        phase(((row + 1) % q) * q + col, ((row + q - 1) % q) * q + col,
              bytes + col * 8, tag + 16);
        compute({compute});
        phase(((row + 1) % q) * q + (col + 1) % q,
              ((row + q - 1) % q) * q + (col + q - 1) % q, bytes + 32, tag + 32);
        compute({compute});
    }}
    allreduce(40);
}}
"#,
        compute = 120_000,
    );
    Workload::new("sp", source, nprocs)
}

/// CG — conjugate gradient: butterfly exchange patterns (partner = rank XOR
/// 2^j, expressed arithmetically) for the row reductions, repeated for every
/// CG iteration.
pub fn cg(nprocs: u32, scale: Scale) -> Workload {
    assert_pow2("cg", nprocs);
    let steps = scale.steps(75);
    let source = format!(
        r#"
// NPB CG skeleton: butterfly sum-reductions + transpose exchange. As in the
// real code, the partner is computed arithmetically (rank XOR stage,
// expressed with integer ops), not with per-stage branching.
fn butterfly(bytes) {{
    let stage = 1;
    while stage < size() {{
        let bit = rank() % (2 * stage) / stage;
        let partner = rank() + stage - 2 * bit * stage;
        let a = irecv(partner, bytes, 5);
        send(partner, bytes, 5);
        wait(a);
        stage = stage * 2;
    }}
}}
fn main() {{
    let bytes = 1200000 / size();
    allreduce(8);
    for it in 0..{steps} {{
        butterfly(bytes);
        compute({compute});
        // dot-product reductions (rho, alpha) each iteration
        allreduce(8);
        allreduce(8);
    }}
    allreduce(8);
}}
"#,
        compute = 180_000,
    );
    Workload::new("cg", source, nprocs)
}

/// DT — data traffic: a feeder binary tree moving large payloads toward
/// rank 0; runs once (no time-stepping loop), so traces stay tiny.
pub fn dt(nprocs: u32, scale: Scale) -> Workload {
    assert!(nprocs >= 2, "dt needs at least 2 processes");
    let _ = scale; // DT has no iteration structure to scale.
    let source = r#"
// NPB DT skeleton: binary-tree data flow into the sink at rank 0.
fn main() {
    let r = rank();
    let s = size();
    let left = 2 * r + 1;
    let right = 2 * r + 2;
    let bytes = 524288;
    if left < s { recv(left, bytes, 0); }
    if right < s { recv(right, bytes, 0); }
    compute(500000);
    if r > 0 { send((r - 1) / 2, bytes, 0); }
    barrier();
}
"#
    .to_string();
    Workload::new("dt", source, nprocs)
}

/// EP — embarrassingly parallel: long local computation, then three small
/// terminal reductions.
pub fn ep(nprocs: u32, scale: Scale) -> Workload {
    let _ = nprocs;
    let compute = match scale {
        Scale::Quick => 1_000_000u64,
        Scale::Paper => 50_000_000,
    };
    let source = format!(
        r#"
// NPB EP skeleton: all compute, three closing reductions (sx, sy, counts).
fn main() {{
    compute({compute});
    allreduce(8);
    allreduce(8);
    allreduce(80);
}}
"#
    );
    Workload::new("ep", source, nprocs)
}

/// FT — 3-D FFT: one all-to-all transpose plus a checksum reduction per
/// iteration.
pub fn ft(nprocs: u32, scale: Scale) -> Workload {
    assert_pow2("ft", nprocs);
    let steps = scale.steps(25);
    let source = format!(
        r#"
// NPB FT skeleton: iterative transpose (alltoall) + checksum.
fn main() {{
    let per_dest = 67108864 / (size() * size()) * 16 + 1024;
    alltoall(per_dest);
    for it in 0..{steps} {{
        compute({compute});
        alltoall(per_dest);
        allreduce(16);
    }}
}}
"#,
        compute = 400_000,
    );
    Workload::new("ft", source, nprocs)
}

/// LU — SSOR with 2-D pipelined wavefronts: per time step, a lower and an
/// upper sweep each propagate `nz` planes of small messages through the
/// process grid — the benchmark with by far the most MPI events.
pub fn lu(nprocs: u32, scale: Scale) -> Workload {
    assert_pow2("lu", nprocs);
    let steps = scale.steps(150);
    let nz = match scale {
        Scale::Quick => 8,
        Scale::Paper => 64,
    };
    let source = format!(
        r#"
// NPB LU skeleton: pipelined wavefront sweeps on a px x py grid.
fn main() {{
    // Factor the power-of-two size into px >= py.
    let px = 1;
    let py = 1;
    let rem = size();
    while rem > 1 {{
        px = px * 2;
        rem = rem / 2;
        if rem > 1 {{
            py = py * 2;
            rem = rem / 2;
        }}
    }}
    let x = rank() % px;
    let y = rank() / px;
    let bytes = 2040;
    for k in 0..{steps} {{
        // Lower-triangular sweep: north/west -> south/east.
        for plane in 0..{nz} {{
            if x > 0 {{ recv(rank() - 1, bytes, 1); }}
            if y > 0 {{ recv(rank() - px, bytes, 2); }}
            compute(3000);
            if x < px - 1 {{ send(rank() + 1, bytes, 1); }}
            if y < py - 1 {{ send(rank() + px, bytes, 2); }}
        }}
        // Upper-triangular sweep: south/east -> north/west.
        for plane in 0..{nz} {{
            if x < px - 1 {{ recv(rank() + 1, bytes, 3); }}
            if y < py - 1 {{ recv(rank() + px, bytes, 4); }}
            compute(3000);
            if x > 0 {{ send(rank() - 1, bytes, 3); }}
            if y > 0 {{ send(rank() - px, bytes, 4); }}
        }}
        // Halo refresh between steps.
        let a = isend((rank() + 1) % size(), bytes * 4, 5);
        let b = irecv((rank() + size() - 1) % size(), bytes * 4, 5);
        waitall(a, b);
    }}
    allreduce(40);
}}
"#
    );
    Workload::new("lu", source, nprocs)
}

/// MG — V-cycle multigrid: at level l only ranks divisible by 2^l stay
/// active and exchange with neighbours 2^l apart, so different ranks see
/// different communication (the irregularity of Fig. 17a); message sizes
/// shrink with depth on restriction and grow back on prolongation.
pub fn mg(nprocs: u32, scale: Scale) -> Workload {
    assert_pow2("mg", nprocs);
    let cycles = scale.steps(50);
    let source = format!(
        r#"
// NPB MG skeleton: V-cycles over a stride-doubling torus.
fn exchange(stride, bytes) {{
    // Sub-ring among active ranks (rank % stride == 0).
    let next = (rank() + stride) % size();
    let prev = (rank() + size() - stride) % size();
    let a = irecv(prev, bytes, 9);
    let b = isend(next, bytes, 9);
    waitall(a, b);
}}
fn main() {{
    let levels = 0;
    let t = size();
    while t > 1 {{
        levels = levels + 1;
        t = t / 2;
    }}
    for cycle in 0..{cycles} {{
        // Descend: restrict. The smoothing sweep count varies with the
        // cycle (2..=5), which a loop-aware CST absorbs as a stride tuple
        // but defeats bottom-up sequence folding.
        let stride = 1;
        let bytes = 262144;
        for l in 0..levels {{
            if rank() % stride == 0 {{
                for sweep in 0..2 + cycle % 4 {{
                    exchange(stride, bytes);
                }}
            }}
            stride = stride * 2;
            bytes = bytes / 4 + 256;
        }}
        compute({compute});
        // Ascend: prolongate.
        for l in 0..levels {{
            stride = stride / 2;
            bytes = (bytes - 256) * 4;
            if rank() % stride == 0 {{
                exchange(stride, bytes);
            }}
        }}
        allreduce(8);
    }}
    allreduce(8);
}}
"#,
        compute = 250_000,
    );
    Workload::new("mg", source, nprocs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cypress_trace::commmatrix::CommMatrix;

    #[test]
    fn bt_requires_square() {
        let w = bt(9, Scale::Quick);
        assert!(w.trace().is_ok());
    }

    #[test]
    #[should_panic(expected = "square")]
    fn bt_rejects_non_square() {
        bt(10, Scale::Quick);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn cg_rejects_non_pow2() {
        cg(12, Scale::Quick);
    }

    #[test]
    fn sp_messages_vary_but_bt_do_not() {
        let tb = bt(9, Scale::Quick).trace().unwrap();
        let ts = sp(9, Scale::Quick).trace().unwrap();
        let sizes = |traces: &[cypress_trace::RawTrace]| {
            let mut v: Vec<i64> = traces[4]
                .mpi_records()
                .filter(|r| r.op.is_send_like())
                .map(|r| r.params.count)
                .collect();
            v.sort_unstable();
            v.dedup();
            v.len()
        };
        assert_eq!(sizes(&tb), 1, "BT sends one size");
        assert!(sizes(&ts) > 3, "SP sends many sizes");
    }

    #[test]
    fn lu_has_most_events() {
        let lu_total: usize = lu(8, Scale::Quick)
            .trace()
            .unwrap()
            .iter()
            .map(|t| t.mpi_count())
            .sum();
        for other in ["cg", "ft", "ep", "dt", "mg"] {
            let w = crate::by_name(other, 8, Scale::Quick).unwrap();
            let total: usize = w.trace().unwrap().iter().map(|t| t.mpi_count()).sum();
            assert!(
                lu_total > total,
                "LU ({lu_total}) should out-event {other} ({total})"
            );
        }
    }

    #[test]
    fn mg_ranks_have_heterogeneous_patterns() {
        let traces = mg(16, Scale::Quick).trace().unwrap();
        // Rank 0 participates at every level; an odd rank only at level 0.
        assert!(traces[0].mpi_count() > traces[1].mpi_count());
        let m = CommMatrix::from_traces(&traces);
        assert!(m.peers_of(0).len() > m.peers_of(1).len());
    }

    #[test]
    fn dt_moves_data_toward_rank0() {
        let traces = dt(8, Scale::Quick).trace().unwrap();
        let m = CommMatrix::from_traces(&traces);
        // Rank 0 receives from its children and sends nothing.
        assert!(m.peers_of(0).is_empty());
        assert!(m.get(1, 0) > 0);
        assert!(m.get(2, 0) > 0);
    }

    #[test]
    fn ep_has_minimal_communication() {
        let traces = ep(8, Scale::Quick).trace().unwrap();
        for t in &traces {
            assert_eq!(t.mpi_count(), 3);
        }
    }

    #[test]
    fn ft_is_all_to_all_only() {
        let traces = ft(8, Scale::Quick).trace().unwrap();
        assert!(traces[0].mpi_records().all(|r| r.op.is_collective()));
    }

    #[test]
    fn bt_is_communication_symmetric() {
        let traces = bt(9, Scale::Quick).trace().unwrap();
        let counts: Vec<usize> = traces.iter().map(|t| t.mpi_count()).collect();
        assert!(counts.iter().all(|&c| c == counts[0]), "{counts:?}");
    }

    #[test]
    fn cg_butterfly_partner_count_is_log2() {
        let traces = cg(8, Scale::Quick).trace().unwrap();
        let m = CommMatrix::from_traces(&traces);
        // Each rank exchanges with log2(8)=3 butterfly partners.
        assert_eq!(m.peers_of(0).len(), 3);
    }
}
