//! Program call graph (PCG) construction and recursion detection.
//!
//! The inter-procedural phase of CYPRESS (paper §III-B, Algorithm 2) combines
//! per-procedure CSTs bottom-up over the program call graph. This module
//! builds that graph from the AST, computes a post-order over it, and finds
//! strongly connected components (Tarjan) so recursive functions — which the
//! paper converts to pseudo-loops — can be identified.

use cypress_minilang::ast::{Callee, ExprKind, Program, Stmt, StmtKind};
use std::collections::HashSet;

/// The program call graph: node = function index into `Program::funcs`.
#[derive(Debug, Clone)]
pub struct CallGraph {
    /// `callees[f]` = functions called (directly) by `f`, deduplicated,
    /// in first-call order.
    pub callees: Vec<Vec<usize>>,
    /// `recursive[f]` = `f` participates in a call cycle (including self).
    pub recursive: Vec<bool>,
}

impl CallGraph {
    /// Build the PCG for `prog`. Calls to undefined functions are ignored
    /// (the resolver rejects them before this pass runs).
    pub fn build(prog: &Program) -> Self {
        let by_name = prog.func_map();
        let mut callees: Vec<Vec<usize>> = vec![Vec::new(); prog.funcs.len()];
        for (i, f) in prog.funcs.iter().enumerate() {
            let mut seen = HashSet::new();
            f.body.visit_stmts(&mut |s: &Stmt| {
                collect_user_calls(s, &by_name, &mut |idx| {
                    if seen.insert(idx) {
                        callees[i].push(idx);
                    }
                });
            });
        }
        let recursive = find_recursive(&callees);
        CallGraph { callees, recursive }
    }

    /// Post-order over the PCG from `main` (callees before callers), the
    /// order Algorithm 2 iterates to minimise inlining rounds. Functions
    /// unreachable from `main` are appended afterwards in index order.
    pub fn post_order_from_main(&self, prog: &Program) -> Vec<usize> {
        let mut out = Vec::new();
        let mut visited = vec![false; self.callees.len()];
        if let Some(main) = prog.func_index("main") {
            self.post_order(main, &mut visited, &mut out);
        }
        for i in 0..self.callees.len() {
            if !visited[i] {
                self.post_order(i, &mut visited, &mut out);
            }
        }
        out
    }

    fn post_order(&self, f: usize, visited: &mut [bool], out: &mut Vec<usize>) {
        if visited[f] {
            return;
        }
        visited[f] = true;
        for &c in &self.callees[f] {
            self.post_order(c, visited, out);
        }
        out.push(f);
    }
}

fn collect_user_calls(
    s: &Stmt,
    by_name: &std::collections::HashMap<&str, usize>,
    f: &mut impl FnMut(usize),
) {
    let mut walk_expr = |e: &cypress_minilang::ast::Expr| {
        let mut stack = vec![e];
        while let Some(e) = stack.pop() {
            match &e.kind {
                ExprKind::Unary(_, i) => stack.push(i),
                ExprKind::Binary(_, l, r) => {
                    stack.push(l);
                    stack.push(r);
                }
                ExprKind::Call(c) => {
                    if let Callee::User(name) = &c.callee {
                        if let Some(&idx) = by_name.get(name.as_str()) {
                            f(idx);
                        }
                    }
                    for a in &c.args {
                        stack.push(a);
                    }
                }
                _ => {}
            }
        }
    };
    match &s.kind {
        StmtKind::Let { init, .. } => walk_expr(init),
        StmtKind::Assign { value, .. } => walk_expr(value),
        StmtKind::If { cond, .. } => walk_expr(cond),
        StmtKind::For {
            start, end, step, ..
        } => {
            walk_expr(start);
            walk_expr(end);
            if let Some(st) = step {
                walk_expr(st);
            }
        }
        StmtKind::While { cond, .. } => walk_expr(cond),
        StmtKind::Return { value } => {
            if let Some(v) = value {
                walk_expr(v);
            }
        }
        StmtKind::Expr { expr } => walk_expr(expr),
    }
}

/// Tarjan SCC; a function is recursive if its SCC has size > 1 or it calls
/// itself directly.
fn find_recursive(callees: &[Vec<usize>]) -> Vec<bool> {
    let n = callees.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut recursive = vec![false; n];

    // Iterative Tarjan to avoid stack overflow on deep call chains.
    enum Frame {
        Enter(usize),
        Continue(usize, usize), // (node, next child position)
    }
    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        let mut frames = vec![Frame::Enter(start)];
        while let Some(frame) = frames.pop() {
            match frame {
                Frame::Enter(v) => {
                    index[v] = next_index;
                    low[v] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v] = true;
                    frames.push(Frame::Continue(v, 0));
                }
                Frame::Continue(v, mut ci) => {
                    let mut descended = false;
                    while ci < callees[v].len() {
                        let w = callees[v][ci];
                        ci += 1;
                        if index[w] == usize::MAX {
                            frames.push(Frame::Continue(v, ci));
                            frames.push(Frame::Enter(w));
                            descended = true;
                            break;
                        } else if on_stack[w] {
                            low[v] = low[v].min(index[w]);
                        }
                    }
                    if descended {
                        continue;
                    }
                    if low[v] == index[v] {
                        // Root of an SCC: pop it.
                        let mut comp = Vec::new();
                        loop {
                            let w = stack.pop().expect("scc stack non-empty");
                            on_stack[w] = false;
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        if comp.len() > 1 {
                            for w in comp {
                                recursive[w] = true;
                            }
                        } else {
                            let w = comp[0];
                            if callees[w].contains(&w) {
                                recursive[w] = true;
                            }
                        }
                    }
                    // Propagate lowlink to the parent Continue frame.
                    if let Some(Frame::Continue(p, _)) = frames.last() {
                        let p = *p;
                        low[p] = low[p].min(low[v]);
                    }
                }
            }
        }
    }
    recursive
}

#[cfg(test)]
mod tests {
    use super::*;
    use cypress_minilang::parse;

    fn graph(src: &str) -> (Program, CallGraph) {
        let p = parse(src).unwrap();
        let g = CallGraph::build(&p);
        (p, g)
    }

    #[test]
    fn simple_chain() {
        let (p, g) = graph(
            "fn leaf() { barrier(); }
             fn mid() { leaf(); }
             fn main() { mid(); }",
        );
        let main = p.func_index("main").unwrap();
        let mid = p.func_index("mid").unwrap();
        let leaf = p.func_index("leaf").unwrap();
        assert_eq!(g.callees[main], vec![mid]);
        assert_eq!(g.callees[mid], vec![leaf]);
        assert!(g.callees[leaf].is_empty());
        assert_eq!(g.recursive, vec![false, false, false]);
    }

    #[test]
    fn post_order_puts_callees_first() {
        let (p, g) = graph(
            "fn a() { barrier(); }
             fn b() { a(); }
             fn main() { b(); a(); }",
        );
        let order = g.post_order_from_main(&p);
        let pos = |name: &str| order.iter().position(|&i| p.funcs[i].name == name).unwrap();
        assert!(pos("a") < pos("b"));
        assert!(pos("b") < pos("main"));
    }

    #[test]
    fn direct_recursion_detected() {
        let (p, g) = graph("fn f(n) { if n > 0 { f(n - 1); } } fn main() { f(3); }");
        assert!(g.recursive[p.func_index("f").unwrap()]);
        assert!(!g.recursive[p.func_index("main").unwrap()]);
    }

    #[test]
    fn mutual_recursion_detected() {
        let (p, g) = graph(
            "fn even(n) { if n > 0 { odd(n - 1); } }
             fn odd(n) { if n > 0 { even(n - 1); } }
             fn main() { even(4); }",
        );
        assert!(g.recursive[p.func_index("even").unwrap()]);
        assert!(g.recursive[p.func_index("odd").unwrap()]);
    }

    #[test]
    fn calls_inside_expressions_counted() {
        let (p, g) = graph(
            "fn f() { return 1; }
             fn main() { let x = f() + f(); compute(x); }",
        );
        assert_eq!(
            g.callees[p.func_index("main").unwrap()],
            vec![p.func_index("f").unwrap()]
        );
    }

    #[test]
    fn functions_unreachable_from_main_still_ordered() {
        let (p, g) = graph(
            "fn orphan() { barrier(); }
             fn main() { barrier(); }",
        );
        let order = g.post_order_from_main(&p);
        assert_eq!(order.len(), p.funcs.len());
    }
}
