//! Control-flow graph lowering for MiniMPI functions.
//!
//! The CYPRESS static module (paper §III-A) operates "over the control flow
//! graph", identifying loops with a classic dominator-based algorithm. This
//! module lowers a structured MiniMPI function into a basic-block CFG —
//! conditionals become diamond shapes, `for`/`while` loops become
//! header/body/latch/exit shapes with an explicit back edge — so that the
//! loop/branch discovery downstream is performed on graph structure, exactly
//! as an LLVM-IR pass would, rather than read off the AST.
//!
//! Every conditional terminator and every call site carries the originating
//! AST [`NodeId`], which later lets the CST builder attach vertices to
//! source constructs (and lets tests cross-validate the CFG-derived CST
//! against a direct AST oracle).

use cypress_minilang::ast::{Block, Callee, Expr, ExprKind, Func, NodeId, Stmt, StmtKind};
use std::fmt;

/// Identifier of a basic block within one [`Cfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// A call occurrence inside a basic block, in evaluation order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Invocation {
    /// The `Expr` node id of the call expression itself.
    pub expr_id: NodeId,
    /// The enclosing statement's node id.
    pub stmt_id: NodeId,
    /// Callee (user function or builtin).
    pub callee: Callee,
}

/// What kind of source construct a conditional terminator encodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CondKind {
    /// An `if`/`else` branch.
    If,
    /// A `for` or `while` loop header test.
    Loop,
}

/// Block terminators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Terminator {
    /// Unconditional jump.
    Goto(BlockId),
    /// Two-way conditional jump. `origin` is the AST id of the `if`, `for`,
    /// or `while` statement that produced the test.
    Cond {
        origin: NodeId,
        kind: CondKind,
        then_bb: BlockId,
        else_bb: BlockId,
    },
    /// Function return (explicit or fall-off-the-end).
    Return,
}

/// A basic block: straight-line call occurrences plus one terminator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlock {
    pub invocations: Vec<Invocation>,
    pub term: Terminator,
}

/// A per-function control-flow graph.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Name of the source function.
    pub func: String,
    pub blocks: Vec<BasicBlock>,
    pub entry: BlockId,
}

impl Cfg {
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.0 as usize]
    }

    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Successor block ids of `id`.
    pub fn successors(&self, id: BlockId) -> Vec<BlockId> {
        match &self.block(id).term {
            Terminator::Goto(t) => vec![*t],
            Terminator::Cond {
                then_bb, else_bb, ..
            } => vec![*then_bb, *else_bb],
            Terminator::Return => vec![],
        }
    }

    /// Predecessor lists for all blocks.
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (i, _) in self.blocks.iter().enumerate() {
            let id = BlockId(i as u32);
            for s in self.successors(id) {
                preds[s.0 as usize].push(id);
            }
        }
        preds
    }

    /// Reverse post-order starting from the entry block. Unreachable blocks
    /// are excluded.
    pub fn reverse_post_order(&self) -> Vec<BlockId> {
        let mut visited = vec![false; self.blocks.len()];
        let mut post = Vec::with_capacity(self.blocks.len());
        // Iterative DFS with explicit "exit" markers to produce post-order.
        let mut stack = vec![(self.entry, false)];
        while let Some((id, expanded)) = stack.pop() {
            if expanded {
                post.push(id);
                continue;
            }
            if visited[id.0 as usize] {
                continue;
            }
            visited[id.0 as usize] = true;
            stack.push((id, true));
            // Push successors in reverse so then-branch is visited first.
            for s in self.successors(id).into_iter().rev() {
                if !visited[s.0 as usize] {
                    stack.push((s, false));
                }
            }
        }
        post.reverse();
        post
    }

    /// Render the CFG in a compact text form (for tests and debugging).
    pub fn dump(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        writeln!(out, "cfg {} entry={}", self.func, self.entry).unwrap();
        for (i, b) in self.blocks.iter().enumerate() {
            write!(out, "  bb{i}:").unwrap();
            for inv in &b.invocations {
                write!(out, " {}", inv.callee).unwrap();
            }
            match &b.term {
                Terminator::Goto(t) => writeln!(out, " -> {t}").unwrap(),
                Terminator::Cond {
                    kind,
                    then_bb,
                    else_bb,
                    ..
                } => writeln!(
                    out,
                    " {}({then_bb}, {else_bb})",
                    if *kind == CondKind::Loop {
                        "loop"
                    } else {
                        "if"
                    }
                )
                .unwrap(),
                Terminator::Return => writeln!(out, " ret").unwrap(),
            }
        }
        out
    }
}

/// Collect call occurrences in an expression, in evaluation order
/// (arguments before the call itself, left-to-right).
pub fn collect_calls(e: &Expr, stmt_id: NodeId, out: &mut Vec<Invocation>) {
    match &e.kind {
        ExprKind::Int(_) | ExprKind::Bool(_) | ExprKind::Var(_) => {}
        ExprKind::Unary(_, inner) => collect_calls(inner, stmt_id, out),
        ExprKind::Binary(_, l, r) => {
            collect_calls(l, stmt_id, out);
            collect_calls(r, stmt_id, out);
        }
        ExprKind::Call(c) => {
            for a in &c.args {
                collect_calls(a, stmt_id, out);
            }
            out.push(Invocation {
                expr_id: e.id,
                stmt_id,
                callee: c.callee.clone(),
            });
        }
    }
}

/// Lower one function to a CFG.
pub fn lower_function(f: &Func) -> Cfg {
    let mut b = Builder {
        blocks: Vec::new(),
        func: f.name.clone(),
    };
    let entry = b.new_block();
    let last = b.lower_block(&f.body, entry);
    b.blocks[last.0 as usize].term = Terminator::Return;
    Cfg {
        func: b.func,
        blocks: b.blocks,
        entry,
    }
}

struct Builder {
    blocks: Vec<BasicBlock>,
    func: String,
}

impl Builder {
    fn new_block(&mut self) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(BasicBlock {
            invocations: Vec::new(),
            // Placeholder; overwritten when the block is sealed.
            term: Terminator::Return,
        });
        id
    }

    fn push_calls_from_expr(&mut self, cur: BlockId, e: &Expr, stmt_id: NodeId) {
        let mut calls = Vec::new();
        collect_calls(e, stmt_id, &mut calls);
        self.blocks[cur.0 as usize].invocations.extend(calls);
    }

    /// Lower `blk` starting in `cur`; returns the block where control
    /// continues afterwards.
    fn lower_block(&mut self, blk: &Block, mut cur: BlockId) -> BlockId {
        for s in &blk.stmts {
            cur = self.lower_stmt(s, cur);
        }
        cur
    }

    fn lower_stmt(&mut self, s: &Stmt, cur: BlockId) -> BlockId {
        match &s.kind {
            StmtKind::Let { init, .. } => {
                self.push_calls_from_expr(cur, init, s.id);
                cur
            }
            StmtKind::Assign { value, .. } => {
                self.push_calls_from_expr(cur, value, s.id);
                cur
            }
            StmtKind::Expr { expr } => {
                self.push_calls_from_expr(cur, expr, s.id);
                cur
            }
            StmtKind::Return { value } => {
                if let Some(v) = value {
                    self.push_calls_from_expr(cur, v, s.id);
                }
                self.blocks[cur.0 as usize].term = Terminator::Return;
                // Anything after a return is unreachable but still lowered
                // into a fresh (unreachable) block so ids stay valid.
                self.new_block()
            }
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                self.push_calls_from_expr(cur, cond, s.id);
                let then_bb = self.new_block();
                let else_bb = self.new_block();
                let merge = self.new_block();
                self.blocks[cur.0 as usize].term = Terminator::Cond {
                    origin: s.id,
                    kind: CondKind::If,
                    then_bb,
                    else_bb,
                };
                let then_end = self.lower_block(then_blk, then_bb);
                self.blocks[then_end.0 as usize].term = Terminator::Goto(merge);
                let else_end = match else_blk {
                    Some(e) => self.lower_block(e, else_bb),
                    None => else_bb,
                };
                self.blocks[else_end.0 as usize].term = Terminator::Goto(merge);
                merge
            }
            StmtKind::For {
                start,
                end,
                step,
                body,
                ..
            } => {
                // init (in cur) -> header -> {body -> latch -> header | exit}
                self.push_calls_from_expr(cur, start, s.id);
                self.push_calls_from_expr(cur, end, s.id);
                if let Some(st) = step {
                    self.push_calls_from_expr(cur, st, s.id);
                }
                let header = self.new_block();
                let body_bb = self.new_block();
                let exit = self.new_block();
                self.blocks[cur.0 as usize].term = Terminator::Goto(header);
                self.blocks[header.0 as usize].term = Terminator::Cond {
                    origin: s.id,
                    kind: CondKind::Loop,
                    then_bb: body_bb,
                    else_bb: exit,
                };
                let body_end = self.lower_block(body, body_bb);
                // The latch (increment) lives at the end of the body block.
                self.blocks[body_end.0 as usize].term = Terminator::Goto(header);
                exit
            }
            StmtKind::While { cond, body } => {
                let header = self.new_block();
                let body_bb = self.new_block();
                let exit = self.new_block();
                self.blocks[cur.0 as usize].term = Terminator::Goto(header);
                self.push_calls_from_expr(header, cond, s.id);
                self.blocks[header.0 as usize].term = Terminator::Cond {
                    origin: s.id,
                    kind: CondKind::Loop,
                    then_bb: body_bb,
                    else_bb: exit,
                };
                let body_end = self.lower_block(body, body_bb);
                self.blocks[body_end.0 as usize].term = Terminator::Goto(header);
                exit
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cypress_minilang::parse;

    fn cfg_of(src: &str) -> Cfg {
        let p = parse(src).unwrap();
        lower_function(p.main().unwrap())
    }

    #[test]
    fn straight_line_is_one_block() {
        let c = cfg_of("fn main() { barrier(); send(0, 1, 2); }");
        assert_eq!(c.len(), 1);
        assert_eq!(c.block(c.entry).invocations.len(), 2);
        assert_eq!(c.block(c.entry).term, Terminator::Return);
    }

    #[test]
    fn if_produces_diamond() {
        let c = cfg_of("fn main() { if rank() == 0 { barrier(); } else { bcast(0, 8); } }");
        // entry, then, else, merge
        assert_eq!(c.len(), 4);
        let Terminator::Cond { kind, .. } = &c.block(c.entry).term else {
            panic!("expected cond terminator");
        };
        assert_eq!(*kind, CondKind::If);
    }

    #[test]
    fn loop_has_back_edge() {
        let c = cfg_of("fn main() { for i in 0..4 { barrier(); } }");
        // entry, header, body, exit
        assert_eq!(c.len(), 4);
        let preds = c.predecessors();
        // header (bb1) has two predecessors: entry and body.
        assert_eq!(preds[1].len(), 2);
    }

    #[test]
    fn while_loop_condition_calls_live_in_header() {
        let c = cfg_of("fn main() { while rank() < 4 { barrier(); } }");
        // Header is bb1; the rank() call occurs there (re-evaluated each trip).
        assert_eq!(c.block(BlockId(1)).invocations.len(), 1);
    }

    #[test]
    fn calls_collected_in_evaluation_order() {
        let c = cfg_of("fn f() { return 1; } fn main() { compute(f() + f()); }".trim());
        // main is the second function; re-lower explicitly.
        let p = parse("fn f() { return 1; } fn main() { compute(f() + f()); }").unwrap();
        let c2 = lower_function(p.main().unwrap());
        let names: Vec<String> = c2
            .block(c2.entry)
            .invocations
            .iter()
            .map(|i| i.callee.to_string())
            .collect();
        assert_eq!(names, vec!["f", "f", "compute"]);
        drop(c);
    }

    #[test]
    fn code_after_return_is_unreachable_block() {
        let c = cfg_of("fn main() { return; barrier(); }");
        let rpo = c.reverse_post_order();
        // Only the entry block is reachable.
        assert_eq!(rpo, vec![c.entry]);
        // But the unreachable block exists and holds the barrier call.
        assert!(c.blocks.iter().skip(1).any(|b| !b.invocations.is_empty()));
    }

    #[test]
    fn rpo_starts_at_entry_and_covers_reachable() {
        let c = cfg_of("fn main() { for i in 0..3 { if i % 2 == 0 { barrier(); } } bcast(0, 4); }");
        let rpo = c.reverse_post_order();
        assert_eq!(rpo[0], c.entry);
        assert_eq!(rpo.len(), c.len()); // everything reachable here
    }

    #[test]
    fn nested_loops_shape() {
        let c = cfg_of("fn main() { for i in 0..3 { for j in 0..i { barrier(); } } }");
        // entry, hdr_i, body_i, exit_i, hdr_j, body_j, exit_j = 7 blocks
        assert_eq!(c.len(), 7);
        let loops: usize = c
            .blocks
            .iter()
            .filter(|b| {
                matches!(
                    b.term,
                    Terminator::Cond {
                        kind: CondKind::Loop,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(loops, 2);
    }
}
