//! Dominator analysis and natural-loop discovery.
//!
//! Implements the iterative dominator algorithm of Cooper, Harvey & Kennedy
//! ("A Simple, Fast Dominance Algorithm") over the reverse post-order of the
//! CFG, then finds back edges `t -> h` where `h` dominates `t` and collects
//! natural loop bodies — the "classic dominator-based algorithm" the paper
//! cites (Muchnick \[20\]) for its loop identification.

use crate::cfg::{BlockId, Cfg};
use std::collections::HashMap;

/// Immediate-dominator tree for one CFG.
#[derive(Debug, Clone)]
pub struct Dominators {
    /// `idom[b]` is the immediate dominator of block `b`; the entry block is
    /// its own idom. Unreachable blocks have `None`.
    idom: Vec<Option<BlockId>>,
    entry: BlockId,
}

impl Dominators {
    /// Compute dominators for `cfg`.
    pub fn compute(cfg: &Cfg) -> Self {
        let rpo = cfg.reverse_post_order();
        let mut order = vec![usize::MAX; cfg.len()];
        for (i, b) in rpo.iter().enumerate() {
            order[b.0 as usize] = i;
        }
        let preds = cfg.predecessors();
        let mut idom: Vec<Option<BlockId>> = vec![None; cfg.len()];
        idom[cfg.entry.0 as usize] = Some(cfg.entry);

        let intersect = |idom: &[Option<BlockId>], mut a: BlockId, mut b: BlockId| -> BlockId {
            while a != b {
                while order[a.0 as usize] > order[b.0 as usize] {
                    a = idom[a.0 as usize].expect("processed block has idom");
                }
                while order[b.0 as usize] > order[a.0 as usize] {
                    b = idom[b.0 as usize].expect("processed block has idom");
                }
            }
            a
        };

        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in &preds[b.0 as usize] {
                    if idom[p.0 as usize].is_none() {
                        continue; // unprocessed or unreachable
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, cur, p),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.0 as usize] != Some(ni) {
                        idom[b.0 as usize] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        Dominators {
            idom,
            entry: cfg.entry,
        }
    }

    /// Immediate dominator of `b` (entry maps to itself).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        self.idom[b.0 as usize]
    }

    /// Does `a` dominate `b`? (Reflexive.)
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            if cur == self.entry {
                return false;
            }
            match self.idom[cur.0 as usize] {
                Some(next) if next != cur => cur = next,
                _ => return false,
            }
        }
    }

    /// Whether `b` is reachable from the entry.
    pub fn reachable(&self, b: BlockId) -> bool {
        self.idom[b.0 as usize].is_some()
    }
}

/// Post-dominator analysis, computed as dominators of the reversed CFG with
/// a virtual exit node joined to every `Return` block. Used by the CST
/// builder to find the merge point (immediate post-dominator) of a branch.
#[derive(Debug, Clone)]
pub struct PostDominators {
    /// `ipdom[b]`: immediate post-dominator of `b`, where `None` means the
    /// virtual exit (i.e. the two arms never re-converge before returning)
    /// or an unreachable block.
    ipdom: Vec<Option<BlockId>>,
}

impl PostDominators {
    pub fn compute(cfg: &Cfg) -> Self {
        let n = cfg.len();
        let exit = n; // virtual exit node index
                      // Successors in the reversed graph = predecessors in the original,
                      // with Return blocks additionally preceded by the virtual exit.
        let mut succ_rev: Vec<Vec<usize>> = vec![Vec::new(); n + 1];
        for i in 0..n {
            let id = BlockId(i as u32);
            for s in cfg.successors(id) {
                succ_rev[s.0 as usize].push(i); // reversed edge s -> i
            }
        }
        for (i, b) in cfg.blocks.iter().enumerate() {
            if matches!(b.term, crate::cfg::Terminator::Return) {
                succ_rev[exit].push(i);
            }
        }
        let idom = idom_generic(n + 1, exit, &succ_rev);
        let ipdom = (0..n)
            .map(|i| match idom[i] {
                Some(d) if d != exit && d != i => Some(BlockId(d as u32)),
                _ => None,
            })
            .collect();
        PostDominators { ipdom }
    }

    /// Immediate post-dominator of `b`; `None` if it is the virtual exit.
    pub fn ipdom(&self, b: BlockId) -> Option<BlockId> {
        self.ipdom[b.0 as usize]
    }
}

/// Cooper–Harvey–Kennedy iterative dominators over an arbitrary graph given
/// as successor lists. Returns, for each node, its immediate dominator
/// (entry maps to itself; unreachable nodes map to `None`).
pub fn idom_generic(n: usize, entry: usize, succ: &[Vec<usize>]) -> Vec<Option<usize>> {
    // Build predecessor lists and an RPO from `entry`.
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (u, ss) in succ.iter().enumerate() {
        for &v in ss {
            preds[v].push(u);
        }
    }
    let mut visited = vec![false; n];
    let mut post = Vec::with_capacity(n);
    let mut stack = vec![(entry, false)];
    while let Some((u, expanded)) = stack.pop() {
        if expanded {
            post.push(u);
            continue;
        }
        if visited[u] {
            continue;
        }
        visited[u] = true;
        stack.push((u, true));
        for &s in succ[u].iter().rev() {
            if !visited[s] {
                stack.push((s, false));
            }
        }
    }
    post.reverse();
    let rpo = post;
    let mut order = vec![usize::MAX; n];
    for (i, &u) in rpo.iter().enumerate() {
        order[u] = i;
    }
    let mut idom: Vec<Option<usize>> = vec![None; n];
    idom[entry] = Some(entry);
    let intersect = |idom: &[Option<usize>], mut a: usize, mut b: usize| -> usize {
        while a != b {
            while order[a] > order[b] {
                a = idom[a].expect("processed node has idom");
            }
            while order[b] > order[a] {
                b = idom[b].expect("processed node has idom");
            }
        }
        a
    };
    let mut changed = true;
    while changed {
        changed = false;
        for &u in rpo.iter().skip(1) {
            let mut new_idom: Option<usize> = None;
            for &p in &preds[u] {
                if idom[p].is_none() {
                    continue;
                }
                new_idom = Some(match new_idom {
                    None => p,
                    Some(cur) => intersect(&idom, cur, p),
                });
            }
            if let Some(ni) = new_idom {
                if idom[u] != Some(ni) {
                    idom[u] = Some(ni);
                    changed = true;
                }
            }
        }
    }
    idom
}

/// A natural loop: header plus the set of blocks in its body.
#[derive(Debug, Clone)]
pub struct NaturalLoop {
    pub header: BlockId,
    /// All blocks in the loop, including the header.
    pub body: Vec<BlockId>,
}

/// Find all natural loops of `cfg` via back edges.
///
/// Multiple back edges to the same header are merged into a single loop
/// (standard practice; our structured lowering produces one back edge per
/// loop anyway).
pub fn natural_loops(cfg: &Cfg, dom: &Dominators) -> Vec<NaturalLoop> {
    let mut by_header: HashMap<BlockId, Vec<bool>> = HashMap::new();
    for i in 0..cfg.len() {
        let t = BlockId(i as u32);
        if !dom.reachable(t) {
            continue;
        }
        for h in cfg.successors(t) {
            if dom.dominates(h, t) {
                // back edge t -> h; flood predecessors from t up to h
                let body = by_header.entry(h).or_insert_with(|| vec![false; cfg.len()]);
                body[h.0 as usize] = true;
                let preds = cfg.predecessors();
                let mut stack = vec![t];
                while let Some(b) = stack.pop() {
                    if body[b.0 as usize] {
                        continue;
                    }
                    body[b.0 as usize] = true;
                    for &p in &preds[b.0 as usize] {
                        stack.push(p);
                    }
                }
            }
        }
    }
    let mut loops: Vec<NaturalLoop> = by_header
        .into_iter()
        .map(|(header, mask)| NaturalLoop {
            header,
            body: mask
                .iter()
                .enumerate()
                .filter(|(_, &in_loop)| in_loop)
                .map(|(i, _)| BlockId(i as u32))
                .collect(),
        })
        .collect();
    loops.sort_by_key(|l| l.header);
    loops
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::lower_function;
    use cypress_minilang::parse;

    fn analyze(src: &str) -> (Cfg, Dominators, Vec<NaturalLoop>) {
        let p = parse(src).unwrap();
        let cfg = lower_function(p.main().unwrap());
        let dom = Dominators::compute(&cfg);
        let loops = natural_loops(&cfg, &dom);
        (cfg, dom, loops)
    }

    #[test]
    fn entry_dominates_everything_reachable() {
        let (cfg, dom, _) = analyze("fn main() { for i in 0..3 { if i % 2 == 0 { barrier(); } } }");
        for b in cfg.reverse_post_order() {
            assert!(dom.dominates(cfg.entry, b));
        }
    }

    #[test]
    fn single_loop_found() {
        let (_, _, loops) = analyze("fn main() { for i in 0..3 { barrier(); } }");
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].header, BlockId(1));
        // header + body
        assert!(loops[0].body.len() >= 2);
    }

    #[test]
    fn nested_loops_found_with_containment() {
        let (_, _, loops) = analyze("fn main() { for i in 0..3 { for j in 0..i { barrier(); } } }");
        assert_eq!(loops.len(), 2);
        let outer = loops.iter().max_by_key(|l| l.body.len()).unwrap();
        let inner = loops.iter().min_by_key(|l| l.body.len()).unwrap();
        for b in &inner.body {
            assert!(outer.body.contains(b), "inner body within outer body");
        }
    }

    #[test]
    fn if_diamond_has_no_loop() {
        let (_, _, loops) = analyze("fn main() { if rank() == 0 { barrier(); } }");
        assert!(loops.is_empty());
    }

    #[test]
    fn merge_point_dominated_by_branch_head_not_arms() {
        let (cfg, dom, _) = analyze(
            "fn main() { if rank() == 0 { barrier(); } else { bcast(0, 4); } send(0,1,2); }",
        );
        // entry=bb0, then=bb1, else=bb2, merge=bb3
        assert!(dom.dominates(BlockId(0), BlockId(3)));
        assert!(!dom.dominates(BlockId(1), BlockId(3)));
        assert!(!dom.dominates(BlockId(2), BlockId(3)));
        drop(cfg);
    }

    #[test]
    fn while_loop_header_detected() {
        let (_, _, loops) = analyze("fn main() { while rank() < 3 { barrier(); } }");
        assert_eq!(loops.len(), 1);
    }

    #[test]
    fn unreachable_blocks_have_no_idom() {
        let (cfg, dom, _) = analyze("fn main() { return; barrier(); }");
        let unreachable: Vec<_> = (0..cfg.len())
            .map(|i| BlockId(i as u32))
            .filter(|&b| b != cfg.entry)
            .collect();
        for b in unreachable {
            assert!(!dom.reachable(b));
        }
    }

    #[test]
    fn ipdom_of_branch_is_merge_block() {
        let (cfg, _, _) = analyze(
            "fn main() { if rank() == 0 { barrier(); } else { bcast(0, 4); } send(0,1,2); }",
        );
        let pd = PostDominators::compute(&cfg);
        // entry=bb0 branches; merge=bb3 holds the send.
        assert_eq!(pd.ipdom(BlockId(0)), Some(BlockId(3)));
    }

    #[test]
    fn ipdom_none_when_both_arms_return() {
        let (cfg, _, _) = analyze("fn main() { if rank() == 0 { return; } else { return; } }");
        let pd = PostDominators::compute(&cfg);
        // The branch block's arms never reconverge: merge is the virtual exit.
        assert_eq!(pd.ipdom(cfg.entry), None);
    }

    #[test]
    fn loop_header_postdominated_by_exit_block() {
        let (cfg, _, loops) = analyze("fn main() { for i in 0..3 { barrier(); } send(0,1,2); }");
        let pd = PostDominators::compute(&cfg);
        let header = loops[0].header;
        // The loop exit block post-dominates the header.
        let m = pd.ipdom(header).unwrap();
        assert!(cfg.successors(header).contains(&m));
    }

    #[test]
    fn triple_nesting() {
        let (_, _, loops) = analyze(
            "fn main() { for i in 0..2 { for j in 0..2 { for k in 0..2 { barrier(); } } } }",
        );
        assert_eq!(loops.len(), 3);
    }
}
