//! # cypress-staticir — static analysis substrate (CFG, dominators, PCG)
//!
//! This crate is the stand-in for the LLVM-IR layer the SC'14 CYPRESS paper
//! builds on: it lowers MiniMPI functions to basic-block control-flow graphs,
//! computes dominator trees and natural loops with the classic algorithms the
//! paper cites, and constructs the program call graph (with SCC-based
//! recursion detection) that drives the inter-procedural CST construction.

pub mod callgraph;
pub mod cfg;
pub mod dom;

pub use callgraph::CallGraph;
pub use cfg::{lower_function, BasicBlock, BlockId, Cfg, CondKind, Invocation, Terminator};
pub use dom::{idom_generic, natural_loops, Dominators, NaturalLoop, PostDominators};
