//! The LogGP communication model (Alexandrov et al. \[22\]) and the
//! decomposition of collectives into point-to-point rounds (Zhang et al.
//! \[23\]), as used by the SIM-MPI simulator the paper integrates with (§V).

/// LogGP parameters (all times in nanoseconds, G in ns per byte ×1000 to
/// stay integral).
#[derive(Debug, Clone)]
pub struct LogGp {
    /// Wire latency L.
    pub latency_ns: u64,
    /// Per-message CPU overhead o (send or receive side).
    pub overhead_ns: u64,
    /// Gap per byte G, scaled by 1000 (400 = 0.4 ns/byte ≈ 2.5 GB/s).
    pub gap_per_byte_x1000: u64,
    /// Messages larger than this use the rendezvous protocol (the sender
    /// blocks until the receive is posted).
    pub eager_threshold: i64,
}

impl Default for LogGp {
    fn default() -> Self {
        // QDR InfiniBand-flavoured numbers (Explorer-100 era).
        LogGp {
            latency_ns: 1_500,
            overhead_ns: 500,
            gap_per_byte_x1000: 400,
            eager_threshold: 8 * 1024,
        }
    }
}

impl LogGp {
    /// Serialization time of `bytes` on the wire: (k-1)·G ≈ k·G.
    pub fn ser_time(&self, bytes: i64) -> u64 {
        (bytes.max(0) as u64 * self.gap_per_byte_x1000) / 1000
    }

    /// End-to-end transfer time of one point-to-point message, excluding
    /// sender/receiver overheads: L + (k-1)·G.
    pub fn wire_time(&self, bytes: i64) -> u64 {
        self.latency_ns + self.ser_time(bytes)
    }

    /// Whether a message of `bytes` is sent eagerly.
    pub fn is_eager(&self, bytes: i64) -> bool {
        bytes <= self.eager_threshold
    }

    /// Rounds of a binomial tree over `p` processes: ⌈log₂ p⌉.
    pub fn tree_rounds(p: u32) -> u64 {
        if p <= 1 {
            0
        } else {
            (32 - (p - 1).leading_zeros()) as u64
        }
    }

    /// Cost of a rooted tree collective (bcast / reduce): log₂(p) rounds of
    /// (o + L + k·G).
    pub fn tree_collective(&self, p: u32, bytes: i64) -> u64 {
        Self::tree_rounds(p) * (self.overhead_ns + self.wire_time(bytes))
    }

    /// Allreduce = reduce + bcast.
    pub fn allreduce(&self, p: u32, bytes: i64) -> u64 {
        2 * self.tree_collective(p, bytes)
    }

    /// Barrier: dissemination, log₂(p) rounds of (o + L).
    pub fn barrier(&self, p: u32) -> u64 {
        Self::tree_rounds(p) * (self.overhead_ns + self.latency_ns)
    }

    /// All-to-all: (p-1) pairwise exchanges of `bytes` each.
    pub fn alltoall(&self, p: u32, bytes: i64) -> u64 {
        (p.max(1) as u64 - 1) * (self.overhead_ns + self.wire_time(bytes))
    }

    /// Allgather: ring of (p-1) steps.
    pub fn allgather(&self, p: u32, bytes: i64) -> u64 {
        (p.max(1) as u64 - 1) * (self.overhead_ns + self.wire_time(bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_time_monotone_in_size() {
        let m = LogGp::default();
        assert!(m.wire_time(0) < m.wire_time(1024));
        assert!(m.wire_time(1024) < m.wire_time(1024 * 1024));
    }

    #[test]
    fn tree_rounds_log2() {
        assert_eq!(LogGp::tree_rounds(1), 0);
        assert_eq!(LogGp::tree_rounds(2), 1);
        assert_eq!(LogGp::tree_rounds(4), 2);
        assert_eq!(LogGp::tree_rounds(5), 3);
        assert_eq!(LogGp::tree_rounds(8), 3);
        assert_eq!(LogGp::tree_rounds(512), 9);
    }

    #[test]
    fn collective_costs_grow_with_p() {
        let m = LogGp::default();
        assert!(m.tree_collective(64, 1024) > m.tree_collective(8, 1024));
        assert!(m.alltoall(64, 1024) > m.alltoall(8, 1024));
        assert!(m.barrier(64) > m.barrier(2));
    }

    #[test]
    fn allreduce_twice_tree() {
        let m = LogGp::default();
        assert_eq!(m.allreduce(16, 256), 2 * m.tree_collective(16, 256));
    }

    #[test]
    fn eager_threshold_respected() {
        let m = LogGp::default();
        assert!(m.is_eager(100));
        assert!(!m.is_eager(100_000));
    }
}
