//! # cypress-simmpi — trace-driven LogGP performance simulator
//!
//! The stand-in for SIM-MPI, the simulator the paper feeds decompressed
//! CYPRESS traces into (§V, Fig. 14): point-to-point operations follow the
//! LogGP model, collectives are decomposed into point-to-point rounds, and
//! per-rank sequences are replayed with real message matching (rendezvous
//! blocking, non-overtaking queues, wildcard-receive resolution, deadlock
//! detection).
//!
//! "Measured" runs feed raw traces ([`from_raw_traces`]); "predicted" runs
//! feed decompressed traces whose compute gaps come from the compressed
//! statistics — the difference between the two is the prediction error the
//! paper reports (Fig. 21).

pub mod engine;
pub mod model;
pub mod report;
pub mod schedule;

pub use engine::{
    from_raw_traces, simulate, simulate_traced, RunOutcome, Sim, SimError, SimOp, SimResult,
    SimSnapshot, WaitReport, WaitSite,
};
pub use model::LogGp;
pub use report::SIM_WIRE_VERSION;
pub use schedule::{simulate_schedule, Schedule, ScheduleStats, Segment};

#[cfg(test)]
mod tests {
    use super::*;
    use cypress_cst::analyze_program;
    use cypress_minilang::{check_program, parse};
    use cypress_runtime::{trace_program, InterpConfig};
    use cypress_trace::event::{MpiOp, MpiParams};

    fn sim_src(src: &str, nprocs: u32) -> Result<SimResult, SimError> {
        let p = parse(src).unwrap();
        check_program(&p).unwrap();
        let info = analyze_program(&p);
        let traces = trace_program(&p, &info, nprocs, &InterpConfig::default()).unwrap();
        simulate(&from_raw_traces(&traces), &LogGp::default())
    }

    #[test]
    fn simple_send_recv_completes() {
        let r = sim_src(
            r#"fn main() {
                if rank() == 0 { send(1, 1024, 0); }
                if rank() == 1 { recv(0, 1024, 0); }
            }"#,
            2,
        )
        .unwrap();
        assert!(r.total > 0);
        assert!(r.comm_time[1] > 0);
    }

    #[test]
    fn jacobi_completes_and_scales() {
        let src = r#"fn main() {
            let r = rank(); let s = size();
            for k in 0..10 {
                if r < s - 1 { send(r + 1, 1024, 0); }
                if r > 0 { recv(r - 1, 1024, 0); }
                if r > 0 { send(r - 1, 1024, 1); }
                if r < s - 1 { recv(r + 1, 1024, 1); }
                compute(10000);
            }
        }"#;
        let r4 = sim_src(src, 4).unwrap();
        let r16 = sim_src(src, 16).unwrap();
        assert!(r4.total > 0);
        // Same per-rank work; more ranks only add (mild) dependency chains.
        assert!(r16.total >= r4.total);
    }

    #[test]
    fn rendezvous_send_blocks_until_recv_posted() {
        // Big message: the sender cannot finish before the receiver arrives
        // (receiver computes for a long time first).
        let r = sim_src(
            r#"fn main() {
                if rank() == 0 { send(1, 1000000, 0); }
                if rank() == 1 { compute(5000000); recv(0, 1000000, 0); }
            }"#,
            2,
        )
        .unwrap();
        // Sender finish must be >= receiver's compute time (it blocked).
        assert!(
            r.finish[0] >= 5_000_000,
            "rendezvous sender finished at {} before recv posted",
            r.finish[0]
        );
    }

    #[test]
    fn eager_send_does_not_block() {
        let r = sim_src(
            r#"fn main() {
                if rank() == 0 { send(1, 64, 0); }
                if rank() == 1 { compute(5000000); recv(0, 64, 0); }
            }"#,
            2,
        )
        .unwrap();
        assert!(
            r.finish[0] < 1_000_000,
            "eager sender should finish early, got {}",
            r.finish[0]
        );
    }

    #[test]
    fn deadlock_detected() {
        // Both ranks recv first: classic deadlock.
        let err = sim_src(
            r#"fn main() {
                let peer = 1 - rank();
                recv(peer, 64, 0);
                send(peer, 64, 0);
            }"#,
            2,
        )
        .unwrap_err();
        assert!(err.0.contains("deadlock"), "{err}");
    }

    #[test]
    fn nonblocking_exchange_avoids_deadlock() {
        let r = sim_src(
            r#"fn main() {
                let peer = 1 - rank();
                let a = irecv(peer, 64, 0);
                let b = isend(peer, 64, 0);
                waitall(a, b);
            }"#,
            2,
        )
        .unwrap();
        assert!(r.total > 0);
    }

    #[test]
    fn wildcard_sources_resolved() {
        let r = sim_src(
            r#"fn main() {
                if rank() == 0 {
                    recv(any_source(), 64, 0);
                    recv(any_source(), 64, 0);
                } else {
                    compute(1000 * rank());
                    send(0, 64, 0);
                }
            }"#,
            3,
        )
        .unwrap();
        // Rank 1 computes less, so its message is ready first.
        assert_eq!(r.wildcard_sources[0], vec![1, 2]);
    }

    #[test]
    fn collectives_synchronize_all_ranks() {
        let r = sim_src(
            r#"fn main() {
                compute(rank() * 10000);
                barrier();
                allreduce(1024);
            }"#,
            8,
        )
        .unwrap();
        // Everyone leaves the final collective at the same time.
        let f0 = r.finish[0];
        assert!(r.finish.iter().all(|&f| f == f0));
        // The slowest arrival dominates.
        assert!(f0 > 7 * 10_000);
    }

    #[test]
    fn collective_mismatch_is_an_error() {
        let ops = vec![
            vec![SimOp {
                gid: 0,
                op: MpiOp::Barrier,
                params: MpiParams::collective(0),
                pre_gap: 0,
            }],
            vec![SimOp {
                gid: 0,
                op: MpiOp::Allreduce,
                params: MpiParams::collective(8),
                pre_gap: 0,
            }],
        ];
        assert!(simulate(&ops, &LogGp::default()).is_err());
    }

    #[test]
    fn sendrecv_ring_completes() {
        let r = sim_src(
            r#"fn main() {
                let next = (rank() + 1) % size();
                let prev = (rank() + size() - 1) % size();
                for i in 0..5 {
                    sendrecv(next, 4096, 0, prev, 4096, 0);
                }
            }"#,
            6,
        )
        .unwrap();
        assert!(r.total > 0);
    }

    #[test]
    fn non_overtaking_same_src_tag() {
        // Two sends with the same tag must be received in order: sizes
        // distinguish them; simulation just needs to complete.
        let r = sim_src(
            r#"fn main() {
                if rank() == 0 { send(1, 100, 7); send(1, 200, 7); }
                if rank() == 1 { recv(0, 100, 7); recv(0, 200, 7); }
            }"#,
            2,
        )
        .unwrap();
        assert!(r.total > 0);
    }

    #[test]
    fn comm_fraction_between_zero_and_one() {
        let r = sim_src("fn main() { compute(100000); allreduce(64); }", 4).unwrap();
        let f = r.comm_fraction();
        assert!(f > 0.0 && f < 1.0, "fraction {f}");
    }

    #[test]
    fn predicted_matches_measured_shape_through_compression() {
        // Round-trip a trace through CYPRESS compression and compare the
        // simulated totals: gaps become means, so they should be close but
        // need not be identical.
        let src = r#"fn main() {
            for i in 0..20 {
                compute(5000);
                if rank() < size() - 1 { send(rank() + 1, 2048, 0); }
                if rank() > 0 { recv(rank() - 1, 2048, 0); }
            }
        }"#;
        let p = parse(src).unwrap();
        check_program(&p).unwrap();
        let info = analyze_program(&p);
        let traces = trace_program(&p, &info, 4, &InterpConfig::default()).unwrap();
        let measured = simulate(&from_raw_traces(&traces), &LogGp::default()).unwrap();

        let cfg = cypress_core::CompressConfig::default();
        let predicted_ops: Vec<Vec<SimOp>> = traces
            .iter()
            .map(|t| {
                let ctt = cypress_core::compress_trace(&info.cst, t, &cfg);
                cypress_core::decompress(&info.cst, &ctt)
                    .into_iter()
                    .map(|o| SimOp {
                        gid: o.gid,
                        op: o.op,
                        params: o.params,
                        pre_gap: o.mean_gap,
                    })
                    .collect()
            })
            .collect();
        let predicted = simulate(&predicted_ops, &LogGp::default()).unwrap();
        let err = (predicted.total as f64 - measured.total as f64).abs() / measured.total as f64;
        assert!(err < 0.15, "prediction error {err:.3} too large");
    }
}
