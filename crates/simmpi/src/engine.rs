//! Trace-driven discrete simulation engine.
//!
//! Replays per-rank operation sequences under the LogGP model: point-to-point
//! messages are matched across ranks (posted receives match in post order;
//! per-⟨src,tag⟩ message queues are FIFO, preserving MPI non-overtaking
//! semantics; `MPI_ANY_SOURCE` receives match the earliest-ready available
//! message), rendezvous sends block on the matching receive being posted,
//! non-blocking operations complete at their checking function, and
//! collectives synchronize all ranks. Ranks advance round-robin until all
//! finish; global lack of progress is reported as a deadlock listing the
//! blocked operations.
//!
//! The engine is *resumable*: [`Sim`] accepts operations incrementally
//! ([`Sim::feed`]) and runs until no further progress is possible
//! ([`Sim::run`]), so callers can drive it one loop iteration at a time.
//! For wildcard-free programs the match graph — and therefore every
//! completion time — is independent of how the op stream is chunked, which
//! is what lets the compressed-domain scheduler (`crate::schedule`) replay
//! repeated loop bodies once and extrapolate the rest arithmetically while
//! remaining *exactly* equal to a one-shot simulation.

use crate::model::LogGp;
use cypress_obs::{obs_log, Counter, Histogram, Level};
use cypress_trace::event::{MpiOp, MpiParams, ANY_SOURCE};
use cypress_trace::raw::RawTrace;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::OnceLock;

/// Simulator instrumentation handles (scope `simmpi`).
struct SimMetrics {
    /// Operations completed across all ranks.
    ops_simulated: Counter,
    /// Round-robin passes where a rank stayed blocked (retried next round).
    blocked_rank_rounds: Counter,
    /// Posted-receive arrival polls that found no matching message yet.
    unmatched_recv_polls: Counter,
    /// Simulations aborted with a deadlock report.
    deadlocks_detected: Counter,
    /// Wall time per whole-job simulation.
    simulate_ns: Histogram,
}

fn obs() -> &'static SimMetrics {
    static M: OnceLock<SimMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let s = cypress_obs::scope("simmpi");
        SimMetrics {
            ops_simulated: s.counter("ops_simulated"),
            blocked_rank_rounds: s.counter("blocked_rank_rounds"),
            unmatched_recv_polls: s.counter("unmatched_recv_polls"),
            deadlocks_detected: s.counter("deadlocks_detected"),
            simulate_ns: s.histogram("simulate_ns", &cypress_obs::TIME_BOUNDS_NS),
        }
    })
}

/// One operation to simulate: optional preceding computation, then the op.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOp {
    /// Identifier of the call site (CST GID where available); links
    /// non-blocking posts to their completion op via `params.req_gids`.
    pub gid: u32,
    pub op: MpiOp,
    pub params: MpiParams,
    /// Sequential computation time before this operation (ns).
    pub pre_gap: u64,
}

/// Build per-rank op sequences from raw traces: compute gaps are the
/// timestamp deltas the tracer observed (the "measured" input of Fig. 21).
pub fn from_raw_traces(traces: &[RawTrace]) -> Vec<Vec<SimOp>> {
    traces
        .iter()
        .map(|t| {
            let mut prev_end = 0u64;
            t.mpi_records()
                .map(|r| {
                    let gap = r.t_start.saturating_sub(prev_end);
                    prev_end = r.t_start + r.dur;
                    SimOp {
                        gid: r.gid,
                        op: r.op,
                        params: r.params.clone(),
                        pre_gap: gap,
                    }
                })
                .collect()
        })
        .collect()
}

/// Simulation failure: communication mismatch or deadlock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimError(pub String);

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "simulation error: {}", self.0)
    }
}

impl std::error::Error for SimError {}

/// Results of one simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimResult {
    /// Per-rank finish time (ns).
    pub finish: Vec<u64>,
    /// Predicted job time = max finish.
    pub total: u64,
    /// Per-rank time spent inside communication (transfer + blocking).
    pub comm_time: Vec<u64>,
    /// Resolved sources of wildcard receives, in per-rank match order.
    pub wildcard_sources: Vec<Vec<u32>>,
}

impl SimResult {
    /// Fraction of aggregate rank time spent communicating.
    pub fn comm_fraction(&self) -> f64 {
        let total: u64 = self.finish.iter().sum();
        if total == 0 {
            return 0.0;
        }
        self.comm_time.iter().sum::<u64>() as f64 / total as f64
    }
}

/// One call site's accumulated late-sender wait time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitSite {
    /// CST GID of the receive that waited.
    pub gid: u32,
    /// Total time senders were late relative to the receive post (ns).
    pub wait_ns: u64,
    /// Number of late arrivals at this site.
    pub count: u64,
}

/// Late-sender wait-state report: for every completed receive whose matching
/// message became available *after* the receive was posted, the lateness
/// `sender_ready − recv_post` is charged to the receive's call site. This is
/// the classic late-sender wait state, detected here on the replayed match
/// graph rather than on raw timestamps.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WaitReport {
    /// Total late-sender wait per rank (ns).
    pub per_rank: Vec<u64>,
    /// Call sites ordered by total wait descending (ties: lower GID first).
    pub sites: Vec<WaitSite>,
}

impl WaitReport {
    /// Aggregate wait across all ranks.
    pub fn total_wait_ns(&self) -> u64 {
        self.per_rank.iter().sum()
    }
}

#[derive(Debug, Clone)]
struct Message {
    src: u32,
    tag: i64,
    bytes: i64,
    /// Time the sender made the payload available (after its overhead).
    ready: u64,
    eager: bool,
    /// Post time of the matched receive (rendezvous senders block on this).
    recv_post: Option<u64>,
    consumed: bool,
}

#[derive(Debug, Clone)]
struct PostedRecv {
    src: i64,
    tag: i64,
    post_time: u64,
    /// Index of the matched message in the owner's inbox.
    matched: Option<usize>,
    wildcard: bool,
    /// Call site that posted the receive (late-sender attribution).
    gid: u32,
}

#[derive(Debug, Clone, Copy)]
enum Outstanding {
    Recv {
        posted_idx: usize,
    },
    SendEager,
    /// Rendezvous isend: (destination, index in destination's inbox).
    SendRdv {
        dst: u32,
        msg_idx: usize,
    },
}

struct RankState {
    idx: usize,
    time: u64,
    comm: u64,
    /// Messages addressed to this rank.
    inbox: Vec<Message>,
    posted: Vec<PostedRecv>,
    outstanding: VecDeque<(u32, Outstanding)>,
    coll_count: u64,
    wildcard_sources: Vec<u32>,
    /// Per-op retry state: message already delivered / recv already posted
    /// for the op currently at `idx`.
    cur_msg: Option<usize>,
    cur_recv: Option<usize>,
    done: bool,
}

impl RankState {
    fn new() -> RankState {
        RankState {
            idx: 0,
            time: 0,
            comm: 0,
            inbox: Vec::new(),
            posted: Vec::new(),
            outstanding: VecDeque::new(),
            coll_count: 0,
            wildcard_sources: Vec::new(),
            cur_msg: None,
            cur_recv: None,
            done: false,
        }
    }

    /// Match unmatched posted receives (in post order) against unconsumed
    /// inbox messages. Greedy and deterministic: a specific-source receive
    /// takes the earliest message in (src, tag) FIFO order; a wildcard takes
    /// the available message with the earliest ready time (ties: lowest src).
    fn match_all(&mut self) {
        for pi in 0..self.posted.len() {
            if self.posted[pi].matched.is_some() {
                continue;
            }
            let (want_src, want_tag, wildcard) = {
                let p = &self.posted[pi];
                (p.src, p.tag, p.wildcard)
            };
            let mut best: Option<usize> = None;
            for (mi, m) in self.inbox.iter().enumerate() {
                if m.consumed {
                    continue;
                }
                if m.tag != want_tag {
                    continue;
                }
                if wildcard {
                    match best {
                        None => best = Some(mi),
                        Some(b) => {
                            let bb = &self.inbox[b];
                            if (m.ready, m.src) < (bb.ready, bb.src) {
                                best = Some(mi);
                            }
                        }
                    }
                } else if m.src as i64 == want_src {
                    best = Some(mi);
                    break; // FIFO per (src, tag): first unconsumed wins
                }
            }
            if let Some(mi) = best {
                self.inbox[mi].consumed = true;
                self.inbox[mi].recv_post = Some(self.posted[pi].post_time);
                self.posted[pi].matched = Some(mi);
                if wildcard {
                    let src = self.inbox[mi].src;
                    self.wildcard_sources.push(src);
                }
            }
        }
    }

    /// Arrival-completion time of the message matched to `posted_idx`, or
    /// `None` if unmatched.
    fn recv_arrival(&self, posted_idx: usize, model: &LogGp) -> Option<u64> {
        let p = &self.posted[posted_idx];
        let Some(mi) = p.matched else {
            if cypress_obs::enabled() {
                obs().unmatched_recv_polls.inc();
            }
            return None;
        };
        let m = &self.inbox[mi];
        let start = if m.eager {
            m.ready
        } else {
            m.ready.max(p.post_time)
        };
        Some(start + model.wire_time(m.bytes))
    }

    /// Late-sender wait of the (matched) receive at `posted_idx`: how long
    /// the sender's payload lagged the receive post. Zero when the message
    /// was already available.
    fn late_sender_wait(&self, posted_idx: usize) -> (u32, u64) {
        let p = &self.posted[posted_idx];
        let gid = p.gid;
        match p.matched {
            Some(mi) => (gid, self.inbox[mi].ready.saturating_sub(p.post_time)),
            None => (gid, 0),
        }
    }
}

#[derive(Default)]
struct CollInstance {
    arrivals: HashMap<u32, u64>,
    op: Option<MpiOp>,
    bytes: i64,
    complete: Option<u64>,
}

/// Whether a [`Sim::run`] call finished the job or merely exhausted all
/// possible progress with the ops fed so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// All ranks completed (finalizing runs only).
    Done,
    /// No rank can advance further until more ops are fed.
    Blocked,
}

/// A snapshot of the extrapolation-relevant simulator state, taken at a
/// quiescent (compacted) iteration boundary. See [`Sim::extrapolate`].
#[derive(Debug, Clone)]
pub struct SimSnapshot {
    time: Vec<u64>,
    comm: Vec<u64>,
    waits: Vec<HashMap<u32, (u64, u64)>>,
}

/// Resumable simulation state. Feed ops with [`Sim::feed`], advance with
/// [`Sim::run`]; a finalizing run completes the job and [`Sim::into_result`]
/// extracts the answers.
pub struct Sim {
    model: LogGp,
    ranks: Vec<RankState>,
    ops: Vec<Vec<SimOp>>,
    collectives: Vec<CollInstance>,
    trace_waits: bool,
    /// Per-rank: gid → (total late-sender wait ns, late-arrival count).
    waits: Vec<HashMap<u32, (u64, u64)>>,
}

impl Sim {
    pub fn new(nprocs: usize, model: &LogGp, trace_waits: bool) -> Sim {
        assert!(nprocs > 0, "simulate needs at least one rank");
        Sim {
            model: model.clone(),
            ranks: (0..nprocs).map(|_| RankState::new()).collect(),
            ops: vec![Vec::new(); nprocs],
            collectives: Vec::new(),
            trace_waits,
            waits: vec![HashMap::new(); nprocs],
        }
    }

    /// Append ops to rank `r`'s pending stream.
    pub fn feed<I: IntoIterator<Item = SimOp>>(&mut self, r: usize, ops: I) {
        self.ops[r].extend(ops);
    }

    /// Round-robin all ranks until no further progress. With `finalize`,
    /// a rank that exhausts its ops retires (erroring if requests are still
    /// outstanding) and a global stall is a deadlock; without it, exhausted
    /// or blocked ranks simply wait for more fed ops.
    pub fn run(&mut self, finalize: bool) -> Result<RunOutcome, SimError> {
        let p = self.ranks.len();
        loop {
            let mut progressed = false;
            let mut all_done = true;
            for r in 0..p {
                while self.step_rank(r, finalize)? {
                    progressed = true;
                }
                if !self.ranks[r].done {
                    all_done = false;
                    if cypress_obs::enabled() {
                        obs().blocked_rank_rounds.inc();
                    }
                }
            }
            if finalize && all_done {
                return Ok(RunOutcome::Done);
            }
            if !progressed {
                if !finalize {
                    return Ok(RunOutcome::Blocked);
                }
                let blocked: Vec<String> = (0..p)
                    .filter(|&r| !self.ranks[r].done)
                    .map(|r| {
                        let o = &self.ops[r][self.ranks[r].idx.min(self.ops[r].len() - 1)];
                        format!("rank {r} at op {} ({})", self.ranks[r].idx, o.op)
                    })
                    .collect();
                if cypress_obs::enabled() {
                    obs().deadlocks_detected.inc();
                }
                obs_log!(
                    Level::Warn,
                    "simmpi",
                    "deadlock after no rank progressed: {} blocked",
                    blocked.len()
                );
                return Err(SimError(format!("deadlock: {}", blocked.join("; "))));
            }
        }
    }

    /// Whether the job is at a quiescent boundary: every fed op consumed,
    /// nothing in flight (no unconsumed messages, no unmatched posts, no
    /// outstanding requests, every collective instance complete, all ranks
    /// at the same collective count). From such a boundary the next ops see
    /// only the per-rank clocks — the precondition for [`Sim::compact`] and
    /// [`Sim::extrapolate`].
    pub fn quiescent(&self) -> bool {
        let cc0 = self.ranks.first().map(|s| s.coll_count).unwrap_or(0);
        self.ranks.iter().enumerate().all(|(r, s)| {
            s.idx == self.ops[r].len()
                && s.outstanding.is_empty()
                && s.coll_count == cc0
                && s.inbox.iter().all(|m| m.consumed)
                && s.posted.iter().all(|p| p.matched.is_some())
        }) && self.collectives.iter().all(|c| c.complete.is_some())
    }

    /// Drop fully-consumed history at a quiescent boundary: consumed ops,
    /// matched mailboxes, completed collectives. Keeps resident state O(one
    /// iteration) no matter how many iterations are replayed. Caller must
    /// have checked [`Sim::quiescent`].
    pub fn compact(&mut self) {
        debug_assert!(self.quiescent(), "compact requires a quiescent boundary");
        for (r, s) in self.ranks.iter_mut().enumerate() {
            self.ops[r].clear();
            s.idx = 0;
            s.inbox.clear();
            s.posted.clear();
            s.coll_count = 0;
        }
        self.collectives.clear();
    }

    /// Snapshot the extrapolation-relevant state (call at a compacted
    /// quiescent boundary).
    pub fn snapshot(&self) -> SimSnapshot {
        SimSnapshot {
            time: self.ranks.iter().map(|s| s.time).collect(),
            comm: self.ranks.iter().map(|s| s.comm).collect(),
            waits: self.waits.clone(),
        }
    }

    /// Exact steady-state extrapolation. `base` is the snapshot at the
    /// *previous* quiescent boundary and the sim sits at the next one, so
    /// the deltas describe exactly one loop iteration. When the time delta
    /// is uniform across ranks, every subsequent iteration is a time-shifted
    /// copy of the last one (all engine arithmetic is adds and maxes of
    /// relative times; matching decisions compare relative times only), so
    /// `m` further iterations advance the state by `m`× the deltas —
    /// exactly, not approximately. Returns false (state untouched) when the
    /// delta is not uniform.
    pub fn extrapolate(&mut self, base: &SimSnapshot, m: u64) -> bool {
        let d = self.ranks[0].time.wrapping_sub(base.time[0]);
        if !(0..self.ranks.len()).all(|r| self.ranks[r].time.wrapping_sub(base.time[r]) == d) {
            return false;
        }
        for (r, s) in self.ranks.iter_mut().enumerate() {
            s.time += m * d;
            let dc = s.comm - base.comm[r];
            s.comm += m * dc;
            if self.trace_waits {
                for (gid, (w, c)) in self.waits[r].iter_mut() {
                    let (bw, bc) = base.waits[r].get(gid).copied().unwrap_or((0, 0));
                    *w += m * (*w - bw);
                    *c += m * (*c - bc);
                }
            }
        }
        true
    }

    /// Finish a completed simulation (after `run(true)` returned `Done`).
    pub fn into_result(mut self) -> (SimResult, WaitReport) {
        let finish: Vec<u64> = self.ranks.iter().map(|s| s.time).collect();
        let total = finish.iter().copied().max().unwrap_or(0);
        let result = SimResult {
            total,
            comm_time: self.ranks.iter().map(|s| s.comm).collect(),
            wildcard_sources: self
                .ranks
                .iter_mut()
                .map(|s| std::mem::take(&mut s.wildcard_sources))
                .collect(),
            finish,
        };
        let per_rank: Vec<u64> = self
            .waits
            .iter()
            .map(|m| m.values().map(|(w, _)| w).sum())
            .collect();
        let mut by_gid: HashMap<u32, (u64, u64)> = HashMap::new();
        for m in &self.waits {
            for (&gid, &(w, c)) in m {
                let e = by_gid.entry(gid).or_insert((0, 0));
                e.0 += w;
                e.1 += c;
            }
        }
        let mut sites: Vec<WaitSite> = by_gid
            .into_iter()
            .map(|(gid, (wait_ns, count))| WaitSite {
                gid,
                wait_ns,
                count,
            })
            .collect();
        sites.sort_by(|a, b| b.wait_ns.cmp(&a.wait_ns).then(a.gid.cmp(&b.gid)));
        (result, WaitReport { per_rank, sites })
    }

    /// Try to advance rank `r` by one op; returns whether it advanced.
    fn step_rank(&mut self, r: usize, finalize: bool) -> Result<bool, SimError> {
        if self.ranks[r].done {
            return Ok(false);
        }
        if self.ranks[r].idx >= self.ops[r].len() {
            if !finalize {
                return Ok(false);
            }
            if !self.ranks[r].outstanding.is_empty() {
                return Err(SimError(format!(
                    "rank {r} finished with {} outstanding request(s)",
                    self.ranks[r].outstanding.len()
                )));
            }
            self.ranks[r].done = true;
            return Ok(true);
        }
        // Disjoint field borrows: `op` reads `ops` while rank/collective
        // state mutates.
        let Sim {
            model,
            ranks,
            ops,
            collectives,
            trace_waits,
            waits,
        } = self;
        let trace_waits = *trace_waits;
        let op = &ops[r][ranks[r].idx];
        let ready = ranks[r].time + op.pre_gap;
        let p = ranks.len() as u32;

        match op.op {
            MpiOp::Send | MpiOp::Isend => {
                let dst = op.params.dest;
                if dst < 0 || dst as usize >= ranks.len() {
                    return Err(SimError(format!("rank {r}: send to invalid rank {dst}")));
                }
                let dst = dst as usize;
                let bytes = op.params.count;
                let eager = model.is_eager(bytes);
                // Deliver exactly once, even across blocked retries.
                let msg_idx = match ranks[r].cur_msg {
                    Some(mi) => mi,
                    None => {
                        let msg = Message {
                            src: r as u32,
                            tag: op.params.tag,
                            bytes,
                            ready: ready + model.overhead_ns,
                            eager,
                            recv_post: None,
                            consumed: false,
                        };
                        ranks[dst].inbox.push(msg);
                        let mi = ranks[dst].inbox.len() - 1;
                        ranks[dst].match_all();
                        ranks[r].cur_msg = Some(mi);
                        mi
                    }
                };
                match op.op {
                    MpiOp::Send if !eager => match ranks[dst].inbox[msg_idx].recv_post {
                        Some(post) => {
                            let t = ready.max(post) + model.overhead_ns + model.ser_time(bytes);
                            complete(&mut ranks[r], ready, t);
                            Ok(true)
                        }
                        None => Ok(false),
                    },
                    MpiOp::Send => {
                        let t = ready + model.overhead_ns + model.ser_time(bytes);
                        complete(&mut ranks[r], ready, t);
                        Ok(true)
                    }
                    _ => {
                        // Isend: post and continue.
                        let out = if eager {
                            Outstanding::SendEager
                        } else {
                            Outstanding::SendRdv {
                                dst: dst as u32,
                                msg_idx,
                            }
                        };
                        ranks[r].outstanding.push_back((op.gid, out));
                        let t = ready + model.overhead_ns;
                        complete(&mut ranks[r], ready, t);
                        Ok(true)
                    }
                }
            }
            MpiOp::Recv | MpiOp::Irecv => {
                let posted_idx = match ranks[r].cur_recv {
                    Some(pi) => pi,
                    None => {
                        let pr = PostedRecv {
                            src: op.params.src,
                            tag: op.params.tag,
                            post_time: ready + model.overhead_ns,
                            matched: None,
                            wildcard: op.params.src == ANY_SOURCE,
                            gid: op.gid,
                        };
                        ranks[r].posted.push(pr);
                        let pi = ranks[r].posted.len() - 1;
                        ranks[r].match_all();
                        ranks[r].cur_recv = Some(pi);
                        pi
                    }
                };
                if op.op == MpiOp::Irecv {
                    ranks[r]
                        .outstanding
                        .push_back((op.gid, Outstanding::Recv { posted_idx }));
                    let t = ready + model.overhead_ns;
                    complete(&mut ranks[r], ready, t);
                    return Ok(true);
                }
                ranks[r].match_all();
                match ranks[r].recv_arrival(posted_idx, model) {
                    Some(arr) => {
                        let t = arr.max(ready) + model.overhead_ns;
                        complete(&mut ranks[r], ready, t);
                        record_wait(trace_waits, &mut waits[r], &ranks[r], posted_idx);
                        Ok(true)
                    }
                    None => Ok(false),
                }
            }
            MpiOp::Wait | MpiOp::Waitall | MpiOp::Waitany => {
                ranks[r].match_all();
                // All listed requests must be completable before any is removed.
                // Repeated gids in one waitall take queue entries in FIFO order.
                let mut completion = ready;
                let mut taken: HashMap<u32, usize> = HashMap::new();
                let mut needed: Vec<Outstanding> = Vec::with_capacity(op.params.req_gids.len());
                for &g in op.params.req_gids.iter() {
                    let nth = taken.entry(g).or_insert(0);
                    match ranks[r]
                        .outstanding
                        .iter()
                        .filter(|(k, _)| *k == g)
                        .nth(*nth)
                        .map(|(_, o)| *o)
                    {
                        Some(o) => {
                            needed.push(o);
                            *nth += 1;
                        }
                        None => {
                            return Err(SimError(format!(
                                "rank {r}: wait on unknown request gid {g}"
                            )))
                        }
                    }
                }
                for o in &needed {
                    match o {
                        Outstanding::SendEager => {}
                        Outstanding::SendRdv { dst, msg_idx } => {
                            match ranks[*dst as usize].inbox[*msg_idx].recv_post {
                                Some(post) => completion = completion.max(post),
                                None => return Ok(false),
                            }
                        }
                        Outstanding::Recv { posted_idx } => {
                            match ranks[r].recv_arrival(*posted_idx, model) {
                                Some(t) => completion = completion.max(t),
                                None => return Ok(false),
                            }
                        }
                    }
                }
                // Commit: remove the requests now.
                for &g in op.params.req_gids.iter() {
                    remove_outstanding(&mut ranks[r].outstanding, g);
                }
                let t = completion.max(ready) + model.overhead_ns;
                complete(&mut ranks[r], ready, t);
                for o in &needed {
                    if let Outstanding::Recv { posted_idx } = o {
                        record_wait(trace_waits, &mut waits[r], &ranks[r], *posted_idx);
                    }
                }
                Ok(true)
            }
            MpiOp::Barrier
            | MpiOp::Bcast
            | MpiOp::Reduce
            | MpiOp::Allreduce
            | MpiOp::Alltoall
            | MpiOp::Allgather => {
                let inst = ranks[r].coll_count as usize;
                if collectives.len() <= inst {
                    collectives.resize_with(inst + 1, CollInstance::default);
                }
                let c = &mut collectives[inst];
                match c.op {
                    None => {
                        c.op = Some(op.op);
                        c.bytes = op.params.count.max(0);
                    }
                    Some(existing) if existing != op.op => {
                        return Err(SimError(format!(
                            "collective mismatch at instance {inst}: rank {r} calls {} \
                             but another rank called {existing}",
                            op.op
                        )));
                    }
                    _ => {}
                }
                c.arrivals.entry(r as u32).or_insert(ready);
                if c.arrivals.len() < ranks.len() {
                    return Ok(false);
                }
                let start = *c.arrivals.values().max().expect("non-empty");
                let cost = match op.op {
                    MpiOp::Barrier => model.barrier(p),
                    MpiOp::Bcast | MpiOp::Reduce => model.tree_collective(p, c.bytes),
                    MpiOp::Allreduce => model.allreduce(p, c.bytes),
                    MpiOp::Alltoall => model.alltoall(p, c.bytes),
                    MpiOp::Allgather => model.allgather(p, c.bytes),
                    _ => unreachable!("matched collective ops above"),
                };
                let t = *c.complete.get_or_insert(start + cost);
                complete(&mut ranks[r], ready, t);
                ranks[r].coll_count += 1;
                Ok(true)
            }
            MpiOp::Sendrecv => {
                let dst = op.params.dest;
                if dst < 0 || dst as usize >= ranks.len() {
                    return Err(SimError(format!(
                        "rank {r}: sendrecv to invalid rank {dst}"
                    )));
                }
                let dst = dst as usize;
                if ranks[r].cur_msg.is_none() {
                    let msg = Message {
                        src: r as u32,
                        tag: op.params.tag,
                        bytes: op.params.count,
                        ready: ready + model.overhead_ns,
                        eager: true,
                        recv_post: None,
                        consumed: false,
                    };
                    ranks[dst].inbox.push(msg);
                    let mi = ranks[dst].inbox.len() - 1;
                    ranks[dst].match_all();
                    ranks[r].cur_msg = Some(mi);
                }
                let posted_idx = match ranks[r].cur_recv {
                    Some(pi) => pi,
                    None => {
                        let pr = PostedRecv {
                            src: op.params.src,
                            tag: op.params.rtag,
                            post_time: ready + model.overhead_ns,
                            matched: None,
                            wildcard: op.params.src == ANY_SOURCE,
                            gid: op.gid,
                        };
                        ranks[r].posted.push(pr);
                        let pi = ranks[r].posted.len() - 1;
                        ranks[r].match_all();
                        ranks[r].cur_recv = Some(pi);
                        pi
                    }
                };
                ranks[r].match_all();
                match ranks[r].recv_arrival(posted_idx, model) {
                    Some(arr) => {
                        let local = ready + model.overhead_ns + model.ser_time(op.params.count);
                        let t = arr.max(local) + model.overhead_ns;
                        complete(&mut ranks[r], ready, t);
                        record_wait(trace_waits, &mut waits[r], &ranks[r], posted_idx);
                        Ok(true)
                    }
                    None => Ok(false),
                }
            }
        }
    }
}

/// Simulate the given per-rank op sequences under `model`.
pub fn simulate(ops: &[Vec<SimOp>], model: &LogGp) -> Result<SimResult, SimError> {
    run_all(ops, model, false).map(|(r, _)| r)
}

/// Simulate with late-sender wait-state attribution enabled.
pub fn simulate_traced(
    ops: &[Vec<SimOp>],
    model: &LogGp,
) -> Result<(SimResult, WaitReport), SimError> {
    run_all(ops, model, true)
}

fn run_all(
    ops: &[Vec<SimOp>],
    model: &LogGp,
    trace_waits: bool,
) -> Result<(SimResult, WaitReport), SimError> {
    let p = ops.len();
    assert!(p > 0, "simulate needs at least one rank");
    let _span = obs().simulate_ns.start_span();
    let mut sim = Sim::new(p, model, trace_waits);
    for (r, rank_ops) in ops.iter().enumerate() {
        sim.feed(r, rank_ops.iter().cloned());
    }
    sim.run(true)?;
    let (result, waits) = sim.into_result();
    obs_log!(
        Level::Info,
        "simmpi",
        "simulated {p} ranks to completion: {} ns",
        result.total
    );
    Ok((result, waits))
}

/// Charge a completed receive's late-sender wait (if tracing).
fn record_wait(
    trace: bool,
    waits: &mut HashMap<u32, (u64, u64)>,
    rank: &RankState,
    posted_idx: usize,
) {
    if !trace {
        return;
    }
    let (gid, w) = rank.late_sender_wait(posted_idx);
    if w > 0 {
        let e = waits.entry(gid).or_insert((0, 0));
        e.0 += w;
        e.1 += 1;
    }
}

/// Complete the current op of rank `r`: advance clocks and op index.
fn complete(st: &mut RankState, ready: u64, t: u64) {
    if cypress_obs::enabled() {
        obs().ops_simulated.inc();
    }
    st.comm += t.saturating_sub(ready);
    st.time = t;
    st.idx += 1;
    st.cur_msg = None;
    st.cur_recv = None;
}

/// Remove the first outstanding entry with gid `g`.
fn remove_outstanding(q: &mut VecDeque<(u32, Outstanding)>, g: u32) -> Option<Outstanding> {
    let pos = q.iter().position(|(k, _)| *k == g)?;
    q.remove(pos).map(|(_, o)| o)
}
