//! Canonical wire and JSON serializations of simulation results.
//!
//! Mirrors the conventions of `cypress_query::wire`: blobs are
//! self-versioned (first byte is [`SIM_WIRE_VERSION`]), encodings are
//! canonical (equal values → identical bytes), and the JSON renders are
//! deterministic with stable key order and **no floats** — comm fraction is
//! emitted as integer permille so `analyze predict --json` output can be
//! diffed byte-for-byte between local and queryd evaluation.

use crate::engine::{SimResult, WaitReport, WaitSite};
use cypress_trace::{Codec, DecodeError, DecodeResult, Decoder, Encoder};

/// Version byte leading every [`SimResult`] / [`WaitReport`] blob.
pub const SIM_WIRE_VERSION: u8 = 1;

fn check_version(dec: &mut Decoder<'_>, what: &str) -> DecodeResult<()> {
    let v = dec.get_u8()?;
    if v != SIM_WIRE_VERSION {
        return Err(DecodeError(format!(
            "{what} wire version {v} unsupported (expected {SIM_WIRE_VERSION})"
        )));
    }
    Ok(())
}

fn put_u64_vec(enc: &mut Encoder, vals: &[u64]) {
    enc.put_uvar(vals.len() as u64);
    for v in vals {
        enc.put_uvar(*v);
    }
}

fn get_u64_vec(dec: &mut Decoder<'_>, what: &str) -> DecodeResult<Vec<u64>> {
    let n = dec.get_uvar()? as usize;
    if n > dec.remaining() {
        return Err(DecodeError(format!(
            "{what} claims {n} entries but only {} bytes remain",
            dec.remaining()
        )));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(dec.get_uvar()?);
    }
    Ok(out)
}

impl Codec for SimResult {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(SIM_WIRE_VERSION);
        put_u64_vec(enc, &self.finish);
        enc.put_uvar(self.total);
        put_u64_vec(enc, &self.comm_time);
        enc.put_uvar(self.wildcard_sources.len() as u64);
        for srcs in &self.wildcard_sources {
            enc.put_uvar(srcs.len() as u64);
            for s in srcs {
                enc.put_uvar(*s as u64);
            }
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> DecodeResult<Self> {
        check_version(dec, "sim result")?;
        let finish = get_u64_vec(dec, "sim result finish")?;
        let total = dec.get_uvar()?;
        let comm_time = get_u64_vec(dec, "sim result comm_time")?;
        let nranks = dec.get_uvar()? as usize;
        if nranks > dec.remaining() {
            return Err(DecodeError(format!(
                "sim result claims {nranks} wildcard lists but only {} bytes remain",
                dec.remaining()
            )));
        }
        let mut wildcard_sources = Vec::with_capacity(nranks);
        for _ in 0..nranks {
            let srcs = get_u64_vec(dec, "sim result wildcard sources")?;
            wildcard_sources.push(srcs.into_iter().map(|s| s as u32).collect());
        }
        Ok(SimResult {
            finish,
            total,
            comm_time,
            wildcard_sources,
        })
    }
}

impl Codec for WaitSite {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_uvar(self.gid as u64);
        enc.put_uvar(self.wait_ns);
        enc.put_uvar(self.count);
    }

    fn decode(dec: &mut Decoder<'_>) -> DecodeResult<Self> {
        Ok(WaitSite {
            gid: dec.get_uvar()? as u32,
            wait_ns: dec.get_uvar()?,
            count: dec.get_uvar()?,
        })
    }
}

impl Codec for WaitReport {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(SIM_WIRE_VERSION);
        put_u64_vec(enc, &self.per_rank);
        enc.put_uvar(self.sites.len() as u64);
        for s in &self.sites {
            s.encode(enc);
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> DecodeResult<Self> {
        check_version(dec, "wait report")?;
        let per_rank = get_u64_vec(dec, "wait report per_rank")?;
        let n = dec.get_uvar()? as usize;
        if n > dec.remaining() {
            return Err(DecodeError(format!(
                "wait report claims {n} sites but only {} bytes remain",
                dec.remaining()
            )));
        }
        let mut sites = Vec::with_capacity(n);
        for _ in 0..n {
            sites.push(WaitSite::decode(dec)?);
        }
        Ok(WaitReport { per_rank, sites })
    }
}

fn push_u64_array(out: &mut String, vals: impl Iterator<Item = u64>) {
    use std::fmt::Write;
    out.push('[');
    for (i, v) in vals.enumerate() {
        if i > 0 {
            out.push(',');
        }
        write!(out, "{v}").unwrap();
    }
    out.push(']');
}

impl SimResult {
    /// Communication share of aggregate rank time, in integer permille —
    /// the float-free twin of [`SimResult::comm_fraction`].
    pub fn comm_permille(&self) -> u64 {
        let total: u64 = self.finish.iter().sum();
        if total == 0 {
            return 0;
        }
        let comm: u64 = self.comm_time.iter().sum();
        // u128 keeps the product exact for any realistic trace length.
        ((comm as u128 * 1000) / total as u128) as u64
    }

    /// Deterministic JSON rendering with stable key order and no floats,
    /// shared by `cypress analyze predict --json` and the bench output.
    pub fn render_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        write!(
            out,
            "{{\"total_ns\":{},\"comm_permille\":{}",
            self.total,
            self.comm_permille()
        )
        .unwrap();
        out.push_str(",\"finish_ns\":");
        push_u64_array(&mut out, self.finish.iter().copied());
        out.push_str(",\"comm_time_ns\":");
        push_u64_array(&mut out, self.comm_time.iter().copied());
        out.push_str(",\"wildcard_sources\":[");
        for (i, srcs) in self.wildcard_sources.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_u64_array(&mut out, srcs.iter().map(|s| *s as u64));
        }
        out.push_str("]}");
        out
    }
}

impl WaitReport {
    /// Deterministic JSON rendering with stable key order and no floats,
    /// consumed by `cypress analyze latesender --json`.
    pub fn render_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        write!(out, "{{\"total_wait_ns\":{}", self.total_wait_ns()).unwrap();
        out.push_str(",\"per_rank_ns\":");
        push_u64_array(&mut out, self.per_rank.iter().copied());
        out.push_str(",\"sites\":[");
        for (i, s) in self.sites.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write!(
                out,
                "{{\"gid\":{},\"wait_ns\":{},\"count\":{}}}",
                s.gid, s.wait_ns, s.count
            )
            .unwrap();
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_result() -> SimResult {
        SimResult {
            finish: vec![100, 250, 175],
            total: 250,
            comm_time: vec![40, 90, 0],
            wildcard_sources: vec![vec![], vec![2, 0], vec![]],
        }
    }

    fn sample_waits() -> WaitReport {
        WaitReport {
            per_rank: vec![0, 130, 20],
            sites: vec![
                WaitSite {
                    gid: 7,
                    wait_ns: 130,
                    count: 2,
                },
                WaitSite {
                    gid: 3,
                    wait_ns: 20,
                    count: 1,
                },
            ],
        }
    }

    #[test]
    fn result_roundtrip_and_version_gate() {
        let r = sample_result();
        let bytes = r.to_bytes();
        assert_eq!(bytes[0], SIM_WIRE_VERSION);
        assert_eq!(SimResult::from_bytes(&bytes).unwrap(), r);

        let mut bad = bytes.clone();
        bad[0] = 77;
        let err = SimResult::from_bytes(&bad).unwrap_err();
        assert!(err.0.contains("wire version 77"), "{}", err.0);
    }

    #[test]
    fn wait_report_roundtrip() {
        let w = sample_waits();
        let bytes = w.to_bytes();
        assert_eq!(WaitReport::from_bytes(&bytes).unwrap(), w);
    }

    #[test]
    fn json_renders_are_stable() {
        assert_eq!(
            sample_result().render_json(),
            "{\"total_ns\":250,\"comm_permille\":247,\
             \"finish_ns\":[100,250,175],\"comm_time_ns\":[40,90,0],\
             \"wildcard_sources\":[[],[2,0],[]]}"
        );
        assert_eq!(
            sample_waits().render_json(),
            "{\"total_wait_ns\":150,\"per_rank_ns\":[0,130,20],\
             \"sites\":[{\"gid\":7,\"wait_ns\":130,\"count\":2},\
             {\"gid\":3,\"wait_ns\":20,\"count\":1}]}"
        );
    }
}
