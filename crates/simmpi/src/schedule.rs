//! Schedule-driven simulation: replay compressed loop structure without
//! unrolling it.
//!
//! A [`Schedule`] is the lowered form of a job's CTTs: per-rank op sequences
//! grouped into top-level segments, where a [`Segment::Loop`] carries one
//! loop body plus a trip count instead of `trips` unrolled copies. The
//! driver [`simulate_schedule`] feeds the body to the resumable [`Sim`]
//! engine one iteration at a time; whenever two consecutive iterations end
//! at a *quiescent* boundary (no in-flight messages or collectives) with a
//! uniform per-rank time delta, the simulation state is a time-shifted copy
//! of itself, so the remaining trips are applied arithmetically via
//! [`Sim::extrapolate`] — exact, not approximate, because the engine's
//! arithmetic is shift-invariant (see the module docs in `engine`).
//!
//! Wildcard receives (`MPI_ANY_SOURCE`) make the match graph dependent on
//! global event order, so a schedule containing any wildcard is flattened
//! and simulated in one shot — identical to the decompress-then-simulate
//! oracle by construction.

use crate::engine::{simulate_traced, Sim, SimError, SimOp, SimResult, SimSnapshot, WaitReport};
use crate::model::LogGp;
use cypress_trace::event::ANY_SOURCE;

/// One top-level unit of a lowered schedule. Per-rank op vectors are always
/// `nprocs` long (a rank that does nothing in a segment has an empty vec).
#[derive(Debug, Clone, PartialEq)]
pub enum Segment {
    /// Ops replayed exactly once per rank.
    Straight(Vec<Vec<SimOp>>),
    /// One loop body replayed `trips` times on every rank.
    Loop { trips: u64, body: Vec<Vec<SimOp>> },
}

impl Segment {
    fn ranks(&self) -> usize {
        match self {
            Segment::Straight(ops) => ops.len(),
            Segment::Loop { body, .. } => body.len(),
        }
    }

    fn logical_ops(&self) -> u64 {
        match self {
            Segment::Straight(ops) => ops.iter().map(|o| o.len() as u64).sum(),
            Segment::Loop { trips, body } => {
                *trips * body.iter().map(|o| o.len() as u64).sum::<u64>()
            }
        }
    }

    fn has_wildcard(&self) -> bool {
        let ops = match self {
            Segment::Straight(ops) => ops,
            Segment::Loop { body, .. } => body,
        };
        ops.iter().flatten().any(|op| op.params.src == ANY_SOURCE)
    }
}

/// A compact, loop-aware simulation input lowered from compressed traces.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    pub nprocs: u32,
    pub segments: Vec<Segment>,
}

impl Schedule {
    /// Total ops the schedule represents if fully unrolled.
    pub fn logical_ops(&self) -> u64 {
        self.segments.iter().map(Segment::logical_ops).sum()
    }

    /// True if any op is a wildcard receive (forces flattened simulation).
    pub fn has_wildcard(&self) -> bool {
        self.segments.iter().any(Segment::has_wildcard)
    }

    /// Unroll into plain per-rank op sequences (the oracle input shape).
    pub fn flatten(&self) -> Vec<Vec<SimOp>> {
        let p = self.nprocs as usize;
        let mut out: Vec<Vec<SimOp>> = vec![Vec::new(); p];
        for seg in &self.segments {
            match seg {
                Segment::Straight(ops) => {
                    for (r, o) in ops.iter().enumerate() {
                        out[r].extend(o.iter().cloned());
                    }
                }
                Segment::Loop { trips, body } => {
                    for _ in 0..*trips {
                        for (r, o) in body.iter().enumerate() {
                            out[r].extend(o.iter().cloned());
                        }
                    }
                }
            }
        }
        out
    }
}

/// How a schedule-driven simulation spent its effort.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScheduleStats {
    /// Ops actually fed through the engine.
    pub fed_ops: u64,
    /// Ops the schedule logically represents (fed + extrapolated).
    pub logical_ops: u64,
    /// Loop trips skipped arithmetically instead of simulated.
    pub extrapolated_trips: u64,
    /// True when wildcards forced a full flatten (oracle-equivalent path).
    pub flattened: bool,
}

/// Simulate a schedule, extrapolating steady-state loop iterations.
///
/// Returns the same `(SimResult, WaitReport)` as feeding the flattened
/// schedule to [`simulate_traced`] — the compact path is exact, not an
/// approximation — plus stats recording how much work was skipped.
pub fn simulate_schedule(
    sched: &Schedule,
    model: &LogGp,
) -> Result<(SimResult, WaitReport, ScheduleStats), SimError> {
    let p = sched.nprocs as usize;
    assert!(p > 0, "schedule needs at least one rank");
    for seg in &sched.segments {
        assert_eq!(seg.ranks(), p, "segment rank count mismatch");
    }
    let mut stats = ScheduleStats {
        logical_ops: sched.logical_ops(),
        ..ScheduleStats::default()
    };

    if sched.has_wildcard() {
        // Wildcard matching depends on global order: fall back to the
        // flattened one-shot run, which is the oracle by definition.
        stats.flattened = true;
        stats.fed_ops = stats.logical_ops;
        let flat = sched.flatten();
        let (result, waits) = simulate_traced(&flat, model)?;
        return Ok((result, waits, stats));
    }

    let mut sim = Sim::new(p, model, true);
    for seg in &sched.segments {
        match seg {
            Segment::Straight(ops) => {
                for (r, o) in ops.iter().enumerate() {
                    sim.feed(r, o.iter().cloned());
                }
                stats.fed_ops += ops.iter().map(|o| o.len() as u64).sum::<u64>();
                sim.run(false)?;
            }
            Segment::Loop { trips, body } => {
                let body_ops: u64 = body.iter().map(|o| o.len() as u64).sum();
                let mut prev: Option<SimSnapshot> = None;
                let mut k = 0u64;
                while k < *trips {
                    for (r, o) in body.iter().enumerate() {
                        sim.feed(r, o.iter().cloned());
                    }
                    stats.fed_ops += body_ops;
                    sim.run(false)?;
                    k += 1;
                    if sim.quiescent() {
                        sim.compact();
                        if let Some(base) = prev.take() {
                            let left = *trips - k;
                            if left > 0 && sim.extrapolate(&base, left) {
                                stats.extrapolated_trips += left;
                                break;
                            }
                        }
                        prev = Some(sim.snapshot());
                    } else {
                        // In-flight state couples this iteration to the next;
                        // a snapshot here would not be a valid shift base.
                        prev = None;
                    }
                }
            }
        }
    }
    sim.run(true)?;
    let (result, waits) = sim.into_result();
    Ok((result, waits, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cypress_trace::event::{MpiOp, MpiParams};

    fn op(gid: u32, op: MpiOp, params: MpiParams, pre_gap: u64) -> SimOp {
        SimOp {
            gid,
            op,
            params,
            pre_gap,
        }
    }

    /// Ring sendrecv body: every rank sends right, receives from left.
    fn ring_body(p: u32, bytes: i64, gap: u64) -> Vec<Vec<SimOp>> {
        (0..p)
            .map(|r| {
                let dst = ((r + 1) % p) as i64;
                let src = ((r + p - 1) % p) as i64;
                vec![op(
                    100 + r,
                    MpiOp::Sendrecv,
                    MpiParams::sendrecv(dst, bytes, 7, src, bytes, 7),
                    gap,
                )]
            })
            .collect()
    }

    fn check_matches_oracle(sched: &Schedule, model: &LogGp, expect_extrapolation: bool) {
        let flat = sched.flatten();
        let (oracle_res, oracle_waits) = simulate_traced(&flat, model).unwrap();
        let (res, waits, stats) = simulate_schedule(sched, model).unwrap();
        assert_eq!(res, oracle_res);
        assert_eq!(waits, oracle_waits);
        assert_eq!(stats.logical_ops, flat.iter().map(|o| o.len() as u64).sum());
        if expect_extrapolation {
            assert!(
                stats.extrapolated_trips > 0,
                "expected extrapolation, fed {} of {} ops",
                stats.fed_ops,
                stats.logical_ops
            );
        }
    }

    #[test]
    fn steady_ring_extrapolates_exactly() {
        let model = LogGp::default();
        let sched = Schedule {
            nprocs: 4,
            segments: vec![Segment::Loop {
                trips: 1000,
                body: ring_body(4, 64, 500),
            }],
        };
        check_matches_oracle(&sched, &model, true);
        let (_, _, stats) = simulate_schedule(&sched, &model).unwrap();
        // Two concrete iterations establish the delta; the rest are skipped.
        assert!(stats.fed_ops <= 3 * 4, "fed {} ops", stats.fed_ops);
        assert_eq!(stats.extrapolated_trips, 998);
    }

    #[test]
    fn rendezvous_pipeline_stays_exact() {
        // Large messages use the rendezvous path; odd gaps per rank create a
        // skewed but periodic steady state.
        let model = LogGp::default();
        let p = 3u32;
        let body: Vec<Vec<SimOp>> = (0..p)
            .map(|r| {
                let dst = ((r + 1) % p) as i64;
                let src = ((r + p - 1) % p) as i64;
                vec![
                    op(
                        10 + r,
                        MpiOp::Isend,
                        MpiParams::send(dst, 100_000, 3),
                        100 * (r as u64 + 1),
                    ),
                    op(20 + r, MpiOp::Recv, MpiParams::recv(src, 100_000, 3), 50),
                    op(30 + r, MpiOp::Wait, MpiParams::completion(vec![10 + r]), 0),
                ]
            })
            .collect();
        let sched = Schedule {
            nprocs: p,
            segments: vec![
                Segment::Straight(
                    (0..p)
                        .map(|r| {
                            vec![op(
                                1,
                                MpiOp::Barrier,
                                MpiParams::collective(0),
                                10 * r as u64,
                            )]
                        })
                        .collect(),
                ),
                Segment::Loop { trips: 200, body },
            ],
        };
        check_matches_oracle(&sched, &model, true);
    }

    #[test]
    fn wildcards_force_flatten_and_match_oracle() {
        let model = LogGp::default();
        let mut body = ring_body(3, 32, 100);
        // Rank 0 receives from anyone.
        body[0][0].params.src = ANY_SOURCE;
        let sched = Schedule {
            nprocs: 3,
            segments: vec![Segment::Loop { trips: 50, body }],
        };
        let (_, _, stats) = simulate_schedule(&sched, &model).unwrap();
        assert!(stats.flattened);
        assert_eq!(stats.fed_ops, stats.logical_ops);
        check_matches_oracle(&sched, &model, false);
    }

    #[test]
    fn non_uniform_deltas_fall_back_to_concrete_replay() {
        // A loop whose iterations differ (gap depends on nothing periodic
        // here, but message sizes alternate per segment) — model it as two
        // loops with different bodies plus a straight tail; all must chain.
        let model = LogGp::default();
        let sched = Schedule {
            nprocs: 2,
            segments: vec![
                Segment::Loop {
                    trips: 5,
                    body: ring_body(2, 64, 10),
                },
                Segment::Loop {
                    trips: 5,
                    body: ring_body(2, 50_000, 10),
                },
                Segment::Straight(ring_body(2, 8, 0)),
            ],
        };
        check_matches_oracle(&sched, &model, false);
    }

    #[test]
    fn zero_trip_loop_is_skipped() {
        let model = LogGp::default();
        let sched = Schedule {
            nprocs: 2,
            segments: vec![
                Segment::Loop {
                    trips: 0,
                    body: ring_body(2, 64, 10),
                },
                Segment::Straight(ring_body(2, 8, 0)),
            ],
        };
        check_matches_oracle(&sched, &model, false);
    }
}
