//! Metric primitives and the global registry.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are `Arc`-shared atomics:
//! registration takes the registry mutex once, recording never does. All
//! record paths check [`crate::enabled`] first so disabled instrumentation
//! costs one relaxed load.

use crate::span::{Span, Stopwatch};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Default histogram bucket upper bounds for span durations, in
/// nanoseconds: 1 µs … 10 s, one decade per bucket (plus the implicit
/// overflow bucket).
pub const TIME_BOUNDS_NS: [u64; 8] = [
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
    10_000_000_000,
];

/// Monotone event counter.
#[derive(Clone, Debug)]
pub struct Counter(pub(crate) Arc<AtomicU64>);

impl Counter {
    #[inline(always)]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline(always)]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Point-in-time value; `set_max` turns it into a high-water mark.
#[derive(Clone, Debug)]
pub struct Gauge(pub(crate) Arc<AtomicI64>);

impl Gauge {
    #[inline(always)]
    pub fn set(&self, v: i64) {
        if crate::enabled() {
            self.0.store(v, Ordering::Relaxed);
        }
    }

    #[inline(always)]
    pub fn add(&self, delta: i64) {
        if crate::enabled() {
            self.0.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Raise the gauge to `v` if larger (high-water mark).
    #[inline(always)]
    pub fn set_max(&self, v: i64) {
        if crate::enabled() {
            self.0.fetch_max(v, Ordering::Relaxed);
        }
    }

    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
pub(crate) struct HistInner {
    /// Inclusive upper bounds, strictly increasing; an implicit +inf bucket
    /// follows.
    pub(crate) bounds: Vec<u64>,
    /// `bounds.len() + 1` buckets; the last is the overflow bucket.
    pub(crate) buckets: Vec<AtomicU64>,
    pub(crate) count: AtomicU64,
    pub(crate) sum: AtomicU64,
    pub(crate) min: AtomicU64,
    pub(crate) max: AtomicU64,
}

/// Fixed-bucket histogram (`observe` ≤ bound goes in that bucket).
#[derive(Clone, Debug)]
pub struct Histogram(pub(crate) Arc<HistInner>);

impl Histogram {
    #[inline(always)]
    pub fn observe(&self, v: u64) {
        if crate::enabled() {
            self.record(v);
        }
    }

    /// Record unconditionally — the benchmark harness measures through this
    /// path, so the measurement exists whether or not `--metrics` is on.
    pub fn record(&self, v: u64) {
        let h = &*self.0;
        let idx = h
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(h.bounds.len());
        h.buckets[idx].fetch_add(1, Ordering::Relaxed);
        h.count.fetch_add(1, Ordering::Relaxed);
        h.sum.fetch_add(v, Ordering::Relaxed);
        h.min.fetch_min(v, Ordering::Relaxed);
        h.max.fetch_max(v, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Mean observed value, 0 if empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Estimate the `q`-quantile (`0.0..=1.0`) by linear interpolation
    /// inside the fixed buckets, clamped to the observed min/max so the
    /// estimate never leaves the data range. Returns 0 for an empty
    /// histogram. Accuracy is bounded by bucket width: with the decade
    /// [`TIME_BOUNDS_NS`] buckets the estimate lands in the right decade
    /// and interpolates within it.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let min = self.0.min.load(Ordering::Relaxed);
        let max = self.0.max.load(Ordering::Relaxed);
        if q <= 0.0 {
            return min;
        }
        if q >= 1.0 {
            return max;
        }
        // Rank of the target observation, 1-based: ceil(q * n), at least 1.
        let target = ((q * n as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, b) in self.0.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c == 0 {
                cum += c;
                continue;
            }
            if cum + c >= target {
                // Interpolate within this bucket's value range.
                let lo = if i == 0 {
                    min
                } else {
                    self.0.bounds[i - 1].saturating_add(1)
                };
                let hi = if i < self.0.bounds.len() {
                    self.0.bounds[i]
                } else {
                    max
                };
                let (lo, hi) = (lo.clamp(min, max), hi.clamp(min, max));
                let frac = (target - cum) as f64 / c as f64;
                let est = lo as f64 + frac * (hi.saturating_sub(lo)) as f64;
                return (est.round() as u64).clamp(min, max);
            }
            cum += c;
        }
        max
    }

    /// Per-bucket counts (overflow bucket last).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.0
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    pub fn bounds(&self) -> &[u64] {
        &self.0.bounds
    }

    /// Start a gated RAII span recording into this histogram. Unlike
    /// [`Scope::span`] this takes no registry lock, so it is safe on hot
    /// paths when the handle is pre-registered.
    #[inline]
    pub fn start_span(&self) -> Span {
        Span::start(self.clone())
    }

    /// Start an unconditional stopwatch recording into this histogram.
    #[inline]
    pub fn start_timer(&self) -> Stopwatch {
        Stopwatch::start(self.clone())
    }
}

#[derive(Clone, Debug)]
pub(crate) enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

pub(crate) type Registry = BTreeMap<(String, String), Metric>;

pub(crate) fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// A named subsystem view of the registry; cheap to copy around.
#[derive(Clone, Copy, Debug)]
pub struct Scope {
    subsystem: &'static str,
}

/// Get (or create) the scope for one pipeline subsystem — `"interp"`,
/// `"compressor"`, `"merge"`, `"codec"`, `"deflate"`, `"simmpi"`, `"bench"`.
pub fn scope(subsystem: &'static str) -> Scope {
    Scope { subsystem }
}

impl Scope {
    pub fn name(&self) -> &'static str {
        self.subsystem
    }

    fn key(&self, name: &str) -> (String, String) {
        (self.subsystem.to_owned(), name.to_owned())
    }

    /// Get or register a counter. Registration locks the registry; do it at
    /// construction time, not per event.
    pub fn counter(&self, name: &str) -> Counter {
        let mut reg = registry().lock().expect("obs registry poisoned");
        match reg
            .entry(self.key(name))
            .or_insert_with(|| Metric::Counter(Counter(Arc::new(AtomicU64::new(0)))))
        {
            Metric::Counter(c) => c.clone(),
            other => panic!(
                "metric {}/{name} already registered as {other:?}, not a counter",
                self.subsystem
            ),
        }
    }

    pub fn gauge(&self, name: &str) -> Gauge {
        let mut reg = registry().lock().expect("obs registry poisoned");
        match reg
            .entry(self.key(name))
            .or_insert_with(|| Metric::Gauge(Gauge(Arc::new(AtomicI64::new(0)))))
        {
            Metric::Gauge(g) => g.clone(),
            other => panic!(
                "metric {}/{name} already registered as {other:?}, not a gauge",
                self.subsystem
            ),
        }
    }

    /// Get or register a histogram with the given inclusive upper bounds
    /// (strictly increasing; an overflow bucket is added). Bounds of an
    /// already-registered histogram win.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let mut reg = registry().lock().expect("obs registry poisoned");
        match reg.entry(self.key(name)).or_insert_with(|| {
            Metric::Histogram(Histogram(Arc::new(HistInner {
                bounds: bounds.to_vec(),
                buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                min: AtomicU64::new(u64::MAX),
                max: AtomicU64::new(0),
            })))
        }) {
            Metric::Histogram(h) => h.clone(),
            other => panic!(
                "metric {}/{name} already registered as {other:?}, not a histogram",
                self.subsystem
            ),
        }
    }

    /// RAII span timer recording into the `<name>_ns` histogram when
    /// metrics are enabled; free when disabled (no clock read).
    pub fn span(&self, name: &str) -> Span {
        Span::start(self.histogram(&format!("{name}_ns"), &TIME_BOUNDS_NS))
    }

    /// Always-on stopwatch over the same `<name>_ns` histogram — the
    /// benchmark harness's measurement path (Fig. 16/18 derive from it).
    pub fn timer(&self, name: &str) -> Stopwatch {
        Stopwatch::start(self.histogram(&format!("{name}_ns"), &TIME_BOUNDS_NS))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_disabled_records_nothing() {
        let _guard = crate::test_mutex().lock().unwrap();
        crate::set_enabled(false);
        let c = scope("t-metrics").counter("disabled");
        c.inc();
        c.add(10);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn gauge_set_max_is_high_water() {
        let _guard = crate::test_mutex().lock().unwrap();
        crate::set_enabled(true);
        let g = scope("t-metrics").gauge("hw");
        g.set(0);
        g.set_max(5);
        g.set_max(3);
        g.set_max(9);
        assert_eq!(g.get(), 9);
        crate::set_enabled(false);
    }

    #[test]
    fn quantiles_on_uniform_distribution() {
        let _guard = crate::test_mutex().lock().unwrap();
        crate::set_enabled(true);
        crate::reset();
        // 1..=1000 uniform into decade buckets: true p50=500, p90=900,
        // p99=990. Interpolation within the 101–1000 bucket is exact for
        // uniform data up to bucket-edge rounding.
        let h = scope("t-metrics").histogram("uniform", &[10, 100, 1_000, 10_000]);
        for v in 1..=1000u64 {
            h.observe(v);
        }
        let p50 = h.quantile(0.50);
        let p90 = h.quantile(0.90);
        let p99 = h.quantile(0.99);
        assert!((490..=510).contains(&p50), "p50={p50}");
        assert!((890..=910).contains(&p90), "p90={p90}");
        assert!((980..=1000).contains(&p99), "p99={p99}");
        // Extremes clamp to observed min/max.
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(h.quantile(1.0), 1000);
        crate::set_enabled(false);
    }

    #[test]
    fn quantiles_on_point_mass_and_empty() {
        let _guard = crate::test_mutex().lock().unwrap();
        crate::set_enabled(true);
        crate::reset();
        let h = scope("t-metrics").histogram("point", &TIME_BOUNDS_NS);
        assert_eq!(h.quantile(0.5), 0, "empty histogram");
        for _ in 0..100 {
            h.observe(5_000);
        }
        // All mass at one value: every quantile is that value (min==max
        // clamping defeats within-bucket interpolation error).
        assert_eq!(h.quantile(0.5), 5_000);
        assert_eq!(h.quantile(0.99), 5_000);
        crate::set_enabled(false);
    }

    #[test]
    fn quantiles_on_bimodal_distribution() {
        let _guard = crate::test_mutex().lock().unwrap();
        crate::set_enabled(true);
        crate::reset();
        // 90 fast observations (~2µs) + 10 slow (~2s): p50/p90 must stay in
        // the fast decade, p99 in the slow one — the exact shape that
        // motivates quantiles over means for span histograms.
        let h = scope("t-metrics").histogram("bimodal", &TIME_BOUNDS_NS);
        for _ in 0..90 {
            h.observe(2_000);
        }
        for _ in 0..10 {
            h.observe(2_000_000_000);
        }
        assert!(h.quantile(0.50) <= 10_000, "p50={}", h.quantile(0.50));
        assert!(h.quantile(0.90) <= 10_000, "p90={}", h.quantile(0.90));
        assert!(
            h.quantile(0.99) >= 1_000_000_000,
            "p99={}",
            h.quantile(0.99)
        );
        crate::set_enabled(false);
    }

    #[test]
    fn same_name_returns_same_handle() {
        let _guard = crate::test_mutex().lock().unwrap();
        crate::set_enabled(true);
        let a = scope("t-metrics").counter("shared");
        let b = scope("t-metrics").counter("shared");
        let before = a.get();
        a.inc();
        b.inc();
        assert_eq!(a.get(), before + 2);
        crate::set_enabled(false);
    }
}
