//! Registry snapshots and report emitters.
//!
//! [`report`] snapshots every registered metric; [`Report::to_text`]
//! renders an aligned table for stdout and [`Report::to_jsonl`] one JSON
//! object per metric for `results/metrics.jsonl`. JSON is emitted by hand
//! (offline build — no serde): the shape is fixed and covered by a golden
//! test.

use crate::metrics::{registry, Metric};
use std::sync::atomic::Ordering;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    Counter,
    Gauge,
    Histogram,
}

impl MetricKind {
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// Point-in-time copy of one metric's value.
#[derive(Clone, Debug)]
pub struct MetricSnapshot {
    pub subsystem: String,
    pub name: String,
    pub kind: MetricKind,
    /// Counter value or gauge value (gauges may be negative).
    pub value: i64,
    /// Histogram-only fields; empty/zero otherwise.
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    /// Interpolated quantile estimates (see [`crate::Histogram::quantile`]).
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
    pub bounds: Vec<u64>,
    pub buckets: Vec<u64>,
}

impl MetricSnapshot {
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// All metrics at one instant, sorted by (subsystem, name).
#[derive(Clone, Debug, Default)]
pub struct Report {
    pub metrics: Vec<MetricSnapshot>,
}

/// Snapshot the global registry.
pub fn report() -> Report {
    let reg = registry().lock().expect("obs registry poisoned");
    let metrics = reg
        .iter()
        .map(|((subsystem, name), metric)| {
            let mut snap = MetricSnapshot {
                subsystem: subsystem.clone(),
                name: name.clone(),
                kind: MetricKind::Counter,
                value: 0,
                count: 0,
                sum: 0,
                min: 0,
                max: 0,
                p50: 0,
                p90: 0,
                p99: 0,
                bounds: Vec::new(),
                buckets: Vec::new(),
            };
            match metric {
                Metric::Counter(c) => {
                    snap.kind = MetricKind::Counter;
                    snap.value = c.get() as i64;
                }
                Metric::Gauge(g) => {
                    snap.kind = MetricKind::Gauge;
                    snap.value = g.get();
                }
                Metric::Histogram(h) => {
                    snap.kind = MetricKind::Histogram;
                    snap.count = h.count();
                    snap.sum = h.sum();
                    let min = h.0.min.load(Ordering::Relaxed);
                    snap.min = if min == u64::MAX { 0 } else { min };
                    snap.max = h.0.max.load(Ordering::Relaxed);
                    snap.p50 = h.quantile(0.50);
                    snap.p90 = h.quantile(0.90);
                    snap.p99 = h.quantile(0.99);
                    snap.bounds = h.bounds().to_vec();
                    snap.buckets = h.bucket_counts();
                }
            }
            snap
        })
        .collect();
    Report { metrics }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

impl Report {
    /// Aligned text table, one metric per row.
    pub fn to_text(&self) -> String {
        if self.metrics.is_empty() {
            return "no metrics recorded\n".to_owned();
        }
        let mut rows: Vec<[String; 4]> = vec![[
            "subsystem".into(),
            "metric".into(),
            "kind".into(),
            "value".into(),
        ]];
        for m in &self.metrics {
            let value = match m.kind {
                MetricKind::Counter | MetricKind::Gauge => m.value.to_string(),
                MetricKind::Histogram => {
                    // Span histograms are named *_ns; show humane durations.
                    if m.name.ends_with("_ns") {
                        format!(
                            "n={} sum={} mean={} p50={} p90={} p99={} max={}",
                            m.count,
                            fmt_ns(m.sum),
                            fmt_ns(m.mean() as u64),
                            fmt_ns(m.p50),
                            fmt_ns(m.p90),
                            fmt_ns(m.p99),
                            fmt_ns(m.max),
                        )
                    } else {
                        format!(
                            "n={} sum={} mean={:.1} p50={} p90={} p99={} max={}",
                            m.count,
                            m.sum,
                            m.mean(),
                            m.p50,
                            m.p90,
                            m.p99,
                            m.max
                        )
                    }
                }
            };
            rows.push([
                m.subsystem.clone(),
                m.name.clone(),
                m.kind.as_str().to_owned(),
                value,
            ]);
        }
        let mut widths = [0usize; 4];
        for row in &rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        for (i, row) in rows.iter().enumerate() {
            for (j, cell) in row.iter().enumerate() {
                if j > 0 {
                    out.push_str("  ");
                }
                out.push_str(cell);
                if j < 3 {
                    for _ in cell.len()..widths[j] {
                        out.push(' ');
                    }
                }
            }
            out.push('\n');
            if i == 0 {
                for (j, w) in widths.iter().enumerate() {
                    if j > 0 {
                        out.push_str("  ");
                    }
                    for _ in 0..*w {
                        out.push('-');
                    }
                }
                out.push('\n');
            }
        }
        out
    }

    /// JSON-lines: one object per metric, keys in fixed order. Counters and
    /// gauges carry `value`; histograms carry `count`/`sum`/`min`/`max`/
    /// `bounds`/`buckets`.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for m in &self.metrics {
            out.push_str("{\"subsystem\":");
            json_str(&mut out, &m.subsystem);
            out.push_str(",\"name\":");
            json_str(&mut out, &m.name);
            out.push_str(",\"kind\":\"");
            out.push_str(m.kind.as_str());
            out.push('"');
            match m.kind {
                MetricKind::Counter | MetricKind::Gauge => {
                    out.push_str(&format!(",\"value\":{}", m.value));
                }
                MetricKind::Histogram => {
                    out.push_str(&format!(
                        ",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"bounds\":{},\"buckets\":{}",
                        m.count,
                        m.sum,
                        m.min,
                        m.max,
                        m.p50,
                        m.p90,
                        m.p99,
                        json_u64_array(&m.bounds),
                        json_u64_array(&m.buckets),
                    ));
                }
            }
            out.push_str("}\n");
        }
        out
    }
}

fn json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn json_u64_array(xs: &[u64]) -> String {
    let mut s = String::from("[");
    for (i, x) in xs.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&x.to_string());
    }
    s.push(']');
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::scope;

    #[test]
    fn jsonl_golden_shape() {
        let _guard = crate::test_mutex().lock().unwrap();
        crate::reset();
        crate::set_enabled(true);
        let m = scope("golden");
        m.counter("events").add(7);
        m.gauge("live_bytes").set(-3);
        m.histogram("lat", &[10, 100]).observe(5);
        m.histogram("lat", &[10, 100]).observe(50);
        m.histogram("lat", &[10, 100]).observe(5000);
        let got = report().to_jsonl();
        let want = concat!(
            "{\"subsystem\":\"golden\",\"name\":\"events\",\"kind\":\"counter\",\"value\":7}\n",
            "{\"subsystem\":\"golden\",\"name\":\"lat\",\"kind\":\"histogram\",",
            "\"count\":3,\"sum\":5055,\"min\":5,\"max\":5000,",
            "\"p50\":100,\"p90\":5000,\"p99\":5000,",
            "\"bounds\":[10,100],\"buckets\":[1,1,1]}\n",
            "{\"subsystem\":\"golden\",\"name\":\"live_bytes\",\"kind\":\"gauge\",\"value\":-3}\n",
        );
        assert_eq!(got, want);
        crate::set_enabled(false);
        crate::reset();
    }

    #[test]
    fn text_table_is_aligned_and_complete() {
        let _guard = crate::test_mutex().lock().unwrap();
        crate::reset();
        crate::set_enabled(true);
        let m = scope("texttab");
        m.counter("a_counter").add(42);
        m.gauge("a_gauge").set(9);
        let text = report().to_text();
        assert!(text.contains("a_counter"));
        assert!(text.contains("a_gauge"));
        assert!(text.contains("42"));
        // Header divider present.
        assert!(text.lines().nth(1).unwrap().starts_with('-'));
        crate::set_enabled(false);
        crate::reset();
    }

    #[test]
    fn json_string_escaping() {
        let mut s = String::new();
        json_str(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn empty_report_text() {
        let _guard = crate::test_mutex().lock().unwrap();
        crate::reset();
        assert_eq!(report().to_text(), "no metrics recorded\n");
        assert_eq!(report().to_jsonl(), "");
    }
}
