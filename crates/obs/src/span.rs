//! RAII span timing.
//!
//! [`Span`] is the gated variant: when metrics are disabled it never reads
//! the clock, so an instrumented hot path pays only the enable-flag load.
//! [`Stopwatch`] always measures — it is the measurement path for the
//! benchmark harness (the Fig. 16/18 overhead columns come from it) and
//! records through [`Histogram::record`], which bypasses the enable gate.

use crate::metrics::Histogram;
use std::time::Instant;

/// Gated RAII timer. Started via [`crate::Scope::span`]; records elapsed
/// nanoseconds into its histogram on drop, but only if metrics were enabled
/// when the span started.
#[derive(Debug)]
pub struct Span {
    inner: Option<(Instant, Histogram)>,
}

impl Span {
    pub(crate) fn start(hist: Histogram) -> Self {
        Span {
            inner: if crate::enabled() {
                Some((Instant::now(), hist))
            } else {
                None
            },
        }
    }

    /// Elapsed nanoseconds so far, or 0 if the span is disabled.
    pub fn elapsed_ns(&self) -> u64 {
        match &self.inner {
            Some((start, _)) => start.elapsed().as_nanos() as u64,
            None => 0,
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((start, hist)) = self.inner.take() {
            hist.record(start.elapsed().as_nanos() as u64);
        }
    }
}

/// Unconditional timer. Started via [`crate::Scope::timer`]; always reads
/// the clock and always records, so measurements exist whether or not
/// `--metrics` is on. Use for the benchmark measurement path, not for
/// hot-loop instrumentation.
#[derive(Debug)]
pub struct Stopwatch {
    start: Instant,
    hist: Histogram,
    recorded: bool,
}

impl Stopwatch {
    pub(crate) fn start(hist: Histogram) -> Self {
        Stopwatch {
            start: Instant::now(),
            hist,
            recorded: false,
        }
    }

    /// Stop, record, and return elapsed nanoseconds.
    pub fn stop_ns(mut self) -> u64 {
        let ns = self.start.elapsed().as_nanos() as u64;
        self.hist.record(ns);
        self.recorded = true;
        ns
    }

    /// Stop, record, and return elapsed seconds.
    pub fn stop_secs(self) -> f64 {
        self.stop_ns() as f64 / 1e9
    }
}

impl Drop for Stopwatch {
    fn drop(&mut self) {
        if !self.recorded {
            self.hist.record(self.start.elapsed().as_nanos() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::metrics::{scope, TIME_BOUNDS_NS};

    #[test]
    fn span_disabled_records_nothing() {
        let _guard = crate::test_mutex().lock().unwrap();
        crate::set_enabled(false);
        let h = scope("t-span").histogram("noop_ns", &TIME_BOUNDS_NS);
        let before = h.count();
        drop(scope("t-span").span("noop"));
        assert_eq!(h.count(), before);
    }

    #[test]
    fn span_enabled_records_once() {
        let _guard = crate::test_mutex().lock().unwrap();
        crate::set_enabled(true);
        let h = scope("t-span").histogram("timed_ns", &TIME_BOUNDS_NS);
        let before = h.count();
        drop(scope("t-span").span("timed"));
        assert_eq!(h.count(), before + 1);
        crate::set_enabled(false);
    }

    #[test]
    fn nested_spans_each_record() {
        let _guard = crate::test_mutex().lock().unwrap();
        crate::set_enabled(true);
        let m = scope("t-span");
        let outer_h = m.histogram("outer_ns", &TIME_BOUNDS_NS);
        let inner_h = m.histogram("inner_ns", &TIME_BOUNDS_NS);
        let (o0, i0) = (outer_h.count(), inner_h.count());
        {
            let _outer = m.span("outer");
            let _inner = m.span("inner");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(outer_h.count(), o0 + 1);
        assert_eq!(inner_h.count(), i0 + 1);
        // The outer span encloses the inner one, so its recorded duration
        // must be at least as long.
        assert!(outer_h.sum() >= inner_h.sum());
        crate::set_enabled(false);
    }

    #[test]
    fn stopwatch_records_even_when_disabled() {
        let _guard = crate::test_mutex().lock().unwrap();
        crate::set_enabled(false);
        let h = scope("t-span").histogram("sw_ns", &TIME_BOUNDS_NS);
        let before = h.count();
        let ns = scope("t-span").timer("sw").stop_ns();
        assert_eq!(h.count(), before + 1);
        assert!(h.sum() >= ns.min(h.sum()));
    }
}
