//! # cypress-obs — pipeline-wide observability substrate
//!
//! CYPRESS's headline evaluation numbers (Fig. 16–18: 1.58% intra-process
//! time overhead, flat compressor memory, O(n) merge cost) are
//! *observability* claims. This crate makes them self-reported rather than
//! measured ad hoc: every pipeline layer registers counters, gauges,
//! fixed-bucket histograms, and RAII span timers under a named subsystem
//! scope in one global registry, and the `--metrics` flag of the `cypress`
//! and `figures` binaries dumps the registry as an aligned text table plus
//! JSON-lines (`results/metrics.jsonl`).
//!
//! Design constraints:
//!
//! * **Near-zero cost when disabled.** Recording instrumentation inside the
//!   compressor whose overhead the compressor itself reports must not
//!   distort the report. Every record path starts with one relaxed atomic
//!   load of the global enable flag ([`enabled`]); when off, counters,
//!   gauges, and histograms return before touching shared state, and span
//!   timers never call `Instant::now`. `benches/bench_obs.rs` in
//!   `cypress-bench` pins this property.
//! * **No external dependencies.** The build environment is fully offline,
//!   so the registry is `std::sync` only: handles are `Arc`-shared atomics,
//!   and the name→handle map is behind a plain `Mutex` touched only at
//!   registration and report time, never on the record path.
//!
//! ```
//! let m = cypress_obs::scope("demo-compressor");
//! let hits = m.counter("leaf_fold_hits");
//! cypress_obs::set_enabled(true);
//! hits.add(3);
//! let span = m.span("compress");
//! drop(span); // records elapsed ns into the `compress_ns` histogram
//! let report = cypress_obs::report();
//! assert!(report.to_text().contains("leaf_fold_hits"));
//! cypress_obs::set_enabled(false);
//! ```

pub mod fsio;
pub mod log;
pub mod metrics;
pub mod report;
pub mod rng;
pub mod span;
pub mod tracing;

pub use fsio::{append_atomic, write_atomic};
pub use log::{log_emit, log_enabled, log_level, set_log_level, Level};
pub use metrics::{scope, Counter, Gauge, Histogram, Scope, TIME_BOUNDS_NS};
pub use report::{report, MetricKind, MetricSnapshot, Report};
pub use span::{Span, Stopwatch};
pub use tracing::{
    clear_thread_rank, set_thread_rank, set_trace_enabled, trace_begin, trace_complete,
    trace_drain, trace_enabled, trace_end, trace_instant, trace_now_ns, trace_reset,
    trace_snapshot, trace_span, RankRow, StageProfile, StageRow, TraceDump, TraceEvent, TracePhase,
    TraceSpan, NO_RANK,
};

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Is metric recording enabled? One relaxed load — this is the only cost
/// instrumented hot paths pay when observability is off.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Globally enable or disable metric recording. Flip once at startup
/// (`--metrics`); recording sites observe the flag per operation.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Clear all registered metrics and their values (tests and repeated
/// measurement phases).
pub fn reset() {
    metrics::registry()
        .lock()
        .expect("obs registry poisoned")
        .clear();
}

/// Serializes tests that toggle the global enable flag or reset the
/// registry. Not part of the public API surface proper.
#[doc(hidden)]
pub fn test_mutex() -> &'static std::sync::Mutex<()> {
    static LOCK: std::sync::OnceLock<std::sync::Mutex<()>> = std::sync::OnceLock::new();
    LOCK.get_or_init(|| std::sync::Mutex::new(()))
}
