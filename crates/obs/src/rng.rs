//! Deterministic test PRNG (SplitMix64).
//!
//! The build environment is offline, so `rand`/`proptest` are unavailable;
//! seeded-loop tests across the workspace draw from this instead. SplitMix64
//! passes BigCrush for this use, is trivially seedable, and two different
//! seeds give independent-enough streams for fuzz-style coverage. Not for
//! cryptography.

use std::ops::Range;

#[derive(Clone, Debug)]
pub struct Rng(u64);

impl Rng {
    pub fn new(seed: u64) -> Self {
        Rng(seed)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "Rng::below(0)");
        // Multiply-shift bounded generation; the tiny modulo bias is
        // irrelevant for test workloads.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform in `lo..hi` (half-open, like `rand::gen_range`).
    pub fn range_u64(&mut self, r: Range<u64>) -> u64 {
        assert!(r.start < r.end, "empty range");
        r.start + self.below(r.end - r.start)
    }

    pub fn range_usize(&mut self, r: Range<usize>) -> usize {
        self.range_u64(r.start as u64..r.end as u64) as usize
    }

    pub fn range_i64(&mut self, r: Range<i64>) -> i64 {
        assert!(r.start < r.end, "empty range");
        let span = r.end.wrapping_sub(r.start) as u64;
        r.start.wrapping_add(self.below(span) as i64)
    }

    pub fn range_i32(&mut self, r: Range<i32>) -> i32 {
        self.range_i64(r.start as i64..r.end as i64) as i32
    }

    /// `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }

    /// Derive an independent sub-stream (e.g. one per test case).
    pub fn split(&mut self) -> Rng {
        Rng(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Rng::new(7);
        for _ in 0..10_000 {
            let x = r.range_usize(3..17);
            assert!((3..17).contains(&x));
            let y = r.range_i64(-5..6);
            assert!((-5..6).contains(&y));
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn chance_tracks_probability() {
        let mut r = Rng::new(123);
        let hits = (0..20_000).filter(|_| r.chance(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = Rng::new(9);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
