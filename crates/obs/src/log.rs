//! Env-controlled structured logging.
//!
//! `CYPRESS_LOG=error|warn|info|debug|trace` (or `off`, the default) sets
//! the level once at first use. Records go to stderr as one line of
//! `key=value` pairs with a process-relative timestamp:
//!
//! ```text
//! [  0.014s INFO  merge] pair merged ranks=8 vertices=120
//! ```
//!
//! Use via the [`crate::log_emit`] function or the [`crate::obs_log!`]
//! macro; both check [`log_enabled`] first so a disabled level costs one
//! relaxed load and no formatting.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Log severity, ordered so that a smaller numeric value is more severe.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    Error = 1,
    Warn = 2,
    Info = 3,
    Debug = 4,
    Trace = 5,
}

impl Level {
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
            Level::Trace => "TRACE",
        }
    }
}

const LEVEL_UNSET: u8 = u8::MAX;
const LEVEL_OFF: u8 = 0;

static MAX_LEVEL: AtomicU8 = AtomicU8::new(LEVEL_UNSET);

/// Case-insensitive level parse. `Ok(LEVEL_OFF)` for the explicit "off"
/// spellings; `Err(())` for anything unrecognized so the caller can warn
/// instead of silently disabling logging.
fn parse_level(s: &str) -> Result<u8, ()> {
    match s.trim().to_ascii_lowercase().as_str() {
        "error" => Ok(Level::Error as u8),
        "warn" | "warning" => Ok(Level::Warn as u8),
        "info" => Ok(Level::Info as u8),
        "debug" => Ok(Level::Debug as u8),
        "trace" => Ok(Level::Trace as u8),
        "off" | "none" | "" => Ok(LEVEL_OFF),
        _ => Err(()),
    }
}

fn max_level() -> u8 {
    let v = MAX_LEVEL.load(Ordering::Relaxed);
    if v != LEVEL_UNSET {
        return v;
    }
    let parsed = match std::env::var("CYPRESS_LOG") {
        Ok(s) => parse_level(&s).unwrap_or_else(|()| {
            // Warn exactly once per process, then fall back to off.
            static WARNED: std::sync::Once = std::sync::Once::new();
            WARNED.call_once(|| {
                eprintln!(
                    "cypress: unrecognized CYPRESS_LOG level {s:?} \
                     (expected error|warn|info|debug|trace|off); logging disabled"
                );
            });
            LEVEL_OFF
        }),
        Err(_) => LEVEL_OFF,
    };
    MAX_LEVEL.store(parsed, Ordering::Relaxed);
    parsed
}

/// Override the level programmatically (takes precedence over
/// `CYPRESS_LOG`; used by tests and by `--metrics -v` style flags).
pub fn set_log_level(level: Option<Level>) {
    MAX_LEVEL.store(level.map_or(LEVEL_OFF, |l| l as u8), Ordering::Relaxed);
}

/// Current maximum level, `None` if logging is off.
pub fn log_level() -> Option<Level> {
    match max_level() {
        x if x == Level::Error as u8 => Some(Level::Error),
        x if x == Level::Warn as u8 => Some(Level::Warn),
        x if x == Level::Info as u8 => Some(Level::Info),
        x if x == Level::Debug as u8 => Some(Level::Debug),
        x if x == Level::Trace as u8 => Some(Level::Trace),
        _ => None,
    }
}

/// Would a record at `level` be emitted? Check before formatting.
#[inline]
pub fn log_enabled(level: Level) -> bool {
    level as u8 <= max_level()
}

fn process_start() -> Instant {
    static START: OnceLock<Instant> = OnceLock::new();
    *START.get_or_init(Instant::now)
}

/// Emit one structured record to stderr. Call through [`log_enabled`] (or
/// the [`crate::obs_log!`] macro) so disabled levels pay no formatting.
pub fn log_emit(level: Level, subsystem: &str, message: &std::fmt::Arguments<'_>) {
    if !log_enabled(level) {
        return;
    }
    let t = process_start().elapsed().as_secs_f64();
    eprintln!("[{t:>8.3}s {:<5} {subsystem}] {message}", level.as_str());
}

/// Structured log macro: `obs_log!(Level::Info, "merge", "pair merged ranks={n}")`.
#[macro_export]
macro_rules! obs_log {
    ($level:expr, $subsystem:expr, $($arg:tt)*) => {
        if $crate::log_enabled($level) {
            $crate::log_emit($level, $subsystem, &format_args!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parsing_and_ordering() {
        let _guard = crate::test_mutex().lock().unwrap();
        set_log_level(Some(Level::Info));
        assert!(log_enabled(Level::Error));
        assert!(log_enabled(Level::Info));
        assert!(!log_enabled(Level::Debug));
        assert_eq!(log_level(), Some(Level::Info));
        set_log_level(None);
        assert!(!log_enabled(Level::Error));
        assert_eq!(log_level(), None);
    }

    #[test]
    fn parse_accepts_known_names_only() {
        assert_eq!(parse_level("TRACE"), Ok(Level::Trace as u8));
        assert_eq!(parse_level(" warn "), Ok(Level::Warn as u8));
        assert_eq!(parse_level("Info"), Ok(Level::Info as u8));
        assert_eq!(parse_level("OFF"), Ok(LEVEL_OFF));
        assert_eq!(parse_level("none"), Ok(LEVEL_OFF));
        assert_eq!(parse_level(""), Ok(LEVEL_OFF));
        assert_eq!(parse_level("bogus"), Err(()));
        assert_eq!(parse_level("infoo"), Err(()));
    }
}
