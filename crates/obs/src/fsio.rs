//! Atomic result-file helpers.
//!
//! Benchmark and metrics emitters from concurrent processes all funnel into
//! `results/`. Plain `fs::write`/append can interleave partial lines when
//! two runs race; these helpers write a private temp file in the target
//! directory and `rename` it into place — `rename(2)` within one directory
//! is atomic, so readers observe either the old or the new file, never a
//! torn one.

use std::fs;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Distinct temp names per call within one process.
static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);

fn temp_sibling(path: &Path) -> std::path::PathBuf {
    let file = path
        .file_name()
        .map(|f| f.to_string_lossy().into_owned())
        .unwrap_or_else(|| "out".to_owned());
    let seq = TEMP_SEQ.fetch_add(1, Ordering::Relaxed);
    path.with_file_name(format!(".{file}.tmp.{}.{seq}", std::process::id()))
}

/// Write `bytes` to `path` atomically (write temp sibling, then rename),
/// creating parent directories as needed.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    let tmp = temp_sibling(path);
    fs::write(&tmp, bytes)?;
    let renamed = fs::rename(&tmp, path);
    if renamed.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    renamed
}

/// Append `bytes` to `path` atomically: read the current contents (if any),
/// concatenate, and [`write_atomic`] the result. Concurrent appenders can
/// still lose each other's *whole* update on a race, but a reader never sees
/// interleaved or truncated lines — the failure mode JSONL consumers care
/// about.
pub fn append_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut all = match fs::read(path) {
        Ok(existing) => existing,
        Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    all.extend_from_slice(bytes);
    write_atomic(path, &all)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("cypress-fsio-{name}-{}", std::process::id()));
        fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    #[test]
    fn write_atomic_creates_missing_dirs() {
        let dir = tmpdir("write");
        let path = dir.join("nested/deeper/out.json");
        write_atomic(&path, b"{}").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"{}");
        // Overwrite replaces wholesale.
        write_atomic(&path, b"[1]").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"[1]");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn append_atomic_accumulates_lines() {
        let dir = tmpdir("append");
        let path = dir.join("log.jsonl");
        append_atomic(&path, b"{\"a\":1}\n").unwrap();
        append_atomic(&path, b"{\"b\":2}\n").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "{\"a\":1}\n{\"b\":2}\n");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn no_temp_litter_left_behind() {
        let dir = tmpdir("litter");
        let path = dir.join("out.txt");
        write_atomic(&path, b"x").unwrap();
        let names: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["out.txt".to_owned()]);
        let _ = fs::remove_dir_all(&dir);
    }
}
