//! Structured timeline tracing: bounded per-thread event rings.
//!
//! The metrics registry ([`crate::metrics`]) answers *how much* — counts,
//! sums, distributions. It cannot answer *where wall time goes per rank,
//! per stage, over time*, which is exactly what the interpreter→session
//! bottleneck hunt needs. This module records discrete timeline events:
//!
//! * **begin/end/instant/complete events** with nanosecond timestamps
//!   relative to one process-wide epoch, a `&'static str` name, a
//!   `&'static str` stage label (the Chrome "category"), the recording
//!   thread, and an optional rank label;
//! * **bounded per-thread rings** — each thread appends to its own
//!   fixed-capacity buffer; when the ring fills, events are *dropped and
//!   counted* (atomic per-ring drop counter), never grown without bound;
//! * **near-zero cost when disabled** — every record path starts with one
//!   relaxed atomic load ([`trace_enabled`]); when off, no clock is read
//!   and no ring is touched (same discipline as [`crate::enabled`]).
//!
//! A finished run is [`trace_drain`]ed into a [`TraceDump`], which exports
//! as Chrome trace-event JSON (loadable in Perfetto / `chrome://tracing`)
//! or JSONL, and rolls up into a [`StageProfile`]: a per-stage / per-rank
//! wall-time attribution table with exclusive (self-time) accounting, so
//! nested spans never double count.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

static TRACE_ENABLED: AtomicBool = AtomicBool::new(false);

/// Default per-thread ring capacity, in events. 64 Ki events × 64 B/event
/// = 4 MiB per recording thread, enough for every bundled workload with
/// coarse-grained tracepoints; overflow drops (counted) rather than grows.
pub const DEFAULT_RING_CAPACITY: usize = 64 * 1024;

/// Is timeline tracing enabled? One relaxed load — the only cost an
/// instrumented path pays when tracing is off.
#[inline(always)]
pub fn trace_enabled() -> bool {
    TRACE_ENABLED.load(Ordering::Relaxed)
}

/// Globally enable or disable timeline tracing. Flip once at startup
/// (`--trace-out`); recording sites observe the flag per event. Enabling
/// also pins the trace epoch if it is not set yet.
pub fn set_trace_enabled(on: bool) {
    if on {
        let _ = epoch();
    }
    TRACE_ENABLED.store(on, Ordering::Relaxed);
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the trace epoch (pinned at first use / first enable).
#[inline]
pub fn trace_now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// Event phase, mirroring the Chrome trace-event phases we emit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum TracePhase {
    /// `ph:"B"` — duration begin.
    Begin = 0,
    /// `ph:"E"` — duration end.
    End = 1,
    /// `ph:"i"` — instant.
    Instant = 2,
    /// `ph:"X"` — complete (begin timestamp + duration in one record).
    Complete = 3,
}

impl TracePhase {
    pub fn chrome(self) -> &'static str {
        match self {
            TracePhase::Begin => "B",
            TracePhase::End => "E",
            TracePhase::Instant => "i",
            TracePhase::Complete => "X",
        }
    }
}

/// Rank label value meaning "not rank-scoped".
pub const NO_RANK: i64 = -1;

/// One timeline event. Fixed-size and `Copy` so ring appends are a bump
/// write, and labels are `&'static str` so recording never allocates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Nanoseconds since the trace epoch (begin timestamp for `Complete`).
    pub ts_ns: u64,
    /// Duration in nanoseconds (`Complete` only; 0 otherwise).
    pub dur_ns: u64,
    /// Event name (`"rank"`, `"deflate"`, `"steal"`, …).
    pub name: &'static str,
    /// Stage label — the Chrome category: `"interp"`, `"session"`,
    /// `"merge"`, `"encode"`, `"io"`, `"net"`, `"sched"`, `"deflate"`, ….
    pub stage: &'static str,
    pub phase: TracePhase,
    /// Recording thread (small sequential id, stable per thread).
    pub tid: u32,
    /// Rank label, [`NO_RANK`] when the thread is not rank-scoped.
    pub rank: i64,
    /// One free numeric argument (bytes, counts, …); 0 when unused.
    pub arg: u64,
}

/// One thread's bounded event buffer, shared with the global registry so
/// [`trace_drain`] can collect it after the thread has moved on.
struct Ring {
    events: Mutex<Vec<TraceEvent>>,
    dropped: AtomicU64,
    capacity: usize,
}

fn rings() -> &'static Mutex<Vec<Arc<Ring>>> {
    static RINGS: OnceLock<Mutex<Vec<Arc<Ring>>>> = OnceLock::new();
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

fn ring_capacity() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| {
        std::env::var("CYPRESS_TRACE_RING")
            .ok()
            .and_then(|s| s.parse().ok())
            .filter(|&c: &usize| c > 0)
            .unwrap_or(DEFAULT_RING_CAPACITY)
    })
}

static NEXT_TID: AtomicU32 = AtomicU32::new(1);

thread_local! {
    static THREAD_RING: OnceLock<(u32, Arc<Ring>)> = const { OnceLock::new() };
    static THREAD_RANK: Cell<i64> = const { Cell::new(NO_RANK) };
}

fn with_ring(f: impl FnOnce(u32, &Ring)) {
    THREAD_RING.with(|slot| {
        let (tid, ring) = slot.get_or_init(|| {
            let ring = Arc::new(Ring {
                events: Mutex::new(Vec::new()),
                dropped: AtomicU64::new(0),
                capacity: ring_capacity(),
            });
            rings()
                .lock()
                .expect("trace ring registry poisoned")
                .push(ring.clone());
            (NEXT_TID.fetch_add(1, Ordering::Relaxed), ring)
        });
        f(*tid, ring);
    });
}

/// Label this thread's subsequent events with a rank. Pass [`NO_RANK`] (or
/// call [`clear_thread_rank`]) when the thread stops working on that rank —
/// pooled workers are reused across ranks.
pub fn set_thread_rank(rank: u32) {
    THREAD_RANK.with(|r| r.set(rank as i64));
}

/// Remove this thread's rank label.
pub fn clear_thread_rank() {
    THREAD_RANK.with(|r| r.set(NO_RANK));
}

#[inline]
fn push_event(ev: TraceEvent) {
    with_ring(|tid, ring| {
        let mut buf = ring.events.lock().expect("trace ring poisoned");
        if buf.len() >= ring.capacity {
            ring.dropped.fetch_add(1, Ordering::Relaxed);
        } else {
            let mut ev = ev;
            ev.tid = tid;
            buf.push(ev);
        }
    });
}

#[inline]
fn record(
    phase: TracePhase,
    stage: &'static str,
    name: &'static str,
    ts_ns: u64,
    dur_ns: u64,
    arg: u64,
) {
    push_event(TraceEvent {
        ts_ns,
        dur_ns,
        name,
        stage,
        phase,
        tid: 0,
        rank: THREAD_RANK.with(|r| r.get()),
        arg,
    });
}

/// Record an instant event (gated; no-op when tracing is off).
#[inline]
pub fn trace_instant(stage: &'static str, name: &'static str, arg: u64) {
    if trace_enabled() {
        record(TracePhase::Instant, stage, name, trace_now_ns(), 0, arg);
    }
}

/// Record an explicit duration-begin event (prefer [`trace_span`], which
/// emits one `Complete` record instead of two).
#[inline]
pub fn trace_begin(stage: &'static str, name: &'static str) {
    if trace_enabled() {
        record(TracePhase::Begin, stage, name, trace_now_ns(), 0, 0);
    }
}

/// Record the matching duration-end event for [`trace_begin`].
#[inline]
pub fn trace_end(stage: &'static str, name: &'static str) {
    if trace_enabled() {
        record(TracePhase::End, stage, name, trace_now_ns(), 0, 0);
    }
}

/// Record a pre-measured complete span (e.g. accumulated non-contiguous
/// time reported as one synthetic interval).
#[inline]
pub fn trace_complete(stage: &'static str, name: &'static str, ts_ns: u64, dur_ns: u64, arg: u64) {
    if trace_enabled() {
        record(TracePhase::Complete, stage, name, ts_ns, dur_ns, arg);
    }
}

/// Start a gated RAII span; on drop it records one `Complete` event. When
/// tracing is disabled at start, the span is inert (no clock read).
#[inline]
pub fn trace_span(stage: &'static str, name: &'static str) -> TraceSpan {
    TraceSpan {
        inner: if trace_enabled() {
            Some((trace_now_ns(), stage, name))
        } else {
            None
        },
        arg: 0,
    }
}

/// RAII timeline span (see [`trace_span`]).
#[derive(Debug)]
pub struct TraceSpan {
    inner: Option<(u64, &'static str, &'static str)>,
    arg: u64,
}

impl TraceSpan {
    /// Attach the free numeric argument recorded with the span.
    pub fn set_arg(&mut self, arg: u64) {
        self.arg = arg;
    }
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        if let Some((start, stage, name)) = self.inner.take() {
            record(
                TracePhase::Complete,
                stage,
                name,
                start,
                trace_now_ns().saturating_sub(start),
                self.arg,
            );
        }
    }
}

/// Everything the rings held at drain time.
#[derive(Clone, Debug, Default)]
pub struct TraceDump {
    /// Events sorted by `(tid, ts_ns)`.
    pub events: Vec<TraceEvent>,
    /// Events lost to full rings across all threads.
    pub dropped: u64,
}

/// Collect and clear every thread's ring. Threads may keep recording after
/// the drain; later events land in the (now empty) rings.
pub fn trace_drain() -> TraceDump {
    let mut events = Vec::new();
    let mut dropped = 0;
    for ring in rings().lock().expect("trace ring registry poisoned").iter() {
        let mut buf = ring.events.lock().expect("trace ring poisoned");
        events.append(&mut *buf);
        dropped += ring.dropped.swap(0, Ordering::Relaxed);
    }
    events.sort_by_key(|e| (e.tid, e.ts_ns));
    TraceDump { events, dropped }
}

/// Copy every thread's ring without clearing it — a mid-run view (e.g. to
/// persist a telemetry summary before the final drain exports the full
/// timeline).
pub fn trace_snapshot() -> TraceDump {
    let mut events = Vec::new();
    let mut dropped = 0;
    for ring in rings().lock().expect("trace ring registry poisoned").iter() {
        let buf = ring.events.lock().expect("trace ring poisoned");
        events.extend(buf.iter().copied());
        dropped += ring.dropped.load(Ordering::Relaxed);
    }
    events.sort_by_key(|e| (e.tid, e.ts_ns));
    TraceDump { events, dropped }
}

/// Discard all buffered events and drop counts (tests, repeated runs).
pub fn trace_reset() {
    let _ = trace_drain();
}

fn json_escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

fn push_us(out: &mut String, ns: u64) {
    // Chrome trace timestamps are microseconds; emit with ns precision.
    out.push_str(&format!("{}.{:03}", ns / 1_000, ns % 1_000));
}

impl TraceDump {
    /// Chrome trace-event JSON (object format), loadable in Perfetto and
    /// `chrome://tracing`. Timestamps and durations are microseconds with
    /// nanosecond decimals; the rank label travels in `args.rank`.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 96 + 256);
        out.push_str("{\"traceEvents\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":\"");
            json_escape(e.name, &mut out);
            out.push_str("\",\"cat\":\"");
            json_escape(e.stage, &mut out);
            out.push_str("\",\"ph\":\"");
            out.push_str(e.phase.chrome());
            out.push_str("\",\"pid\":1,\"tid\":");
            out.push_str(&e.tid.to_string());
            out.push_str(",\"ts\":");
            push_us(&mut out, e.ts_ns);
            if e.phase == TracePhase::Complete {
                out.push_str(",\"dur\":");
                push_us(&mut out, e.dur_ns);
            }
            if e.phase == TracePhase::Instant {
                out.push_str(",\"s\":\"t\"");
            }
            out.push_str(",\"args\":{");
            let mut first = true;
            if e.rank != NO_RANK {
                out.push_str("\"rank\":");
                out.push_str(&e.rank.to_string());
                first = false;
            }
            if e.arg != 0 {
                if !first {
                    out.push(',');
                }
                out.push_str("\"arg\":");
                out.push_str(&e.arg.to_string());
            }
            out.push_str("}}");
        }
        out.push_str(
            "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"tool\":\"cypress\",\"droppedEvents\":",
        );
        out.push_str(&self.dropped.to_string());
        out.push_str("}}");
        out
    }

    /// One JSON object per event (raw analysis-friendly form).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 96);
        for e in &self.events {
            out.push_str("{\"ts_ns\":");
            out.push_str(&e.ts_ns.to_string());
            out.push_str(",\"dur_ns\":");
            out.push_str(&e.dur_ns.to_string());
            out.push_str(",\"ph\":\"");
            out.push_str(e.phase.chrome());
            out.push_str("\",\"stage\":\"");
            json_escape(e.stage, &mut out);
            out.push_str("\",\"name\":\"");
            json_escape(e.name, &mut out);
            out.push_str("\",\"tid\":");
            out.push_str(&e.tid.to_string());
            out.push_str(",\"rank\":");
            out.push_str(&e.rank.to_string());
            out.push_str(",\"arg\":");
            out.push_str(&e.arg.to_string());
            out.push_str("}\n");
        }
        out
    }

    /// Roll the dump up into a per-stage / per-rank wall-time attribution
    /// table. `root` names the outermost `Complete` span covering the whole
    /// run (usually `"total"`).
    pub fn profile(&self, root: &str) -> StageProfile {
        StageProfile::from_dump(self, root)
    }
}

/// Per-stage aggregate of exclusive (self) time.
#[derive(Clone, Debug, Default)]
pub struct StageRow {
    pub stage: String,
    /// Exclusive ns on the root span's thread — sums to wall time.
    pub wall_ns: u64,
    /// Exclusive ns across all threads (CPU time; exceeds wall when
    /// workers run in parallel).
    pub cpu_ns: u64,
    /// Complete spans contributing.
    pub spans: u64,
}

/// Per-(rank, stage) exclusive CPU time.
#[derive(Clone, Debug, Default)]
pub struct RankRow {
    pub rank: i64,
    pub stage: String,
    pub cpu_ns: u64,
}

/// A per-stage / per-rank wall-time attribution table derived from one
/// [`TraceDump`].
///
/// Attribution is **exclusive**: each `Complete` span's duration minus the
/// durations of spans nested inside it on the same thread, so a stack of
/// interp → session → deflate spans attributes each nanosecond exactly
/// once. Coverage is the fraction of the root span's duration attributed
/// to named stages on the root thread (the rest is untraced glue).
#[derive(Clone, Debug, Default)]
pub struct StageProfile {
    /// Root span duration (end-to-end wall time), 0 if the root was absent.
    pub total_ns: u64,
    /// Per-stage rows, descending by wall then cpu time. The root span's
    /// own self-time appears as stage `"(untraced)"`.
    pub stages: Vec<StageRow>,
    /// Per-(rank, stage) rows for rank-labelled spans, rank-major.
    pub ranks: Vec<RankRow>,
    /// Events lost to ring overflow (attribution is partial if nonzero).
    pub dropped: u64,
}

impl StageProfile {
    pub fn from_dump(dump: &TraceDump, root: &str) -> StageProfile {
        // Only Complete spans participate in attribution.
        let mut root_span: Option<&TraceEvent> = None;
        for e in &dump.events {
            if e.phase == TracePhase::Complete && e.name == root {
                let better = match root_span {
                    Some(r) => e.dur_ns > r.dur_ns,
                    None => true,
                };
                if better {
                    root_span = Some(e);
                }
            }
        }
        let (total_ns, root_tid) = match root_span {
            Some(r) => (r.dur_ns, r.tid),
            None => (0, u32::MAX),
        };

        use std::collections::BTreeMap;
        let mut wall: BTreeMap<&str, (u64, u64)> = BTreeMap::new(); // stage -> (ns, spans)
        let mut cpu: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
        let mut by_rank: BTreeMap<(i64, &str), u64> = BTreeMap::new();

        // Per-thread exclusive-time pass. Events are sorted by (tid, ts);
        // within a thread, an interval stack subtracts child durations from
        // the enclosing span.
        let mut i = 0;
        while i < dump.events.len() {
            let tid = dump.events[i].tid;
            let mut j = i;
            while j < dump.events.len() && dump.events[j].tid == tid {
                j += 1;
            }
            let mut spans: Vec<&TraceEvent> = dump.events[i..j]
                .iter()
                .filter(|e| e.phase == TracePhase::Complete)
                .collect();
            // Parents sort before their children: earlier start first, and
            // at equal starts the longer (enclosing) span first.
            spans.sort_by(|a, b| a.ts_ns.cmp(&b.ts_ns).then(b.dur_ns.cmp(&a.dur_ns)));
            let mut stack: Vec<(u64, &TraceEvent, u64)> = Vec::new(); // (end, span, child_ns)
            for s in spans {
                while let Some(&(end, done, child_ns)) = stack.last() {
                    if s.ts_ns < end {
                        break;
                    }
                    stack.pop();
                    Self::attribute(
                        done,
                        child_ns,
                        tid,
                        root_tid,
                        &mut wall,
                        &mut cpu,
                        &mut by_rank,
                    );
                    if let Some(top) = stack.last_mut() {
                        top.2 += done.dur_ns;
                    }
                }
                stack.push((s.ts_ns + s.dur_ns, s, 0));
            }
            while let Some((_, done, child_ns)) = stack.pop() {
                Self::attribute(
                    done,
                    child_ns,
                    tid,
                    root_tid,
                    &mut wall,
                    &mut cpu,
                    &mut by_rank,
                );
                if let Some(top) = stack.last_mut() {
                    top.2 += done.dur_ns;
                }
            }
            i = j;
        }

        let mut stages: Vec<StageRow> = cpu
            .iter()
            .map(|(stage, &(cpu_ns, spans))| {
                let (wall_ns, _) = wall.get(stage).copied().unwrap_or((0, 0));
                StageRow {
                    stage: (*stage).to_owned(),
                    wall_ns,
                    cpu_ns,
                    spans,
                }
            })
            .collect();
        stages.sort_by_key(|r| std::cmp::Reverse((r.wall_ns, r.cpu_ns)));

        let mut ranks: Vec<RankRow> = by_rank
            .into_iter()
            .map(|((rank, stage), cpu_ns)| RankRow {
                rank,
                stage: stage.to_owned(),
                cpu_ns,
            })
            .collect();
        ranks.sort_by(|a, b| (a.rank, &a.stage).cmp(&(b.rank, &b.stage)));

        StageProfile {
            total_ns,
            stages,
            ranks,
            dropped: dump.dropped,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn attribute<'a>(
        span: &'a TraceEvent,
        child_ns: u64,
        tid: u32,
        root_tid: u32,
        wall: &mut std::collections::BTreeMap<&'a str, (u64, u64)>,
        cpu: &mut std::collections::BTreeMap<&'a str, (u64, u64)>,
        by_rank: &mut std::collections::BTreeMap<(i64, &'a str), u64>,
    ) {
        let self_ns = span.dur_ns.saturating_sub(child_ns);
        // The root "total" span's own self-time is the untraced remainder.
        let stage: &str = if span.stage == "cli" {
            "(untraced)"
        } else {
            span.stage
        };
        let c = cpu.entry(stage).or_insert((0, 0));
        c.0 += self_ns;
        c.1 += 1;
        if tid == root_tid {
            let w = wall.entry(stage).or_insert((0, 0));
            w.0 += self_ns;
            w.1 += 1;
        }
        if span.rank != NO_RANK {
            *by_rank.entry((span.rank, stage)).or_insert(0) += self_ns;
        }
    }

    /// Fraction (0..=1) of the root span's wall time attributed to named
    /// stages on the root thread.
    pub fn coverage(&self) -> f64 {
        if self.total_ns == 0 {
            return 0.0;
        }
        let untraced: u64 = self
            .stages
            .iter()
            .filter(|s| s.stage == "(untraced)")
            .map(|s| s.wall_ns)
            .sum();
        1.0 - untraced as f64 / self.total_ns as f64
    }

    /// Exclusive wall ns attributed to one stage on the root thread.
    pub fn wall_of(&self, stage: &str) -> u64 {
        self.stages
            .iter()
            .filter(|s| s.stage == stage)
            .map(|s| s.wall_ns)
            .sum()
    }

    fn fmt_ms(ns: u64) -> String {
        format!("{:.3}ms", ns as f64 / 1e6)
    }

    /// Aligned attribution table.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "stage attribution over {} wall ({} spans",
            Self::fmt_ms(self.total_ns),
            self.stages.iter().map(|s| s.spans).sum::<u64>(),
        ));
        if self.dropped > 0 {
            out.push_str(&format!(", {} events dropped", self.dropped));
        }
        out.push_str(")\n");
        out.push_str(&format!(
            "{:<12} {:>12} {:>7} {:>12} {:>7}\n",
            "stage", "wall", "wall%", "cpu", "spans"
        ));
        for s in &self.stages {
            let pct = if self.total_ns == 0 {
                0.0
            } else {
                s.wall_ns as f64 / self.total_ns as f64 * 100.0
            };
            out.push_str(&format!(
                "{:<12} {:>12} {:>6.1}% {:>12} {:>7}\n",
                s.stage,
                Self::fmt_ms(s.wall_ns),
                pct,
                Self::fmt_ms(s.cpu_ns),
                s.spans
            ));
        }
        out.push_str(&format!(
            "coverage: {:.1}% of wall time attributed\n",
            self.coverage() * 100.0
        ));
        if !self.ranks.is_empty() {
            out.push_str("\nper-rank cpu attribution:\n");
            out.push_str(&format!("{:<6} {:<12} {:>12}\n", "rank", "stage", "cpu"));
            for r in &self.ranks {
                out.push_str(&format!(
                    "{:<6} {:<12} {:>12}\n",
                    r.rank,
                    r.stage,
                    Self::fmt_ms(r.cpu_ns)
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic_dump() -> TraceDump {
        // Thread 1 (root): total [0, 1000] > ingest [0, 600] > merge
        // [600, 800] > encode [800, 950]; 50ns untraced tail.
        // Thread 2 (rank 0): rank [10, 500] with session [20, 220] inside.
        let ev = |ts, dur, name: &'static str, stage: &'static str, tid, rank| TraceEvent {
            ts_ns: ts,
            dur_ns: dur,
            name,
            stage,
            phase: TracePhase::Complete,
            tid,
            rank,
            arg: 0,
        };
        TraceDump {
            events: vec![
                ev(0, 1000, "total", "cli", 1, NO_RANK),
                ev(0, 600, "ingest", "ingest", 1, NO_RANK),
                ev(600, 200, "merge", "merge", 1, NO_RANK),
                ev(800, 150, "encode", "encode", 1, NO_RANK),
                ev(10, 490, "rank", "interp", 2, 0),
                ev(20, 200, "compress", "session", 2, 0),
            ],
            dropped: 0,
        }
    }

    #[test]
    fn exclusive_attribution_never_double_counts() {
        let p = synthetic_dump().profile("total");
        assert_eq!(p.total_ns, 1000);
        assert_eq!(p.wall_of("ingest"), 600);
        assert_eq!(p.wall_of("merge"), 200);
        assert_eq!(p.wall_of("encode"), 150);
        assert_eq!(p.wall_of("(untraced)"), 50);
        // Worker-thread spans: interp self = 490 - 200 nested session.
        let interp = p.stages.iter().find(|s| s.stage == "interp").unwrap();
        assert_eq!(interp.cpu_ns, 290);
        assert_eq!(interp.wall_ns, 0); // not on the root thread
        let sess = p.stages.iter().find(|s| s.stage == "session").unwrap();
        assert_eq!(sess.cpu_ns, 200);
        assert!((p.coverage() - 0.95).abs() < 1e-9);
        // Rank table carries the same exclusive split.
        assert_eq!(p.ranks.len(), 2);
        assert_eq!(p.ranks[0].cpu_ns, 290);
        assert_eq!(p.ranks[1].cpu_ns, 200);
    }

    #[test]
    fn disabled_tracing_records_nothing() {
        let _guard = crate::test_mutex().lock().unwrap();
        set_trace_enabled(false);
        trace_reset();
        trace_instant("t", "noop", 1);
        drop(trace_span("t", "noop"));
        trace_begin("t", "noop");
        trace_end("t", "noop");
        assert!(trace_drain().events.is_empty());
    }

    #[test]
    fn span_records_complete_event_with_rank() {
        let _guard = crate::test_mutex().lock().unwrap();
        trace_reset();
        set_trace_enabled(true);
        set_thread_rank(7);
        {
            let mut s = trace_span("stage-a", "work");
            s.set_arg(42);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        trace_instant("stage-a", "tick", 3);
        clear_thread_rank();
        set_trace_enabled(false);
        let dump = trace_drain();
        assert_eq!(dump.events.len(), 2);
        let span = &dump.events[0];
        assert_eq!(span.phase, TracePhase::Complete);
        assert_eq!(span.name, "work");
        assert_eq!(span.rank, 7);
        assert_eq!(span.arg, 42);
        assert!(span.dur_ns >= 1_000_000);
        assert_eq!(dump.events[1].phase, TracePhase::Instant);
    }

    #[test]
    fn full_ring_drops_and_counts() {
        let _guard = crate::test_mutex().lock().unwrap();
        trace_reset();
        set_trace_enabled(true);
        // Overfill from a dedicated thread so this test cannot starve
        // other tests' rings of capacity.
        let dump = std::thread::spawn(|| {
            let cap = ring_capacity();
            for _ in 0..cap + 10 {
                trace_instant("t", "spam", 0);
            }
            trace_drain()
        })
        .join()
        .unwrap();
        set_trace_enabled(false);
        assert!(dump.dropped >= 10, "dropped {}", dump.dropped);
        assert!(dump.events.len() <= ring_capacity() + 16);
    }

    #[test]
    fn chrome_export_shape() {
        let dump = synthetic_dump();
        let json = dump.to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"args\":{\"rank\":0}"));
        assert!(json.contains("\"droppedEvents\":0"));
        // 1000 ns root span = 1.000 us.
        assert!(json.contains("\"dur\":1.000"));
        let jsonl = dump.to_jsonl();
        assert_eq!(jsonl.lines().count(), dump.events.len());
        assert!(jsonl
            .lines()
            .all(|l| l.starts_with('{') && l.ends_with('}')));
    }
}
