//! Integration tests exercising the registry from multiple threads and the
//! exact bucket semantics of fixed-bound histograms.

use std::thread;

#[test]
fn concurrent_counter_increments_from_scoped_threads() {
    let _guard = cypress_obs::test_mutex().lock().unwrap();
    cypress_obs::reset();
    cypress_obs::set_enabled(true);
    let s = cypress_obs::scope("conc");
    let c = s.counter("hits");
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 10_000;
    thread::scope(|scope| {
        for _ in 0..THREADS {
            // Each worker re-resolves the handle through the registry, so
            // this also checks that get-or-register returns the same atomic.
            scope.spawn(|| {
                let c = cypress_obs::scope("conc").counter("hits");
                for _ in 0..PER_THREAD {
                    c.inc();
                }
            });
        }
    });
    assert_eq!(c.get(), THREADS as u64 * PER_THREAD);
    cypress_obs::set_enabled(false);
    cypress_obs::reset();
}

#[test]
fn concurrent_gauge_set_max_keeps_global_maximum() {
    let _guard = cypress_obs::test_mutex().lock().unwrap();
    cypress_obs::reset();
    cypress_obs::set_enabled(true);
    let g = cypress_obs::scope("conc").gauge("high_water");
    thread::scope(|scope| {
        for t in 0..8i64 {
            let g = g.clone();
            scope.spawn(move || {
                for v in 0..1000 {
                    g.set_max(t * 1000 + v);
                }
            });
        }
    });
    assert_eq!(g.get(), 7 * 1000 + 999);
    cypress_obs::set_enabled(false);
    cypress_obs::reset();
}

#[test]
fn histogram_bucket_boundaries_are_inclusive_upper_bounds() {
    let _guard = cypress_obs::test_mutex().lock().unwrap();
    cypress_obs::reset();
    cypress_obs::set_enabled(true);
    let h = cypress_obs::scope("conc").histogram("bounds", &[10, 100, 1000]);
    // On-boundary values land in their own bucket (inclusive upper bound),
    // bound+1 lands in the next, and anything past the last bound overflows.
    h.observe(0);
    h.observe(10); // bucket 0 (<= 10)
    h.observe(11); // bucket 1
    h.observe(100); // bucket 1 (<= 100)
    h.observe(101); // bucket 2
    h.observe(1000); // bucket 2 (<= 1000)
    h.observe(1001); // overflow
    h.observe(u64::MAX); // overflow
    assert_eq!(h.bucket_counts(), vec![2, 2, 2, 2]);
    assert_eq!(h.count(), 8);
    cypress_obs::set_enabled(false);
    cypress_obs::reset();
}

#[test]
fn eight_thread_combined_stress_keeps_exact_totals() {
    let _guard = cypress_obs::test_mutex().lock().unwrap();
    cypress_obs::reset();
    cypress_obs::set_enabled(true);
    const THREADS: u64 = 8;
    const ITERS: u64 = 5_000;
    thread::scope(|scope| {
        for t in 0..THREADS {
            // All three instrument kinds contend on the same registry
            // entries, resolved fresh per thread.
            scope.spawn(move || {
                let s = cypress_obs::scope("stress");
                let c = s.counter("ops");
                let g = s.gauge("depth");
                let h = s.histogram("sizes", &[8, 64, 512]);
                for i in 0..ITERS {
                    c.inc();
                    g.set_max((t * ITERS + i) as i64);
                    h.observe(i % 1000);
                }
            });
        }
    });
    let s = cypress_obs::scope("stress");
    assert_eq!(s.counter("ops").get(), THREADS * ITERS);
    assert_eq!(s.gauge("depth").get(), (THREADS * ITERS - 1) as i64);
    let h = s.histogram("sizes", &[8, 64, 512]);
    assert_eq!(h.count(), THREADS * ITERS);
    // Each thread records 0..1000 five times over: sum is closed-form.
    assert_eq!(h.sum(), THREADS * (ITERS / 1000) * (999 * 1000 / 2));
    assert_eq!(h.bucket_counts().iter().sum::<u64>(), h.count());
    assert!(h.quantile(0.5) >= h.quantile(0.1));
    cypress_obs::set_enabled(false);
    cypress_obs::reset();
}

#[test]
fn concurrent_histogram_observes_sum_consistently() {
    let _guard = cypress_obs::test_mutex().lock().unwrap();
    cypress_obs::reset();
    cypress_obs::set_enabled(true);
    let h = cypress_obs::scope("conc").histogram("par", &[8, 64, 512]);
    thread::scope(|scope| {
        for _ in 0..4 {
            let h = h.clone();
            scope.spawn(move || {
                for v in 0..1024u64 {
                    h.observe(v);
                }
            });
        }
    });
    assert_eq!(h.count(), 4 * 1024);
    assert_eq!(h.sum(), 4 * (1023 * 1024 / 2));
    assert_eq!(h.bucket_counts().iter().sum::<u64>(), h.count());
    cypress_obs::set_enabled(false);
    cypress_obs::reset();
}
