//! Shared DEFLATE constant tables (RFC 1951 §3.2.5–§3.2.6).

/// Length code bases (codes 257..=285 map to index 0..=28).
pub const LEN_BASE: [u16; 29] = [
    3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31, 35, 43, 51, 59, 67, 83, 99, 115, 131,
    163, 195, 227, 258,
];

/// Extra bits for each length code.
pub const LEN_EXTRA: [u8; 29] = [
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0,
];

/// Distance code bases (codes 0..=29).
pub const DIST_BASE: [u16; 30] = [
    1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193, 257, 385, 513, 769, 1025, 1537,
    2049, 3073, 4097, 6145, 8193, 12289, 16385, 24577,
];

/// Extra bits for each distance code.
pub const DIST_EXTRA: [u8; 30] = [
    0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13,
    13,
];

/// Order in which code-length code lengths are transmitted.
pub const CLC_ORDER: [usize; 19] = [
    16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15,
];

/// Map a match length (3..=258) to (length code index, extra bits value).
pub fn length_code(len: u16) -> (usize, u32) {
    debug_assert!((3..=258).contains(&len));
    // Linear scan is fine (29 entries); called per token.
    let mut idx = 0;
    for (i, &b) in LEN_BASE.iter().enumerate() {
        if len >= b {
            idx = i;
        } else {
            break;
        }
    }
    // Code 285 (index 28) encodes exactly 258.
    if idx == 28 && len != 258 {
        idx = 27;
    }
    (idx, (len - LEN_BASE[idx]) as u32)
}

/// Map a distance (1..=32768) to (distance code index, extra bits value).
pub fn dist_code(dist: u16) -> (usize, u32) {
    debug_assert!(dist >= 1);
    let mut idx = 0;
    for (i, &b) in DIST_BASE.iter().enumerate() {
        if dist >= b {
            idx = i;
        } else {
            break;
        }
    }
    (idx, (dist - DIST_BASE[idx]) as u32)
}

/// Fixed literal/length code lengths (RFC 1951 §3.2.6).
pub fn fixed_litlen_lens() -> Vec<u8> {
    let mut lens = vec![8u8; 288];
    for l in lens.iter_mut().take(256).skip(144) {
        *l = 9;
    }
    for l in lens.iter_mut().take(280).skip(256) {
        *l = 7;
    }
    lens
}

/// Fixed distance code lengths.
pub fn fixed_dist_lens() -> Vec<u8> {
    vec![5u8; 30]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_code_boundaries() {
        assert_eq!(length_code(3), (0, 0));
        assert_eq!(length_code(10), (7, 0));
        assert_eq!(length_code(11), (8, 0));
        assert_eq!(length_code(12), (8, 1));
        assert_eq!(length_code(257), (27, 30)); // 227 + 30
        assert_eq!(length_code(258), (28, 0));
    }

    #[test]
    fn dist_code_boundaries() {
        assert_eq!(dist_code(1), (0, 0));
        assert_eq!(dist_code(4), (3, 0));
        assert_eq!(dist_code(5), (4, 0));
        assert_eq!(dist_code(6), (4, 1));
        assert_eq!(dist_code(32768), (29, 8191));
    }

    #[test]
    fn every_length_round_trips() {
        for len in 3u16..=258 {
            let (idx, extra) = length_code(len);
            assert_eq!(LEN_BASE[idx] + extra as u16, len);
            assert!(extra < (1 << LEN_EXTRA[idx]) || LEN_EXTRA[idx] == 0);
        }
    }

    #[test]
    fn every_distance_round_trips() {
        for dist in 1u32..=32768 {
            let (idx, extra) = dist_code(dist as u16);
            assert_eq!(DIST_BASE[idx] as u32 + extra, dist);
        }
    }

    #[test]
    fn fixed_code_shapes() {
        let l = fixed_litlen_lens();
        assert_eq!(l[0], 8);
        assert_eq!(l[144], 9);
        assert_eq!(l[256], 7);
        assert_eq!(l[280], 8);
        assert_eq!(fixed_dist_lens().len(), 30);
    }
}
