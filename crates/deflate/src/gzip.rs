//! gzip container (RFC 1952) around the DEFLATE stream, with CRC-32 and
//! length verification on decompression.

use crate::bitio::BitError;
use crate::crc32::crc32;
use crate::deflate::{deflate, Level};
use crate::inflate::inflate;

const MAGIC: [u8; 2] = [0x1F, 0x8B];
const CM_DEFLATE: u8 = 8;
const OS_UNKNOWN: u8 = 255;

/// Compress into a gzip member.
pub fn gzip_compress(data: &[u8], level: Level) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 32);
    out.extend_from_slice(&MAGIC);
    out.push(CM_DEFLATE);
    out.push(0); // FLG: no name/comment/extra/hcrc
    out.extend_from_slice(&[0, 0, 0, 0]); // MTIME
    out.push(match level {
        Level::Best => 2,
        Level::Fast => 4,
        Level::Default => 0,
    }); // XFL
    out.push(OS_UNKNOWN);
    out.extend_from_slice(&deflate(data, level));
    out.extend_from_slice(&crc32(data).to_le_bytes());
    out.extend_from_slice(&(data.len() as u32).to_le_bytes());
    out
}

/// Decompress a gzip member, verifying CRC-32 and ISIZE.
pub fn gzip_decompress(data: &[u8]) -> Result<Vec<u8>, BitError> {
    if data.len() < 18 {
        return Err(BitError("gzip input too short".into()));
    }
    if data[0..2] != MAGIC {
        return Err(BitError("bad gzip magic".into()));
    }
    if data[2] != CM_DEFLATE {
        return Err(BitError(format!("unsupported compression method {}", data[2])));
    }
    let flg = data[3];
    let mut pos = 10usize;
    if flg & 0x04 != 0 {
        // FEXTRA
        if data.len() < pos + 2 {
            return Err(BitError("truncated FEXTRA".into()));
        }
        let xlen = u16::from_le_bytes([data[pos], data[pos + 1]]) as usize;
        pos += 2 + xlen;
    }
    if flg & 0x08 != 0 {
        // FNAME: zero-terminated
        pos += data[pos..]
            .iter()
            .position(|&b| b == 0)
            .ok_or_else(|| BitError("unterminated FNAME".into()))?
            + 1;
    }
    if flg & 0x10 != 0 {
        // FCOMMENT
        pos += data[pos..]
            .iter()
            .position(|&b| b == 0)
            .ok_or_else(|| BitError("unterminated FCOMMENT".into()))?
            + 1;
    }
    if flg & 0x02 != 0 {
        pos += 2; // FHCRC
    }
    if data.len() < pos + 8 {
        return Err(BitError("gzip payload too short".into()));
    }
    let payload = &data[pos..data.len() - 8];
    let trailer = &data[data.len() - 8..];
    let want_crc = u32::from_le_bytes([trailer[0], trailer[1], trailer[2], trailer[3]]);
    let want_len = u32::from_le_bytes([trailer[4], trailer[5], trailer[6], trailer[7]]);
    let out = inflate(payload)?;
    if crc32(&out) != want_crc {
        return Err(BitError("gzip CRC mismatch".into()));
    }
    if out.len() as u32 != want_len {
        return Err(BitError("gzip ISIZE mismatch".into()));
    }
    Ok(out)
}

/// Convenience: the gzip-compressed size of a buffer (the metric the
/// benchmark harness reports for the "+Gzip" series).
pub fn gzip_size(data: &[u8], level: Level) -> usize {
    gzip_compress(data, level).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn round_trip_text() {
        let data = b"gzip gzip gzip gzip gzip gzip gzip!".repeat(50);
        let z = gzip_compress(&data, Level::Default);
        assert!(z.len() < data.len());
        assert_eq!(gzip_decompress(&z).unwrap(), data);
    }

    #[test]
    fn detects_corrupted_payload() {
        let data = b"payload payload payload".repeat(10);
        let mut z = gzip_compress(&data, Level::Default);
        let mid = z.len() / 2;
        z[mid] ^= 0x55;
        assert!(gzip_decompress(&z).is_err());
    }

    #[test]
    fn detects_truncation_and_bad_magic() {
        let z = gzip_compress(b"abc", Level::Default);
        assert!(gzip_decompress(&z[..10]).is_err());
        let mut bad = z.clone();
        bad[0] = 0;
        assert!(gzip_decompress(&bad).is_err());
    }

    #[test]
    fn empty_round_trip() {
        let z = gzip_compress(&[], Level::Default);
        assert_eq!(gzip_decompress(&z).unwrap(), Vec::<u8>::new());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn prop_gzip_round_trip(data in proptest::collection::vec(any::<u8>(), 0..6000)) {
            let z = gzip_compress(&data, Level::Default);
            prop_assert_eq!(gzip_decompress(&z).unwrap(), data);
        }
    }
}
