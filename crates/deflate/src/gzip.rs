//! gzip container (RFC 1952) around the DEFLATE stream, with CRC-32 and
//! length verification on decompression.

use crate::bitio::BitError;
use crate::crc32::crc32;
use crate::deflate::{deflate, Level};
use crate::inflate::inflate;
use std::sync::OnceLock;

const MAGIC: [u8; 2] = [0x1F, 0x8B];
const CM_DEFLATE: u8 = 8;
const OS_UNKNOWN: u8 = 255;

struct GzipMetrics {
    compress_in: cypress_obs::Counter,
    compress_out: cypress_obs::Counter,
    decompress_in: cypress_obs::Counter,
    decompress_out: cypress_obs::Counter,
    compress_ns: cypress_obs::Histogram,
    decompress_ns: cypress_obs::Histogram,
}

fn metrics() -> &'static GzipMetrics {
    static METRICS: OnceLock<GzipMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let m = cypress_obs::scope("deflate");
        GzipMetrics {
            compress_in: m.counter("compress_bytes_in"),
            compress_out: m.counter("compress_bytes_out"),
            decompress_in: m.counter("decompress_bytes_in"),
            decompress_out: m.counter("decompress_bytes_out"),
            compress_ns: m.histogram("compress_ns", &cypress_obs::TIME_BOUNDS_NS),
            decompress_ns: m.histogram("decompress_ns", &cypress_obs::TIME_BOUNDS_NS),
        }
    })
}

/// Compress into a gzip member.
pub fn gzip_compress(data: &[u8], level: Level) -> Vec<u8> {
    let _span = cypress_obs::enabled().then(|| metrics().compress_ns.start_span());
    let mut out = Vec::with_capacity(data.len() / 2 + 32);
    out.extend_from_slice(&MAGIC);
    out.push(CM_DEFLATE);
    out.push(0); // FLG: no name/comment/extra/hcrc
    out.extend_from_slice(&[0, 0, 0, 0]); // MTIME
    out.push(match level {
        Level::Best => 2,
        Level::Fast => 4,
        Level::Default => 0,
    }); // XFL
    out.push(OS_UNKNOWN);
    out.extend_from_slice(&deflate(data, level));
    out.extend_from_slice(&crc32(data).to_le_bytes());
    out.extend_from_slice(&(data.len() as u32).to_le_bytes());
    if cypress_obs::enabled() {
        let m = metrics();
        m.compress_in.add(data.len() as u64);
        m.compress_out.add(out.len() as u64);
    }
    out
}

/// Decompress a gzip member, verifying CRC-32 and ISIZE.
pub fn gzip_decompress(data: &[u8]) -> Result<Vec<u8>, BitError> {
    let _span = cypress_obs::enabled().then(|| metrics().decompress_ns.start_span());
    if data.len() < 18 {
        return Err(BitError("gzip input too short".into()));
    }
    if data[0..2] != MAGIC {
        return Err(BitError("bad gzip magic".into()));
    }
    if data[2] != CM_DEFLATE {
        return Err(BitError(format!(
            "unsupported compression method {}",
            data[2]
        )));
    }
    let flg = data[3];
    let mut pos = 10usize;
    if flg & 0x04 != 0 {
        // FEXTRA
        if data.len() < pos + 2 {
            return Err(BitError("truncated FEXTRA".into()));
        }
        let xlen = u16::from_le_bytes([data[pos], data[pos + 1]]) as usize;
        pos += 2 + xlen;
    }
    if flg & 0x08 != 0 {
        // FNAME: zero-terminated
        pos += data[pos..]
            .iter()
            .position(|&b| b == 0)
            .ok_or_else(|| BitError("unterminated FNAME".into()))?
            + 1;
    }
    if flg & 0x10 != 0 {
        // FCOMMENT
        pos += data[pos..]
            .iter()
            .position(|&b| b == 0)
            .ok_or_else(|| BitError("unterminated FCOMMENT".into()))?
            + 1;
    }
    if flg & 0x02 != 0 {
        pos += 2; // FHCRC
    }
    if data.len() < pos + 8 {
        return Err(BitError("gzip payload too short".into()));
    }
    let payload = &data[pos..data.len() - 8];
    let trailer = &data[data.len() - 8..];
    let want_crc = u32::from_le_bytes([trailer[0], trailer[1], trailer[2], trailer[3]]);
    let want_len = u32::from_le_bytes([trailer[4], trailer[5], trailer[6], trailer[7]]);
    let out = inflate(payload)?;
    if crc32(&out) != want_crc {
        return Err(BitError("gzip CRC mismatch".into()));
    }
    if out.len() as u32 != want_len {
        return Err(BitError("gzip ISIZE mismatch".into()));
    }
    if cypress_obs::enabled() {
        let m = metrics();
        m.decompress_in.add(data.len() as u64);
        m.decompress_out.add(out.len() as u64);
    }
    Ok(out)
}

/// Convenience: the gzip-compressed size of a buffer (the metric the
/// benchmark harness reports for the "+Gzip" series).
pub fn gzip_size(data: &[u8], level: Level) -> usize {
    gzip_compress(data, level).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cypress_obs::rng::Rng;

    #[test]
    fn round_trip_text() {
        let data = b"gzip gzip gzip gzip gzip gzip gzip!".repeat(50);
        let z = gzip_compress(&data, Level::Default);
        assert!(z.len() < data.len());
        assert_eq!(gzip_decompress(&z).unwrap(), data);
    }

    #[test]
    fn detects_corrupted_payload() {
        let data = b"payload payload payload".repeat(10);
        let mut z = gzip_compress(&data, Level::Default);
        let mid = z.len() / 2;
        z[mid] ^= 0x55;
        assert!(gzip_decompress(&z).is_err());
    }

    #[test]
    fn detects_truncation_and_bad_magic() {
        let z = gzip_compress(b"abc", Level::Default);
        assert!(gzip_decompress(&z[..10]).is_err());
        let mut bad = z.clone();
        bad[0] = 0;
        assert!(gzip_decompress(&bad).is_err());
    }

    #[test]
    fn empty_round_trip() {
        let z = gzip_compress(&[], Level::Default);
        assert_eq!(gzip_decompress(&z).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn gzip_round_trip_random() {
        let mut rng = Rng::new(0x671b);
        for _ in 0..48 {
            let n = rng.range_usize(0..6000);
            let mut data = vec![0u8; n];
            rng.fill_bytes(&mut data);
            let z = gzip_compress(&data, Level::Default);
            assert_eq!(gzip_decompress(&z).unwrap(), data);
        }
    }
}
