//! LZ77 matching with hash chains (32 KiB window, matches 3..=258), the
//! front end of DEFLATE compression.
//!
//! The tokenizer is a reusable object ([`Lz77`]): the 32 K-entry hash head
//! and chain tables persist across calls (a `memset` instead of a fresh
//! allocation per block), tokens stream out through a caller-supplied sink
//! instead of materializing a `Vec<Token>`, and match extension compares
//! eight bytes at a time.

pub const WINDOW_SIZE: usize = 32 * 1024;
pub const MIN_MATCH: usize = 3;
pub const MAX_MATCH: usize = 258;

/// One LZ77 token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Token {
    Literal(u8),
    /// Back-reference: `dist` bytes back, `len` bytes long.
    Match {
        len: u16,
        dist: u16,
    },
}

const HASH_BITS: u32 = 15;
const HASH_SIZE: usize = 1 << HASH_BITS;
/// Empty-slot sentinel in the hash tables (positions are stored as `u32`).
const NIL: u32 = u32::MAX;

#[inline]
fn hash3(data: &[u8], i: usize) -> usize {
    let v = (data[i] as u32) | ((data[i + 1] as u32) << 8) | ((data[i + 2] as u32) << 16);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Length of the common prefix of `data[a..]` and `data[b..]`, capped at
/// `max_len`, compared a word at a time. Requires `b + max_len <= data.len()`
/// and `a < b`.
#[inline]
fn match_len(data: &[u8], a: usize, b: usize, max_len: usize) -> usize {
    let mut l = 0usize;
    while l + 8 <= max_len {
        let x = u64::from_le_bytes(data[a + l..a + l + 8].try_into().unwrap());
        let y = u64::from_le_bytes(data[b + l..b + l + 8].try_into().unwrap());
        let diff = x ^ y;
        if diff != 0 {
            return l + (diff.trailing_zeros() >> 3) as usize;
        }
        l += 8;
    }
    while l < max_len && data[a + l] == data[b + l] {
        l += 1;
    }
    l
}

/// Reusable hash-chain tokenizer state. Construct once (two 128 KiB tables)
/// and call [`Lz77::tokenize_with`] per block; the tables are wiped with a
/// fill, not reallocated.
pub struct Lz77 {
    /// `head[h]` = most recent position with hash `h`.
    head: Vec<u32>,
    /// `prev[i % W]` = previous position in `i`'s chain.
    prev: Vec<u32>,
}

impl Default for Lz77 {
    fn default() -> Self {
        Self::new()
    }
}

impl Lz77 {
    pub fn new() -> Self {
        Lz77 {
            head: vec![NIL; HASH_SIZE],
            prev: vec![NIL; WINDOW_SIZE],
        }
    }

    #[inline]
    fn insert(&mut self, data: &[u8], i: usize) {
        if i + MIN_MATCH <= data.len() {
            let h = hash3(data, i);
            self.prev[i % WINDOW_SIZE] = self.head[h];
            self.head[h] = i as u32;
        }
    }

    fn best_match(&self, data: &[u8], i: usize, max_chain: usize) -> (usize, usize) {
        if i + MIN_MATCH > data.len() {
            return (0, 0);
        }
        let h = hash3(data, i);
        let mut cand = self.head[h];
        let max_len = MAX_MATCH.min(data.len() - i);
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        let mut chains = 0usize;
        while cand != NIL && chains < max_chain {
            chains += 1;
            let c = cand as usize;
            let dist = i - c;
            if dist == 0 || dist > WINDOW_SIZE {
                break;
            }
            // Cheap reject: a longer match must improve on the byte one past
            // the current best before a full extension is worth doing.
            if best_len == 0 || data[c + best_len] == data[i + best_len] {
                let l = match_len(data, c, i, max_len);
                if l > best_len {
                    best_len = l;
                    best_dist = dist;
                    if l >= max_len {
                        break;
                    }
                }
            }
            cand = self.prev[c % WINDOW_SIZE];
            // Chains referencing positions outside the window are stale.
            if cand != NIL && (cand as usize) + WINDOW_SIZE < i {
                break;
            }
        }
        (best_len, best_dist)
    }

    /// Tokenize `data`, streaming each token into `emit`. `max_chain` bounds
    /// the hash-chain search; `lazy` enables one-step lazy matching (as in
    /// zlib's default strategy — the fast level turns it off and takes the
    /// first acceptable match).
    ///
    /// The hash state is wiped at entry, so repeated calls on one `Lz77` are
    /// independent; only the allocations are reused.
    pub fn tokenize_with<F: FnMut(Token)>(
        &mut self,
        data: &[u8],
        max_chain: usize,
        lazy: bool,
        mut emit: F,
    ) {
        let n = data.len();
        assert!(n < NIL as usize, "block too large for u32 positions");
        if n < MIN_MATCH {
            for &b in data {
                emit(Token::Literal(b));
            }
            return;
        }
        self.head.fill(NIL);
        self.prev.fill(NIL);

        let mut i = 0usize;
        while i < n {
            let (len, dist) = self.best_match(data, i, max_chain);
            if len >= MIN_MATCH {
                if lazy && i + 1 < n {
                    // One-step lazy evaluation: prefer a longer match at i+1.
                    let (len2, _) = self.best_match(data, i + 1, max_chain);
                    if len2 > len + 1 {
                        self.insert(data, i);
                        emit(Token::Literal(data[i]));
                        i += 1;
                        continue;
                    }
                }
                emit(Token::Match {
                    len: len as u16,
                    dist: dist as u16,
                });
                for k in 0..len {
                    self.insert(data, i + k);
                }
                i += len;
            } else {
                self.insert(data, i);
                emit(Token::Literal(data[i]));
                i += 1;
            }
        }
    }
}

/// Tokenize into a materialized vector (test/bench convenience; the
/// compressor proper streams through [`Lz77::tokenize_with`]).
pub fn tokenize(data: &[u8], max_chain: usize) -> Vec<Token> {
    let mut tokens = Vec::with_capacity(data.len() / 2 + 16);
    Lz77::new().tokenize_with(data, max_chain, true, |t| tokens.push(t));
    tokens
}

/// Expand tokens back into bytes (the LZ77 half of inflate; also the test
/// oracle for `tokenize`).
pub fn expand(tokens: &[Token]) -> Vec<u8> {
    let mut out = Vec::new();
    for t in tokens {
        match *t {
            Token::Literal(b) => out.push(b),
            Token::Match { len, dist } => {
                let start = out.len() - dist as usize;
                for k in 0..len as usize {
                    let b = out[start + k];
                    out.push(b);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cypress_obs::rng::Rng;

    #[test]
    fn repetitive_input_produces_matches() {
        let data = b"abcabcabcabcabcabc";
        let toks = tokenize(data, 64);
        assert!(toks.iter().any(|t| matches!(t, Token::Match { .. })));
        assert_eq!(expand(&toks), data);
    }

    #[test]
    fn short_input_is_literals() {
        let toks = tokenize(b"ab", 64);
        assert_eq!(toks, vec![Token::Literal(b'a'), Token::Literal(b'b')]);
    }

    #[test]
    fn run_of_same_byte_overlapping_match() {
        let data = vec![7u8; 1000];
        let toks = tokenize(&data, 64);
        assert!(
            toks.len() < 20,
            "run should compress well, got {}",
            toks.len()
        );
        assert_eq!(expand(&toks), data);
    }

    #[test]
    fn empty_input() {
        assert!(tokenize(&[], 64).is_empty());
    }

    #[test]
    fn long_input_crossing_window() {
        // > 32 KiB with structure.
        let mut data = Vec::new();
        for i in 0..40_000u32 {
            data.push((i % 251) as u8);
        }
        let toks = tokenize(&data, 32);
        assert_eq!(expand(&toks), data);
    }

    #[test]
    fn expand_inverts_tokenize_random() {
        let mut rng = Rng::new(0x1277);
        for _ in 0..128 {
            let n = rng.range_usize(0..5000);
            let mut data = vec![0u8; n];
            rng.fill_bytes(&mut data);
            let toks = tokenize(&data, 16);
            assert_eq!(expand(&toks), data);
        }
    }

    #[test]
    fn low_entropy_round_trip_random() {
        let mut rng = Rng::new(0x10e0);
        for _ in 0..128 {
            let n = rng.range_usize(0..5000);
            let data: Vec<u8> = (0..n).map(|_| rng.range_u64(0..4) as u8).collect();
            let toks = tokenize(&data, 16);
            assert_eq!(expand(&toks), data.clone());
            // Low-entropy inputs must actually compress.
            if data.len() > 200 {
                assert!(toks.len() < data.len());
            }
        }
    }

    #[test]
    fn reused_state_matches_fresh_state() {
        // One Lz77 across many blocks must tokenize each block exactly as a
        // fresh tokenizer would.
        let mut rng = Rng::new(0xba7c);
        let mut shared = Lz77::new();
        for _ in 0..32 {
            let n = rng.range_usize(0..3000);
            let data: Vec<u8> = (0..n).map(|_| rng.range_u64(0..7) as u8).collect();
            let mut reused = Vec::new();
            shared.tokenize_with(&data, 16, true, |t| reused.push(t));
            assert_eq!(reused, tokenize(&data, 16));
        }
    }

    #[test]
    fn greedy_mode_round_trips() {
        let mut rng = Rng::new(0x95ee);
        for _ in 0..32 {
            let n = rng.range_usize(0..4000);
            let data: Vec<u8> = (0..n).map(|_| rng.range_u64(0..5) as u8).collect();
            let mut toks = Vec::new();
            Lz77::new().tokenize_with(&data, 8, false, |t| toks.push(t));
            assert_eq!(expand(&toks), data);
        }
    }

    #[test]
    fn word_at_a_time_match_len_agrees_with_bytewise() {
        let mut rng = Rng::new(0x77aa);
        for _ in 0..256 {
            let n = rng.range_usize(16..600);
            let data: Vec<u8> = (0..n).map(|_| rng.range_u64(0..3) as u8).collect();
            let a = rng.range_usize(0..n / 2);
            let b = rng.range_usize(n / 2..n);
            let max_len = (n - b).min(MAX_MATCH);
            let fast = match_len(&data, a, b, max_len);
            let mut slow = 0usize;
            while slow < max_len && data[a + slow] == data[b + slow] {
                slow += 1;
            }
            assert_eq!(fast, slow);
        }
    }
}
