//! LZ77 matching with hash chains (32 KiB window, matches 3..=258), the
//! front end of DEFLATE compression.

pub const WINDOW_SIZE: usize = 32 * 1024;
pub const MIN_MATCH: usize = 3;
pub const MAX_MATCH: usize = 258;

/// One LZ77 token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Token {
    Literal(u8),
    /// Back-reference: `dist` bytes back, `len` bytes long.
    Match {
        len: u16,
        dist: u16,
    },
}

const HASH_BITS: u32 = 15;
const HASH_SIZE: usize = 1 << HASH_BITS;

fn hash3(data: &[u8], i: usize) -> usize {
    let v = (data[i] as u32) | ((data[i + 1] as u32) << 8) | ((data[i + 2] as u32) << 16);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Greedy hash-chain tokenizer with one-step lazy matching (as in zlib's
/// default strategy, simplified).
pub fn tokenize(data: &[u8], max_chain: usize) -> Vec<Token> {
    let n = data.len();
    let mut tokens = Vec::with_capacity(n / 2 + 16);
    if n < MIN_MATCH {
        tokens.extend(data.iter().map(|&b| Token::Literal(b)));
        return tokens;
    }
    // head[h] = most recent position with hash h; prev[i % W] = previous
    // position in the chain.
    let mut head = vec![usize::MAX; HASH_SIZE];
    let mut prev = vec![usize::MAX; WINDOW_SIZE];
    let mut i = 0usize;

    let insert = |head: &mut [usize], prev: &mut [usize], data: &[u8], i: usize| {
        if i + MIN_MATCH <= data.len() {
            let h = hash3(data, i);
            prev[i % WINDOW_SIZE] = head[h];
            head[h] = i;
        }
    };

    let best_match = |head: &[usize], prev: &[usize], data: &[u8], i: usize| -> (usize, usize) {
        if i + MIN_MATCH > data.len() {
            return (0, 0);
        }
        let h = hash3(data, i);
        let mut cand = head[h];
        let max_len = MAX_MATCH.min(data.len() - i);
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        let mut chains = 0usize;
        while cand != usize::MAX && chains < max_chain {
            chains += 1;
            let dist = i - cand;
            if dist == 0 || dist > WINDOW_SIZE {
                break;
            }
            let mut l = 0usize;
            while l < max_len && data[cand + l] == data[i + l] {
                l += 1;
            }
            if l > best_len {
                best_len = l;
                best_dist = dist;
                if l >= max_len {
                    break;
                }
            }
            cand = prev[cand % WINDOW_SIZE];
            // Chains referencing positions outside the window are stale.
            if cand != usize::MAX && cand + WINDOW_SIZE < i {
                break;
            }
        }
        (best_len, best_dist)
    };

    while i < n {
        let (len, dist) = best_match(&head, &prev, data, i);
        if len >= MIN_MATCH {
            // One-step lazy evaluation: prefer a longer match at i+1.
            let (len2, _) = if i + 1 < n {
                best_match(&head, &prev, data, i + 1)
            } else {
                (0, 0)
            };
            if len2 > len + 1 {
                insert(&mut head, &mut prev, data, i);
                tokens.push(Token::Literal(data[i]));
                i += 1;
                continue;
            }
            tokens.push(Token::Match {
                len: len as u16,
                dist: dist as u16,
            });
            for k in 0..len {
                insert(&mut head, &mut prev, data, i + k);
            }
            i += len;
        } else {
            insert(&mut head, &mut prev, data, i);
            tokens.push(Token::Literal(data[i]));
            i += 1;
        }
    }
    tokens
}

/// Expand tokens back into bytes (the LZ77 half of inflate; also the test
/// oracle for `tokenize`).
pub fn expand(tokens: &[Token]) -> Vec<u8> {
    let mut out = Vec::new();
    for t in tokens {
        match *t {
            Token::Literal(b) => out.push(b),
            Token::Match { len, dist } => {
                let start = out.len() - dist as usize;
                for k in 0..len as usize {
                    let b = out[start + k];
                    out.push(b);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cypress_obs::rng::Rng;

    #[test]
    fn repetitive_input_produces_matches() {
        let data = b"abcabcabcabcabcabc";
        let toks = tokenize(data, 64);
        assert!(toks.iter().any(|t| matches!(t, Token::Match { .. })));
        assert_eq!(expand(&toks), data);
    }

    #[test]
    fn short_input_is_literals() {
        let toks = tokenize(b"ab", 64);
        assert_eq!(toks, vec![Token::Literal(b'a'), Token::Literal(b'b')]);
    }

    #[test]
    fn run_of_same_byte_overlapping_match() {
        let data = vec![7u8; 1000];
        let toks = tokenize(&data, 64);
        assert!(
            toks.len() < 20,
            "run should compress well, got {}",
            toks.len()
        );
        assert_eq!(expand(&toks), data);
    }

    #[test]
    fn empty_input() {
        assert!(tokenize(&[], 64).is_empty());
    }

    #[test]
    fn long_input_crossing_window() {
        // > 32 KiB with structure.
        let mut data = Vec::new();
        for i in 0..40_000u32 {
            data.push((i % 251) as u8);
        }
        let toks = tokenize(&data, 32);
        assert_eq!(expand(&toks), data);
    }

    #[test]
    fn expand_inverts_tokenize_random() {
        let mut rng = Rng::new(0x1277);
        for _ in 0..128 {
            let n = rng.range_usize(0..5000);
            let mut data = vec![0u8; n];
            rng.fill_bytes(&mut data);
            let toks = tokenize(&data, 16);
            assert_eq!(expand(&toks), data);
        }
    }

    #[test]
    fn low_entropy_round_trip_random() {
        let mut rng = Rng::new(0x10e0);
        for _ in 0..128 {
            let n = rng.range_usize(0..5000);
            let data: Vec<u8> = (0..n).map(|_| rng.range_u64(0..4) as u8).collect();
            let toks = tokenize(&data, 16);
            assert_eq!(expand(&toks), data.clone());
            // Low-entropy inputs must actually compress.
            if data.len() > 200 {
                assert!(toks.len() < data.len());
            }
        }
    }
}
