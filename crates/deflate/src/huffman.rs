//! Canonical Huffman codes: length-limited construction (package-merge) and
//! canonical decoding, per RFC 1951 §3.2.2.

use crate::bitio::{BitError, BitReader};

/// Compute length-limited Huffman code lengths for the given symbol
/// frequencies via the package-merge algorithm. Symbols with zero frequency
/// get length 0. `max_len` is 15 for literal/distance codes and 7 for the
/// code-length code.
pub fn code_lengths(freqs: &[u64], max_len: u32) -> Vec<u8> {
    let n = freqs.len();
    let active: Vec<usize> = (0..n).filter(|&i| freqs[i] > 0).collect();
    let mut lens = vec![0u8; n];
    match active.len() {
        0 => return lens,
        1 => {
            // DEFLATE requires at least a 1-bit code for a lone symbol.
            lens[active[0]] = 1;
            return lens;
        }
        _ => {}
    }
    assert!(
        (active.len() as u64) <= (1u64 << max_len),
        "too many symbols for the length limit"
    );

    // Package-merge: items are (weight, coin) where a coin is a set of
    // original symbols; each level produces packages of pairs.
    #[derive(Clone)]
    struct Coin {
        weight: u64,
        symbols: Vec<usize>,
    }
    let base: Vec<Coin> = {
        let mut v: Vec<Coin> = active
            .iter()
            .map(|&i| Coin {
                weight: freqs[i],
                symbols: vec![i],
            })
            .collect();
        v.sort_by_key(|c| c.weight);
        v
    };
    let mut prev: Vec<Coin> = Vec::new();
    for _level in 0..max_len {
        // Merge base coins with packages from the previous level.
        let mut merged: Vec<Coin> = Vec::with_capacity(base.len() + prev.len() / 2);
        let mut packages = Vec::with_capacity(prev.len() / 2);
        let mut it = prev.chunks_exact(2);
        for pair in &mut it {
            let mut syms = pair[0].symbols.clone();
            syms.extend_from_slice(&pair[1].symbols);
            packages.push(Coin {
                weight: pair[0].weight + pair[1].weight,
                symbols: syms,
            });
        }
        let (mut a, mut b) = (base.iter().peekable(), packages.into_iter().peekable());
        loop {
            match (a.peek(), b.peek()) {
                (Some(x), Some(y)) => {
                    if x.weight <= y.weight {
                        merged.push((*a.next().expect("peeked")).clone());
                    } else {
                        merged.push(b.next().expect("peeked"));
                    }
                }
                (Some(_), None) => merged.push((*a.next().expect("peeked")).clone()),
                (None, Some(_)) => merged.push(b.next().expect("peeked")),
                (None, None) => break,
            }
        }
        prev = merged;
    }
    // Take the first 2·(m−1) coins; each appearance of a symbol adds one to
    // its code length.
    let take = 2 * (active.len() - 1);
    for coin in prev.iter().take(take) {
        for &s in &coin.symbols {
            lens[s] += 1;
        }
    }
    lens
}

/// Assign canonical codes from code lengths (RFC 1951 §3.2.2). Returns codes
/// aligned with `lens` (symbols with length 0 get code 0).
pub fn canonical_codes(lens: &[u8]) -> Vec<u32> {
    let max = lens.iter().copied().max().unwrap_or(0) as usize;
    let mut bl_count = vec![0u32; max + 1];
    for &l in lens {
        if l > 0 {
            bl_count[l as usize] += 1;
        }
    }
    let mut next_code = vec![0u32; max + 2];
    let mut code = 0u32;
    for bits in 1..=max {
        code = (code + bl_count[bits - 1]) << 1;
        next_code[bits] = code;
    }
    lens.iter()
        .map(|&l| {
            if l == 0 {
                0
            } else {
                let c = next_code[l as usize];
                next_code[l as usize] += 1;
                c
            }
        })
        .collect()
}

/// Canonical Huffman decoder.
pub struct Decoder {
    /// count[l] = number of codes of length l.
    counts: Vec<u32>,
    /// Symbols sorted by (length, symbol) — canonical order.
    symbols: Vec<u16>,
}

impl Decoder {
    /// Build from code lengths. Returns `None` for an over-subscribed or
    /// incomplete (but non-trivial) code.
    pub fn new(lens: &[u8]) -> Option<Decoder> {
        let max = lens.iter().copied().max().unwrap_or(0) as usize;
        let mut counts = vec![0u32; max + 1];
        for &l in lens {
            if l > 0 {
                counts[l as usize] += 1;
            }
        }
        // Kraft check.
        let mut left = 1i64;
        for &c in counts.iter().skip(1) {
            left <<= 1;
            left -= c as i64;
            if left < 0 {
                return None; // over-subscribed
            }
        }
        let mut symbols = Vec::new();
        for bits in 1..=max {
            for (sym, &l) in lens.iter().enumerate() {
                if l as usize == bits {
                    symbols.push(sym as u16);
                }
            }
        }
        Some(Decoder { counts, symbols })
    }

    /// Decode one symbol from the bit reader.
    pub fn decode(&self, r: &mut BitReader<'_>) -> Result<u16, BitError> {
        let mut code = 0i64;
        let mut first = 0i64;
        let mut index = 0i64;
        for len in 1..self.counts.len() {
            code |= r.read_bit()? as i64;
            let count = self.counts[len] as i64;
            if code - first < count {
                return Ok(self.symbols[(index + (code - first)) as usize]);
            }
            index += count;
            first = (first + count) << 1;
            code <<= 1;
        }
        Err(BitError("invalid Huffman code".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitio::BitWriter;
    use cypress_obs::rng::Rng;

    #[test]
    fn lengths_respect_limit_and_kraft() {
        let freqs: Vec<u64> = (1..=40).map(|i| i * i).collect();
        for limit in [7u32, 15] {
            let lens = code_lengths(&freqs, limit);
            assert!(lens.iter().all(|&l| l as u32 <= limit));
            let kraft: f64 = lens
                .iter()
                .filter(|&&l| l > 0)
                .map(|&l| 2f64.powi(-(l as i32)))
                .sum();
            assert!(kraft <= 1.0 + 1e-12, "kraft {kraft}");
        }
    }

    #[test]
    fn frequent_symbols_get_short_codes() {
        let lens = code_lengths(&[1000, 1, 1, 1], 15);
        assert!(lens[0] < lens[1]);
    }

    #[test]
    fn single_symbol_gets_one_bit() {
        let lens = code_lengths(&[0, 42, 0], 15);
        assert_eq!(lens, vec![0, 1, 0]);
    }

    #[test]
    fn canonical_assignment_rfc_example() {
        // RFC 1951 example: lengths (3,3,3,3,3,2,4,4) → codes.
        let lens = [3u8, 3, 3, 3, 3, 2, 4, 4];
        let codes = canonical_codes(&lens);
        assert_eq!(
            codes,
            vec![0b010, 0b011, 0b100, 0b101, 0b110, 0b00, 0b1110, 0b1111]
        );
    }

    #[test]
    fn encode_decode_round_trip() {
        let freqs: Vec<u64> = vec![50, 20, 10, 5, 5, 5, 3, 1, 1];
        let lens = code_lengths(&freqs, 15);
        let codes = canonical_codes(&lens);
        let dec = Decoder::new(&lens).unwrap();
        let msg: Vec<u16> = vec![0, 1, 2, 8, 3, 0, 0, 5, 7, 2];
        let mut w = BitWriter::new();
        for &s in &msg {
            w.write_code(codes[s as usize], lens[s as usize] as u32);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &s in &msg {
            assert_eq!(dec.decode(&mut r).unwrap(), s);
        }
    }

    #[test]
    fn oversubscribed_lengths_rejected() {
        assert!(Decoder::new(&[1, 1, 1]).is_none());
    }

    #[test]
    fn round_trip_random_freqs() {
        let mut rng = Rng::new(0x48ff);
        for _ in 0..256 {
            let nsyms = rng.range_usize(2..60);
            let freqs: Vec<u64> = (0..nsyms).map(|_| rng.range_u64(0..1000)).collect();
            let active: Vec<usize> = (0..freqs.len()).filter(|&i| freqs[i] > 0).collect();
            if active.len() < 2 {
                continue;
            }
            let lens = code_lengths(&freqs, 15);
            let codes = canonical_codes(&lens);
            let dec = Decoder::new(&lens).unwrap();
            let msg_len = rng.range_usize(1..200);
            let msg: Vec<u16> = (0..msg_len)
                .map(|_| active[rng.range_usize(0..active.len())] as u16)
                .collect();
            let mut w = BitWriter::new();
            for &s in &msg {
                assert!(lens[s as usize] > 0);
                w.write_code(codes[s as usize], lens[s as usize] as u32);
            }
            let bytes = w.finish();
            let mut r = BitReader::new(&bytes);
            for &s in &msg {
                assert_eq!(dec.decode(&mut r).unwrap(), s);
            }
        }
    }
}
