//! CRC-32 (IEEE 802.3, the gzip polynomial), table-driven.

/// Reflected polynomial for CRC-32/ISO-HDLC as used by gzip.
const POLY: u32 = 0xEDB8_8320;

/// Build the 256-entry lookup table at compile time.
const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// Streaming CRC-32 state.
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    pub fn update(&mut self, data: &[u8]) {
        let mut c = self.state;
        for &b in data {
            c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.state = c;
    }

    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of a buffer.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn streaming_equals_oneshot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut c = Crc32::new();
        c.update(&data[..10]);
        c.update(&data[10..]);
        assert_eq!(c.finish(), crc32(data));
    }
}
