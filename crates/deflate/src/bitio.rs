//! LSB-first bit I/O as required by DEFLATE (RFC 1951 §3.1.1).

/// Bit-level writer: bits are packed starting from the least significant bit
/// of each output byte.
#[derive(Default)]
pub struct BitWriter {
    out: Vec<u8>,
    bitbuf: u64,
    nbits: u32,
}

impl BitWriter {
    pub fn new() -> Self {
        BitWriter::default()
    }

    /// Write the low `n` bits of `v` (n ≤ 32), LSB first.
    pub fn write_bits(&mut self, v: u32, n: u32) {
        debug_assert!(n <= 32);
        debug_assert!(n == 32 || v < (1u32 << n));
        self.bitbuf |= (v as u64) << self.nbits;
        self.nbits += n;
        while self.nbits >= 8 {
            self.out.push((self.bitbuf & 0xFF) as u8);
            self.bitbuf >>= 8;
            self.nbits -= 8;
        }
    }

    /// Write a Huffman code: DEFLATE stores Huffman codes MSB-first, so the
    /// canonical code's bits must be reversed before packing.
    pub fn write_code(&mut self, code: u32, len: u32) {
        let rev = reverse_bits(code, len);
        self.write_bits(rev, len);
    }

    /// Pad to a byte boundary with zero bits.
    pub fn align_byte(&mut self) {
        if self.nbits > 0 {
            self.out.push((self.bitbuf & 0xFF) as u8);
            self.bitbuf = 0;
            self.nbits = 0;
        }
    }

    /// Append raw bytes (caller must be byte-aligned).
    pub fn write_bytes(&mut self, data: &[u8]) {
        debug_assert_eq!(self.nbits, 0, "write_bytes requires byte alignment");
        self.out.extend_from_slice(data);
    }

    pub fn finish(mut self) -> Vec<u8> {
        self.align_byte();
        self.out
    }

    /// Bits written so far (useful for size accounting).
    pub fn bit_len(&self) -> u64 {
        self.out.len() as u64 * 8 + self.nbits as u64
    }
}

/// Reverse the low `n` bits of `v`.
pub fn reverse_bits(v: u32, n: u32) -> u32 {
    let mut r = 0u32;
    for i in 0..n {
        if v & (1 << i) != 0 {
            r |= 1 << (n - 1 - i);
        }
    }
    r
}

/// Bit-level reader, LSB first.
pub struct BitReader<'a> {
    data: &'a [u8],
    pos: usize,
    bitbuf: u64,
    nbits: u32,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitError(pub String);

impl std::fmt::Display for BitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bitstream error: {}", self.0)
    }
}

impl std::error::Error for BitError {}

impl<'a> BitReader<'a> {
    pub fn new(data: &'a [u8]) -> Self {
        BitReader {
            data,
            pos: 0,
            bitbuf: 0,
            nbits: 0,
        }
    }

    fn fill(&mut self) {
        while self.nbits <= 56 && self.pos < self.data.len() {
            self.bitbuf |= (self.data[self.pos] as u64) << self.nbits;
            self.pos += 1;
            self.nbits += 8;
        }
    }

    /// Read `n` bits (n ≤ 32), LSB first.
    pub fn read_bits(&mut self, n: u32) -> Result<u32, BitError> {
        debug_assert!(n <= 32);
        self.fill();
        if self.nbits < n {
            return Err(BitError("unexpected end of input".into()));
        }
        let v = if n == 0 {
            0
        } else {
            (self.bitbuf & ((1u64 << n) - 1)) as u32
        };
        self.bitbuf >>= n;
        self.nbits -= n;
        Ok(v)
    }

    /// Read a single bit.
    pub fn read_bit(&mut self) -> Result<u32, BitError> {
        self.read_bits(1)
    }

    /// Discard bits up to the next byte boundary.
    pub fn align_byte(&mut self) {
        let drop = self.nbits % 8;
        self.bitbuf >>= drop;
        self.nbits -= drop;
    }

    /// Read raw bytes after alignment.
    pub fn read_bytes(&mut self, n: usize) -> Result<Vec<u8>, BitError> {
        debug_assert_eq!(self.nbits % 8, 0);
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let b = self.read_bits(8)?;
            out.push(b as u8);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_bit_patterns() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0b11111111, 8);
        w.write_bits(0, 1);
        w.write_bits(0xABCD, 16);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        assert_eq!(r.read_bits(8).unwrap(), 0xFF);
        assert_eq!(r.read_bits(1).unwrap(), 0);
        assert_eq!(r.read_bits(16).unwrap(), 0xABCD);
    }

    #[test]
    fn reverse_bits_examples() {
        assert_eq!(reverse_bits(0b1, 1), 0b1);
        assert_eq!(reverse_bits(0b01, 2), 0b10);
        assert_eq!(reverse_bits(0b0011, 4), 0b1100);
    }

    #[test]
    fn align_and_raw_bytes() {
        let mut w = BitWriter::new();
        w.write_bits(1, 1);
        w.align_byte();
        w.write_bytes(&[0xDE, 0xAD]);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bit().unwrap(), 1);
        r.align_byte();
        assert_eq!(r.read_bytes(2).unwrap(), vec![0xDE, 0xAD]);
    }

    #[test]
    fn eof_detected() {
        let mut r = BitReader::new(&[0xFF]);
        assert!(r.read_bits(8).is_ok());
        assert!(r.read_bits(1).is_err());
    }
}
