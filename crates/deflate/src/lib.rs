//! # cypress-deflate — from-scratch DEFLATE / gzip substrate
//!
//! The paper's "Gzip" baseline (also the compressor OTF uses) rebuilt from
//! the RFCs: LZ77 with hash chains and lazy matching ([`lz77`]),
//! length-limited canonical Huffman codes via package-merge ([`huffman`]),
//! DEFLATE encoding with stored/fixed/dynamic block selection
//! ([`mod@deflate`]/[`mod@inflate`], RFC 1951), and the gzip container with
//! CRC-32 integrity (RFC 1952, [`gzip`], [`mod@crc32`]).
//!
//! ```
//! use cypress_deflate::{gzip_compress, gzip_decompress, Level};
//!
//! let data = b"traces traces traces traces traces".repeat(100);
//! let z = gzip_compress(&data, Level::Default);
//! assert!(z.len() < data.len() / 4);
//! assert_eq!(gzip_decompress(&z).unwrap(), data);
//! ```

pub mod bitio;
pub mod crc32;
#[allow(clippy::module_inception)]
pub mod deflate;
pub mod gzip;
pub mod huffman;
pub mod inflate;
pub mod lz77;
pub mod tables;

pub use crc32::{crc32, Crc32};
pub use deflate::{deflate, Level};
pub use gzip::{gzip_compress, gzip_decompress, gzip_size};
pub use inflate::inflate;
