//! DEFLATE decompression (RFC 1951): stored, fixed- and dynamic-Huffman
//! blocks.

use crate::bitio::{BitError, BitReader};
use crate::huffman::Decoder;
use crate::tables::*;

/// Decompress a raw DEFLATE stream.
pub fn inflate(data: &[u8]) -> Result<Vec<u8>, BitError> {
    let mut r = BitReader::new(data);
    let mut out = Vec::new();
    loop {
        let bfinal = r.read_bit()?;
        let btype = r.read_bits(2)?;
        match btype {
            0 => {
                r.align_byte();
                let len_bytes = r.read_bytes(2)?;
                let nlen_bytes = r.read_bytes(2)?;
                let len = u16::from_le_bytes([len_bytes[0], len_bytes[1]]);
                let nlen = u16::from_le_bytes([nlen_bytes[0], nlen_bytes[1]]);
                if len != !nlen {
                    return Err(BitError("stored block LEN/NLEN mismatch".into()));
                }
                out.extend(r.read_bytes(len as usize)?);
            }
            1 => {
                let lit =
                    Decoder::new(&fixed_litlen_lens()).expect("fixed litlen code is well-formed");
                let dist =
                    Decoder::new(&fixed_dist_lens()).expect("fixed distance code is well-formed");
                inflate_block(&mut r, &lit, &dist, &mut out)?;
            }
            2 => {
                let (lit, dist) = read_dynamic_header(&mut r)?;
                inflate_block(&mut r, &lit, &dist, &mut out)?;
            }
            _ => return Err(BitError("reserved block type 3".into())),
        }
        if bfinal == 1 {
            return Ok(out);
        }
    }
}

fn read_dynamic_header(r: &mut BitReader<'_>) -> Result<(Decoder, Decoder), BitError> {
    let hlit = r.read_bits(5)? as usize + 257;
    let hdist = r.read_bits(5)? as usize + 1;
    let hclen = r.read_bits(4)? as usize + 4;
    if hlit > 286 || hdist > 30 {
        return Err(BitError(format!("bad HLIT/HDIST {hlit}/{hdist}")));
    }
    let mut clc_lens = [0u8; 19];
    for &o in CLC_ORDER.iter().take(hclen) {
        clc_lens[o] = r.read_bits(3)? as u8;
    }
    let clc = Decoder::new(&clc_lens).ok_or_else(|| BitError("bad code-length code".into()))?;

    let mut lens = Vec::with_capacity(hlit + hdist);
    while lens.len() < hlit + hdist {
        let sym = clc.decode(r)?;
        match sym {
            0..=15 => lens.push(sym as u8),
            16 => {
                let prev = *lens
                    .last()
                    .ok_or_else(|| BitError("repeat with no previous length".into()))?;
                let n = 3 + r.read_bits(2)?;
                for _ in 0..n {
                    lens.push(prev);
                }
            }
            17 => {
                let n = 3 + r.read_bits(3)? as usize;
                lens.resize(lens.len() + n, 0);
            }
            18 => {
                let n = 11 + r.read_bits(7)? as usize;
                lens.resize(lens.len() + n, 0);
            }
            _ => return Err(BitError(format!("bad code-length symbol {sym}"))),
        }
    }
    if lens.len() != hlit + hdist {
        return Err(BitError("code lengths overflow HLIT+HDIST".into()));
    }
    let lit =
        Decoder::new(&lens[..hlit]).ok_or_else(|| BitError("bad literal/length code".into()))?;
    let dist = Decoder::new(&lens[hlit..]).ok_or_else(|| BitError("bad distance code".into()))?;
    Ok((lit, dist))
}

fn inflate_block(
    r: &mut BitReader<'_>,
    lit: &Decoder,
    dist: &Decoder,
    out: &mut Vec<u8>,
) -> Result<(), BitError> {
    loop {
        let sym = lit.decode(r)?;
        match sym {
            0..=255 => out.push(sym as u8),
            256 => return Ok(()),
            257..=285 => {
                let li = sym as usize - 257;
                let len = LEN_BASE[li] as usize + r.read_bits(LEN_EXTRA[li] as u32)? as usize;
                let dsym = dist.decode(r)? as usize;
                if dsym >= 30 {
                    return Err(BitError(format!("bad distance symbol {dsym}")));
                }
                let d = DIST_BASE[dsym] as usize + r.read_bits(DIST_EXTRA[dsym] as u32)? as usize;
                if d > out.len() {
                    return Err(BitError("back-reference before start of output".into()));
                }
                let start = out.len() - d;
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
            }
            _ => return Err(BitError(format!("bad literal/length symbol {sym}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deflate::{deflate, Level};
    use cypress_obs::rng::Rng;

    #[test]
    fn rejects_garbage() {
        assert!(inflate(&[0xFF, 0xFF, 0xFF]).is_err());
        assert!(inflate(&[]).is_err());
    }

    #[test]
    fn rejects_bad_stored_nlen() {
        // BFINAL=1, BTYPE=0, then LEN=1 NLEN=1 (mismatch).
        let bytes = [0b001u8, 1, 0, 1, 0, 42];
        assert!(inflate(&bytes).is_err());
    }

    #[test]
    fn known_fixed_block() {
        // Compress "hello" and verify round trip via the fixed path.
        let data = b"hello";
        let c = deflate(data, Level::Fast);
        assert_eq!(inflate(&c).unwrap(), data);
    }

    #[test]
    fn round_trip_random() {
        let mut rng = Rng::new(0x1f1a);
        for _ in 0..64 {
            let n = rng.range_usize(0..8000);
            let mut data = vec![0u8; n];
            rng.fill_bytes(&mut data);
            let c = deflate(&data, Level::Default);
            assert_eq!(inflate(&c).unwrap(), data);
        }
    }

    #[test]
    fn round_trip_structured() {
        let mut rng = Rng::new(0x57ec);
        for _ in 0..64 {
            let wlen = rng.range_usize(1..20);
            let mut word = vec![0u8; wlen];
            rng.fill_bytes(&mut word);
            let reps = rng.range_usize(1..400);
            let data: Vec<u8> = word
                .iter()
                .cycle()
                .take(word.len() * reps)
                .copied()
                .collect();
            let c = deflate(&data, Level::Best);
            assert_eq!(inflate(&c).unwrap(), data.clone());
            if data.len() > 500 {
                assert!(c.len() < data.len());
            }
        }
    }

    #[test]
    fn round_trip_all_levels() {
        let mut rng = Rng::new(0xa11e);
        for _ in 0..24 {
            let n = rng.range_usize(0..4000);
            let data: Vec<u8> = (0..n).map(|_| rng.range_u64(0..16) as u8).collect();
            for level in [Level::Fast, Level::Default, Level::Best] {
                let c = deflate(&data, level);
                assert_eq!(inflate(&c).unwrap(), data.clone());
            }
        }
    }
}
