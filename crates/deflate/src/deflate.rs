//! DEFLATE compression (RFC 1951): LZ77 tokens entropy-coded with canonical
//! Huffman codes. Emits a single final block per call, choosing between
//! stored, fixed-Huffman and dynamic-Huffman encodings by estimated size.

use crate::bitio::BitWriter;
use crate::huffman::{canonical_codes, code_lengths};
use crate::lz77::{tokenize, Token};
use crate::tables::*;

/// Compression effort: bounds the LZ77 hash-chain search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    Fast,
    Default,
    Best,
}

impl Level {
    fn max_chain(self) -> usize {
        match self {
            Level::Fast => 8,
            Level::Default => 64,
            Level::Best => 512,
        }
    }
}

/// Compress `data` into a raw DEFLATE stream.
pub fn deflate(data: &[u8], level: Level) -> Vec<u8> {
    let tokens = tokenize(data, level.max_chain());

    // Symbol frequencies (literal/length alphabet + end-of-block, distances).
    let mut lit_freq = vec![0u64; 286];
    let mut dist_freq = vec![0u64; 30];
    for t in &tokens {
        match *t {
            Token::Literal(b) => lit_freq[b as usize] += 1,
            Token::Match { len, dist } => {
                let (lc, _) = length_code(len);
                lit_freq[257 + lc] += 1;
                let (dc, _) = dist_code(dist);
                dist_freq[dc] += 1;
            }
        }
    }
    lit_freq[256] += 1; // end of block

    let dyn_lit_lens = code_lengths(&lit_freq, 15);
    let dyn_dist_lens = code_lengths(&dist_freq, 15);

    let fixed_cost = block_cost(&tokens, &fixed_litlen_lens(), &fixed_dist_lens());
    let dyn_cost = block_cost(&tokens, &dyn_lit_lens, &dyn_dist_lens)
        + header_cost_estimate(&dyn_lit_lens, &dyn_dist_lens);
    let stored_cost = 8 * (data.len() as u64 + 5) + 8;

    let mut w = BitWriter::new();
    if stored_cost <= fixed_cost && stored_cost <= dyn_cost {
        write_stored(&mut w, data);
    } else if fixed_cost <= dyn_cost {
        w.write_bits(1, 1); // BFINAL
        w.write_bits(1, 2); // BTYPE = fixed
        write_tokens(&mut w, &tokens, &fixed_litlen_lens(), &fixed_dist_lens());
    } else {
        w.write_bits(1, 1); // BFINAL
        w.write_bits(2, 2); // BTYPE = dynamic
        write_dynamic_header(&mut w, &dyn_lit_lens, &dyn_dist_lens);
        write_tokens(&mut w, &tokens, &dyn_lit_lens, &dyn_dist_lens);
    }
    w.finish()
}

fn write_stored(w: &mut BitWriter, data: &[u8]) {
    // Stored blocks are limited to 65535 bytes each.
    let mut chunks = data.chunks(65535).peekable();
    if data.is_empty() {
        w.write_bits(1, 1);
        w.write_bits(0, 2);
        w.align_byte();
        w.write_bytes(&[0, 0, 0xFF, 0xFF]);
        return;
    }
    while let Some(chunk) = chunks.next() {
        let last = chunks.peek().is_none();
        w.write_bits(last as u32, 1);
        w.write_bits(0, 2); // BTYPE = stored
        w.align_byte();
        let len = chunk.len() as u16;
        w.write_bytes(&len.to_le_bytes());
        w.write_bytes(&(!len).to_le_bytes());
        w.write_bytes(chunk);
    }
}

/// Exact payload cost in bits of coding `tokens` with the given code lengths.
fn block_cost(tokens: &[Token], lit_lens: &[u8], dist_lens: &[u8]) -> u64 {
    let mut bits = 0u64;
    for t in tokens {
        match *t {
            Token::Literal(b) => bits += lit_lens[b as usize] as u64,
            Token::Match { len, dist } => {
                let (lc, _) = length_code(len);
                bits += lit_lens[257 + lc] as u64 + LEN_EXTRA[lc] as u64;
                let (dc, _) = dist_code(dist);
                bits += dist_lens[dc] as u64 + DIST_EXTRA[dc] as u64;
            }
        }
    }
    bits + lit_lens[256] as u64
}

fn header_cost_estimate(lit_lens: &[u8], dist_lens: &[u8]) -> u64 {
    // 14 bits of counts + roughly 7 bits per transmitted code length.
    14 + 7 * (lit_lens.len() as u64 + dist_lens.len() as u64) / 2
}

fn write_tokens(w: &mut BitWriter, tokens: &[Token], lit_lens: &[u8], dist_lens: &[u8]) {
    let lit_codes = canonical_codes(lit_lens);
    let dist_codes = canonical_codes(dist_lens);
    for t in tokens {
        match *t {
            Token::Literal(b) => {
                w.write_code(lit_codes[b as usize], lit_lens[b as usize] as u32);
            }
            Token::Match { len, dist } => {
                let (lc, lextra) = length_code(len);
                w.write_code(lit_codes[257 + lc], lit_lens[257 + lc] as u32);
                if LEN_EXTRA[lc] > 0 {
                    w.write_bits(lextra, LEN_EXTRA[lc] as u32);
                }
                let (dc, dextra) = dist_code(dist);
                w.write_code(dist_codes[dc], dist_lens[dc] as u32);
                if DIST_EXTRA[dc] > 0 {
                    w.write_bits(dextra, DIST_EXTRA[dc] as u32);
                }
            }
        }
    }
    w.write_code(lit_codes[256], lit_lens[256] as u32);
}

/// Encode the dynamic block header: HLIT/HDIST/HCLEN and the code lengths
/// themselves, run-length coded with symbols 16/17/18 (RFC 1951 §3.2.7).
fn write_dynamic_header(w: &mut BitWriter, lit_lens: &[u8], dist_lens: &[u8]) {
    let hlit = {
        let mut n = 286;
        while n > 257 && lit_lens[n - 1] == 0 {
            n -= 1;
        }
        n
    };
    let hdist = {
        let mut n = 30;
        while n > 1 && dist_lens[n - 1] == 0 {
            n -= 1;
        }
        n
    };

    // RLE over the concatenated code lengths.
    let mut all: Vec<u8> = Vec::with_capacity(hlit + hdist);
    all.extend_from_slice(&lit_lens[..hlit]);
    all.extend_from_slice(&dist_lens[..hdist]);
    let rle = rle_code_lengths(&all);

    let mut clc_freq = vec![0u64; 19];
    for &(sym, _) in &rle {
        clc_freq[sym as usize] += 1;
    }
    let clc_lens = code_lengths(&clc_freq, 7);
    let clc_codes = canonical_codes(&clc_lens);

    let hclen = {
        let mut n = 19;
        while n > 4 && clc_lens[CLC_ORDER[n - 1]] == 0 {
            n -= 1;
        }
        n
    };

    w.write_bits((hlit - 257) as u32, 5);
    w.write_bits((hdist - 1) as u32, 5);
    w.write_bits((hclen - 4) as u32, 4);
    for &o in CLC_ORDER.iter().take(hclen) {
        w.write_bits(clc_lens[o] as u32, 3);
    }
    for &(sym, extra) in &rle {
        w.write_code(clc_codes[sym as usize], clc_lens[sym as usize] as u32);
        match sym {
            16 => w.write_bits(extra, 2),
            17 => w.write_bits(extra, 3),
            18 => w.write_bits(extra, 7),
            _ => {}
        }
    }
}

/// Run-length encode code lengths into (symbol, extra-bits) pairs.
fn rle_code_lengths(lens: &[u8]) -> Vec<(u8, u32)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < lens.len() {
        let v = lens[i];
        let mut run = 1;
        while i + run < lens.len() && lens[i + run] == v {
            run += 1;
        }
        if v == 0 {
            let mut rem = run;
            while rem >= 11 {
                let take = rem.min(138);
                out.push((18, (take - 11) as u32));
                rem -= take;
            }
            if rem >= 3 {
                out.push((17, (rem - 3) as u32));
                rem = 0;
            }
            for _ in 0..rem {
                out.push((0, 0));
            }
        } else {
            out.push((v, 0));
            let mut rem = run - 1;
            while rem >= 3 {
                let take = rem.min(6);
                out.push((16, (take - 3) as u32));
                rem -= take;
            }
            for _ in 0..rem {
                out.push((v, 0));
            }
        }
        i += run;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inflate::inflate;

    #[test]
    fn rle_encodes_zero_runs() {
        let lens = vec![0u8; 20];
        let rle = rle_code_lengths(&lens);
        assert_eq!(rle, vec![(18, 9)]); // 20 zeros = code 18 with extra 9
    }

    #[test]
    fn rle_encodes_value_repeats() {
        let lens = [5u8; 8];
        let rle = rle_code_lengths(&lens);
        // 5, then repeat(16) x 7 → one 16 of 6 and one literal 5.
        assert_eq!(rle[0], (5, 0));
        assert_eq!(rle[1], (16, 3)); // repeat 6
        assert_eq!(rle[2], (5, 0));
    }

    #[test]
    fn deflate_then_inflate_text() {
        let data = b"It was the best of times, it was the worst of times, it was the age of wisdom, it was the age of foolishness".repeat(20);
        for level in [Level::Fast, Level::Default, Level::Best] {
            let c = deflate(&data, level);
            assert!(c.len() < data.len() / 2, "should compress text well");
            assert_eq!(inflate(&c).unwrap(), data);
        }
    }

    #[test]
    fn incompressible_data_falls_back_to_stored() {
        // Pseudo-random bytes.
        let mut x = 0x12345678u32;
        let data: Vec<u8> = (0..5000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                (x & 0xFF) as u8
            })
            .collect();
        let c = deflate(&data, Level::Default);
        // Stored adds ~5 bytes per 64k chunk; never blow up.
        assert!(c.len() <= data.len() + 64);
        assert_eq!(inflate(&c).unwrap(), data);
    }

    #[test]
    fn empty_input() {
        let c = deflate(&[], Level::Default);
        assert_eq!(inflate(&c).unwrap(), Vec::<u8>::new());
    }
}
