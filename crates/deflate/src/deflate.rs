//! DEFLATE compression (RFC 1951): LZ77 tokens entropy-coded with canonical
//! Huffman codes. Emits a single final block per call, choosing between
//! stored, fixed-Huffman and dynamic-Huffman encodings by estimated size.
//!
//! The hot path is allocation-free in steady state: LZ77 tokens stream out
//! of a reusable [`Lz77`] tokenizer straight into per-thread scratch
//! (symbol frequencies + a packed `u32` token buffer), so compressing a
//! block neither materializes a `Vec<Token>` nor reallocates the 256 KiB of
//! hash-chain state.

use crate::bitio::BitWriter;
use crate::huffman::{canonical_codes, code_lengths};
use crate::lz77::{Lz77, Token};
use crate::tables::*;
use std::cell::RefCell;

/// Compression effort: bounds the LZ77 hash-chain search and sets the lazy
/// matching policy (fast is greedy, default/best do one-step lazy
/// evaluation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Level {
    Fast,
    #[default]
    Default,
    Best,
}

impl Level {
    fn max_chain(self) -> usize {
        match self {
            Level::Fast => 8,
            Level::Default => 64,
            Level::Best => 512,
        }
    }

    fn lazy(self) -> bool {
        !matches!(self, Level::Fast)
    }

    /// Stable lower-case name (CLI flag values, bench JSON keys).
    pub fn name(self) -> &'static str {
        match self {
            Level::Fast => "fast",
            Level::Default => "default",
            Level::Best => "best",
        }
    }

    /// Parse a [`Level::name`] back; `None` for unknown names.
    pub fn from_name(s: &str) -> Option<Level> {
        match s {
            "fast" => Some(Level::Fast),
            "default" => Some(Level::Default),
            "best" => Some(Level::Best),
            _ => None,
        }
    }

    /// All levels, in increasing effort order.
    pub const ALL: [Level; 3] = [Level::Fast, Level::Default, Level::Best];
}

/// A token packed into 32 bits: bit 31 set ⇒ match with `len-3` in bits
/// 16..24 and `dist-1` in bits 0..15; clear ⇒ literal byte in bits 0..8.
const MATCH_FLAG: u32 = 1 << 31;

#[inline]
fn pack(t: Token) -> u32 {
    match t {
        Token::Literal(b) => b as u32,
        Token::Match { len, dist } => MATCH_FLAG | (((len - 3) as u32) << 16) | ((dist - 1) as u32),
    }
}

#[inline]
fn unpack(p: u32) -> Token {
    if p & MATCH_FLAG != 0 {
        Token::Match {
            len: ((p >> 16) & 0xFF) as u16 + 3,
            dist: (p & 0xFFFF) as u16 + 1,
        }
    } else {
        Token::Literal(p as u8)
    }
}

/// Per-thread reusable compression state: the LZ77 hash tables, the packed
/// token buffer (dynamic Huffman needs two passes over the tokens), and the
/// symbol frequency accumulators.
struct Scratch {
    lz: Lz77,
    tokens: Vec<u32>,
    lit_freq: [u64; 286],
    dist_freq: [u64; 30],
    /// Total extra bits implied by the match length/distance codes seen —
    /// level-independent part of every entropy-coded block cost.
    extra_bits: u64,
}

impl Scratch {
    fn new() -> Self {
        Scratch {
            lz: Lz77::new(),
            tokens: Vec::new(),
            lit_freq: [0; 286],
            dist_freq: [0; 30],
            extra_bits: 0,
        }
    }
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::new());
}

/// Compress `data` into a raw DEFLATE stream.
pub fn deflate(data: &[u8], level: Level) -> Vec<u8> {
    let mut t = cypress_obs::trace_span(
        "deflate",
        match level {
            Level::Fast => "deflate_fast",
            Level::Default => "deflate_default",
            Level::Best => "deflate_best",
        },
    );
    t.set_arg(data.len() as u64);
    SCRATCH.with(|s| {
        // A panic while the scratch is borrowed would poison nothing (no
        // locks), and `deflate` never re-enters itself.
        deflate_scratch(&mut s.borrow_mut(), data, level)
    })
}

fn deflate_scratch(s: &mut Scratch, data: &[u8], level: Level) -> Vec<u8> {
    s.tokens.clear();
    s.lit_freq.fill(0);
    s.dist_freq.fill(0);
    s.extra_bits = 0;

    // Single pass: the tokenizer streams into the frequency accumulators and
    // the packed token buffer simultaneously.
    {
        let tokens = &mut s.tokens;
        let lit_freq = &mut s.lit_freq;
        let dist_freq = &mut s.dist_freq;
        let extra_bits = &mut s.extra_bits;
        s.lz.tokenize_with(data, level.max_chain(), level.lazy(), |t| {
            match t {
                Token::Literal(b) => lit_freq[b as usize] += 1,
                Token::Match { len, dist } => {
                    let (lc, _) = length_code(len);
                    lit_freq[257 + lc] += 1;
                    let (dc, _) = dist_code(dist);
                    dist_freq[dc] += 1;
                    *extra_bits += LEN_EXTRA[lc] as u64 + DIST_EXTRA[dc] as u64;
                }
            }
            tokens.push(pack(t));
        });
    }
    s.lit_freq[256] += 1; // end of block

    let dyn_lit_lens = code_lengths(&s.lit_freq, 15);
    let dyn_dist_lens = code_lengths(&s.dist_freq, 15);

    // Costs follow from the frequency tables alone — O(alphabet), not
    // O(tokens).
    let fixed_cost = freq_cost(
        &s.lit_freq,
        &s.dist_freq,
        &fixed_litlen_lens(),
        &fixed_dist_lens(),
    ) + s.extra_bits;
    let dyn_cost = freq_cost(&s.lit_freq, &s.dist_freq, &dyn_lit_lens, &dyn_dist_lens)
        + s.extra_bits
        + header_cost_estimate(&dyn_lit_lens, &dyn_dist_lens);
    let stored_cost = 8 * (data.len() as u64 + 5) + 8;

    let mut w = BitWriter::new();
    if stored_cost <= fixed_cost && stored_cost <= dyn_cost {
        write_stored(&mut w, data);
    } else if fixed_cost <= dyn_cost {
        w.write_bits(1, 1); // BFINAL
        w.write_bits(1, 2); // BTYPE = fixed
        write_tokens(&mut w, &s.tokens, &fixed_litlen_lens(), &fixed_dist_lens());
    } else {
        w.write_bits(1, 1); // BFINAL
        w.write_bits(2, 2); // BTYPE = dynamic
        write_dynamic_header(&mut w, &dyn_lit_lens, &dyn_dist_lens);
        write_tokens(&mut w, &s.tokens, &dyn_lit_lens, &dyn_dist_lens);
    }
    w.finish()
}

fn write_stored(w: &mut BitWriter, data: &[u8]) {
    // Stored blocks are limited to 65535 bytes each.
    let mut chunks = data.chunks(65535).peekable();
    if data.is_empty() {
        w.write_bits(1, 1);
        w.write_bits(0, 2);
        w.align_byte();
        w.write_bytes(&[0, 0, 0xFF, 0xFF]);
        return;
    }
    while let Some(chunk) = chunks.next() {
        let last = chunks.peek().is_none();
        w.write_bits(last as u32, 1);
        w.write_bits(0, 2); // BTYPE = stored
        w.align_byte();
        let len = chunk.len() as u16;
        w.write_bytes(&len.to_le_bytes());
        w.write_bytes(&(!len).to_le_bytes());
        w.write_bytes(chunk);
    }
}

/// Payload cost in bits (excluding match extra bits) of coding the given
/// symbol frequencies with the given code lengths.
fn freq_cost(lit_freq: &[u64], dist_freq: &[u64], lit_lens: &[u8], dist_lens: &[u8]) -> u64 {
    let lits: u64 = lit_freq
        .iter()
        .zip(lit_lens)
        .map(|(&f, &l)| f * l as u64)
        .sum();
    let dists: u64 = dist_freq
        .iter()
        .zip(dist_lens)
        .map(|(&f, &l)| f * l as u64)
        .sum();
    lits + dists
}

fn header_cost_estimate(lit_lens: &[u8], dist_lens: &[u8]) -> u64 {
    // 14 bits of counts + roughly 7 bits per transmitted code length.
    14 + 7 * (lit_lens.len() as u64 + dist_lens.len() as u64) / 2
}

fn write_tokens(w: &mut BitWriter, tokens: &[u32], lit_lens: &[u8], dist_lens: &[u8]) {
    let lit_codes = canonical_codes(lit_lens);
    let dist_codes = canonical_codes(dist_lens);
    for &p in tokens {
        match unpack(p) {
            Token::Literal(b) => {
                w.write_code(lit_codes[b as usize], lit_lens[b as usize] as u32);
            }
            Token::Match { len, dist } => {
                let (lc, lextra) = length_code(len);
                w.write_code(lit_codes[257 + lc], lit_lens[257 + lc] as u32);
                if LEN_EXTRA[lc] > 0 {
                    w.write_bits(lextra, LEN_EXTRA[lc] as u32);
                }
                let (dc, dextra) = dist_code(dist);
                w.write_code(dist_codes[dc], dist_lens[dc] as u32);
                if DIST_EXTRA[dc] > 0 {
                    w.write_bits(dextra, DIST_EXTRA[dc] as u32);
                }
            }
        }
    }
    w.write_code(lit_codes[256], lit_lens[256] as u32);
}

/// Encode the dynamic block header: HLIT/HDIST/HCLEN and the code lengths
/// themselves, run-length coded with symbols 16/17/18 (RFC 1951 §3.2.7).
fn write_dynamic_header(w: &mut BitWriter, lit_lens: &[u8], dist_lens: &[u8]) {
    let hlit = {
        let mut n = 286;
        while n > 257 && lit_lens[n - 1] == 0 {
            n -= 1;
        }
        n
    };
    let hdist = {
        let mut n = 30;
        while n > 1 && dist_lens[n - 1] == 0 {
            n -= 1;
        }
        n
    };

    // RLE over the concatenated code lengths.
    let mut all: Vec<u8> = Vec::with_capacity(hlit + hdist);
    all.extend_from_slice(&lit_lens[..hlit]);
    all.extend_from_slice(&dist_lens[..hdist]);
    let rle = rle_code_lengths(&all);

    let mut clc_freq = vec![0u64; 19];
    for &(sym, _) in &rle {
        clc_freq[sym as usize] += 1;
    }
    let clc_lens = code_lengths(&clc_freq, 7);
    let clc_codes = canonical_codes(&clc_lens);

    let hclen = {
        let mut n = 19;
        while n > 4 && clc_lens[CLC_ORDER[n - 1]] == 0 {
            n -= 1;
        }
        n
    };

    w.write_bits((hlit - 257) as u32, 5);
    w.write_bits((hdist - 1) as u32, 5);
    w.write_bits((hclen - 4) as u32, 4);
    for &o in CLC_ORDER.iter().take(hclen) {
        w.write_bits(clc_lens[o] as u32, 3);
    }
    for &(sym, extra) in &rle {
        w.write_code(clc_codes[sym as usize], clc_lens[sym as usize] as u32);
        match sym {
            16 => w.write_bits(extra, 2),
            17 => w.write_bits(extra, 3),
            18 => w.write_bits(extra, 7),
            _ => {}
        }
    }
}

/// Run-length encode code lengths into (symbol, extra-bits) pairs.
fn rle_code_lengths(lens: &[u8]) -> Vec<(u8, u32)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < lens.len() {
        let v = lens[i];
        let mut run = 1;
        while i + run < lens.len() && lens[i + run] == v {
            run += 1;
        }
        if v == 0 {
            let mut rem = run;
            while rem >= 11 {
                let take = rem.min(138);
                out.push((18, (take - 11) as u32));
                rem -= take;
            }
            if rem >= 3 {
                out.push((17, (rem - 3) as u32));
                rem = 0;
            }
            for _ in 0..rem {
                out.push((0, 0));
            }
        } else {
            out.push((v, 0));
            let mut rem = run - 1;
            while rem >= 3 {
                let take = rem.min(6);
                out.push((16, (take - 3) as u32));
                rem -= take;
            }
            for _ in 0..rem {
                out.push((v, 0));
            }
        }
        i += run;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inflate::inflate;

    #[test]
    fn rle_encodes_zero_runs() {
        let lens = vec![0u8; 20];
        let rle = rle_code_lengths(&lens);
        assert_eq!(rle, vec![(18, 9)]); // 20 zeros = code 18 with extra 9
    }

    #[test]
    fn rle_encodes_value_repeats() {
        let lens = [5u8; 8];
        let rle = rle_code_lengths(&lens);
        // 5, then repeat(16) x 7 → one 16 of 6 and one literal 5.
        assert_eq!(rle[0], (5, 0));
        assert_eq!(rle[1], (16, 3)); // repeat 6
        assert_eq!(rle[2], (5, 0));
    }

    #[test]
    fn token_packing_round_trips() {
        for b in 0..=255u8 {
            assert_eq!(unpack(pack(Token::Literal(b))), Token::Literal(b));
        }
        for (len, dist) in [(3u16, 1u16), (258, 32768), (100, 1234), (3, 32768)] {
            let t = Token::Match { len, dist };
            assert_eq!(unpack(pack(t)), t);
        }
    }

    #[test]
    fn deflate_then_inflate_text() {
        let data = b"It was the best of times, it was the worst of times, it was the age of wisdom, it was the age of foolishness".repeat(20);
        for level in Level::ALL {
            let c = deflate(&data, level);
            assert!(c.len() < data.len() / 2, "should compress text well");
            assert_eq!(inflate(&c).unwrap(), data);
        }
    }

    #[test]
    fn incompressible_data_falls_back_to_stored() {
        // Pseudo-random bytes.
        let mut x = 0x12345678u32;
        let data: Vec<u8> = (0..5000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                (x & 0xFF) as u8
            })
            .collect();
        let c = deflate(&data, Level::Default);
        // Stored adds ~5 bytes per 64k chunk; never blow up.
        assert!(c.len() <= data.len() + 64);
        assert_eq!(inflate(&c).unwrap(), data);
    }

    #[test]
    fn empty_input() {
        let c = deflate(&[], Level::Default);
        assert_eq!(inflate(&c).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn deflate_is_deterministic_per_level() {
        let data = b"deterministic deterministic deterministic!".repeat(50);
        for level in Level::ALL {
            assert_eq!(deflate(&data, level), deflate(&data, level));
        }
    }

    #[test]
    fn level_names_round_trip() {
        for level in Level::ALL {
            assert_eq!(Level::from_name(level.name()), Some(level));
        }
        assert_eq!(Level::from_name("bogus"), None);
        assert_eq!(Level::default(), Level::Default);
    }
}
