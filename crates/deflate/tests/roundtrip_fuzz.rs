//! Differential round-trip fuzzing: `inflate(deflate(x)) == x` must hold at
//! every compression level for random and adversarial inputs. The decoder is
//! an independent implementation of RFC 1951, so agreement is meaningful.

use cypress_deflate::{deflate, gzip_compress, gzip_decompress, inflate, Level};
use cypress_obs::rng::Rng;

fn assert_round_trip(data: &[u8], what: &str) {
    for level in Level::ALL {
        let c = deflate(data, level);
        let back = inflate(&c)
            .unwrap_or_else(|e| panic!("{what}: inflate failed at {} ({e:?})", level.name()));
        assert_eq!(
            back,
            data,
            "{what}: round trip diverged at {} (len {})",
            level.name(),
            data.len()
        );
        // Determinism: the same input compresses to the same bytes.
        assert_eq!(c, deflate(data, level), "{what}: non-deterministic output");
    }
}

#[test]
fn random_inputs_round_trip_at_every_level() {
    let mut rng = Rng::new(0xf022_5eed);
    for round in 0..64 {
        let n = rng.range_usize(0..20_000);
        let mut data = vec![0u8; n];
        rng.fill_bytes(&mut data);
        assert_round_trip(&data, &format!("uniform random round {round}"));
    }
}

#[test]
fn low_entropy_random_inputs_round_trip() {
    let mut rng = Rng::new(0x10e7);
    for alphabet in [1u64, 2, 3, 16] {
        for round in 0..16 {
            let n = rng.range_usize(0..30_000);
            let data: Vec<u8> = (0..n).map(|_| rng.range_u64(0..alphabet) as u8).collect();
            assert_round_trip(&data, &format!("alphabet {alphabet} round {round}"));
        }
    }
}

#[test]
fn structured_random_inputs_round_trip() {
    // Repeated random phrases — matches at many distances and lengths.
    let mut rng = Rng::new(0xabcd);
    for round in 0..24 {
        let mut phrase = vec![0u8; rng.range_usize(1..500)];
        rng.fill_bytes(&mut phrase);
        let mut data = Vec::new();
        while data.len() < 40_000 {
            data.extend_from_slice(&phrase);
            if rng.range_u64(0..4) == 0 {
                data.push(rng.range_u64(0..256) as u8); // misalign future matches
            }
        }
        assert_round_trip(&data, &format!("phrase round {round}"));
    }
}

#[test]
fn all_zero_inputs_round_trip() {
    for n in [0usize, 1, 2, 3, 257, 258, 259, 1 << 15, (1 << 16) + 3] {
        assert_round_trip(&vec![0u8; n], &format!("all-zero len {n}"));
    }
}

#[test]
fn max_match_run_boundaries_round_trip() {
    // Runs whose lengths straddle the 258-byte MAX_MATCH and its multiples.
    for run in [256usize, 257, 258, 259, 260, 515, 516, 517, 1032] {
        let mut data = vec![b'A'; run];
        data.push(b'B'); // break the run
        data.extend(std::iter::repeat_n(b'A', run));
        assert_round_trip(&data, &format!("run length {run}"));
    }
}

#[test]
fn window_boundary_matches_round_trip() {
    // A phrase recurring exactly at / just inside / just outside the 32 KiB
    // window — exercises maximum-distance back-references and stale chains.
    const W: usize = 32 * 1024;
    let phrase: Vec<u8> = (0..64u32).map(|i| (i * 7 + 13) as u8).collect();
    for gap in [W - 70, W - 64, W - 1, W, W + 1, W + 64] {
        let mut data = phrase.clone();
        // Incompressible filler so the phrase is the only long match.
        let mut rng = Rng::new(gap as u64);
        let mut filler = vec![0u8; gap];
        rng.fill_bytes(&mut filler);
        data.extend_from_slice(&filler);
        data.extend_from_slice(&phrase);
        assert_round_trip(&data, &format!("window gap {gap}"));
    }
}

#[test]
fn stored_block_chunk_boundaries_round_trip() {
    // Incompressible inputs around the 65535-byte stored-block limit.
    let mut rng = Rng::new(0x5708ed);
    for n in [65534usize, 65535, 65536, 65537, 131070, 131071] {
        let mut data = vec![0u8; n];
        rng.fill_bytes(&mut data);
        assert_round_trip(&data, &format!("stored boundary {n}"));
    }
}

#[test]
fn gzip_container_round_trips_random_inputs() {
    let mut rng = Rng::new(0x9219);
    for _ in 0..16 {
        let n = rng.range_usize(0..10_000);
        let data: Vec<u8> = (0..n).map(|_| rng.range_u64(0..11) as u8).collect();
        for level in Level::ALL {
            let z = gzip_compress(&data, level);
            assert_eq!(gzip_decompress(&z).unwrap(), data);
        }
    }
}

#[test]
fn levels_trade_effort_for_ratio_sanely() {
    // Not a strict ordering guarantee, but Best must never be dramatically
    // worse than Fast on compressible data, and all levels must beat raw.
    let mut rng = Rng::new(0x1e7e1);
    let data: Vec<u8> = (0..100_000).map(|_| rng.range_u64(0..5) as u8).collect();
    let sizes: Vec<usize> = Level::ALL
        .iter()
        .map(|&l| deflate(&data, l).len())
        .collect();
    for (&s, l) in sizes.iter().zip(Level::ALL) {
        assert!(s < data.len() / 2, "{}: {} not compressing", l.name(), s);
    }
    assert!(
        sizes[2] <= sizes[0] * 11 / 10,
        "best ({}) much worse than fast ({})",
        sizes[2],
        sizes[0]
    );
}
