//! Error-path hardening for the container readers.
//!
//! Property: every truncated prefix and every single-byte corruption of a
//! valid `.cytc` image is rejected with a clean [`ContainerError`] — never a
//! panic and never an attacker-sized allocation. The v3 layout makes this
//! cheap to guarantee: the whole-image crc32 trailer is verified before any
//! body varint is trusted, so a corrupted length field can never demand
//! memory, and the eager and lazy readers share one parser, so they must
//! reject an image with the *same* error.

use cypress_deflate::Level;
use cypress_trace::{Container, SectionKind, SectionTable};

/// A container with every section kind the pipeline writes, sized so the
/// exhaustive sweeps below stay fast.
fn sample(level: Option<Level>) -> Vec<u8> {
    let mut c = Container::new(4);
    c.push(SectionKind::Meta, None, b"meta payload bytes".to_vec());
    c.push(
        SectionKind::CstText,
        None,
        b"Root() Loop(12) Leaf(3)".repeat(20).to_vec(),
    );
    c.push(
        SectionKind::MergedCtt,
        None,
        (0..800u32).map(|i| (i % 251) as u8).collect(),
    );
    c.push(SectionKind::RankCtt, Some(0), vec![9; 300]);
    c.push(SectionKind::RankCtt, Some(1), vec![11; 300]);
    c.to_bytes_with(level)
}

/// Both readers must reject `bytes`, and with the same error — the lazy
/// parser runs every integrity check the eager one does.
fn assert_rejected(bytes: &[u8], what: &str) {
    let eager = Container::from_bytes(bytes);
    let lazy = SectionTable::parse(bytes);
    let eager = match eager {
        Ok(_) => panic!("{what}: eager reader accepted a corrupt image"),
        Err(e) => e,
    };
    let lazy = match lazy {
        Ok(_) => panic!("{what}: lazy parser accepted a corrupt image"),
        Err(e) => e,
    };
    assert_eq!(
        eager.to_string(),
        lazy.to_string(),
        "{what}: eager and lazy readers disagree"
    );
}

#[test]
fn every_truncated_prefix_is_rejected_cleanly() {
    for level in [None, Some(Level::Default)] {
        let image = sample(level);
        for cut in 0..image.len() {
            assert_rejected(&image[..cut], &format!("level {level:?} cut {cut}"));
        }
    }
}

#[test]
fn every_single_byte_corruption_is_rejected_cleanly() {
    // Masks chosen to cover the interesting bit positions: low bit (varint
    // value), high bit (varint continuation), and full inversion.
    for level in [None, Some(Level::Default)] {
        let image = sample(level);
        let mut work = image.clone();
        for pos in 0..image.len() {
            for mask in [0x01u8, 0x80, 0xff] {
                work[pos] ^= mask;
                assert_rejected(
                    &work,
                    &format!("level {level:?} pos {pos} mask {mask:#04x}"),
                );
                work[pos] = image[pos];
            }
        }
    }
}

#[test]
fn valid_images_still_parse_after_the_sweeps() {
    // Guard against the property tests passing vacuously on a bad sample.
    for level in [None, Some(Level::Default)] {
        let image = sample(level);
        let c = Container::from_bytes(&image).expect("sample must be valid");
        assert_eq!(c.sections.len(), 5);
        assert!(SectionTable::parse(&image).is_ok());
    }
}
