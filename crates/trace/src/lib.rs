//! # cypress-trace — event model, raw traces, codec, comm matrices
//!
//! Shared vocabulary of the whole system: MPI event records and structure
//! markers ([`event`]), per-process raw traces with a compact varint binary
//! encoding ([`raw`], [`codec`]), and communication-volume matrices used by
//! the paper's pattern-analysis figures ([`commmatrix`]).

pub mod codec;
pub mod commmatrix;
pub mod event;
pub mod profile;
pub mod raw;
pub mod textfmt;

pub use codec::{Codec, DecodeError, DecodeResult, Decoder, Encoder};
pub use commmatrix::CommMatrix;
pub use event::{Event, EventSink, MpiOp, MpiParams, MpiRecord, ANY_SOURCE, NONE};
pub use profile::{OpStats, Profile};
pub use raw::{encode_mpi_events, raw_mpi_size, RawTrace};
pub use textfmt::{format_record, format_trace};
