//! # cypress-trace — event model, raw traces, codec, comm matrices
//!
//! Shared vocabulary of the whole system: MPI event records and structure
//! markers ([`event`]), per-process raw traces with a compact varint binary
//! encoding ([`raw`], [`codec`]), communication-volume matrices used by
//! the paper's pattern-analysis figures ([`commmatrix`]), and the versioned
//! CRC-checked on-disk container that persists whole compression jobs
//! ([`container`]).

pub mod codec;
pub mod commmatrix;
pub mod container;
pub mod event;
pub mod profile;
pub mod raw;
pub mod textfmt;
pub mod view;

pub use codec::{Codec, DecodeError, DecodeResult, Decoder, Encoder};
pub use commmatrix::CommMatrix;
pub use container::{
    assemble, encode_section, is_container, Container, ContainerError, EncodedSection, Section,
    SectionKind, CONTAINER_MAGIC, CONTAINER_VERSION,
};
pub use event::{Event, EventSink, MpiOp, MpiParams, MpiRecord, ANY_SOURCE, NONE};
pub use profile::{size_bucket, OpStats, Profile};
pub use raw::{encode_mpi_events, raw_mpi_size, RawTrace};
pub use textfmt::{format_record, format_trace};
pub use view::{ContainerView, PayloadArena, SectionInfo, SectionTable};
