//! The communication event model.
//!
//! A per-process raw trace is a sequence of [`Event`]s: structure markers
//! (the runtime equivalent of the paper's `PMPI_COMM_Structure` /
//! `PMPI_COMM_Structure_Exit` instrumentation calls) interleaved with MPI
//! operation records. Dynamic compressors consume this stream; CYPRESS
//! additionally uses the structure markers to fill its Compressed Trace Tree
//! top-down.

use std::fmt;

/// `MPI_ANY_SOURCE`: a receive that matches any sender.
pub const ANY_SOURCE: i64 = -2;

/// "Not applicable" marker for unused parameter fields.
pub const NONE: i64 = -1;

/// MPI operations traced by the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MpiOp {
    Send,
    Recv,
    Isend,
    Irecv,
    Wait,
    Waitall,
    /// Partial completion: one request of a set completed (`MPI_Waitany`).
    Waitany,
    Barrier,
    Bcast,
    Reduce,
    Allreduce,
    Alltoall,
    Allgather,
    Sendrecv,
}

impl MpiOp {
    /// Stable numeric code (used by the binary codec).
    pub fn code(self) -> u8 {
        match self {
            MpiOp::Send => 0,
            MpiOp::Recv => 1,
            MpiOp::Isend => 2,
            MpiOp::Irecv => 3,
            MpiOp::Wait => 4,
            MpiOp::Waitall => 5,
            MpiOp::Barrier => 6,
            MpiOp::Bcast => 7,
            MpiOp::Reduce => 8,
            MpiOp::Allreduce => 9,
            MpiOp::Alltoall => 10,
            MpiOp::Allgather => 11,
            MpiOp::Sendrecv => 12,
            MpiOp::Waitany => 13,
        }
    }

    /// Inverse of [`MpiOp::code`].
    pub fn from_code(c: u8) -> Option<MpiOp> {
        Some(match c {
            0 => MpiOp::Send,
            1 => MpiOp::Recv,
            2 => MpiOp::Isend,
            3 => MpiOp::Irecv,
            4 => MpiOp::Wait,
            5 => MpiOp::Waitall,
            6 => MpiOp::Barrier,
            7 => MpiOp::Bcast,
            8 => MpiOp::Reduce,
            9 => MpiOp::Allreduce,
            10 => MpiOp::Alltoall,
            11 => MpiOp::Allgather,
            12 => MpiOp::Sendrecv,
            13 => MpiOp::Waitany,
            _ => return None,
        })
    }

    pub fn name(self) -> &'static str {
        match self {
            MpiOp::Send => "MPI_Send",
            MpiOp::Recv => "MPI_Recv",
            MpiOp::Isend => "MPI_Isend",
            MpiOp::Irecv => "MPI_Irecv",
            MpiOp::Wait => "MPI_Wait",
            MpiOp::Waitall => "MPI_Waitall",
            MpiOp::Barrier => "MPI_Barrier",
            MpiOp::Bcast => "MPI_Bcast",
            MpiOp::Reduce => "MPI_Reduce",
            MpiOp::Allreduce => "MPI_Allreduce",
            MpiOp::Alltoall => "MPI_Alltoall",
            MpiOp::Allgather => "MPI_Allgather",
            MpiOp::Sendrecv => "MPI_Sendrecv",
            MpiOp::Waitany => "MPI_Waitany",
        }
    }

    /// Operations that transmit to a destination.
    pub fn is_send_like(self) -> bool {
        matches!(self, MpiOp::Send | MpiOp::Isend | MpiOp::Sendrecv)
    }

    /// Operations that receive from a source.
    pub fn is_recv_like(self) -> bool {
        matches!(self, MpiOp::Recv | MpiOp::Irecv | MpiOp::Sendrecv)
    }

    /// Collective operations (involve all ranks of the communicator).
    pub fn is_collective(self) -> bool {
        matches!(
            self,
            MpiOp::Barrier
                | MpiOp::Bcast
                | MpiOp::Reduce
                | MpiOp::Allreduce
                | MpiOp::Alltoall
                | MpiOp::Allgather
        )
    }

    /// Non-blocking posting operations that yield a request handle.
    pub fn is_nonblocking_post(self) -> bool {
        matches!(self, MpiOp::Isend | MpiOp::Irecv)
    }

    /// Completion (checking) operations for non-blocking requests.
    pub fn is_completion(self) -> bool {
        matches!(self, MpiOp::Wait | MpiOp::Waitall | MpiOp::Waitany)
    }

    pub const ALL: [MpiOp; 14] = [
        MpiOp::Send,
        MpiOp::Recv,
        MpiOp::Isend,
        MpiOp::Irecv,
        MpiOp::Wait,
        MpiOp::Waitall,
        MpiOp::Barrier,
        MpiOp::Bcast,
        MpiOp::Reduce,
        MpiOp::Allreduce,
        MpiOp::Alltoall,
        MpiOp::Allgather,
        MpiOp::Sendrecv,
        MpiOp::Waitany,
    ];
}

impl fmt::Display for MpiOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Communication parameters of one MPI event — everything the compressor
/// compares when merging repeated operations (the paper's "communication
/// type, size, direction, tag, context"; time is kept separately because
/// merged records aggregate it statistically).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct MpiParams {
    /// Destination rank for send-like ops, [`NONE`] otherwise.
    pub dest: i64,
    /// Source rank for recv-like ops ([`ANY_SOURCE`] for wildcards),
    /// [`NONE`] otherwise.
    pub src: i64,
    /// Payload bytes sent (or collective payload).
    pub count: i64,
    /// Payload bytes received (sendrecv only; [`NONE`] otherwise).
    pub rcount: i64,
    /// Message tag (send side), [`NONE`] for collectives.
    pub tag: i64,
    /// Receive-side tag (sendrecv only).
    pub rtag: i64,
    /// Root rank for rooted collectives, [`NONE`] otherwise.
    pub root: i64,
    /// Communicator id (0 = world).
    pub comm: i64,
    /// For `Wait`/`Waitall`: CST GIDs of the posting operations, in posting
    /// order — the paper's request-handle → GID mapping (§IV-A, Fig. 12).
    pub req_gids: Vec<u32>,
}

impl MpiParams {
    /// Parameters for a point-to-point send.
    pub fn send(dest: i64, count: i64, tag: i64) -> Self {
        MpiParams {
            dest,
            src: NONE,
            count,
            rcount: NONE,
            tag,
            rtag: NONE,
            root: NONE,
            comm: 0,
            req_gids: Vec::new(),
        }
    }

    /// Parameters for a point-to-point receive.
    pub fn recv(src: i64, count: i64, tag: i64) -> Self {
        MpiParams {
            dest: NONE,
            src,
            count,
            rcount: NONE,
            tag,
            rtag: NONE,
            root: NONE,
            comm: 0,
            req_gids: Vec::new(),
        }
    }

    /// Parameters for a rooted collective (`bcast`, `reduce`).
    pub fn rooted(root: i64, count: i64) -> Self {
        MpiParams {
            dest: NONE,
            src: NONE,
            count,
            rcount: NONE,
            tag: NONE,
            rtag: NONE,
            root,
            comm: 0,
            req_gids: Vec::new(),
        }
    }

    /// Parameters for an unrooted collective.
    pub fn collective(count: i64) -> Self {
        MpiParams {
            dest: NONE,
            src: NONE,
            count,
            rcount: NONE,
            tag: NONE,
            rtag: NONE,
            root: NONE,
            comm: 0,
            req_gids: Vec::new(),
        }
    }

    /// Parameters for a completion op over the given posted-op GIDs.
    pub fn completion(req_gids: Vec<u32>) -> Self {
        MpiParams {
            dest: NONE,
            src: NONE,
            count: NONE,
            rcount: NONE,
            tag: NONE,
            rtag: NONE,
            root: NONE,
            comm: 0,
            req_gids,
        }
    }

    /// Parameters for `sendrecv`.
    #[allow(clippy::too_many_arguments)]
    pub fn sendrecv(dest: i64, count: i64, tag: i64, src: i64, rcount: i64, rtag: i64) -> Self {
        MpiParams {
            dest,
            src,
            count,
            rcount,
            tag,
            rtag,
            root: NONE,
            comm: 0,
            req_gids: Vec::new(),
        }
    }
}

/// One recorded MPI operation.
#[derive(Debug, Clone, PartialEq)]
pub struct MpiRecord {
    /// CST leaf GID of the call site (0 when produced without static info,
    /// e.g. for the dynamic-only baselines).
    pub gid: u32,
    pub op: MpiOp,
    pub params: MpiParams,
    /// Virtual start timestamp, nanoseconds.
    pub t_start: u64,
    /// Virtual duration, nanoseconds.
    pub dur: u64,
}

/// A raw trace event.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// Entering a control structure instance: one per loop *iteration*, one
    /// per taken branch arm (maps to `PMPI_COMM_Structure`).
    Enter { gid: u32 },
    /// Leaving a control structure (maps to `PMPI_COMM_Structure_Exit`).
    /// For loops this fires once when the loop finishes, even after zero
    /// iterations.
    Exit { gid: u32 },
    /// An MPI operation.
    Mpi(MpiRecord),
}

impl Event {
    pub fn as_mpi(&self) -> Option<&MpiRecord> {
        match self {
            Event::Mpi(r) => Some(r),
            _ => None,
        }
    }
}

/// A consumer of interpreter events. The tracing driver collects them into a
/// [`crate::RawTrace`]; CYPRESS's online intra-process compressor implements
/// this directly so compression happens on-the-fly during execution.
pub trait EventSink {
    fn event(&mut self, ev: Event);

    /// Accept a batch at once. The default forwards event-by-event; sinks
    /// with a cheaper bulk path (compression sessions, accumulating buffers)
    /// override it. Must be observably identical to `n` calls of
    /// [`EventSink::event`] in order.
    fn events(&mut self, evs: &[Event]) {
        for ev in evs {
            self.event(ev.clone());
        }
    }
}

impl EventSink for Vec<Event> {
    fn event(&mut self, ev: Event) {
        self.push(ev);
    }

    fn events(&mut self, evs: &[Event]) {
        self.extend_from_slice(evs);
    }
}

/// Forwarding impl so sink trait objects (`&mut dyn EventSink`, handed out
/// by replayable producer callbacks) satisfy generic `S: EventSink`
/// parameters like `run_rank_with_sink`'s.
impl<S: EventSink + ?Sized> EventSink for &mut S {
    fn event(&mut self, ev: Event) {
        (**self).event(ev);
    }

    fn events(&mut self, evs: &[Event]) {
        (**self).events(evs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_codes_round_trip() {
        for op in MpiOp::ALL {
            assert_eq!(MpiOp::from_code(op.code()), Some(op));
        }
        assert_eq!(MpiOp::from_code(200), None);
    }

    #[test]
    fn op_classification() {
        assert!(MpiOp::Send.is_send_like());
        assert!(MpiOp::Sendrecv.is_send_like() && MpiOp::Sendrecv.is_recv_like());
        assert!(MpiOp::Bcast.is_collective());
        assert!(MpiOp::Isend.is_nonblocking_post());
        assert!(MpiOp::Waitall.is_completion());
        assert!(!MpiOp::Recv.is_collective());
    }

    #[test]
    fn params_constructors_fill_unused_with_none() {
        let p = MpiParams::send(3, 1024, 7);
        assert_eq!(p.dest, 3);
        assert_eq!(p.src, NONE);
        assert_eq!(p.root, NONE);
        let q = MpiParams::rooted(0, 64);
        assert_eq!(q.root, 0);
        assert_eq!(q.dest, NONE);
    }

    #[test]
    fn identical_params_compare_equal() {
        assert_eq!(MpiParams::send(1, 8, 0), MpiParams::send(1, 8, 0));
        assert_ne!(MpiParams::send(1, 8, 0), MpiParams::send(2, 8, 0));
    }
}
