//! Raw (uncompressed) per-process traces and their on-disk encoding.
//!
//! The raw encoding is what conventional collection tools would write per
//! event (operation, parameters, timestamp); its size is the baseline that
//! Fig. 15's "Gzip" series compresses, and the reference against which
//! compression ratios are computed.

use crate::codec::{ivar_len, uvar_len, Codec, DecodeError, DecodeResult, Decoder, Encoder};
use crate::event::{Event, MpiOp, MpiParams, MpiRecord};

impl MpiParams {
    /// Byte length of [`Codec::encode`] for these params, computed without
    /// serializing — the hot-path replacement for encoding into a scratch
    /// buffer just to measure raw trace size.
    pub fn encoded_len(&self) -> usize {
        ivar_len(self.dest)
            + ivar_len(self.src)
            + ivar_len(self.count)
            + ivar_len(self.rcount)
            + ivar_len(self.tag)
            + ivar_len(self.rtag)
            + ivar_len(self.root)
            + ivar_len(self.comm)
            + uvar_len(self.req_gids.len() as u64)
            + self
                .req_gids
                .iter()
                .map(|&g| uvar_len(g as u64))
                .sum::<usize>()
    }
}

impl MpiRecord {
    /// Byte length of [`Codec::encode`] for this record, without serializing.
    pub fn encoded_len(&self) -> usize {
        uvar_len(self.gid as u64)
            + 1
            + self.params.encoded_len()
            + uvar_len(self.t_start)
            + uvar_len(self.dur)
    }
}

/// The full raw trace of one process.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RawTrace {
    pub rank: u32,
    /// World size when the trace was taken.
    pub nprocs: u32,
    pub events: Vec<Event>,
    /// Total virtual application time (ns) — used to express compression
    /// overhead as a percentage of runtime, as in Fig. 16.
    pub app_time: u64,
}

impl RawTrace {
    pub fn new(rank: u32, nprocs: u32) -> Self {
        RawTrace {
            rank,
            nprocs,
            events: Vec::new(),
            app_time: 0,
        }
    }

    /// Only the MPI records (what dynamic-only tools like ScalaTrace see).
    pub fn mpi_records(&self) -> impl Iterator<Item = &MpiRecord> {
        self.events.iter().filter_map(|e| e.as_mpi())
    }

    /// Number of MPI operations.
    pub fn mpi_count(&self) -> usize {
        self.mpi_records().count()
    }

    /// Strip structure events — the view a purely dynamic tool records.
    pub fn mpi_only(&self) -> Vec<MpiRecord> {
        self.mpi_records().cloned().collect()
    }
}

impl Codec for MpiParams {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_ivar(self.dest);
        enc.put_ivar(self.src);
        enc.put_ivar(self.count);
        enc.put_ivar(self.rcount);
        enc.put_ivar(self.tag);
        enc.put_ivar(self.rtag);
        enc.put_ivar(self.root);
        enc.put_ivar(self.comm);
        enc.put_uvar(self.req_gids.len() as u64);
        for &g in &self.req_gids {
            enc.put_uvar(g as u64);
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> DecodeResult<Self> {
        let dest = dec.get_ivar()?;
        let src = dec.get_ivar()?;
        let count = dec.get_ivar()?;
        let rcount = dec.get_ivar()?;
        let tag = dec.get_ivar()?;
        let rtag = dec.get_ivar()?;
        let root = dec.get_ivar()?;
        let comm = dec.get_ivar()?;
        let n = dec.get_uvar()? as usize;
        if n > 1 << 24 {
            return Err(DecodeError(format!("absurd req_gids length {n}")));
        }
        let mut req_gids = Vec::with_capacity(n);
        for _ in 0..n {
            req_gids.push(dec.get_uvar()? as u32);
        }
        Ok(MpiParams {
            dest,
            src,
            count,
            rcount,
            tag,
            rtag,
            root,
            comm,
            req_gids,
        })
    }
}

impl Codec for MpiRecord {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_uvar(self.gid as u64);
        enc.put_u8(self.op.code());
        self.params.encode(enc);
        enc.put_uvar(self.t_start);
        enc.put_uvar(self.dur);
    }

    fn decode(dec: &mut Decoder<'_>) -> DecodeResult<Self> {
        let gid = dec.get_uvar()? as u32;
        let code = dec.get_u8()?;
        let op =
            MpiOp::from_code(code).ok_or_else(|| DecodeError(format!("bad MpiOp code {code}")))?;
        let params = MpiParams::decode(dec)?;
        let t_start = dec.get_uvar()?;
        let dur = dec.get_uvar()?;
        Ok(MpiRecord {
            gid,
            op,
            params,
            t_start,
            dur,
        })
    }
}

const TAG_ENTER: u8 = 0;
const TAG_EXIT: u8 = 1;
const TAG_MPI: u8 = 2;

impl Codec for Event {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            Event::Enter { gid } => {
                enc.put_u8(TAG_ENTER);
                enc.put_uvar(*gid as u64);
            }
            Event::Exit { gid } => {
                enc.put_u8(TAG_EXIT);
                enc.put_uvar(*gid as u64);
            }
            Event::Mpi(r) => {
                enc.put_u8(TAG_MPI);
                r.encode(enc);
            }
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> DecodeResult<Self> {
        match dec.get_u8()? {
            TAG_ENTER => Ok(Event::Enter {
                gid: dec.get_uvar()? as u32,
            }),
            TAG_EXIT => Ok(Event::Exit {
                gid: dec.get_uvar()? as u32,
            }),
            TAG_MPI => Ok(Event::Mpi(MpiRecord::decode(dec)?)),
            t => Err(DecodeError(format!("bad event tag {t}"))),
        }
    }
}

impl Codec for RawTrace {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_uvar(self.rank as u64);
        enc.put_uvar(self.nprocs as u64);
        enc.put_uvar(self.app_time);
        enc.put_uvar(self.events.len() as u64);
        for e in &self.events {
            e.encode(enc);
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> DecodeResult<Self> {
        let rank = dec.get_uvar()? as u32;
        let nprocs = dec.get_uvar()? as u32;
        let app_time = dec.get_uvar()?;
        let n = dec.get_uvar()? as usize;
        let mut events = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            events.push(Event::decode(dec)?);
        }
        Ok(RawTrace {
            rank,
            nprocs,
            events,
            app_time,
        })
    }
}

/// Raw size (bytes) that a conventional per-event tracer would write for the
/// MPI events of one process — the input size for the Gzip baseline. This
/// excludes the structure markers, which exist only for CYPRESS.
pub fn raw_mpi_size(trace: &RawTrace) -> usize {
    let mut enc = Encoder::new();
    for r in trace.mpi_records() {
        r.encode(&mut enc);
    }
    enc.len()
}

/// Encode the MPI-only view of a trace as bytes (e.g. to feed Gzip).
pub fn encode_mpi_events(trace: &RawTrace) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.put_uvar(trace.rank as u64);
    enc.put_uvar(trace.nprocs as u64);
    let n = trace.mpi_count();
    enc.put_uvar(n as u64);
    for r in trace.mpi_records() {
        r.encode(&mut enc);
    }
    enc.finish().to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{MpiOp, MpiParams};

    fn sample_trace() -> RawTrace {
        let mut t = RawTrace::new(3, 8);
        t.app_time = 123_456;
        t.events.push(Event::Enter { gid: 1 });
        t.events.push(Event::Mpi(MpiRecord {
            gid: 2,
            op: MpiOp::Send,
            params: MpiParams::send(4, 1024, 9),
            t_start: 100,
            dur: 35,
        }));
        t.events.push(Event::Mpi(MpiRecord {
            gid: 3,
            op: MpiOp::Waitall,
            params: MpiParams::completion(vec![2, 5]),
            t_start: 150,
            dur: 3,
        }));
        t.events.push(Event::Exit { gid: 1 });
        t
    }

    #[test]
    fn trace_round_trips() {
        let t = sample_trace();
        let b = t.to_bytes();
        let back = RawTrace::from_bytes(&b).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn mpi_only_strips_structure_events() {
        let t = sample_trace();
        assert_eq!(t.events.len(), 4);
        assert_eq!(t.mpi_count(), 2);
        assert!(t.mpi_only().iter().all(|r| r.op != MpiOp::Barrier));
    }

    #[test]
    fn corrupted_tag_rejected() {
        let t = sample_trace();
        let mut b = t.to_bytes().to_vec();
        // Find and corrupt the first event tag byte. Events start after
        // rank/nprocs/app_time/len varints = 1+1+3+1 = 6 bytes here.
        b[6] = 77;
        assert!(RawTrace::from_bytes(&b).is_err());
    }

    #[test]
    fn raw_size_counts_only_mpi() {
        let t = sample_trace();
        let full = t.encoded_size();
        let mpi = raw_mpi_size(&t);
        assert!(mpi < full);
        assert!(mpi > 0);
    }

    /// `encoded_len` must agree exactly with the bytes `encode` produces,
    /// including multi-byte varints and req_gid lists.
    #[test]
    fn encoded_len_matches_encode() {
        let recs = [
            MpiRecord {
                gid: 0,
                op: MpiOp::Barrier,
                params: MpiParams::collective(0),
                t_start: 0,
                dur: 0,
            },
            MpiRecord {
                gid: 300,
                op: MpiOp::Send,
                params: MpiParams::send(127, 1 << 20, 65),
                t_start: u64::MAX,
                dur: 1 << 40,
            },
            MpiRecord {
                gid: 7,
                op: MpiOp::Waitall,
                params: MpiParams::completion(vec![1, 128, 16384, u32::MAX]),
                t_start: 123_456_789,
                dur: 42,
            },
            MpiRecord {
                gid: 9,
                op: MpiOp::Sendrecv,
                params: MpiParams::sendrecv(3, 8, 1, crate::event::ANY_SOURCE, 8, 2),
                t_start: 1,
                dur: 1,
            },
        ];
        for r in &recs {
            let mut enc = Encoder::new();
            r.encode(&mut enc);
            assert_eq!(r.encoded_len(), enc.len(), "{r:?}");
        }
    }

    #[test]
    fn empty_trace_round_trips() {
        let t = RawTrace::new(0, 1);
        assert_eq!(RawTrace::from_bytes(&t.to_bytes()).unwrap(), t);
    }
}
