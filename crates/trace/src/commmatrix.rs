//! Communication-volume matrices (paper Figs. 17 & 20).
//!
//! A `P×P` matrix where cell `(src, dst)` holds the point-to-point bytes sent
//! from rank `src` to rank `dst`. The paper renders these as grayscale
//! heatmaps to characterise MG/SP (Fig. 17) and LESlie3d (Fig. 20); the
//! harness here emits CSV plus a coarse ASCII heatmap.

use crate::codec::{Codec, DecodeError, DecodeResult, Decoder, Encoder};
use crate::event::{MpiOp, MpiRecord, ANY_SOURCE};
use crate::raw::RawTrace;

/// A dense P×P communication-volume matrix (bytes from row=sender to
/// col=receiver).
#[derive(Debug, Clone, PartialEq)]
pub struct CommMatrix {
    pub nprocs: usize,
    data: Vec<u64>,
}

impl CommMatrix {
    pub fn new(nprocs: usize) -> Self {
        CommMatrix {
            nprocs,
            data: vec![0; nprocs * nprocs],
        }
    }

    pub fn get(&self, src: usize, dst: usize) -> u64 {
        self.data[src * self.nprocs + dst]
    }

    pub fn add(&mut self, src: usize, dst: usize, bytes: u64) {
        self.data[src * self.nprocs + dst] += bytes;
    }

    /// Total bytes in the matrix.
    pub fn total(&self) -> u64 {
        self.data.iter().sum()
    }

    /// Largest single cell.
    pub fn max(&self) -> u64 {
        self.data.iter().copied().max().unwrap_or(0)
    }

    /// Peers that `rank` sends to (nonzero columns of its row).
    pub fn peers_of(&self, rank: usize) -> Vec<usize> {
        (0..self.nprocs)
            .filter(|&d| self.get(rank, d) > 0)
            .collect()
    }

    /// Distinct nonzero message volumes present in the matrix, sorted.
    pub fn distinct_volumes(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.data.iter().copied().filter(|&x| x > 0).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Accumulate `times` repetitions of a send of `count` elements from
    /// `src` to `dest`, applying the matrix's attribution rules: negative
    /// destinations (wildcards / inapplicable fields) and out-of-range peers
    /// contribute nothing, and negative counts clamp to zero. This is the
    /// single accumulation path shared by raw traces, decompressed replays,
    /// and the compressed-domain query engine (which passes `times > 1` for
    /// merged records).
    pub fn add_send(&mut self, src: usize, dest: i64, count: i64, times: u64) {
        if dest >= 0 {
            let dst = dest as usize;
            if src < self.nprocs && dst < self.nprocs {
                self.add(src, dst, count.max(0) as u64 * times);
            }
        }
    }

    /// Accumulate one raw record emitted by rank `src` (send-like ops only).
    pub fn add_record(&mut self, src: usize, r: &MpiRecord) {
        if r.op.is_send_like() {
            self.add_send(src, r.params.dest, r.params.count, 1);
        }
    }

    /// Accumulate an event stream from rank `src` — the iterator-based entry
    /// point shared by owned traces and streamed partial expansions.
    pub fn add_rank_events<'a>(&mut self, src: usize, recs: impl Iterator<Item = &'a MpiRecord>) {
        for r in recs {
            self.add_record(src, r);
        }
    }

    /// Build from per-rank raw traces by accumulating send-like volumes.
    ///
    /// Collectives are not included: the paper's matrices visualise
    /// point-to-point structure. Wildcard receives contribute nothing here
    /// (volume is attributed at the sender).
    pub fn from_traces(traces: &[RawTrace]) -> Self {
        let mut m = CommMatrix::new(traces.len());
        for t in traces {
            m.add_rank_events(t.rank as usize, t.mpi_records());
        }
        m
    }

    /// CSV rendering (header row + one row per sender).
    pub fn to_csv(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        out.push_str("sender");
        for d in 0..self.nprocs {
            write!(out, ",to_{d}").unwrap();
        }
        out.push('\n');
        for s in 0..self.nprocs {
            write!(out, "{s}").unwrap();
            for d in 0..self.nprocs {
                write!(out, ",{}", self.get(s, d)).unwrap();
            }
            out.push('\n');
        }
        out
    }

    /// Coarse ASCII heatmap: one character per cell, ' ' for zero and
    /// '.:-=+*#%@' for increasing volume relative to the maximum.
    pub fn to_ascii(&self) -> String {
        const RAMP: &[u8] = b".:-=+*#%@";
        let max = self.max();
        let mut out = String::with_capacity(self.nprocs * (self.nprocs + 1));
        for s in 0..self.nprocs {
            for d in 0..self.nprocs {
                let v = self.get(s, d);
                if v == 0 {
                    out.push(' ');
                } else {
                    let idx = ((v as f64 / max as f64) * (RAMP.len() - 1) as f64).round() as usize;
                    out.push(RAMP[idx.min(RAMP.len() - 1)] as char);
                }
            }
            out.push('\n');
        }
        out
    }
}

impl Codec for CommMatrix {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_uvar(self.nprocs as u64);
        for cell in &self.data {
            enc.put_uvar(*cell);
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> DecodeResult<Self> {
        let nprocs = dec.get_uvar()? as usize;
        let cells = nprocs
            .checked_mul(nprocs)
            .ok_or_else(|| DecodeError(format!("comm matrix dimension {nprocs} overflows")))?;
        // Every cell costs at least one encoded byte, so a huge claimed
        // dimension over a short buffer is rejected before allocation.
        if cells > dec.remaining() {
            return Err(DecodeError(format!(
                "comm matrix claims {cells} cells but only {} bytes remain",
                dec.remaining()
            )));
        }
        let mut m = CommMatrix::new(nprocs);
        for cell in &mut m.data {
            *cell = dec.get_uvar()?;
        }
        Ok(m)
    }
}

/// Count wildcard receives in a set of traces (used by tests and stats).
pub fn wildcard_recv_count(traces: &[RawTrace]) -> usize {
    traces
        .iter()
        .flat_map(|t| t.mpi_records())
        .filter(|r| r.op.is_recv_like() && r.params.src == ANY_SOURCE)
        .count()
}

/// Aggregate per-op event counts across traces (quick profile, à la mpiP).
pub fn op_histogram(traces: &[RawTrace]) -> Vec<(MpiOp, usize)> {
    let mut counts = std::collections::BTreeMap::new();
    for t in traces {
        for r in t.mpi_records() {
            *counts.entry(r.op).or_insert(0usize) += 1;
        }
    }
    counts.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, MpiParams, MpiRecord};

    fn send_event(dest: i64, count: i64) -> Event {
        Event::Mpi(MpiRecord {
            gid: 0,
            op: MpiOp::Send,
            params: MpiParams::send(dest, count, 0),
            t_start: 0,
            dur: 0,
        })
    }

    #[test]
    fn accumulates_send_volumes() {
        let mut t0 = RawTrace::new(0, 2);
        t0.events.push(send_event(1, 100));
        t0.events.push(send_event(1, 50));
        let t1 = RawTrace::new(1, 2);
        let m = CommMatrix::from_traces(&[t0, t1]);
        assert_eq!(m.get(0, 1), 150);
        assert_eq!(m.get(1, 0), 0);
        assert_eq!(m.total(), 150);
    }

    #[test]
    fn collectives_do_not_contribute() {
        let mut t0 = RawTrace::new(0, 2);
        t0.events.push(Event::Mpi(MpiRecord {
            gid: 0,
            op: MpiOp::Bcast,
            params: MpiParams::rooted(0, 999),
            t_start: 0,
            dur: 0,
        }));
        let m = CommMatrix::from_traces(&[t0, RawTrace::new(1, 2)]);
        assert_eq!(m.total(), 0);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut t0 = RawTrace::new(0, 2);
        t0.events.push(send_event(1, 7));
        let m = CommMatrix::from_traces(&[t0, RawTrace::new(1, 2)]);
        let csv = m.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "sender,to_0,to_1");
        assert_eq!(lines[1], "0,0,7");
    }

    #[test]
    fn ascii_heatmap_dimensions() {
        let m = CommMatrix::new(4);
        let art = m.to_ascii();
        assert_eq!(art.lines().count(), 4);
        assert!(art.lines().all(|l| l.len() == 4));
    }

    #[test]
    fn codec_roundtrip() {
        let mut m = CommMatrix::new(3);
        m.add(0, 1, 150);
        m.add(2, 0, 7);
        let bytes = m.to_bytes();
        assert_eq!(CommMatrix::from_bytes(&bytes).unwrap(), m);
    }

    #[test]
    fn codec_rejects_oversized_dimension() {
        let mut enc = crate::codec::Encoder::new();
        enc.put_uvar(1 << 20); // claims a 2^40-cell matrix over no data
        let err = CommMatrix::from_bytes(&enc.finish());
        assert!(err.is_err());
    }

    #[test]
    fn distinct_volumes_and_peers() {
        let mut t0 = RawTrace::new(0, 3);
        t0.events.push(send_event(1, 43_000));
        t0.events.push(send_event(2, 83_000));
        t0.events.push(send_event(1, 43_000));
        let m = CommMatrix::from_traces(&[t0, RawTrace::new(1, 3), RawTrace::new(2, 3)]);
        assert_eq!(m.peers_of(0), vec![1, 2]);
        assert_eq!(m.distinct_volumes(), vec![83_000, 86_000]);
    }
}
