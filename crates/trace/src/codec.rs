//! Compact varint binary codec.
//!
//! The build environment is fully offline (no serde, no format crates), so
//! trace artifacts are serialized with a small hand-rolled codec: LEB128
//! varints for unsigned integers, zigzag+LEB128 for signed, raw little-endian
//! bits for `f64`. All trace-size numbers reported by the benchmark harness
//! are sizes of these encodings. Whole-artifact traffic through
//! [`Codec::to_bytes`] / [`Codec::from_bytes`] is counted under the
//! `codec` observability scope.

use std::sync::OnceLock;

/// Byte counters for whole-artifact encode/decode traffic, registered once.
fn codec_counters() -> &'static (cypress_obs::Counter, cypress_obs::Counter) {
    static COUNTERS: OnceLock<(cypress_obs::Counter, cypress_obs::Counter)> = OnceLock::new();
    COUNTERS.get_or_init(|| {
        let m = cypress_obs::scope("codec");
        (m.counter("bytes_encoded"), m.counter("bytes_decoded"))
    })
}

/// Encoding error-free writer over a growable buffer.
#[derive(Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    pub fn new() -> Self {
        Encoder { buf: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> Self {
        Encoder {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Current encoded length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Reset to empty, keeping the allocation — lets hot paths reuse one
    /// scratch encoder (e.g. per-event raw-size accounting in sessions)
    /// instead of allocating per call.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// LEB128 unsigned varint.
    pub fn put_uvar(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Zigzag-encoded signed varint.
    pub fn put_ivar(&mut self, v: i64) {
        self.put_uvar(zigzag(v));
    }

    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    pub fn put_bytes(&mut self, b: &[u8]) {
        self.put_uvar(b.len() as u64);
        self.buf.extend_from_slice(b);
    }

    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }
}

/// Encoded length in bytes of [`Encoder::put_uvar`]`(v)`, without encoding.
/// Lets accounting paths (e.g. raw-size stats in sessions) compute sizes
/// arithmetically instead of serializing into a scratch buffer.
#[inline]
pub fn uvar_len(v: u64) -> usize {
    // ceil(bits/7); 1 byte minimum for v == 0.
    (64 - (v | 1).leading_zeros() as usize).div_ceil(7)
}

/// Encoded length in bytes of [`Encoder::put_ivar`]`(v)`.
#[inline]
pub fn ivar_len(v: i64) -> usize {
    uvar_len(zigzag(v))
}

/// Zigzag map i64 -> u64 (small magnitudes become small codes).
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Decode error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(pub String);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "decode error: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

pub type DecodeResult<T> = Result<T, DecodeError>;

/// Reader over an encoded byte slice.
pub struct Decoder<'a> {
    buf: &'a [u8],
}

impl<'a> Decoder<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    pub fn is_done(&self) -> bool {
        self.buf.is_empty()
    }

    /// Discard the next `n` bytes (e.g. an unparseable payload from a newer
    /// peer that has already passed integrity checks).
    pub fn skip(&mut self, n: usize) -> DecodeResult<()> {
        if self.buf.len() < n {
            return Err(DecodeError(format!(
                "unexpected end of input (skip {n}, have {})",
                self.buf.len()
            )));
        }
        self.buf = &self.buf[n..];
        Ok(())
    }

    pub fn get_u8(&mut self) -> DecodeResult<u8> {
        if self.buf.is_empty() {
            return Err(DecodeError("unexpected end of input (u8)".into()));
        }
        let v = self.buf[0];
        self.buf = &self.buf[1..];
        Ok(v)
    }

    pub fn get_uvar(&mut self) -> DecodeResult<u64> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let b = self.get_u8()?;
            if shift >= 64 {
                return Err(DecodeError("varint too long".into()));
            }
            // The 10th byte may only contribute one bit.
            if shift == 63 && (b & 0x7e) != 0 {
                return Err(DecodeError("varint overflows u64".into()));
            }
            v |= ((b & 0x7f) as u64) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    pub fn get_ivar(&mut self) -> DecodeResult<i64> {
        Ok(unzigzag(self.get_uvar()?))
    }

    pub fn get_f64(&mut self) -> DecodeResult<f64> {
        if self.buf.len() < 8 {
            return Err(DecodeError("unexpected end of input (f64)".into()));
        }
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.buf[..8]);
        self.buf = &self.buf[8..];
        Ok(f64::from_bits(u64::from_le_bytes(raw)))
    }

    pub fn get_bytes(&mut self) -> DecodeResult<Vec<u8>> {
        Ok(self.get_bytes_ref()?.to_vec())
    }

    /// Like [`Decoder::get_bytes`] but borrows the bytes from the input
    /// buffer instead of copying them — the basis of zero-copy section views.
    pub fn get_bytes_ref(&mut self) -> DecodeResult<&'a [u8]> {
        let n = self.get_uvar()? as usize;
        if self.buf.len() < n {
            return Err(DecodeError(format!(
                "byte string of length {n} exceeds remaining {}",
                self.buf.len()
            )));
        }
        let out = &self.buf[..n];
        self.buf = &self.buf[n..];
        Ok(out)
    }

    pub fn get_str(&mut self) -> DecodeResult<String> {
        String::from_utf8(self.get_bytes()?)
            .map_err(|e| DecodeError(format!("invalid utf-8 string: {e}")))
    }
}

/// Types that serialize with this codec.
pub trait Codec: Sized {
    fn encode(&self, enc: &mut Encoder);
    fn decode(dec: &mut Decoder<'_>) -> DecodeResult<Self>;

    /// Encoded size in bytes.
    fn encoded_size(&self) -> usize {
        let mut enc = Encoder::new();
        self.encode(&mut enc);
        enc.len()
    }

    /// Encode into a standalone buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        self.encode(&mut enc);
        let out = enc.finish();
        if cypress_obs::enabled() {
            codec_counters().0.add(out.len() as u64);
        }
        out
    }

    /// Decode from a standalone buffer, requiring full consumption.
    fn from_bytes(buf: &[u8]) -> DecodeResult<Self> {
        if cypress_obs::enabled() {
            codec_counters().1.add(buf.len() as u64);
        }
        let mut dec = Decoder::new(buf);
        let v = Self::decode(&mut dec)?;
        if !dec.is_done() {
            return Err(DecodeError(format!(
                "{} trailing bytes after decode",
                dec.remaining()
            )));
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cypress_obs::rng::Rng;

    #[test]
    fn uvar_round_trip_boundaries() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u32::MAX as u64, u64::MAX] {
            let mut e = Encoder::new();
            e.put_uvar(v);
            let b = e.finish();
            let mut d = Decoder::new(&b);
            assert_eq!(d.get_uvar().unwrap(), v);
            assert!(d.is_done());
        }
    }

    #[test]
    fn ivar_round_trip_boundaries() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            let mut e = Encoder::new();
            e.put_ivar(v);
            let b = e.finish();
            let mut d = Decoder::new(&b);
            assert_eq!(d.get_ivar().unwrap(), v);
        }
    }

    #[test]
    fn zigzag_small_magnitudes_stay_small() {
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-2), 3);
    }

    #[test]
    fn truncated_input_errors() {
        let mut e = Encoder::new();
        e.put_uvar(300);
        let b = e.finish();
        let mut d = Decoder::new(&b[..1]);
        assert!(d.get_uvar().is_err());
    }

    #[test]
    fn overlong_varint_rejected() {
        let b = [0xffu8; 11];
        let mut d = Decoder::new(&b);
        assert!(d.get_uvar().is_err());
    }

    #[test]
    fn string_and_bytes_round_trip() {
        let mut e = Encoder::new();
        e.put_str("héllo");
        e.put_bytes(&[1, 2, 3]);
        let b = e.finish();
        let mut d = Decoder::new(&b);
        assert_eq!(d.get_str().unwrap(), "héllo");
        assert_eq!(d.get_bytes().unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn uvar_round_trip_random() {
        let mut rng = Rng::new(0x5eed_c0de);
        for _ in 0..4000 {
            // Bias toward varied magnitudes by masking to a random width.
            let width = rng.range_u64(1..65) as u32;
            let v = rng.next_u64() >> (64 - width);
            let mut e = Encoder::new();
            e.put_uvar(v);
            let b = e.finish();
            let mut d = Decoder::new(&b);
            assert_eq!(d.get_uvar().unwrap(), v);
            assert!(d.is_done());
        }
    }

    #[test]
    fn ivar_round_trip_random() {
        let mut rng = Rng::new(0x1234_5678);
        for _ in 0..4000 {
            let width = rng.range_u64(1..65) as u32;
            let v = (rng.next_u64() >> (64 - width)) as i64;
            let v = if rng.chance(0.5) { v.wrapping_neg() } else { v };
            let mut e = Encoder::new();
            e.put_ivar(v);
            let b = e.finish();
            let mut d = Decoder::new(&b);
            assert_eq!(d.get_ivar().unwrap(), v);
        }
    }

    #[test]
    fn f64_round_trip_random_bits() {
        let mut rng = Rng::new(0xf64f_64f6);
        for _ in 0..2000 {
            let v = f64::from_bits(rng.next_u64());
            let mut e = Encoder::new();
            e.put_f64(v);
            let b = e.finish();
            let mut d = Decoder::new(&b);
            let got = d.get_f64().unwrap();
            assert_eq!(got.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn mixed_sequence_round_trip_random() {
        let mut rng = Rng::new(0xabcd);
        for _ in 0..256 {
            let n = rng.range_usize(0..50);
            let vals: Vec<i64> = (0..n).map(|_| rng.next_u64() as i64).collect();
            let mut e = Encoder::new();
            e.put_uvar(vals.len() as u64);
            for &v in &vals {
                e.put_ivar(v);
            }
            let b = e.finish();
            let mut d = Decoder::new(&b);
            let m = d.get_uvar().unwrap() as usize;
            let got: Vec<i64> = (0..m).map(|_| d.get_ivar().unwrap()).collect();
            assert_eq!(got, vals);
        }
    }
}
