//! Human-readable trace rendering (debugging aid and golden-test format).
//!
//! One line per event:
//! ```text
//! [      1000] +g3                      — structure enter
//! [      1500] -g3                      — structure exit
//! [      2000] g5 MPI_Send dest=4 bytes=1024 tag=0 (+35ns)
//! ```

use crate::event::{Event, MpiRecord, NONE};
use crate::raw::RawTrace;
use std::fmt::Write;

/// Render one MPI record without a timestamp prefix.
pub fn format_record(r: &MpiRecord) -> String {
    let p = &r.params;
    let mut out = format!("g{} {}", r.gid, r.op.name());
    if p.dest != NONE {
        write!(out, " dest={}", p.dest).unwrap();
    }
    if p.src != NONE {
        write!(out, " src={}", p.src).unwrap();
    }
    if p.count >= 0 {
        write!(out, " bytes={}", p.count).unwrap();
    }
    if p.rcount >= 0 {
        write!(out, " rbytes={}", p.rcount).unwrap();
    }
    if p.tag != NONE {
        write!(out, " tag={}", p.tag).unwrap();
    }
    if p.rtag != NONE {
        write!(out, " rtag={}", p.rtag).unwrap();
    }
    if p.root != NONE {
        write!(out, " root={}", p.root).unwrap();
    }
    if !p.req_gids.is_empty() {
        write!(out, " reqs={:?}", p.req_gids).unwrap();
    }
    write!(out, " (+{}ns)", r.dur).unwrap();
    out
}

/// Render a whole raw trace, one event per line.
pub fn format_trace(t: &RawTrace) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "# rank {}/{} — {} events, app_time {} ns",
        t.rank,
        t.nprocs,
        t.events.len(),
        t.app_time
    )
    .unwrap();
    for ev in &t.events {
        match ev {
            Event::Enter { gid } => writeln!(out, "[          ] +g{gid}").unwrap(),
            Event::Exit { gid } => writeln!(out, "[          ] -g{gid}").unwrap(),
            Event::Mpi(r) => writeln!(out, "[{:>10}] {}", r.t_start, format_record(r)).unwrap(),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{MpiOp, MpiParams};

    #[test]
    fn record_rendering_contains_all_fields() {
        let r = MpiRecord {
            gid: 7,
            op: MpiOp::Sendrecv,
            params: MpiParams::sendrecv(3, 100, 1, 2, 200, 4),
            t_start: 0,
            dur: 55,
        };
        let s = format_record(&r);
        assert!(s.contains("g7 MPI_Sendrecv"));
        assert!(s.contains("dest=3"));
        assert!(s.contains("src=2"));
        assert!(s.contains("bytes=100"));
        assert!(s.contains("rbytes=200"));
        assert!(s.contains("tag=1"));
        assert!(s.contains("rtag=4"));
        assert!(s.contains("(+55ns)"));
    }

    #[test]
    fn collective_omits_peer_fields() {
        let r = MpiRecord {
            gid: 1,
            op: MpiOp::Barrier,
            params: MpiParams::collective(0),
            t_start: 10,
            dur: 5,
        };
        let s = format_record(&r);
        assert!(!s.contains("dest="));
        assert!(!s.contains("src="));
        assert!(!s.contains("tag="));
    }

    #[test]
    fn trace_rendering_has_header_and_lines() {
        let mut t = RawTrace::new(2, 4);
        t.events.push(Event::Enter { gid: 1 });
        t.events.push(Event::Mpi(MpiRecord {
            gid: 2,
            op: MpiOp::Bcast,
            params: MpiParams::rooted(0, 64),
            t_start: 500,
            dur: 20,
        }));
        t.events.push(Event::Exit { gid: 1 });
        let s = format_trace(&t);
        assert!(s.starts_with("# rank 2/4"));
        assert_eq!(s.lines().count(), 4);
        assert!(s.contains("+g1"));
        assert!(s.contains("-g1"));
        assert!(s.contains("root=0"));
    }
}
