//! mpiP-style statistical communication profiles.
//!
//! The paper's related work contrasts trace compression against statistical
//! profilers (mpiP \[28\]), which keep aggregate numbers instead of event
//! sequences. This module computes those aggregates from traces — and,
//! because CYPRESS decompression is sequence-preserving, the same profile
//! can be recovered from a compressed trace, subsuming what a profiler
//! would have collected.

use crate::codec::{Codec, DecodeError, DecodeResult, Decoder, Encoder};
use crate::event::{MpiOp, MpiRecord};
use crate::raw::RawTrace;
use std::collections::BTreeMap;
use std::fmt::Write;

/// Aggregate statistics for one operation type.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OpStats {
    pub calls: u64,
    pub total_bytes: u64,
    pub total_time_ns: u64,
    pub min_time_ns: u64,
    pub max_time_ns: u64,
}

impl OpStats {
    /// Accumulate `times` calls that each moved `bytes` and lasted `dur` —
    /// exactly equivalent to `times` individual `add` calls, in O(1). This
    /// is how the compressed-domain query engine folds a merged leaf record
    /// (count × identical parameters, mean duration) without expansion.
    pub fn add_repeated(&mut self, bytes: i64, dur: u64, times: u64) {
        if times == 0 {
            return;
        }
        if self.calls == 0 {
            self.min_time_ns = dur;
        }
        self.calls += times;
        self.total_bytes += bytes.max(0) as u64 * times;
        self.total_time_ns += dur * times;
        self.min_time_ns = self.min_time_ns.min(dur);
        self.max_time_ns = self.max_time_ns.max(dur);
    }

    pub fn mean_time_ns(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.total_time_ns as f64 / self.calls as f64
        }
    }
}

/// A whole-job statistical profile.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Profile {
    /// Per-op aggregates over all ranks.
    pub by_op: BTreeMap<MpiOp, OpStats>,
    /// Per-rank MPI time (ns).
    pub rank_mpi_time: Vec<u64>,
    /// Per-rank application time (ns).
    pub rank_app_time: Vec<u64>,
    /// Message-size histogram: power-of-two buckets, bucket i (≥1) counts
    /// messages with `2^(i-1) ≤ bytes < 2^i`; bucket 0 counts empty
    /// messages.
    pub size_buckets: Vec<u64>,
}

/// Power-of-two message-size bucket index: 0 for empty messages, otherwise
/// `i` such that `2^(i-1) ≤ bytes < 2^i`, saturating at 39.
pub fn size_bucket(bytes: u64) -> usize {
    if bytes == 0 {
        0
    } else {
        ((64 - bytes.leading_zeros()) as usize).min(39)
    }
}

impl Profile {
    /// An empty profile dimensioned for `nprocs` ranks, ready for
    /// accumulation via [`Profile::add_record`] / [`Profile::add_repeated`].
    pub fn new(nprocs: usize) -> Profile {
        Profile {
            rank_mpi_time: vec![0; nprocs],
            rank_app_time: vec![0; nprocs],
            size_buckets: vec![0; 40],
            ..Profile::default()
        }
    }

    /// Record a rank's total application time.
    pub fn set_app_time(&mut self, rank: usize, app_time: u64) {
        if rank < self.rank_app_time.len() {
            self.rank_app_time[rank] = app_time;
        }
    }

    /// Accumulate `times` identical calls on `rank` — the O(1) bulk path
    /// used when folding merged leaf records; equivalent to `times`
    /// single-record additions.
    pub fn add_repeated(&mut self, rank: usize, op: MpiOp, bytes: i64, dur: u64, times: u64) {
        if times == 0 {
            return;
        }
        self.by_op
            .entry(op)
            .or_default()
            .add_repeated(bytes, dur, times);
        if rank < self.rank_mpi_time.len() {
            self.rank_mpi_time[rank] += dur * times;
        }
        self.size_buckets[size_bucket(bytes.max(0) as u64)] += times;
    }

    /// Accumulate one raw record emitted by `rank`.
    pub fn add_record(&mut self, rank: usize, rec: &MpiRecord) {
        self.add_repeated(rank, rec.op, rec.params.count, rec.dur, 1);
    }

    /// Accumulate an event stream from `rank` — the iterator-based entry
    /// point shared by owned traces, decompressed replays, and streamed
    /// partial expansions.
    pub fn add_rank_events<'a>(&mut self, rank: usize, recs: impl Iterator<Item = &'a MpiRecord>) {
        for rec in recs {
            self.add_record(rank, rec);
        }
    }

    /// Build a profile from per-rank traces.
    pub fn from_traces(traces: &[RawTrace]) -> Profile {
        let mut p = Profile::new(traces.len());
        for t in traces {
            p.set_app_time(t.rank as usize, t.app_time);
            p.add_rank_events(t.rank as usize, t.mpi_records());
        }
        p
    }

    /// Total MPI calls.
    pub fn total_calls(&self) -> u64 {
        self.by_op.values().map(|s| s.calls).sum()
    }

    /// Aggregate MPI time fraction of aggregate app time.
    pub fn mpi_fraction(&self) -> f64 {
        let app: u64 = self.rank_app_time.iter().sum();
        if app == 0 {
            return 0.0;
        }
        self.rank_mpi_time.iter().sum::<u64>() as f64 / app as f64
    }

    /// Load-imbalance ratio: max rank MPI time / mean rank MPI time.
    pub fn imbalance(&self) -> f64 {
        if self.rank_mpi_time.is_empty() {
            return 1.0;
        }
        let max = *self.rank_mpi_time.iter().max().expect("non-empty") as f64;
        let mean = self.rank_mpi_time.iter().sum::<u64>() as f64 / self.rank_mpi_time.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }

    /// Render an mpiP-flavoured text report.
    pub fn report(&self) -> String {
        let mut out = String::new();
        writeln!(
            out,
            "MPI operation profile ({} ranks)",
            self.rank_app_time.len()
        )
        .unwrap();
        writeln!(
            out,
            "{:<14} {:>10} {:>14} {:>12} {:>10}",
            "op", "calls", "bytes", "time(ms)", "mean(us)"
        )
        .unwrap();
        for (op, s) in &self.by_op {
            writeln!(
                out,
                "{:<14} {:>10} {:>14} {:>12.3} {:>10.2}",
                op.name(),
                s.calls,
                s.total_bytes,
                s.total_time_ns as f64 / 1e6,
                s.mean_time_ns() / 1e3
            )
            .unwrap();
        }
        writeln!(
            out,
            "\nMPI time: {:.2}% of app time; imbalance (max/mean): {:.2}",
            self.mpi_fraction() * 100.0,
            self.imbalance()
        )
        .unwrap();
        out
    }
}

impl Codec for OpStats {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_uvar(self.calls);
        enc.put_uvar(self.total_bytes);
        enc.put_uvar(self.total_time_ns);
        enc.put_uvar(self.min_time_ns);
        enc.put_uvar(self.max_time_ns);
    }

    fn decode(dec: &mut Decoder<'_>) -> DecodeResult<Self> {
        Ok(OpStats {
            calls: dec.get_uvar()?,
            total_bytes: dec.get_uvar()?,
            total_time_ns: dec.get_uvar()?,
            min_time_ns: dec.get_uvar()?,
            max_time_ns: dec.get_uvar()?,
        })
    }
}

/// Decode a `uvar`-counted vector of `uvar` values, rejecting counts that
/// could not possibly fit the remaining buffer (each value costs ≥ 1 byte).
fn decode_uvar_vec(dec: &mut Decoder<'_>, what: &str) -> DecodeResult<Vec<u64>> {
    let n = dec.get_uvar()? as usize;
    if n > dec.remaining() {
        return Err(DecodeError(format!(
            "{what} claims {n} entries but only {} bytes remain",
            dec.remaining()
        )));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(dec.get_uvar()?);
    }
    Ok(out)
}

impl Codec for Profile {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_uvar(self.by_op.len() as u64);
        for (op, s) in &self.by_op {
            enc.put_u8(op.code());
            s.encode(enc);
        }
        for v in [&self.rank_mpi_time, &self.rank_app_time, &self.size_buckets] {
            enc.put_uvar(v.len() as u64);
            for x in v {
                enc.put_uvar(*x);
            }
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> DecodeResult<Self> {
        let nops = dec.get_uvar()? as usize;
        if nops > dec.remaining() {
            return Err(DecodeError(format!(
                "profile claims {nops} op entries but only {} bytes remain",
                dec.remaining()
            )));
        }
        let mut by_op = BTreeMap::new();
        for _ in 0..nops {
            let code = dec.get_u8()?;
            let op = MpiOp::from_code(code)
                .ok_or_else(|| DecodeError(format!("unknown MPI op code {code} in profile")))?;
            by_op.insert(op, OpStats::decode(dec)?);
        }
        Ok(Profile {
            by_op,
            rank_mpi_time: decode_uvar_vec(dec, "rank_mpi_time")?,
            rank_app_time: decode_uvar_vec(dec, "rank_app_time")?,
            size_buckets: decode_uvar_vec(dec, "size_buckets")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, MpiParams, MpiRecord};

    fn trace_with(rank: u32, recs: Vec<(MpiOp, i64, u64)>) -> RawTrace {
        let mut t = RawTrace::new(rank, 2);
        t.app_time = 1_000_000;
        let mut clock = 0;
        for (op, bytes, dur) in recs {
            t.events.push(Event::Mpi(MpiRecord {
                gid: 1,
                op,
                params: MpiParams::send(0, bytes, 0),
                t_start: clock,
                dur,
            }));
            clock += dur;
        }
        t
    }

    #[test]
    fn aggregates_per_op() {
        let traces = vec![
            trace_with(0, vec![(MpiOp::Send, 100, 10), (MpiOp::Send, 200, 30)]),
            trace_with(1, vec![(MpiOp::Recv, 100, 20)]),
        ];
        let p = Profile::from_traces(&traces);
        assert_eq!(p.total_calls(), 3);
        let s = &p.by_op[&MpiOp::Send];
        assert_eq!(s.calls, 2);
        assert_eq!(s.total_bytes, 300);
        assert_eq!(s.min_time_ns, 10);
        assert_eq!(s.max_time_ns, 30);
        assert!((s.mean_time_ns() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn mpi_fraction_and_imbalance() {
        let traces = vec![
            trace_with(0, vec![(MpiOp::Send, 8, 100_000)]),
            trace_with(1, vec![(MpiOp::Recv, 8, 300_000)]),
        ];
        let p = Profile::from_traces(&traces);
        assert!((p.mpi_fraction() - 0.2).abs() < 1e-9); // 400k of 2M
        assert!((p.imbalance() - 1.5).abs() < 1e-9); // 300k / 200k
    }

    #[test]
    fn size_buckets_power_of_two() {
        let traces = vec![trace_with(
            0,
            vec![
                (MpiOp::Send, 0, 1),
                (MpiOp::Send, 1, 1),
                (MpiOp::Send, 1024, 1),
                (MpiOp::Send, 1025, 1),
            ],
        )];
        let p = Profile::from_traces(&traces);
        assert_eq!(p.size_buckets[0], 1); // empty
        assert_eq!(p.size_buckets[1], 1); // 1 byte
        assert_eq!(p.size_buckets[11], 2); // 1024 and 1025 share [1024, 2048)
    }

    #[test]
    fn report_contains_rows() {
        let traces = vec![trace_with(0, vec![(MpiOp::Barrier, 0, 5)])];
        let r = Profile::from_traces(&traces).report();
        assert!(r.contains("MPI_Barrier"));
        assert!(r.contains("imbalance"));
    }

    #[test]
    fn codec_roundtrip() {
        let traces = vec![
            trace_with(0, vec![(MpiOp::Send, 100, 10), (MpiOp::Send, 200, 30)]),
            trace_with(1, vec![(MpiOp::Recv, 100, 20)]),
        ];
        let p = Profile::from_traces(&traces);
        let bytes = p.to_bytes();
        assert_eq!(Profile::from_bytes(&bytes).unwrap(), p);

        let empty = Profile::from_traces(&[]);
        assert_eq!(Profile::from_bytes(&empty.to_bytes()).unwrap(), empty);
    }

    #[test]
    fn empty_profile_is_sane() {
        let p = Profile::from_traces(&[]);
        assert_eq!(p.total_calls(), 0);
        assert_eq!(p.mpi_fraction(), 0.0);
        assert_eq!(p.imbalance(), 1.0);
    }
}
