//! mpiP-style statistical communication profiles.
//!
//! The paper's related work contrasts trace compression against statistical
//! profilers (mpiP \[28\]), which keep aggregate numbers instead of event
//! sequences. This module computes those aggregates from traces — and,
//! because CYPRESS decompression is sequence-preserving, the same profile
//! can be recovered from a compressed trace, subsuming what a profiler
//! would have collected.

use crate::event::MpiOp;
use crate::raw::RawTrace;
use std::collections::BTreeMap;
use std::fmt::Write;

/// Aggregate statistics for one operation type.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OpStats {
    pub calls: u64,
    pub total_bytes: u64,
    pub total_time_ns: u64,
    pub min_time_ns: u64,
    pub max_time_ns: u64,
}

impl OpStats {
    fn add(&mut self, bytes: i64, dur: u64) {
        if self.calls == 0 {
            self.min_time_ns = dur;
        }
        self.calls += 1;
        self.total_bytes += bytes.max(0) as u64;
        self.total_time_ns += dur;
        self.min_time_ns = self.min_time_ns.min(dur);
        self.max_time_ns = self.max_time_ns.max(dur);
    }

    pub fn mean_time_ns(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.total_time_ns as f64 / self.calls as f64
        }
    }
}

/// A whole-job statistical profile.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Profile {
    /// Per-op aggregates over all ranks.
    pub by_op: BTreeMap<MpiOp, OpStats>,
    /// Per-rank MPI time (ns).
    pub rank_mpi_time: Vec<u64>,
    /// Per-rank application time (ns).
    pub rank_app_time: Vec<u64>,
    /// Message-size histogram: power-of-two buckets, bucket i (≥1) counts
    /// messages with `2^(i-1) ≤ bytes < 2^i`; bucket 0 counts empty
    /// messages.
    pub size_buckets: Vec<u64>,
}

impl Profile {
    /// Build a profile from per-rank traces.
    pub fn from_traces(traces: &[RawTrace]) -> Profile {
        let mut p = Profile {
            rank_mpi_time: vec![0; traces.len()],
            rank_app_time: vec![0; traces.len()],
            size_buckets: vec![0; 40],
            ..Profile::default()
        };
        for t in traces {
            let r = t.rank as usize;
            if r < p.rank_app_time.len() {
                p.rank_app_time[r] = t.app_time;
            }
            for rec in t.mpi_records() {
                p.by_op
                    .entry(rec.op)
                    .or_default()
                    .add(rec.params.count, rec.dur);
                if r < p.rank_mpi_time.len() {
                    p.rank_mpi_time[r] += rec.dur;
                }
                let bytes = rec.params.count.max(0) as u64;
                let b = if bytes == 0 {
                    0
                } else {
                    (64 - bytes.leading_zeros()) as usize
                };
                p.size_buckets[b.min(39)] += 1;
            }
        }
        p
    }

    /// Total MPI calls.
    pub fn total_calls(&self) -> u64 {
        self.by_op.values().map(|s| s.calls).sum()
    }

    /// Aggregate MPI time fraction of aggregate app time.
    pub fn mpi_fraction(&self) -> f64 {
        let app: u64 = self.rank_app_time.iter().sum();
        if app == 0 {
            return 0.0;
        }
        self.rank_mpi_time.iter().sum::<u64>() as f64 / app as f64
    }

    /// Load-imbalance ratio: max rank MPI time / mean rank MPI time.
    pub fn imbalance(&self) -> f64 {
        if self.rank_mpi_time.is_empty() {
            return 1.0;
        }
        let max = *self.rank_mpi_time.iter().max().expect("non-empty") as f64;
        let mean = self.rank_mpi_time.iter().sum::<u64>() as f64 / self.rank_mpi_time.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }

    /// Render an mpiP-flavoured text report.
    pub fn report(&self) -> String {
        let mut out = String::new();
        writeln!(
            out,
            "MPI operation profile ({} ranks)",
            self.rank_app_time.len()
        )
        .unwrap();
        writeln!(
            out,
            "{:<14} {:>10} {:>14} {:>12} {:>10}",
            "op", "calls", "bytes", "time(ms)", "mean(us)"
        )
        .unwrap();
        for (op, s) in &self.by_op {
            writeln!(
                out,
                "{:<14} {:>10} {:>14} {:>12.3} {:>10.2}",
                op.name(),
                s.calls,
                s.total_bytes,
                s.total_time_ns as f64 / 1e6,
                s.mean_time_ns() / 1e3
            )
            .unwrap();
        }
        writeln!(
            out,
            "\nMPI time: {:.2}% of app time; imbalance (max/mean): {:.2}",
            self.mpi_fraction() * 100.0,
            self.imbalance()
        )
        .unwrap();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, MpiParams, MpiRecord};

    fn trace_with(rank: u32, recs: Vec<(MpiOp, i64, u64)>) -> RawTrace {
        let mut t = RawTrace::new(rank, 2);
        t.app_time = 1_000_000;
        let mut clock = 0;
        for (op, bytes, dur) in recs {
            t.events.push(Event::Mpi(MpiRecord {
                gid: 1,
                op,
                params: MpiParams::send(0, bytes, 0),
                t_start: clock,
                dur,
            }));
            clock += dur;
        }
        t
    }

    #[test]
    fn aggregates_per_op() {
        let traces = vec![
            trace_with(0, vec![(MpiOp::Send, 100, 10), (MpiOp::Send, 200, 30)]),
            trace_with(1, vec![(MpiOp::Recv, 100, 20)]),
        ];
        let p = Profile::from_traces(&traces);
        assert_eq!(p.total_calls(), 3);
        let s = &p.by_op[&MpiOp::Send];
        assert_eq!(s.calls, 2);
        assert_eq!(s.total_bytes, 300);
        assert_eq!(s.min_time_ns, 10);
        assert_eq!(s.max_time_ns, 30);
        assert!((s.mean_time_ns() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn mpi_fraction_and_imbalance() {
        let traces = vec![
            trace_with(0, vec![(MpiOp::Send, 8, 100_000)]),
            trace_with(1, vec![(MpiOp::Recv, 8, 300_000)]),
        ];
        let p = Profile::from_traces(&traces);
        assert!((p.mpi_fraction() - 0.2).abs() < 1e-9); // 400k of 2M
        assert!((p.imbalance() - 1.5).abs() < 1e-9); // 300k / 200k
    }

    #[test]
    fn size_buckets_power_of_two() {
        let traces = vec![trace_with(
            0,
            vec![
                (MpiOp::Send, 0, 1),
                (MpiOp::Send, 1, 1),
                (MpiOp::Send, 1024, 1),
                (MpiOp::Send, 1025, 1),
            ],
        )];
        let p = Profile::from_traces(&traces);
        assert_eq!(p.size_buckets[0], 1); // empty
        assert_eq!(p.size_buckets[1], 1); // 1 byte
        assert_eq!(p.size_buckets[11], 2); // 1024 and 1025 share [1024, 2048)
    }

    #[test]
    fn report_contains_rows() {
        let traces = vec![trace_with(0, vec![(MpiOp::Barrier, 0, 5)])];
        let r = Profile::from_traces(&traces).report();
        assert!(r.contains("MPI_Barrier"));
        assert!(r.contains("imbalance"));
    }

    #[test]
    fn empty_profile_is_sane() {
        let p = Profile::from_traces(&[]);
        assert_eq!(p.total_calls(), 0);
        assert_eq!(p.mpi_fraction(), 0.0);
        assert_eq!(p.imbalance(), 1.0);
    }
}
