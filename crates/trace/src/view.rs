//! Lazy, zero-copy views over a container image.
//!
//! [`Container::from_bytes`](crate::container::Container::from_bytes) is the
//! eager path: every section payload is copied (and inflated) into an owned
//! `Vec` up front. That is the wrong shape for a resident trace store that
//! keeps thousands of `.cytc` images open — most opens touch two or three
//! sections, and raw payloads never need to leave the backing buffer at all.
//!
//! This module splits the read path into three pieces:
//!
//! - [`SectionTable::parse`] validates all framing *without inflating
//!   anything*: magic, version, the whole-image CRC (v3), body varints, and
//!   every per-section CRC. It yields index-based [`SectionInfo`] records
//!   (byte ranges into the image, not borrowed slices), so the table can be
//!   stored next to the buffer it describes without self-reference.
//! - [`PayloadArena`] owns lazily-inflated payloads: raw sections are served
//!   zero-copy as `&image[range]`, deflated sections are inflated **exactly
//!   once** into an arena slot (failures are cached too, so a corrupt
//!   section reports the same error on every access).
//! - [`ContainerView`] bundles an image borrow with its table and arena —
//!   the convenient form for one-shot readers like `cypress inspect`.
//!
//! The eager `Container::from_bytes` is reimplemented on top of
//! [`SectionTable::parse`], so both paths share one parser and reject
//! malformed images identically.

use crate::codec::{DecodeError, Decoder};
use crate::container::{
    note_crc_failure, ContainerError, SectionKind, CONTAINER_MAGIC, CONTAINER_VERSION, ENC_DEFLATE,
    ENC_RAW,
};
use cypress_deflate::{crc32, inflate};
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Framing metadata for one section: where its stored bytes live in the
/// backing image and how to decode them. Holds byte *ranges* rather than
/// borrowed slices so the table is `'static` relative to the image.
#[derive(Debug, Clone, PartialEq)]
pub struct SectionInfo {
    pub kind: SectionKind,
    /// Present for rank-scoped kinds (`RankCtt`).
    pub rank: Option<u32>,
    pub(crate) encoding: u8,
    /// Decoded payload length (equals the stored length for raw sections).
    pub raw_len: usize,
    pub(crate) stored: Range<usize>,
}

impl SectionInfo {
    /// Is the stored form a DEFLATE stream (as opposed to the payload bytes
    /// themselves)?
    pub fn is_deflated(&self) -> bool {
        self.encoding == ENC_DEFLATE
    }

    /// Bytes occupied in the file (compressed size for deflated sections).
    pub fn stored_len(&self) -> usize {
        self.stored.len()
    }

    /// Byte range of the stored bytes within the image.
    pub fn stored_range(&self) -> Range<usize> {
        self.stored.clone()
    }
}

/// Parsed container framing: version, world size, and one [`SectionInfo`]
/// per section, in file order. Produced by [`SectionTable::parse`], which
/// verifies every integrity check that does not require inflation.
#[derive(Debug, Clone, PartialEq)]
pub struct SectionTable {
    pub version: u8,
    pub nprocs: u32,
    sections: Vec<SectionInfo>,
}

impl SectionTable {
    /// Parse and verify container framing over `image`.
    ///
    /// Checks, in order: magic, version, the whole-image CRC trailer (v3+ —
    /// verified over the full prefix *before* any body varint is trusted, so
    /// a corrupted length field can never demand an absurd allocation), body
    /// framing, and each section's stored-byte CRC. No payload is inflated.
    pub fn parse(image: &[u8]) -> Result<SectionTable, ContainerError> {
        if image.len() < 5 || image[..4] != CONTAINER_MAGIC {
            return Err(ContainerError::BadMagic);
        }
        let version = image[4];
        if version == 0 || version > CONTAINER_VERSION {
            return Err(ContainerError::UnsupportedVersion(version));
        }
        let body_end = if version >= 3 {
            if image.len() < 9 {
                return Err(ContainerError::Corrupt(DecodeError(
                    "image too short for v3 crc trailer".into(),
                )));
            }
            let split = image.len() - 4;
            let stored = u32::from_le_bytes(image[split..].try_into().unwrap());
            let computed = crc32(&image[..split]);
            if stored != computed {
                note_crc_failure();
                return Err(ContainerError::ImageCrcMismatch { stored, computed });
            }
            split
        } else {
            image.len()
        };
        const BODY_START: usize = 5;
        let body = &image[BODY_START..body_end];
        let mut dec = Decoder::new(body);
        let nprocs = dec.get_uvar()? as u32;
        let nsections = dec.get_uvar()? as usize;
        if nsections > 1 << 24 {
            return Err(ContainerError::Corrupt(DecodeError(format!(
                "absurd section count {nsections}"
            ))));
        }
        let mut sections = Vec::with_capacity(nsections.min(1 << 12));
        for index in 0..nsections {
            let code = dec.get_u8()?;
            let kind = SectionKind::from_code(code).ok_or_else(|| {
                ContainerError::Corrupt(DecodeError(format!("bad section kind {code}")))
            })?;
            let rank_plus1 = dec.get_uvar()?;
            let rank = if rank_plus1 == 0 {
                None
            } else {
                Some((rank_plus1 - 1) as u32)
            };
            // Version 1 sections are always raw; versions 2+ carry an
            // explicit encoding byte (and the decompressed length for
            // deflated payloads, bounding decompression up front).
            let (encoding, deflated_len) = if version >= 2 {
                let e = dec.get_u8()?;
                if e > ENC_DEFLATE {
                    return Err(ContainerError::Corrupt(DecodeError(format!(
                        "bad section encoding {e}"
                    ))));
                }
                let raw_len = if e == ENC_DEFLATE {
                    let n = dec.get_uvar()?;
                    if n > 1 << 32 {
                        return Err(ContainerError::Corrupt(DecodeError(format!(
                            "absurd section raw length {n}"
                        ))));
                    }
                    Some(n as usize)
                } else {
                    None
                };
                (e, raw_len)
            } else {
                (ENC_RAW, None)
            };
            let stored_bytes = dec.get_bytes_ref()?;
            let end = BODY_START + (body.len() - dec.remaining());
            let stored = end - stored_bytes.len()..end;
            let crc_stored = dec.get_uvar()? as u32;
            // The CRC covers the stored bytes (what is actually in the
            // file), so corruption is caught before any decompression.
            let computed = crc32(stored_bytes);
            if crc_stored != computed {
                note_crc_failure();
                return Err(ContainerError::CrcMismatch {
                    index,
                    stored: crc_stored,
                    computed,
                });
            }
            let raw_len = deflated_len.unwrap_or(stored_bytes.len());
            if raw_len == 0 {
                return Err(ContainerError::EmptySection {
                    index,
                    kind: kind.name(),
                });
            }
            sections.push(SectionInfo {
                kind,
                rank,
                encoding,
                raw_len,
                stored,
            });
        }
        if !dec.is_done() {
            return Err(ContainerError::Corrupt(DecodeError(format!(
                "{} trailing bytes after container body",
                dec.remaining()
            ))));
        }
        Ok(SectionTable {
            version,
            nprocs,
            sections,
        })
    }

    pub fn sections(&self) -> &[SectionInfo] {
        &self.sections
    }

    pub fn len(&self) -> usize {
        self.sections.len()
    }

    pub fn is_empty(&self) -> bool {
        self.sections.is_empty()
    }

    /// Index of the first section of `kind`, if any.
    pub fn find(&self, kind: SectionKind) -> Option<usize> {
        self.sections.iter().position(|s| s.kind == kind)
    }

    /// Indices of all rank-scoped CTT sections, in file order.
    pub fn rank_indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.sections
            .iter()
            .enumerate()
            .filter(|(_, s)| s.kind == SectionKind::RankCtt)
            .map(|(i, _)| i)
    }

    /// Total decoded payload bytes across sections (excludes framing).
    pub fn payload_bytes(&self) -> usize {
        self.sections.iter().map(|s| s.raw_len).sum()
    }
}

/// Exactly-once inflation arena for deflated section payloads.
///
/// One slot per section; raw sections never claim a slot. The first access
/// to a deflated section inflates it into its slot, every later access
/// (including from other threads) returns the same bytes. Inflation
/// *failures* are cached too: a corrupt section reports the same
/// [`ContainerError`] forever instead of re-running DEFLATE.
pub struct PayloadArena {
    slots: Vec<OnceLock<Result<Box<[u8]>, String>>>,
    inflations: AtomicU64,
}

impl PayloadArena {
    /// An empty arena with one slot per section.
    pub fn new(sections: usize) -> PayloadArena {
        PayloadArena {
            slots: (0..sections).map(|_| OnceLock::new()).collect(),
            inflations: AtomicU64::new(0),
        }
    }

    /// Number of inflations performed so far — at most one per deflated
    /// section, and exactly zero for an all-raw image however much of it is
    /// read.
    pub fn inflations(&self) -> u64 {
        self.inflations.load(Ordering::Relaxed)
    }

    /// Bytes currently resident in the arena (inflated payloads only; raw
    /// payloads live in the image and cost nothing here).
    pub fn resident_bytes(&self) -> usize {
        self.slots
            .iter()
            .filter_map(|s| s.get())
            .filter_map(|r| r.as_ref().ok())
            .map(|b| b.len())
            .sum()
    }

    /// The decoded payload of section `index`: zero-copy out of `image` for
    /// raw sections, inflated exactly once into the arena for deflated ones.
    ///
    /// `image` and `info` must be the buffer and table entry this arena was
    /// sized for.
    pub fn payload<'s>(
        &'s self,
        image: &'s [u8],
        info: &SectionInfo,
        index: usize,
    ) -> Result<&'s [u8], ContainerError> {
        if info.encoding != ENC_DEFLATE {
            return Ok(&image[info.stored.clone()]);
        }
        let res = self.slots[index].get_or_init(|| {
            self.inflations.fetch_add(1, Ordering::Relaxed);
            inflate_payload(image, info, index).map(Vec::into_boxed_slice)
        });
        match res {
            Ok(b) => Ok(b),
            Err(msg) => Err(ContainerError::Corrupt(DecodeError(msg.clone()))),
        }
    }
}

fn inflate_payload(image: &[u8], info: &SectionInfo, index: usize) -> Result<Vec<u8>, String> {
    let raw = inflate(&image[info.stored.clone()])
        .map_err(|e| format!("section {index} inflate failed: {e:?}"))?;
    if raw.len() != info.raw_len {
        return Err(format!(
            "section {index} inflated to {} bytes, header said {}",
            raw.len(),
            info.raw_len
        ));
    }
    Ok(raw)
}

/// A lazily-decoded container borrowing its backing image: the parsed
/// [`SectionTable`] plus a [`PayloadArena`]. Convenient for one-shot readers
/// (`cypress inspect`, the eager `Container::from_bytes`). Long-lived owners
/// like the trace store hold the image, table, and arena as separate fields
/// instead, to avoid a self-referential struct.
pub struct ContainerView<'a> {
    image: &'a [u8],
    table: SectionTable,
    arena: PayloadArena,
}

impl<'a> ContainerView<'a> {
    /// Parse and verify framing over `image` (see [`SectionTable::parse`]).
    /// No payload is inflated.
    pub fn parse(image: &'a [u8]) -> Result<ContainerView<'a>, ContainerError> {
        let table = SectionTable::parse(image)?;
        let arena = PayloadArena::new(table.len());
        Ok(ContainerView {
            image,
            table,
            arena,
        })
    }

    pub fn image(&self) -> &'a [u8] {
        self.image
    }

    pub fn table(&self) -> &SectionTable {
        &self.table
    }

    pub fn version(&self) -> u8 {
        self.table.version
    }

    pub fn nprocs(&self) -> u32 {
        self.table.nprocs
    }

    /// The decoded payload of section `index` (zero-copy when raw).
    pub fn payload(&self, index: usize) -> Result<&[u8], ContainerError> {
        self.arena
            .payload(self.image, &self.table.sections()[index], index)
    }

    /// Decoded payload of the first section of `kind`.
    pub fn find_payload(&self, kind: SectionKind) -> Option<Result<&[u8], ContainerError>> {
        self.table.find(kind).map(|i| self.payload(i))
    }

    /// Inflations performed through this view so far.
    pub fn inflations(&self) -> u64 {
        self.arena.inflations()
    }

    pub fn arena(&self) -> &PayloadArena {
        &self.arena
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::container::{Container, Section};
    use cypress_deflate::Level;

    fn sample() -> Container {
        let mut c = Container::new(4);
        c.push(SectionKind::Meta, None, b"meta-payload".to_vec());
        c.push(
            SectionKind::CstText,
            None,
            b"Root() Loop()".repeat(50).to_vec(),
        );
        c.push(SectionKind::MergedCtt, None, vec![42; 4096]);
        c.push(
            SectionKind::RankCtt,
            Some(3),
            (0..500u32).map(|i| i as u8).collect(),
        );
        c
    }

    #[test]
    fn raw_image_is_served_zero_copy_with_no_inflation() {
        let c = sample();
        let image = c.to_bytes();
        let view = ContainerView::parse(&image).unwrap();
        assert_eq!(view.nprocs(), 4);
        for (i, s) in c.sections.iter().enumerate() {
            let p = view.payload(i).unwrap();
            assert_eq!(p, &s.payload[..], "section {i}");
            // Zero-copy: the returned slice points into the image itself.
            let image_range = image.as_ptr() as usize..image.as_ptr() as usize + image.len();
            assert!(image_range.contains(&(p.as_ptr() as usize)), "section {i}");
        }
        assert_eq!(view.inflations(), 0, "raw sections must never inflate");
        assert_eq!(view.arena().resident_bytes(), 0);
    }

    #[test]
    fn deflated_sections_inflate_exactly_once() {
        let c = sample();
        let image = c.to_bytes_with(Some(Level::Default));
        let view = ContainerView::parse(&image).unwrap();
        assert_eq!(view.inflations(), 0, "parse alone must not inflate");
        let deflated = view
            .table()
            .sections()
            .iter()
            .filter(|s| s.is_deflated())
            .count();
        assert!(deflated > 0, "sample should compress");
        for _ in 0..3 {
            for (i, s) in c.sections.iter().enumerate() {
                assert_eq!(view.payload(i).unwrap(), &s.payload[..]);
            }
        }
        assert_eq!(view.inflations(), deflated as u64);
        assert!(view.arena().resident_bytes() > 0);
    }

    #[test]
    fn table_metadata_matches_eager_reader() {
        let c = sample();
        let image = c.to_bytes_with(Some(Level::Fast));
        let table = SectionTable::parse(&image).unwrap();
        assert_eq!(table.len(), c.sections.len());
        assert_eq!(table.payload_bytes(), c.payload_bytes());
        assert_eq!(table.find(SectionKind::MergedCtt), Some(2));
        assert_eq!(table.rank_indices().collect::<Vec<_>>(), vec![3]);
        let back = Container::from_bytes(&image).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn lazy_and_eager_reject_the_same_images() {
        let image = sample().to_bytes_with(Some(Level::Default));
        for cut in 0..image.len() {
            let lazy = SectionTable::parse(&image[..cut]);
            let eager = Container::from_bytes(&image[..cut]);
            assert!(lazy.is_err() && eager.is_err(), "cut {cut}");
            assert_eq!(
                lazy.unwrap_err().to_string(),
                eager.unwrap_err().to_string(),
                "cut {cut}"
            );
        }
    }

    #[test]
    fn failed_inflation_is_cached_and_counted_once() {
        // A deflated section whose header raw_len disagrees with the stream
        // fails at payload() time — identically on every access, with the
        // inflation attempted only once.
        let section = Section {
            kind: SectionKind::MergedCtt,
            rank: None,
            payload: vec![7; 1024],
        };
        let encoded = crate::container::encode_section(&section, Some(Level::Default));
        assert!(encoded.stored_len() < 1024, "sample should compress");
        let image = crate::container::assemble(4, &[encoded]);
        let mut table = SectionTable::parse(&image).unwrap();
        table.sections[0].raw_len += 1;
        let arena = PayloadArena::new(table.len());
        let e1 = arena
            .payload(&image, &table.sections[0], 0)
            .unwrap_err()
            .to_string();
        let e2 = arena
            .payload(&image, &table.sections[0], 0)
            .unwrap_err()
            .to_string();
        assert_eq!(e1, e2);
        assert!(e1.contains("header said"), "{e1}");
        assert_eq!(arena.inflations(), 1, "failed inflation still counts once");
    }
}
