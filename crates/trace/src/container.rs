//! Versioned on-disk trace container.
//!
//! Merged traces used to live as bare `MergedCtt` codec bytes next to a
//! loose `.cst` text file — no magic, no version, no integrity check, and no
//! way to carry per-rank artifacts. This module defines a single
//! self-describing file that persists a whole compression job so it can be
//! reloaded without re-simulation (what Recorder calls its "compact on-disk
//! container"):
//!
//! ```text
//! offset  size  field
//! 0       4     magic "CYTC"
//! 4       1     format version (1 = raw sections, 2 = per-section encoding,
//!               3 = v2 body + whole-image crc trailer)
//! 5       …     body (cypress varint codec):
//!               uvar nprocs
//!               uvar section_count
//!               section × section_count:
//!                 u8   kind        (Meta | CstText | MergedCtt | RankCtt)
//!                 uvar rank + 1    (0 = not rank-scoped)
//!                 u8   encoding    (v2+ only: 0 = raw, 1 = deflate)
//!                 uvar raw_len     (v2+ only, deflate encoding only)
//!                 uvar stored_len, stored bytes
//!                 uvar crc32(stored)    (gzip polynomial, cypress-deflate)
//! end     4     u32 LE crc32 of every preceding byte (v3 only)
//! ```
//!
//! Each section is independently framed and CRC-protected, so a reader can
//! skip kinds it does not understand and detect torn or corrupted writes
//! per-section. Writers go through [`Container::write_file`], which is
//! atomic (temp + rename).
//!
//! Version 2 added per-section DEFLATE: [`Container::to_bytes_with`]
//! compresses eligible payloads at a chosen [`Level`]. Sections can also be
//! encoded independently ([`encode_section`]) and assembled later
//! ([`assemble`]) — that split is what lets the umbrella crate compress
//! sections on a worker pool without this crate depending on a scheduler.
//!
//! Version 3 (current) appends a crc32 of the whole preceding image.
//! Per-section CRCs protect payload bytes, but the *framing* varints
//! (section counts, lengths) were previously unprotected: a single flipped
//! length byte could send a reader off to allocate gigabytes or
//! misinterpret the rest of the file. The image CRC is verified over the
//! full prefix **before any body byte is parsed** (see
//! [`SectionTable::parse`](crate::view::SectionTable::parse)), so every
//! single-byte corruption of a v3 file is rejected up front with a clean
//! error. Writers always emit v3; readers accept all of v1/v2/v3.

use crate::codec::{DecodeError, Encoder};
use cypress_deflate::{crc32, deflate, Level};
use std::fmt;
use std::path::Path;
use std::sync::OnceLock;

/// File magic: CYpress Trace Container.
pub const CONTAINER_MAGIC: [u8; 4] = *b"CYTC";

/// Current format version.
pub const CONTAINER_VERSION: u8 = 3;

/// Section stored exactly as its payload bytes.
pub(crate) const ENC_RAW: u8 = 0;
/// Section stored as a raw DEFLATE stream of the payload.
pub(crate) const ENC_DEFLATE: u8 = 1;

/// Payloads below this size skip compression: framing overhead dominates and
/// the extra encoding byte already costs one.
const MIN_COMPRESS_LEN: usize = 64;

/// Container instrumentation handles (scope `container`).
struct ContainerMetrics {
    bytes_written: cypress_obs::Counter,
    bytes_read: cypress_obs::Counter,
    crc_failures: cypress_obs::Counter,
    /// Sections actually stored deflated (compression won).
    sections_deflated: cypress_obs::Counter,
    /// Raw payload bytes that went into section deflate.
    deflate_in_bytes: cypress_obs::Counter,
    /// Stored bytes that came out.
    deflate_out_bytes: cypress_obs::Counter,
    /// Wall time of per-section encode (deflate + fallback decision).
    section_encode_ns: cypress_obs::Histogram,
}

fn obs() -> &'static ContainerMetrics {
    static M: OnceLock<ContainerMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let s = cypress_obs::scope("container");
        ContainerMetrics {
            bytes_written: s.counter("bytes_written"),
            bytes_read: s.counter("bytes_read"),
            crc_failures: s.counter("crc_failures"),
            sections_deflated: s.counter("sections_deflated"),
            deflate_in_bytes: s.counter("deflate_in_bytes"),
            deflate_out_bytes: s.counter("deflate_out_bytes"),
            section_encode_ns: s.histogram("section_encode_ns", &cypress_obs::TIME_BOUNDS_NS),
        }
    })
}

/// Record a CRC failure in the `container` metrics scope (shared with the
/// lazy parser in [`crate::view`]).
pub(crate) fn note_crc_failure() {
    if cypress_obs::enabled() {
        obs().crc_failures.inc();
    }
}

/// What a section's payload contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SectionKind {
    /// Tool metadata (free-form codec payload; see the umbrella crate).
    Meta,
    /// The CST in its canonical text format.
    CstText,
    /// A whole-job `MergedCtt` in codec bytes.
    MergedCtt,
    /// One rank's `Ctt` in codec bytes (rank-scoped).
    RankCtt,
    /// Compact telemetry summary of how the job was produced (free-form
    /// codec payload; see the umbrella crate). Optional trailing section —
    /// readers that don't understand it skip it by frame.
    Telemetry,
}

impl SectionKind {
    pub fn code(self) -> u8 {
        match self {
            SectionKind::Meta => 0,
            SectionKind::CstText => 1,
            SectionKind::MergedCtt => 2,
            SectionKind::RankCtt => 3,
            SectionKind::Telemetry => 4,
        }
    }

    pub fn from_code(c: u8) -> Option<SectionKind> {
        Some(match c {
            0 => SectionKind::Meta,
            1 => SectionKind::CstText,
            2 => SectionKind::MergedCtt,
            3 => SectionKind::RankCtt,
            4 => SectionKind::Telemetry,
            _ => return None,
        })
    }

    pub fn name(self) -> &'static str {
        match self {
            SectionKind::Meta => "meta",
            SectionKind::CstText => "cst-text",
            SectionKind::MergedCtt => "merged-ctt",
            SectionKind::RankCtt => "rank-ctt",
            SectionKind::Telemetry => "telemetry",
        }
    }
}

/// One framed, CRC-protected payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Section {
    pub kind: SectionKind,
    /// Present for rank-scoped kinds (`RankCtt`).
    pub rank: Option<u32>,
    pub payload: Vec<u8>,
}

/// Container I/O and integrity errors.
#[derive(Debug)]
pub enum ContainerError {
    Io(std::io::Error),
    /// The file does not start with [`CONTAINER_MAGIC`].
    BadMagic,
    /// The file's version is newer than this reader understands.
    UnsupportedVersion(u8),
    /// Malformed body (framing, varints, bad kind codes).
    Corrupt(DecodeError),
    /// A section's payload does not match its stored CRC.
    CrcMismatch {
        index: usize,
        stored: u32,
        computed: u32,
    },
    /// The whole-image CRC trailer (v3) does not match — some byte of the
    /// file, payload or framing, was corrupted.
    ImageCrcMismatch {
        stored: u32,
        computed: u32,
    },
    /// A required section is absent.
    MissingSection(&'static str),
    /// A section carries no payload bytes. Every defined kind has a
    /// non-empty encoding, so an empty payload is always a producer bug or
    /// corruption; rejecting it here gives a clear error instead of a
    /// confusing downstream codec failure.
    EmptySection {
        index: usize,
        kind: &'static str,
    },
}

impl fmt::Display for ContainerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContainerError::Io(e) => write!(f, "container io error: {e}"),
            ContainerError::BadMagic => write!(f, "not a cypress container (bad magic)"),
            ContainerError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "container version {v} not supported (max {CONTAINER_VERSION})"
                )
            }
            ContainerError::Corrupt(e) => write!(f, "corrupt container: {e}"),
            ContainerError::CrcMismatch {
                index,
                stored,
                computed,
            } => write!(
                f,
                "section {index} crc mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            ContainerError::ImageCrcMismatch { stored, computed } => write!(
                f,
                "image crc mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            ContainerError::MissingSection(kind) => {
                write!(f, "container has no {kind} section")
            }
            ContainerError::EmptySection { index, kind } => {
                write!(f, "section {index} ({kind}) has a zero-length payload")
            }
        }
    }
}

impl std::error::Error for ContainerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ContainerError::Io(e) => Some(e),
            ContainerError::Corrupt(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ContainerError {
    fn from(e: std::io::Error) -> Self {
        ContainerError::Io(e)
    }
}

impl From<DecodeError> for ContainerError {
    fn from(e: DecodeError) -> Self {
        ContainerError::Corrupt(e)
    }
}

/// A whole container: world size plus framed sections in file order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Container {
    pub nprocs: u32,
    pub sections: Vec<Section>,
}

impl Container {
    pub fn new(nprocs: u32) -> Self {
        Container {
            nprocs,
            sections: Vec::new(),
        }
    }

    /// Append a section.
    pub fn push(&mut self, kind: SectionKind, rank: Option<u32>, payload: Vec<u8>) {
        self.sections.push(Section {
            kind,
            rank,
            payload,
        });
    }

    /// First section of `kind`, if any.
    pub fn find(&self, kind: SectionKind) -> Option<&Section> {
        self.sections.iter().find(|s| s.kind == kind)
    }

    /// All rank-scoped CTT sections, in file order.
    pub fn rank_sections(&self) -> impl Iterator<Item = &Section> {
        self.sections
            .iter()
            .filter(|s| s.kind == SectionKind::RankCtt)
    }

    /// Serialize with raw (uncompressed) sections: magic, version byte, then
    /// the varint-framed body. Equivalent to `to_bytes_with(None)`.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.to_bytes_with(None)
    }

    /// Serialize, deflating eligible section payloads at `level`. `None`
    /// stores everything raw and emits a version-1 image; `Some` emits
    /// version 2. Deterministic: the same container and level always produce
    /// the same bytes (a parallel encoder assembling [`encode_section`]
    /// results via [`assemble`] is byte-identical).
    pub fn to_bytes_with(&self, level: Option<Level>) -> Vec<u8> {
        let encoded: Vec<EncodedSection> = self
            .sections
            .iter()
            .map(|s| encode_section(s, level))
            .collect();
        assemble(self.nprocs, &encoded)
    }

    /// Parse and verify a container image (magic, version, image CRC for
    /// v3, framing, and every section CRC), materializing every payload
    /// eagerly. Shares its parser with the lazy
    /// [`ContainerView`](crate::view::ContainerView), so both paths accept
    /// and reject exactly the same images.
    pub fn from_bytes(buf: &[u8]) -> Result<Self, ContainerError> {
        let view = crate::view::ContainerView::parse(buf)?;
        let table = view.table();
        let mut sections = Vec::with_capacity(table.len());
        for (index, info) in table.sections().iter().enumerate() {
            sections.push(Section {
                kind: info.kind,
                rank: info.rank,
                payload: view.payload(index)?.to_vec(),
            });
        }
        Ok(Container {
            nprocs: table.nprocs,
            sections,
        })
    }

    /// Write atomically (temp sibling + rename). Refuses to persist a
    /// container any reader would reject (zero-length sections).
    pub fn write_file(&self, path: impl AsRef<Path>) -> Result<(), ContainerError> {
        self.write_file_with(path, None)
    }

    /// Write atomically, deflating eligible sections at `level` (see
    /// [`Container::to_bytes_with`]).
    pub fn write_file_with(
        &self,
        path: impl AsRef<Path>,
        level: Option<Level>,
    ) -> Result<(), ContainerError> {
        self.check_no_empty_sections()?;
        let bytes = self.to_bytes_with(level);
        cypress_obs::write_atomic(path.as_ref(), &bytes)?;
        if cypress_obs::enabled() {
            obs().bytes_written.add(bytes.len() as u64);
        }
        Ok(())
    }

    /// Write an already-assembled image (from [`assemble`]) atomically.
    pub fn write_image(path: impl AsRef<Path>, image: &[u8]) -> Result<(), ContainerError> {
        cypress_obs::write_atomic(path.as_ref(), image)?;
        if cypress_obs::enabled() {
            obs().bytes_written.add(image.len() as u64);
        }
        Ok(())
    }

    /// Reject containers any reader would reject (zero-length sections) —
    /// called by every write path before touching the filesystem.
    pub fn check_no_empty_sections(&self) -> Result<(), ContainerError> {
        if let Some((index, s)) = self
            .sections
            .iter()
            .enumerate()
            .find(|(_, s)| s.payload.is_empty())
        {
            return Err(ContainerError::EmptySection {
                index,
                kind: s.kind.name(),
            });
        }
        Ok(())
    }

    /// Read and verify a container file.
    pub fn read_file(path: impl AsRef<Path>) -> Result<Self, ContainerError> {
        let bytes = std::fs::read(path.as_ref())?;
        if cypress_obs::enabled() {
            obs().bytes_read.add(bytes.len() as u64);
        }
        Self::from_bytes(&bytes)
    }

    /// Total payload bytes across sections (excludes framing).
    pub fn payload_bytes(&self) -> usize {
        self.sections.iter().map(|s| s.payload.len()).sum()
    }
}

/// One section's serialized form: the stored bytes plus the framing fields
/// needed to emit it. Produced by [`encode_section`] (safe to run on any
/// thread — this is the unit of parallelism for container compression) and
/// consumed in order by [`assemble`].
#[derive(Debug, Clone, PartialEq)]
pub struct EncodedSection {
    kind: SectionKind,
    rank: Option<u32>,
    encoding: u8,
    /// Decompressed payload length (deflate encoding only).
    raw_len: usize,
    stored: Vec<u8>,
}

impl EncodedSection {
    /// Bytes as stored in the file (compressed for deflated sections).
    pub fn stored_len(&self) -> usize {
        self.stored.len()
    }
}

/// Encode one section for storage: deflate the payload at `level` when that
/// is enabled, the payload is large enough, and compression actually wins;
/// store raw otherwise. Pure function of `(section, level)` — parallel and
/// sequential encodes are byte-identical.
pub fn encode_section(s: &Section, level: Option<Level>) -> EncodedSection {
    let _span = cypress_obs::enabled().then(|| obs().section_encode_ns.start_span());
    let mut t = cypress_obs::trace_span("encode", "section");
    t.set_arg(s.payload.len() as u64);
    if let Some(level) = level {
        if s.payload.len() >= MIN_COMPRESS_LEN {
            let z = deflate(&s.payload, level);
            if z.len() < s.payload.len() {
                if cypress_obs::enabled() {
                    let m = obs();
                    m.sections_deflated.inc();
                    m.deflate_in_bytes.add(s.payload.len() as u64);
                    m.deflate_out_bytes.add(z.len() as u64);
                }
                return EncodedSection {
                    kind: s.kind,
                    rank: s.rank,
                    encoding: ENC_DEFLATE,
                    raw_len: s.payload.len(),
                    stored: z,
                };
            }
        }
    }
    EncodedSection {
        kind: s.kind,
        rank: s.rank,
        encoding: ENC_RAW,
        raw_len: s.payload.len(),
        stored: s.payload.clone(),
    }
}

/// Assemble encoded sections into a container image. Always emits the
/// current version (3): a v2-style body followed by a whole-image crc32
/// trailer that lets readers reject any corruption — framing included —
/// before parsing a single body byte.
pub fn assemble(nprocs: u32, encoded: &[EncodedSection]) -> Vec<u8> {
    let version = CONTAINER_VERSION;
    let mut enc =
        Encoder::with_capacity(8 + encoded.iter().map(|e| e.stored.len() + 20).sum::<usize>());
    enc.put_uvar(nprocs as u64);
    enc.put_uvar(encoded.len() as u64);
    for e in encoded {
        enc.put_u8(e.kind.code());
        enc.put_uvar(e.rank.map(|r| r as u64 + 1).unwrap_or(0));
        enc.put_u8(e.encoding);
        if e.encoding == ENC_DEFLATE {
            enc.put_uvar(e.raw_len as u64);
        }
        enc.put_bytes(&e.stored);
        enc.put_uvar(crc32(&e.stored) as u64);
    }
    let mut out = Vec::with_capacity(5 + enc.len() + 4);
    out.extend_from_slice(&CONTAINER_MAGIC);
    out.push(version);
    out.extend_from_slice(&enc.finish());
    let image_crc = crc32(&out);
    out.extend_from_slice(&image_crc.to_le_bytes());
    out
}

/// Does this byte prefix look like a container file?
pub fn is_container(prefix: &[u8]) -> bool {
    prefix.len() >= 4 && prefix[..4] == CONTAINER_MAGIC
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Container {
        let mut c = Container::new(8);
        c.push(SectionKind::Meta, None, b"meta-payload".to_vec());
        c.push(SectionKind::CstText, None, b"Root()".to_vec());
        c.push(SectionKind::MergedCtt, None, vec![1, 2, 3, 4, 5]);
        c.push(SectionKind::RankCtt, Some(0), vec![9, 9]);
        c.push(SectionKind::RankCtt, Some(7), vec![7; 100]);
        c
    }

    #[test]
    fn round_trip() {
        let c = sample();
        let back = Container::from_bytes(&c.to_bytes()).unwrap();
        assert_eq!(back, c);
        assert_eq!(back.nprocs, 8);
        assert_eq!(back.rank_sections().count(), 2);
        assert_eq!(
            back.find(SectionKind::CstText).unwrap().payload,
            b"Root()".to_vec()
        );
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            Container::from_bytes(&bytes),
            Err(ContainerError::BadMagic)
        ));
        assert!(!is_container(&bytes));
        assert!(matches!(
            Container::from_bytes(b"CY"),
            Err(ContainerError::BadMagic)
        ));
    }

    #[test]
    fn future_version_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[4] = CONTAINER_VERSION + 1;
        assert!(matches!(
            Container::from_bytes(&bytes),
            Err(ContainerError::UnsupportedVersion(_))
        ));
    }

    #[test]
    fn payload_corruption_fails_image_crc() {
        let c = sample();
        let clean = c.to_bytes();
        // Flip one byte inside the merged-ctt payload (find it by value).
        // In v3 the whole-image CRC catches this before body parsing.
        let pos = clean
            .windows(5)
            .position(|w| w == [1, 2, 3, 4, 5])
            .expect("payload present");
        let mut bytes = clean.clone();
        bytes[pos + 2] ^= 0xff;
        assert!(matches!(
            Container::from_bytes(&bytes),
            Err(ContainerError::ImageCrcMismatch { .. })
        ));
    }

    #[test]
    fn truncation_is_corrupt_not_panic() {
        let bytes = sample().to_bytes();
        for cut in [5, 8, bytes.len() - 1] {
            let err = Container::from_bytes(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    ContainerError::Corrupt(_) | ContainerError::ImageCrcMismatch { .. }
                ),
                "cut {cut}: {err}"
            );
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = sample().to_bytes();
        bytes.push(0);
        assert!(matches!(
            Container::from_bytes(&bytes),
            Err(ContainerError::ImageCrcMismatch { .. })
        ));
    }

    #[test]
    fn zero_length_section_rejected_on_read_and_write() {
        let mut c = Container::new(2);
        c.push(SectionKind::Meta, None, b"m".to_vec());
        c.push(SectionKind::RankCtt, Some(1), Vec::new());
        let err = Container::from_bytes(&c.to_bytes()).unwrap_err();
        assert!(
            matches!(err, ContainerError::EmptySection { index: 1, kind } if kind == "rank-ctt"),
            "{err}"
        );
        assert!(err.to_string().contains("zero-length"), "{err}");
        // The writer refuses before touching the filesystem.
        let path = std::env::temp_dir().join(format!("cypress-empty-{}.cytc", std::process::id()));
        let werr = c.write_file(&path).unwrap_err();
        assert!(
            matches!(werr, ContainerError::EmptySection { .. }),
            "{werr}"
        );
        assert!(!path.exists());
    }

    fn compressible_sample() -> Container {
        let mut c = Container::new(4);
        c.push(SectionKind::Meta, None, b"meta-payload".to_vec());
        c.push(
            SectionKind::CstText,
            None,
            b"Root() Loop() Mpi()".repeat(40).to_vec(),
        );
        c.push(SectionKind::MergedCtt, None, vec![42; 4096]);
        for rank in 0..4u32 {
            c.push(
                SectionKind::RankCtt,
                Some(rank),
                (0..2000u32).map(|i| (i % 17) as u8).collect(),
            );
        }
        c
    }

    #[test]
    fn compressed_round_trip_preserves_sections_at_every_level() {
        let c = compressible_sample();
        for level in [
            None,
            Some(Level::Fast),
            Some(Level::Default),
            Some(Level::Best),
        ] {
            let bytes = c.to_bytes_with(level);
            let back =
                Container::from_bytes(&bytes).unwrap_or_else(|e| panic!("level {level:?}: {e}"));
            assert_eq!(back, c, "level {level:?}");
        }
    }

    #[test]
    fn raw_serialization_is_version_3_and_stable() {
        let c = compressible_sample();
        let raw = c.to_bytes_with(None);
        assert_eq!(raw[4], CONTAINER_VERSION);
        assert_eq!(raw, c.to_bytes());
    }

    #[test]
    fn compressed_image_is_version_3_and_smaller() {
        let c = compressible_sample();
        let raw = c.to_bytes();
        let z = c.to_bytes_with(Some(Level::Default));
        assert_eq!(z[4], CONTAINER_VERSION);
        assert!(
            z.len() < raw.len() / 2,
            "compressible sections should shrink: {} vs {}",
            z.len(),
            raw.len()
        );
    }

    #[test]
    fn incompressible_sections_stay_raw() {
        // A container whose only large section is incompressible: deflate
        // loses, every section stays raw, and the stored image is the same
        // size as the unleveled one.
        let mut x = 0x2468_ace1u32;
        let noise: Vec<u8> = (0..4096)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                (x & 0xFF) as u8
            })
            .collect();
        let mut c = Container::new(1);
        c.push(SectionKind::MergedCtt, None, noise);
        let z = c.to_bytes_with(Some(Level::Best));
        assert_eq!(z, c.to_bytes(), "nothing compressed ⇒ same image as raw");
        assert_eq!(Container::from_bytes(&z).unwrap(), c);
    }

    /// Emit a legacy image the way pre-v3 writers did: no image-CRC
    /// trailer, and v1 additionally drops the per-section encoding byte
    /// (all sections raw).
    fn legacy_image(version: u8, c: &Container) -> Vec<u8> {
        assert!(version == 1 || version == 2);
        let mut enc = Encoder::with_capacity(64);
        enc.put_uvar(c.nprocs as u64);
        enc.put_uvar(c.sections.len() as u64);
        for s in &c.sections {
            enc.put_u8(s.kind.code());
            enc.put_uvar(s.rank.map(|r| r as u64 + 1).unwrap_or(0));
            if version >= 2 {
                enc.put_u8(ENC_RAW);
            }
            enc.put_bytes(&s.payload);
            enc.put_uvar(crc32(&s.payload) as u64);
        }
        let mut out = Vec::new();
        out.extend_from_slice(&CONTAINER_MAGIC);
        out.push(version);
        out.extend_from_slice(&enc.finish());
        out
    }

    #[test]
    fn legacy_v1_and_v2_images_still_read() {
        let c = sample();
        for v in [1u8, 2] {
            let img = legacy_image(v, &c);
            assert_eq!(img[4], v);
            let back = Container::from_bytes(&img).unwrap_or_else(|e| panic!("v{v}: {e}"));
            assert_eq!(back, c, "version {v}");
        }
    }

    #[test]
    fn legacy_v2_deflated_image_still_reads() {
        // The v3 body is bit-identical to the v2 body; only the version
        // byte and trailer differ. Strip them and we have exactly what the
        // old v2 writer produced.
        let c = compressible_sample();
        let encoded: Vec<EncodedSection> = c
            .sections
            .iter()
            .map(|s| encode_section(s, Some(Level::Default)))
            .collect();
        let v3 = assemble(c.nprocs, &encoded);
        let mut v2 = v3[..v3.len() - 4].to_vec();
        v2[4] = 2;
        assert_eq!(Container::from_bytes(&v2).unwrap(), c);
    }

    #[test]
    fn legacy_payload_corruption_fails_section_crc() {
        // Pre-v3 images have no whole-image trailer, so the per-section
        // CRCs are the line of defense — make sure they still are.
        let c = sample();
        let img = legacy_image(2, &c);
        let pos = img
            .windows(5)
            .position(|w| w == [1, 2, 3, 4, 5])
            .expect("payload present");
        let mut bytes = img.clone();
        bytes[pos + 2] ^= 0xff;
        assert!(matches!(
            Container::from_bytes(&bytes),
            Err(ContainerError::CrcMismatch { .. })
        ));
    }

    #[test]
    fn per_section_encode_plus_assemble_matches_sequential() {
        // The parallel encode path: encode sections independently, assemble
        // in order — must be byte-identical to the sequential writer.
        let c = compressible_sample();
        for level in [None, Some(Level::Fast), Some(Level::Default)] {
            // Encode in reverse order to prove order independence, then
            // restore file order for assembly.
            let mut encoded: Vec<EncodedSection> = c
                .sections
                .iter()
                .rev()
                .map(|s| encode_section(s, level))
                .collect();
            encoded.reverse();
            assert_eq!(assemble(c.nprocs, &encoded), c.to_bytes_with(level));
        }
    }

    #[test]
    fn corrupt_compressed_section_fails_crc_before_inflate() {
        let c = compressible_sample();
        let mut bytes = c.to_bytes_with(Some(Level::Default));
        let n = bytes.len();
        bytes[n / 2] ^= 0xff;
        assert!(matches!(
            Container::from_bytes(&bytes),
            Err(ContainerError::CrcMismatch { .. })
                | Err(ContainerError::Corrupt(_))
                | Err(ContainerError::ImageCrcMismatch { .. })
        ));
    }

    #[test]
    fn file_round_trip_is_atomic_write() {
        let dir = std::env::temp_dir().join(format!("cypress-container-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("job.cytc");
        let c = sample();
        c.write_file(&path).unwrap();
        let back = Container::read_file(&path).unwrap();
        assert_eq!(back, c);
        // No temp litter.
        let names: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["job.cytc".to_owned()]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
