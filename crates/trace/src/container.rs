//! Versioned on-disk trace container.
//!
//! Merged traces used to live as bare `MergedCtt` codec bytes next to a
//! loose `.cst` text file — no magic, no version, no integrity check, and no
//! way to carry per-rank artifacts. This module defines a single
//! self-describing file that persists a whole compression job so it can be
//! reloaded without re-simulation (what Recorder calls its "compact on-disk
//! container"):
//!
//! ```text
//! offset  size  field
//! 0       4     magic "CYTC"
//! 4       1     format version (currently 1)
//! 5       …     body (cypress varint codec):
//!               uvar nprocs
//!               uvar section_count
//!               section × section_count:
//!                 u8   kind        (Meta | CstText | MergedCtt | RankCtt)
//!                 uvar rank + 1    (0 = not rank-scoped)
//!                 uvar payload_len, payload bytes
//!                 uvar crc32(payload)   (gzip polynomial, cypress-deflate)
//! ```
//!
//! Each section is independently framed and CRC-protected, so a reader can
//! skip kinds it does not understand and detect torn or corrupted writes
//! per-section. Writers go through [`Container::write_file`], which is
//! atomic (temp + rename).

use crate::codec::{DecodeError, Decoder, Encoder};
use cypress_deflate::crc32;
use std::fmt;
use std::path::Path;
use std::sync::OnceLock;

/// File magic: CYpress Trace Container.
pub const CONTAINER_MAGIC: [u8; 4] = *b"CYTC";

/// Current format version.
pub const CONTAINER_VERSION: u8 = 1;

/// Container instrumentation handles (scope `container`).
struct ContainerMetrics {
    bytes_written: cypress_obs::Counter,
    bytes_read: cypress_obs::Counter,
    crc_failures: cypress_obs::Counter,
}

fn obs() -> &'static ContainerMetrics {
    static M: OnceLock<ContainerMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let s = cypress_obs::scope("container");
        ContainerMetrics {
            bytes_written: s.counter("bytes_written"),
            bytes_read: s.counter("bytes_read"),
            crc_failures: s.counter("crc_failures"),
        }
    })
}

/// What a section's payload contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SectionKind {
    /// Tool metadata (free-form codec payload; see the umbrella crate).
    Meta,
    /// The CST in its canonical text format.
    CstText,
    /// A whole-job `MergedCtt` in codec bytes.
    MergedCtt,
    /// One rank's `Ctt` in codec bytes (rank-scoped).
    RankCtt,
}

impl SectionKind {
    pub fn code(self) -> u8 {
        match self {
            SectionKind::Meta => 0,
            SectionKind::CstText => 1,
            SectionKind::MergedCtt => 2,
            SectionKind::RankCtt => 3,
        }
    }

    pub fn from_code(c: u8) -> Option<SectionKind> {
        Some(match c {
            0 => SectionKind::Meta,
            1 => SectionKind::CstText,
            2 => SectionKind::MergedCtt,
            3 => SectionKind::RankCtt,
            _ => return None,
        })
    }

    pub fn name(self) -> &'static str {
        match self {
            SectionKind::Meta => "meta",
            SectionKind::CstText => "cst-text",
            SectionKind::MergedCtt => "merged-ctt",
            SectionKind::RankCtt => "rank-ctt",
        }
    }
}

/// One framed, CRC-protected payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Section {
    pub kind: SectionKind,
    /// Present for rank-scoped kinds (`RankCtt`).
    pub rank: Option<u32>,
    pub payload: Vec<u8>,
}

/// Container I/O and integrity errors.
#[derive(Debug)]
pub enum ContainerError {
    Io(std::io::Error),
    /// The file does not start with [`CONTAINER_MAGIC`].
    BadMagic,
    /// The file's version is newer than this reader understands.
    UnsupportedVersion(u8),
    /// Malformed body (framing, varints, bad kind codes).
    Corrupt(DecodeError),
    /// A section's payload does not match its stored CRC.
    CrcMismatch {
        index: usize,
        stored: u32,
        computed: u32,
    },
    /// A required section is absent.
    MissingSection(&'static str),
    /// A section carries no payload bytes. Every defined kind has a
    /// non-empty encoding, so an empty payload is always a producer bug or
    /// corruption; rejecting it here gives a clear error instead of a
    /// confusing downstream codec failure.
    EmptySection {
        index: usize,
        kind: &'static str,
    },
}

impl fmt::Display for ContainerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContainerError::Io(e) => write!(f, "container io error: {e}"),
            ContainerError::BadMagic => write!(f, "not a cypress container (bad magic)"),
            ContainerError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "container version {v} not supported (max {CONTAINER_VERSION})"
                )
            }
            ContainerError::Corrupt(e) => write!(f, "corrupt container: {e}"),
            ContainerError::CrcMismatch {
                index,
                stored,
                computed,
            } => write!(
                f,
                "section {index} crc mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            ContainerError::MissingSection(kind) => {
                write!(f, "container has no {kind} section")
            }
            ContainerError::EmptySection { index, kind } => {
                write!(f, "section {index} ({kind}) has a zero-length payload")
            }
        }
    }
}

impl std::error::Error for ContainerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ContainerError::Io(e) => Some(e),
            ContainerError::Corrupt(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ContainerError {
    fn from(e: std::io::Error) -> Self {
        ContainerError::Io(e)
    }
}

impl From<DecodeError> for ContainerError {
    fn from(e: DecodeError) -> Self {
        ContainerError::Corrupt(e)
    }
}

/// A whole container: world size plus framed sections in file order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Container {
    pub nprocs: u32,
    pub sections: Vec<Section>,
}

impl Container {
    pub fn new(nprocs: u32) -> Self {
        Container {
            nprocs,
            sections: Vec::new(),
        }
    }

    /// Append a section.
    pub fn push(&mut self, kind: SectionKind, rank: Option<u32>, payload: Vec<u8>) {
        self.sections.push(Section {
            kind,
            rank,
            payload,
        });
    }

    /// First section of `kind`, if any.
    pub fn find(&self, kind: SectionKind) -> Option<&Section> {
        self.sections.iter().find(|s| s.kind == kind)
    }

    /// All rank-scoped CTT sections, in file order.
    pub fn rank_sections(&self) -> impl Iterator<Item = &Section> {
        self.sections
            .iter()
            .filter(|s| s.kind == SectionKind::RankCtt)
    }

    /// Serialize: magic, version byte, then the varint-framed body.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::with_capacity(
            8 + self
                .sections
                .iter()
                .map(|s| s.payload.len() + 16)
                .sum::<usize>(),
        );
        enc.put_uvar(self.nprocs as u64);
        enc.put_uvar(self.sections.len() as u64);
        for s in &self.sections {
            enc.put_u8(s.kind.code());
            enc.put_uvar(s.rank.map(|r| r as u64 + 1).unwrap_or(0));
            enc.put_bytes(&s.payload);
            enc.put_uvar(crc32(&s.payload) as u64);
        }
        let mut out = Vec::with_capacity(5 + enc.len());
        out.extend_from_slice(&CONTAINER_MAGIC);
        out.push(CONTAINER_VERSION);
        out.extend_from_slice(&enc.finish());
        out
    }

    /// Parse and verify a container image (magic, version, framing, and
    /// every section CRC).
    pub fn from_bytes(buf: &[u8]) -> Result<Self, ContainerError> {
        if buf.len() < 5 || buf[..4] != CONTAINER_MAGIC {
            return Err(ContainerError::BadMagic);
        }
        let version = buf[4];
        if version == 0 || version > CONTAINER_VERSION {
            return Err(ContainerError::UnsupportedVersion(version));
        }
        let mut dec = Decoder::new(&buf[5..]);
        let nprocs = dec.get_uvar()? as u32;
        let nsections = dec.get_uvar()? as usize;
        if nsections > 1 << 24 {
            return Err(ContainerError::Corrupt(DecodeError(format!(
                "absurd section count {nsections}"
            ))));
        }
        let mut sections = Vec::with_capacity(nsections.min(1 << 12));
        for index in 0..nsections {
            let code = dec.get_u8()?;
            let kind = SectionKind::from_code(code).ok_or_else(|| {
                ContainerError::Corrupt(DecodeError(format!("bad section kind {code}")))
            })?;
            let rank_plus1 = dec.get_uvar()?;
            let rank = if rank_plus1 == 0 {
                None
            } else {
                Some((rank_plus1 - 1) as u32)
            };
            let payload = dec.get_bytes()?;
            if payload.is_empty() {
                return Err(ContainerError::EmptySection {
                    index,
                    kind: kind.name(),
                });
            }
            let stored = dec.get_uvar()? as u32;
            let computed = crc32(&payload);
            if stored != computed {
                if cypress_obs::enabled() {
                    obs().crc_failures.inc();
                }
                return Err(ContainerError::CrcMismatch {
                    index,
                    stored,
                    computed,
                });
            }
            sections.push(Section {
                kind,
                rank,
                payload,
            });
        }
        if !dec.is_done() {
            return Err(ContainerError::Corrupt(DecodeError(format!(
                "{} trailing bytes after container body",
                dec.remaining()
            ))));
        }
        Ok(Container { nprocs, sections })
    }

    /// Write atomically (temp sibling + rename). Refuses to persist a
    /// container any reader would reject (zero-length sections).
    pub fn write_file(&self, path: impl AsRef<Path>) -> Result<(), ContainerError> {
        if let Some((index, s)) = self
            .sections
            .iter()
            .enumerate()
            .find(|(_, s)| s.payload.is_empty())
        {
            return Err(ContainerError::EmptySection {
                index,
                kind: s.kind.name(),
            });
        }
        let bytes = self.to_bytes();
        cypress_obs::write_atomic(path.as_ref(), &bytes)?;
        if cypress_obs::enabled() {
            obs().bytes_written.add(bytes.len() as u64);
        }
        Ok(())
    }

    /// Read and verify a container file.
    pub fn read_file(path: impl AsRef<Path>) -> Result<Self, ContainerError> {
        let bytes = std::fs::read(path.as_ref())?;
        if cypress_obs::enabled() {
            obs().bytes_read.add(bytes.len() as u64);
        }
        Self::from_bytes(&bytes)
    }

    /// Total payload bytes across sections (excludes framing).
    pub fn payload_bytes(&self) -> usize {
        self.sections.iter().map(|s| s.payload.len()).sum()
    }
}

/// Does this byte prefix look like a container file?
pub fn is_container(prefix: &[u8]) -> bool {
    prefix.len() >= 4 && prefix[..4] == CONTAINER_MAGIC
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Container {
        let mut c = Container::new(8);
        c.push(SectionKind::Meta, None, b"meta-payload".to_vec());
        c.push(SectionKind::CstText, None, b"Root()".to_vec());
        c.push(SectionKind::MergedCtt, None, vec![1, 2, 3, 4, 5]);
        c.push(SectionKind::RankCtt, Some(0), vec![9, 9]);
        c.push(SectionKind::RankCtt, Some(7), vec![7; 100]);
        c
    }

    #[test]
    fn round_trip() {
        let c = sample();
        let back = Container::from_bytes(&c.to_bytes()).unwrap();
        assert_eq!(back, c);
        assert_eq!(back.nprocs, 8);
        assert_eq!(back.rank_sections().count(), 2);
        assert_eq!(
            back.find(SectionKind::CstText).unwrap().payload,
            b"Root()".to_vec()
        );
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            Container::from_bytes(&bytes),
            Err(ContainerError::BadMagic)
        ));
        assert!(!is_container(&bytes));
        assert!(matches!(
            Container::from_bytes(b"CY"),
            Err(ContainerError::BadMagic)
        ));
    }

    #[test]
    fn future_version_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[4] = CONTAINER_VERSION + 1;
        assert!(matches!(
            Container::from_bytes(&bytes),
            Err(ContainerError::UnsupportedVersion(_))
        ));
    }

    #[test]
    fn payload_corruption_fails_crc() {
        let c = sample();
        let clean = c.to_bytes();
        // Flip one byte inside the merged-ctt payload (find it by value).
        let pos = clean
            .windows(5)
            .position(|w| w == [1, 2, 3, 4, 5])
            .expect("payload present");
        let mut bytes = clean.clone();
        bytes[pos + 2] ^= 0xff;
        assert!(matches!(
            Container::from_bytes(&bytes),
            Err(ContainerError::CrcMismatch { .. })
        ));
    }

    #[test]
    fn truncation_is_corrupt_not_panic() {
        let bytes = sample().to_bytes();
        for cut in [5, 8, bytes.len() - 1] {
            let err = Container::from_bytes(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, ContainerError::Corrupt(_)),
                "cut {cut}: {err}"
            );
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = sample().to_bytes();
        bytes.push(0);
        assert!(matches!(
            Container::from_bytes(&bytes),
            Err(ContainerError::Corrupt(_))
        ));
    }

    #[test]
    fn zero_length_section_rejected_on_read_and_write() {
        let mut c = Container::new(2);
        c.push(SectionKind::Meta, None, b"m".to_vec());
        c.push(SectionKind::RankCtt, Some(1), Vec::new());
        let err = Container::from_bytes(&c.to_bytes()).unwrap_err();
        assert!(
            matches!(err, ContainerError::EmptySection { index: 1, kind } if kind == "rank-ctt"),
            "{err}"
        );
        assert!(err.to_string().contains("zero-length"), "{err}");
        // The writer refuses before touching the filesystem.
        let path = std::env::temp_dir().join(format!("cypress-empty-{}.cytc", std::process::id()));
        let werr = c.write_file(&path).unwrap_err();
        assert!(
            matches!(werr, ContainerError::EmptySection { .. }),
            "{werr}"
        );
        assert!(!path.exists());
    }

    #[test]
    fn file_round_trip_is_atomic_write() {
        let dir = std::env::temp_dir().join(format!("cypress-container-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("job.cytc");
        let c = sample();
        c.write_file(&path).unwrap();
        let back = Container::read_file(&path).unwrap();
        assert_eq!(back, c);
        // No temp litter.
        let names: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["job.cytc".to_owned()]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
