//! Work-stealing rank scheduler.
//!
//! The paper's dynamic module runs one compressor per MPI process; our
//! simulation multiplexes `P` simulated ranks onto a fixed pool of worker
//! threads. Earlier revisions chunked the rank range statically, which
//! stalls whole workers when rank workloads are skewed (edge vs interior
//! ranks of a stencil differ by 2x in event count). This scheduler instead
//! seeds per-worker deques with contiguous rank runs and lets idle workers
//! *steal* from the back of their neighbours' deques — rank order is
//! preserved within each worker's own run (good locality for the rank-order
//! merge that follows) while load imbalance is absorbed dynamically.
//!
//! Workers are spawned with large stacks ([`WORKER_STACK_BYTES`]) so the
//! MiniMPI interpreter's native recursion can run directly on the worker —
//! no per-rank thread spawn, unlike [`crate::driver::trace_rank`].

use cypress_obs::{Counter, Gauge};
use std::collections::VecDeque;
use std::sync::Mutex;
use std::sync::OnceLock;

/// Scheduler instrumentation handles (scope `sched`).
struct SchedMetrics {
    /// Rank tasks executed by the pool.
    tasks_run: Counter,
    /// Tasks obtained by stealing from another worker's deque.
    steals: Counter,
    /// Pools spun up.
    pools: Counter,
    /// High-water worker count of any pool.
    workers: Gauge,
}

fn obs() -> &'static SchedMetrics {
    static M: OnceLock<SchedMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let s = cypress_obs::scope("sched");
        SchedMetrics {
            tasks_run: s.counter("tasks_run"),
            steals: s.counter("steals"),
            pools: s.counter("pools"),
            workers: s.gauge("workers"),
        }
    })
}

/// Stack size for pool workers. Large enough for the interpreter's guarded
/// native recursion (same budget `trace_rank` gives its dedicated thread).
pub const WORKER_STACK_BYTES: usize = 64 * 1024 * 1024;

/// Run `f(rank)` for every rank in `0..nranks` on a pool of `workers`
/// threads and return the results in rank order.
///
/// Scheduling is work-stealing: worker `w` owns the `w`-th contiguous run of
/// ranks and pops from its front; when its deque drains it steals single
/// ranks from the *back* of the other deques. The function must therefore be
/// insensitive to execution order (tracing and compression are: ranks are
/// independent).
///
/// Panics in `f` propagate to the caller (the pool is a `std::thread::scope`).
pub fn run_ranks<T, F>(nranks: u32, workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u32) -> T + Sync,
{
    let n = nranks as usize;
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, n);
    if cypress_obs::enabled() {
        let m = obs();
        m.pools.inc();
        m.workers.set_max(workers as i64);
    }

    // Seed worker deques with contiguous rank runs.
    let chunk = n.div_ceil(workers);
    let queues: Vec<Mutex<VecDeque<u32>>> = (0..workers)
        .map(|w| {
            let lo = w * chunk;
            let hi = ((w + 1) * chunk).min(n);
            Mutex::new((lo..hi).map(|r| r as u32).collect())
        })
        .collect();
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for w in 0..workers {
            let queues = &queues;
            let results = &results;
            let f = &f;
            std::thread::Builder::new()
                .name(format!("cypress-sched-{w}"))
                .stack_size(WORKER_STACK_BYTES)
                .spawn_scoped(scope, move || loop {
                    // Own work first (front of own deque, preserving order)…
                    let mut next = queues[w].lock().expect("sched queue poisoned").pop_front();
                    if next.is_none() {
                        // …then steal one rank from the back of a victim.
                        for off in 1..queues.len() {
                            let victim = &queues[(w + off) % queues.len()];
                            if let Some(r) = victim.lock().expect("sched queue poisoned").pop_back()
                            {
                                if cypress_obs::enabled() {
                                    obs().steals.inc();
                                }
                                cypress_obs::trace_instant("sched", "steal", r as u64);
                                next = Some(r);
                                break;
                            }
                        }
                    }
                    let Some(rank) = next else {
                        cypress_obs::trace_instant("sched", "drain", 0);
                        return; // every deque drained — no new work arrives
                    };
                    cypress_obs::set_thread_rank(rank);
                    let out = f(rank);
                    cypress_obs::clear_thread_rank();
                    if cypress_obs::enabled() {
                        obs().tasks_run.inc();
                    }
                    *results[rank as usize]
                        .lock()
                        .expect("sched result slot poisoned") = Some(out);
                })
                .expect("spawn sched worker");
        }
    });

    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("sched result slot poisoned")
                .expect("every rank was executed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_rank_order() {
        for workers in [1, 2, 3, 7, 64] {
            let got = run_ranks(17, workers, |r| r * 10);
            assert_eq!(got, (0..17).map(|r| r * 10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn every_rank_runs_exactly_once() {
        let counts: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        run_ranks(100, 8, |r| {
            counts[r as usize].fetch_add(1, Ordering::SeqCst);
        });
        assert!(counts.iter().all(|c| c.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn skewed_work_is_stolen_not_serialized() {
        // Rank 0 is 50x heavier than the rest; with 2 workers the light
        // ranks must finish on the other worker. We can't assert timing in a
        // unit test, but we can assert correctness under heavy skew.
        let got = run_ranks(32, 2, |r| {
            let spin = if r == 0 { 500_000 } else { 10_000 };
            let mut acc = 0u64;
            for i in 0..spin {
                acc = acc.wrapping_mul(31).wrapping_add(i ^ r as u64);
            }
            std::hint::black_box(acc);
            r
        });
        assert_eq!(got, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn zero_ranks_is_empty() {
        let got: Vec<u32> = run_ranks(0, 4, |r| r);
        assert!(got.is_empty());
    }

    #[test]
    fn more_workers_than_ranks_is_fine() {
        let got = run_ranks(3, 16, |r| r + 1);
        assert_eq!(got, vec![1, 2, 3]);
    }
}
