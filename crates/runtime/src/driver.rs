//! SPMD tracing driver: run every rank's interpreter and collect raw traces.

use crate::interp::{EventSink, Interp, InterpConfig, RunResult, RuntimeError};
use cypress_cst::StaticInfo;
use cypress_minilang::ast::Program;
use cypress_obs::{obs_log, Level};
use cypress_trace::event::Event;
use cypress_trace::raw::RawTrace;

/// Trace a program for `nprocs` ranks, sequentially.
pub fn trace_program(
    prog: &Program,
    info: &StaticInfo,
    nprocs: u32,
    cfg: &InterpConfig,
) -> RunResult<Vec<RawTrace>> {
    (0..nprocs)
        .map(|r| trace_rank(prog, info, r, nprocs, cfg))
        .collect()
}

/// Trace a single rank.
///
/// The interpreter recurses natively per MiniMPI call frame, so this runs it
/// on a dedicated 64 MiB-stack thread — deep (but guarded) recursion then
/// behaves identically whether the caller is the main thread or a small
/// test-harness thread.
pub fn trace_rank(
    prog: &Program,
    info: &StaticInfo,
    rank: u32,
    nprocs: u32,
    cfg: &InterpConfig,
) -> RunResult<RawTrace> {
    std::thread::scope(|scope| {
        let handle = std::thread::Builder::new()
            .stack_size(64 * 1024 * 1024)
            .spawn_scoped(scope, || {
                cypress_obs::set_thread_rank(rank);
                let _t = cypress_obs::trace_span("interp", "rank");
                let mut events: Vec<Event> = Vec::new();
                let mut interp = Interp::new(prog, info, rank, nprocs, cfg.clone(), &mut events);
                let app_time = interp.run()?;
                Ok(RawTrace {
                    rank,
                    nprocs,
                    events,
                    app_time,
                })
            })
            .expect("spawn interpreter thread");
        handle
            .join()
            .map_err(|_| RuntimeError("interpreter thread panicked".into()))?
    })
}

/// Trace a program with ranks interpreted in parallel on a fixed
/// work-stealing worker pool (see [`crate::sched`]). Ranks are independent,
/// so this is a pure data-parallel map; the pool's workers carry large
/// stacks, so interpreters run directly on them with no per-rank thread.
pub fn trace_program_parallel(
    prog: &Program,
    info: &StaticInfo,
    nprocs: u32,
    cfg: &InterpConfig,
    threads: usize,
) -> RunResult<Vec<RawTrace>> {
    let threads = threads.max(1).min(nprocs.max(1) as usize);
    obs_log!(
        Level::Info,
        "interp",
        "tracing {nprocs} ranks on {threads} worker(s)"
    );
    crate::sched::run_ranks(nprocs, threads, |rank| {
        let _t = cypress_obs::trace_span("interp", "rank");
        let mut events: Vec<Event> = Vec::new();
        let mut interp = Interp::new(prog, info, rank, nprocs, cfg.clone(), &mut events);
        let app_time = interp.run()?;
        Ok(RawTrace {
            rank,
            nprocs,
            events,
            app_time,
        })
    })
    .into_iter()
    .collect()
}

/// Run one rank against a caller-provided sink (e.g. an online compressor);
/// returns the total virtual app time.
pub fn run_rank_with_sink<S: EventSink>(
    prog: &Program,
    info: &StaticInfo,
    rank: u32,
    nprocs: u32,
    cfg: &InterpConfig,
    sink: &mut S,
) -> RunResult<u64> {
    let mut interp = Interp::new(prog, info, rank, nprocs, cfg.clone(), sink);
    interp.run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{has_op, well_nested};
    use cypress_cst::analyze_program;
    use cypress_minilang::{check_program, parse};
    use cypress_trace::event::{MpiOp, ANY_SOURCE};

    fn trace(src: &str, nprocs: u32) -> Vec<RawTrace> {
        let p = parse(src).unwrap();
        check_program(&p).unwrap();
        let info = analyze_program(&p);
        trace_program(&p, &info, nprocs, &InterpConfig::default()).unwrap()
    }

    const JACOBI: &str = r#"
        fn main() {
            let r = rank();
            let s = size();
            for k in 0..5 {
                if r < s - 1 { send(r + 1, 1024, 0); }
                if r > 0 { recv(r - 1, 1024, 0); }
                if r > 0 { send(r - 1, 1024, 1); }
                if r < s - 1 { recv(r + 1, 1024, 1); }
                compute(500);
            }
        }
    "#;

    #[test]
    fn jacobi_event_counts_match_rank_position() {
        let ts = trace(JACOBI, 4);
        // Interior ranks do 4 ops per step; edges do 2.
        assert_eq!(ts[0].mpi_count(), 10);
        assert_eq!(ts[1].mpi_count(), 20);
        assert_eq!(ts[2].mpi_count(), 20);
        assert_eq!(ts[3].mpi_count(), 10);
    }

    #[test]
    fn jacobi_events_well_nested_and_clocked() {
        let ts = trace(JACOBI, 4);
        for t in &ts {
            assert!(well_nested(&t.events));
            assert!(t.app_time > 0);
            // Timestamps are monotone.
            let mut last = 0;
            for r in t.mpi_records() {
                assert!(r.t_start >= last);
                last = r.t_start + r.dur;
            }
        }
    }

    #[test]
    fn structure_events_reference_cst_gids() {
        let p = parse(JACOBI).unwrap();
        check_program(&p).unwrap();
        let info = analyze_program(&p);
        let ts = trace_program(&p, &info, 4, &InterpConfig::default()).unwrap();
        let n = info.cst.len() as u32;
        for t in &ts {
            for e in &t.events {
                match e {
                    Event::Enter { gid } | Event::Exit { gid } => assert!(*gid < n),
                    Event::Mpi(r) => assert!(r.gid > 0 && r.gid < n),
                }
            }
        }
    }

    #[test]
    fn loop_iterations_emit_enter_per_iteration() {
        let ts = trace("fn main() { for i in 0..7 { barrier(); } }", 1);
        let enters = ts[0]
            .events
            .iter()
            .filter(|e| matches!(e, Event::Enter { .. }))
            .count();
        let exits = ts[0]
            .events
            .iter()
            .filter(|e| matches!(e, Event::Exit { .. }))
            .count();
        assert_eq!(enters, 7);
        assert_eq!(exits, 1);
    }

    #[test]
    fn zero_iteration_loop_emits_exit_only() {
        let ts = trace("fn main() { for i in 0..0 { barrier(); } bcast(0, 8); }", 1);
        let enters = ts[0]
            .events
            .iter()
            .filter(|e| matches!(e, Event::Enter { .. }))
            .count();
        let exits = ts[0]
            .events
            .iter()
            .filter(|e| matches!(e, Event::Exit { .. }))
            .count();
        assert_eq!(enters, 0);
        assert_eq!(exits, 1);
    }

    #[test]
    fn async_requests_map_to_posting_gids() {
        let ts = trace(
            r#"fn main() {
                let a = isend((rank() + 1) % size(), 64, 0);
                let b = irecv(any_source(), 64, 0);
                waitall(a, b);
            }"#,
            2,
        );
        let recs: Vec<_> = ts[0].mpi_only();
        assert_eq!(recs.len(), 3);
        let isend_gid = recs[0].gid;
        let irecv_gid = recs[1].gid;
        assert_eq!(recs[2].op, MpiOp::Waitall);
        assert_eq!(recs[2].params.req_gids, vec![isend_gid, irecv_gid]);
        assert_eq!(recs[1].params.src, ANY_SOURCE);
    }

    #[test]
    fn missing_wait_is_an_error() {
        let p = parse("fn main() { let a = isend(0, 8, 0); }").unwrap();
        check_program(&p).unwrap();
        let info = analyze_program(&p);
        assert!(trace_program(&p, &info, 1, &InterpConfig::default()).is_err());
    }

    #[test]
    fn out_of_range_peer_is_an_error() {
        let p = parse("fn main() { send(rank() + 1, 8, 0); }").unwrap();
        check_program(&p).unwrap();
        let info = analyze_program(&p);
        // Last rank sends to `size()`, which does not exist.
        assert!(trace_program(&p, &info, 2, &InterpConfig::default()).is_err());
    }

    #[test]
    fn step_budget_stops_runaway_loops() {
        let p = parse("fn main() { let i = 0; while i >= 0 { i = i + 1; } }").unwrap();
        check_program(&p).unwrap();
        let info = analyze_program(&p);
        let cfg = InterpConfig {
            max_steps: 10_000,
            ..InterpConfig::default()
        };
        assert!(trace_program(&p, &info, 1, &cfg).is_err());
    }

    #[test]
    fn recursion_emits_pseudo_loop_iterations() {
        let src = r#"
            fn walk(n) {
                if n > 0 {
                    bcast(0, 8);
                    walk(n - 1);
                }
            }
            fn main() { walk(4); }
        "#;
        let ts = trace(src, 1);
        let enters = ts[0]
            .events
            .iter()
            .filter(|e| matches!(e, Event::Enter { .. }))
            .count();
        // 4 invocations with n>0 plus the final n==0 invocation = 5
        // pseudo-loop iterations; each n>0 iteration also enters its branch
        // arm: 5 + 4 = 9.
        assert_eq!(enters, 9);
        assert!(has_op(&ts[0].events, MpiOp::Bcast));
        assert_eq!(ts[0].mpi_count(), 4);
    }

    #[test]
    fn parallel_driver_matches_sequential() {
        let p = parse(JACOBI).unwrap();
        check_program(&p).unwrap();
        let info = analyze_program(&p);
        let cfg = InterpConfig::default();
        let seq = trace_program(&p, &info, 8, &cfg).unwrap();
        let par = trace_program_parallel(&p, &info, 8, &cfg, 3).unwrap();
        assert_eq!(seq, par);
    }

    #[test]
    fn int_returning_functions_flow_values() {
        let ts = trace(
            r#"
            fn next(r) { return (r + 1) % size(); }
            fn main() { send(next(rank()), 16, 0); recv(any_source(), 16, 0); }
            "#,
            3,
        );
        assert_eq!(ts[2].mpi_only()[0].params.dest, 0);
    }

    #[test]
    fn sendrecv_and_allgather_trace_correctly() {
        let ts = trace(
            r#"fn main() {
                let nxt = (rank() + 1) % size();
                let prv = (rank() + size() - 1) % size();
                sendrecv(nxt, 512, 3, prv, 512, 3);
                allgather(128);
            }"#,
            4,
        );
        let recs = ts[1].mpi_only();
        assert_eq!(recs[0].op, MpiOp::Sendrecv);
        assert_eq!(recs[0].params.dest, 2);
        assert_eq!(recs[0].params.src, 0);
        assert_eq!(recs[0].params.rcount, 512);
        assert_eq!(recs[1].op, MpiOp::Allgather);
    }

    #[test]
    fn deep_recursion_hits_stack_guard() {
        let src = r#"
            fn spin(n) { if n > 0 { barrier(); spin(n - 1); } }
            fn main() { spin(100000); }
        "#;
        let p = parse(src).unwrap();
        check_program(&p).unwrap();
        let info = analyze_program(&p);
        let cfg = InterpConfig::default();
        // Either the stack guard or the step budget fires; never a crash.
        assert!(trace_program(&p, &info, 1, &cfg).is_err());
    }

    #[test]
    fn mutual_recursion_traces_pseudo_loops() {
        let src = r#"
            fn ping(n) { if n > 0 { send(1, 8, 0); pong(n - 1); } }
            fn pong(n) { if n > 0 { recv(1, 8, 0); ping(n - 1); } }
            fn main() { if rank() == 0 { ping(6); } }
        "#;
        let ts = trace(src, 2);
        // Rank 0 alternates 3 sends and 3 recvs.
        assert_eq!(ts[0].mpi_count(), 6);
        assert!(well_nested(&ts[0].events));
        assert_eq!(ts[1].mpi_count(), 0);
    }

    #[test]
    fn division_by_zero_caught() {
        let p = parse("fn main() { compute(1 / (rank() - rank())); }").unwrap();
        check_program(&p).unwrap();
        let info = analyze_program(&p);
        assert!(trace_program(&p, &info, 1, &InterpConfig::default()).is_err());
    }
}
