//! Per-rank interpreter for instrumented MiniMPI programs.
//!
//! Plays the role of the paper's "customized MPI communication library":
//! it executes one process's view of the SPMD program, emitting structure
//! enter/exit events (the `PMPI_COMM_Structure` calls) and MPI records into
//! an [`EventSink`]. Ranks interpret independently — MiniMPI control flow
//! never depends on message payloads — so tracing `P` processes is `P`
//! independent runs; message *matching* happens later in `cypress-simmpi`.
//!
//! Request handles are mapped to the GID of their posting operation
//! (paper §IV-A, Fig. 12): `wait`/`waitall` records carry the posting GIDs
//! in `params.req_gids`, which lets decompression re-pair them.

use cypress_cst::sitemap::{CallAction, PathId, ROOT_PATH};
use cypress_cst::tree::Arm;
use cypress_cst::StaticInfo;
use cypress_minilang::ast::*;
use cypress_obs::{Counter, Gauge};
use cypress_trace::event::{Event, MpiOp, MpiParams, MpiRecord, ANY_SOURCE, NONE};
use std::collections::HashMap;
use std::fmt;
use std::sync::OnceLock;

/// Interpreter instrumentation handles (scope `interp`), shared by all ranks.
struct InterpMetrics {
    /// Structure enter/exit + MPI events handed to the sink.
    events_emitted: Counter,
    /// High-water mark of the live request-handle → GID table.
    req_table_high_water: Gauge,
}

fn obs() -> &'static InterpMetrics {
    static M: OnceLock<InterpMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let s = cypress_obs::scope("interp");
        InterpMetrics {
            events_emitted: s.counter("events_emitted"),
            req_table_high_water: s.gauge("req_table_high_water"),
        }
    })
}

/// Runtime failure (arithmetic fault, budget exhaustion, internal error).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuntimeError(pub String);

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "runtime error: {}", self.0)
    }
}

impl std::error::Error for RuntimeError {}

pub type RunResult<T> = Result<T, RuntimeError>;

pub use cypress_trace::event::EventSink;

/// Interpreter configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct InterpConfig {
    /// Hard budget on executed statements+expressions, to bound runaway
    /// `while` loops (important for randomly generated programs).
    pub max_steps: u64,
    /// Virtual nanoseconds per `compute(1)` unit.
    pub ns_per_compute_unit: u64,
    /// Fixed per-operation software overhead (ns) in the local time model.
    pub op_overhead_ns: u64,
    /// Additional ns per payload byte in the local time model.
    pub ns_per_byte_x1000: u64,
}

impl Default for InterpConfig {
    fn default() -> Self {
        InterpConfig {
            max_steps: 200_000_000,
            ns_per_compute_unit: 1,
            op_overhead_ns: 1_000,
            // 0.4 ns/byte ≈ 2.5 GB/s effective local copy bandwidth.
            ns_per_byte_x1000: 400,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Value {
    Int(i64),
    Bool(bool),
    Req(u64),
}

impl Value {
    fn as_int(&self) -> RunResult<i64> {
        match self {
            Value::Int(v) => Ok(*v),
            other => Err(RuntimeError(format!("expected int, got {other:?}"))),
        }
    }

    fn as_bool(&self) -> RunResult<bool> {
        match self {
            Value::Bool(v) => Ok(*v),
            other => Err(RuntimeError(format!("expected bool, got {other:?}"))),
        }
    }

    fn as_req(&self) -> RunResult<u64> {
        match self {
            Value::Req(v) => Ok(*v),
            other => Err(RuntimeError(format!("expected request, got {other:?}"))),
        }
    }
}

struct Frame {
    scopes: Vec<HashMap<String, Value>>,
    path: PathId,
}

/// One rank's interpreter.
pub struct Interp<'a, S: EventSink> {
    prog: &'a Program,
    info: &'a StaticInfo,
    sink: &'a mut S,
    rank: i64,
    nprocs: i64,
    cfg: InterpConfig,
    frames: Vec<Frame>,
    clock: u64,
    steps: u64,
    next_req: u64,
    /// Live request id → GID of the posting operation.
    req_gids: HashMap<u64, u32>,
    /// Recursion depth per pseudo-loop GID (for Exit-at-outermost).
    rec_depth: HashMap<u32, u32>,
    /// Monotone counter mixed into synthetic op durations.
    op_seq: u64,
}

impl<'a, S: EventSink> Interp<'a, S> {
    pub fn new(
        prog: &'a Program,
        info: &'a StaticInfo,
        rank: u32,
        nprocs: u32,
        cfg: InterpConfig,
        sink: &'a mut S,
    ) -> Self {
        Interp {
            prog,
            info,
            sink,
            rank: rank as i64,
            nprocs: nprocs as i64,
            cfg,
            frames: Vec::new(),
            clock: 0,
            steps: 0,
            next_req: 1,
            req_gids: HashMap::new(),
            rec_depth: HashMap::new(),
            op_seq: 0,
        }
    }

    /// Run `main` to completion; returns total virtual time (ns).
    pub fn run(&mut self) -> RunResult<u64> {
        let main = self
            .prog
            .main()
            .ok_or_else(|| RuntimeError("no main function".into()))?;
        self.frames.push(Frame {
            scopes: vec![HashMap::new()],
            path: ROOT_PATH,
        });
        self.exec_block(&main.body)?;
        self.frames.pop();
        if !self.req_gids.is_empty() {
            return Err(RuntimeError(format!(
                "{} request(s) never completed (missing wait)",
                self.req_gids.len()
            )));
        }
        Ok(self.clock)
    }

    fn tick(&mut self) -> RunResult<()> {
        self.steps += 1;
        if self.steps > self.cfg.max_steps {
            return Err(RuntimeError(format!(
                "step budget of {} exhausted (runaway loop?)",
                self.cfg.max_steps
            )));
        }
        Ok(())
    }

    fn frame(&mut self) -> &mut Frame {
        self.frames.last_mut().expect("frame stack never empty")
    }

    fn path(&self) -> PathId {
        self.frames.last().expect("frame stack never empty").path
    }

    fn lookup(&self, name: &str) -> RunResult<Value> {
        let f = self.frames.last().expect("frame stack never empty");
        for scope in f.scopes.iter().rev() {
            if let Some(v) = scope.get(name) {
                return Ok(*v);
            }
        }
        Err(RuntimeError(format!("undefined variable `{name}`")))
    }

    fn assign(&mut self, name: &str, v: Value) -> RunResult<()> {
        let f = self.frames.last_mut().expect("frame stack never empty");
        for scope in f.scopes.iter_mut().rev() {
            if let Some(slot) = scope.get_mut(name) {
                *slot = v;
                return Ok(());
            }
        }
        Err(RuntimeError(format!("assignment to undefined `{name}`")))
    }

    fn declare(&mut self, name: &str, v: Value) {
        self.frame()
            .scopes
            .last_mut()
            .expect("scope stack never empty")
            .insert(name.to_owned(), v);
    }

    /// Execute a block; `Ok(Some(v))` signals a `return`.
    fn exec_block(&mut self, b: &Block) -> RunResult<Option<Value>> {
        self.frame().scopes.push(HashMap::new());
        let r = self.exec_stmts(&b.stmts);
        self.frame().scopes.pop();
        r
    }

    fn exec_stmts(&mut self, stmts: &[Stmt]) -> RunResult<Option<Value>> {
        for s in stmts {
            if let Some(v) = self.exec_stmt(s)? {
                return Ok(Some(v));
            }
        }
        Ok(None)
    }

    fn exec_stmt(&mut self, s: &Stmt) -> RunResult<Option<Value>> {
        self.tick()?;
        match &s.kind {
            StmtKind::Let { name, init } => {
                let v = self.eval(init)?;
                self.declare(name, v);
                Ok(None)
            }
            StmtKind::Assign { name, value } => {
                let v = self.eval(value)?;
                self.assign(name, v)?;
                Ok(None)
            }
            StmtKind::Expr { expr } => {
                self.eval(expr)?;
                Ok(None)
            }
            StmtKind::Return { value } => {
                let v = match value {
                    Some(e) => self.eval(e)?,
                    None => Value::Int(0),
                };
                Ok(Some(v))
            }
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                let taken = self.eval(cond)?.as_bool()?;
                let path = self.path();
                let (blk, arm) = if taken {
                    (Some(then_blk), Arm::Then)
                } else {
                    (else_blk.as_ref(), Arm::Else)
                };
                let gid = self.info.sitemap.branch_gid(path, s.id, arm);
                if let Some(g) = gid {
                    self.emit(Event::Enter { gid: g.0 });
                }
                let r = match blk {
                    Some(b) => self.exec_block(b)?,
                    None => None,
                };
                if let Some(g) = gid {
                    self.emit(Event::Exit { gid: g.0 });
                }
                Ok(r)
            }
            StmtKind::For {
                var,
                start,
                end,
                step,
                body,
            } => {
                let start = self.eval(start)?.as_int()?;
                let end = self.eval(end)?.as_int()?;
                let step = match step {
                    Some(e) => self.eval(e)?.as_int()?,
                    None => 1,
                };
                if step == 0 {
                    return Err(RuntimeError("`for` loop with step 0".into()));
                }
                let gid = self.info.sitemap.loop_gid(self.path(), s.id);
                let mut i = start;
                let mut ret = None;
                while (step > 0 && i < end) || (step < 0 && i > end) {
                    self.tick()?;
                    if let Some(g) = gid {
                        self.emit(Event::Enter { gid: g.0 });
                    }
                    self.frame().scopes.push(HashMap::new());
                    self.declare(var, Value::Int(i));
                    let r = self.exec_stmts(&body.stmts);
                    self.frame().scopes.pop();
                    if let Some(v) = r? {
                        ret = Some(v);
                        break;
                    }
                    i += step;
                }
                if let Some(g) = gid {
                    self.emit(Event::Exit { gid: g.0 });
                }
                Ok(ret)
            }
            StmtKind::While { cond, body } => {
                let gid = self.info.sitemap.loop_gid(self.path(), s.id);
                let mut ret = None;
                while self.eval(cond)?.as_bool()? {
                    self.tick()?;
                    if let Some(g) = gid {
                        self.emit(Event::Enter { gid: g.0 });
                    }
                    if let Some(v) = self.exec_block(body)? {
                        ret = Some(v);
                        break;
                    }
                }
                if let Some(g) = gid {
                    self.emit(Event::Exit { gid: g.0 });
                }
                Ok(ret)
            }
        }
    }

    fn eval(&mut self, e: &Expr) -> RunResult<Value> {
        self.tick()?;
        match &e.kind {
            ExprKind::Int(v) => Ok(Value::Int(*v)),
            ExprKind::Bool(v) => Ok(Value::Bool(*v)),
            ExprKind::Var(n) => self.lookup(n),
            ExprKind::Unary(op, inner) => {
                let v = self.eval(inner)?;
                match op {
                    UnOp::Neg => Ok(Value::Int(
                        v.as_int()?
                            .checked_neg()
                            .ok_or_else(|| RuntimeError("negation overflow".into()))?,
                    )),
                    UnOp::Not => Ok(Value::Bool(!v.as_bool()?)),
                }
            }
            ExprKind::Binary(op, l, r) => self.eval_binary(*op, l, r),
            ExprKind::Call(c) => self.eval_call(e, c),
        }
    }

    fn eval_binary(&mut self, op: BinOp, l: &Expr, r: &Expr) -> RunResult<Value> {
        // Short-circuit logical operators.
        if op == BinOp::And {
            return Ok(Value::Bool(
                self.eval(l)?.as_bool()? && self.eval(r)?.as_bool()?,
            ));
        }
        if op == BinOp::Or {
            return Ok(Value::Bool(
                self.eval(l)?.as_bool()? || self.eval(r)?.as_bool()?,
            ));
        }
        let a = self.eval(l)?.as_int()?;
        let b = self.eval(r)?.as_int()?;
        let arith = |v: Option<i64>| {
            v.map(Value::Int)
                .ok_or_else(|| RuntimeError("integer overflow".into()))
        };
        match op {
            BinOp::Add => arith(a.checked_add(b)),
            BinOp::Sub => arith(a.checked_sub(b)),
            BinOp::Mul => arith(a.checked_mul(b)),
            BinOp::Div => {
                if b == 0 {
                    Err(RuntimeError("division by zero".into()))
                } else {
                    arith(a.checked_div(b))
                }
            }
            BinOp::Rem => {
                if b == 0 {
                    Err(RuntimeError("remainder by zero".into()))
                } else {
                    arith(a.checked_rem(b))
                }
            }
            BinOp::Eq => Ok(Value::Bool(a == b)),
            BinOp::Ne => Ok(Value::Bool(a != b)),
            BinOp::Lt => Ok(Value::Bool(a < b)),
            BinOp::Le => Ok(Value::Bool(a <= b)),
            BinOp::Gt => Ok(Value::Bool(a > b)),
            BinOp::Ge => Ok(Value::Bool(a >= b)),
            BinOp::And | BinOp::Or => unreachable!("handled above"),
        }
    }

    fn eval_call(&mut self, e: &Expr, c: &Call) -> RunResult<Value> {
        match &c.callee {
            Callee::User(name) => {
                let args: Vec<Value> = c
                    .args
                    .iter()
                    .map(|a| self.eval(a))
                    .collect::<RunResult<_>>()?;
                self.call_user(name, e.id, args)
            }
            Callee::Builtin(b) => self.eval_builtin(e, *b, c),
        }
    }

    fn call_user(&mut self, name: &str, call_expr: NodeId, args: Vec<Value>) -> RunResult<Value> {
        let fidx = self
            .prog
            .func_index(name)
            .ok_or_else(|| RuntimeError(format!("call to undefined `{name}`")))?;
        let func = &self.prog.funcs[fidx];
        if func.params.len() != args.len() {
            return Err(RuntimeError(format!("arity mismatch calling `{name}`")));
        }
        // The interpreter recurses natively per MiniMPI frame (~a dozen
        // native frames each); the driver gives it a 64 MiB stack, which
        // comfortably fits this guard even in debug builds.
        if self.frames.len() > 2_000 {
            return Err(RuntimeError("call stack overflow".into()));
        }

        let cur_path = self.path();
        let action = self.info.sitemap.call_action(cur_path, call_expr);
        let (new_path, enter_pseudo, exit_pseudo) = match action {
            None => (cur_path, None, None),
            Some(CallAction::Inline { path }) => (path, None, None),
            Some(CallAction::EnterRecursive { pseudo, path }) => {
                // Each invocation of a recursive function is one iteration of
                // its pseudo loop; the Exit fires when the *outermost*
                // invocation returns (tracked via rec_depth).
                (path, pseudo, pseudo)
            }
            Some(CallAction::BackCall { pseudo, path }) => (path, pseudo, None),
        };
        if let Some(g) = enter_pseudo {
            let d = self.rec_depth.entry(g.0).or_insert(0);
            *d += 1;
            self.emit(Event::Enter { gid: g.0 });
        }

        let mut scope = HashMap::new();
        for (p, v) in func.params.iter().zip(args) {
            scope.insert(p.clone(), v);
        }
        self.frames.push(Frame {
            scopes: vec![scope],
            path: new_path,
        });
        let ret = self.exec_block(&func.body);
        self.frames.pop();
        let ret = ret?;

        if let Some(g) = enter_pseudo {
            let d = self
                .rec_depth
                .get_mut(&g.0)
                .expect("depth incremented on entry");
            *d -= 1;
            let depth_now = *d;
            if depth_now == 0 {
                self.rec_depth.remove(&g.0);
            }
            // Only the outermost EnterRecursive emits the Exit; BackCall
            // invocations (exit_pseudo == None) never do.
            if exit_pseudo.is_some() && depth_now == 0 {
                self.emit(Event::Exit { gid: g.0 });
            }
        }
        Ok(ret.unwrap_or(Value::Int(0)))
    }

    /// Synthetic duration for an MPI operation: overhead + size term + a
    /// small deterministic jitter so merged records have non-trivial time
    /// statistics.
    fn op_duration(&mut self, bytes: i64) -> u64 {
        self.op_seq += 1;
        let jitter = {
            // xorshift of (rank, op_seq) — deterministic across runs.
            let mut x = (self.rank as u64 + 1).wrapping_mul(0x9e3779b97f4a7c15)
                ^ self.op_seq.wrapping_mul(0xbf58476d1ce4e5b9);
            x ^= x >> 31;
            x = x.wrapping_mul(0x94d049bb133111eb);
            x ^= x >> 29;
            x % (self.cfg.op_overhead_ns / 4 + 1)
        };
        self.cfg.op_overhead_ns + (bytes.max(0) as u64 * self.cfg.ns_per_byte_x1000) / 1000 + jitter
    }

    /// Single funnel for all sink events, so the interpreter can account for
    /// its own emission volume (`interp/events_emitted`).
    fn emit(&mut self, ev: Event) {
        if cypress_obs::enabled() {
            obs().events_emitted.inc();
        }
        self.sink.event(ev);
    }

    fn note_req_high_water(&self) {
        if cypress_obs::enabled() {
            obs()
                .req_table_high_water
                .set_max(self.req_gids.len() as i64);
        }
    }

    fn record(&mut self, gid: u32, op: MpiOp, params: MpiParams) {
        let bytes = params.count.max(0) + params.rcount.max(0);
        let dur = self.op_duration(bytes);
        let rec = MpiRecord {
            gid,
            op,
            params,
            t_start: self.clock,
            dur,
        };
        self.clock += dur;
        self.emit(Event::Mpi(rec));
    }

    fn eval_builtin(&mut self, e: &Expr, b: Builtin, c: &Call) -> RunResult<Value> {
        // Evaluate arguments first (left to right), as the checker promises.
        let mut args: Vec<Value> = Vec::with_capacity(c.args.len());
        for a in &c.args {
            args.push(self.eval(a)?);
        }
        let int = |i: usize| -> RunResult<i64> { args[i].as_int() };
        let gid = self
            .info
            .sitemap
            .mpi_gid(self.path(), e.id)
            .map(|g| g.0)
            .unwrap_or(0);

        match b {
            Builtin::Rank => Ok(Value::Int(self.rank)),
            Builtin::Size => Ok(Value::Int(self.nprocs)),
            Builtin::AnySource => Ok(Value::Int(ANY_SOURCE)),
            Builtin::Compute => {
                let units = int(0)?.max(0) as u64;
                let base = units * self.cfg.ns_per_compute_unit;
                // Real computation phases vary run to run (cache effects, OS
                // noise); add a deterministic ±6% wobble so merged records
                // carry non-trivial gap statistics (and trace-driven
                // prediction shows realistic error, as in Fig. 21).
                self.op_seq += 1;
                let mut x = (self.rank as u64 + 17).wrapping_mul(0x9e3779b97f4a7c15)
                    ^ self.op_seq.wrapping_mul(0xd6e8feb86659fd93);
                x ^= x >> 32;
                let wobble_pct = (x % 13) as i64 - 6; // -6..=6
                let adj = (base as i128 * wobble_pct as i128 / 100) as i64;
                self.clock = self.clock.saturating_add((base as i64 + adj).max(0) as u64);
                Ok(Value::Int(0))
            }
            Builtin::Send => {
                let (dest, count, tag) = (int(0)?, int(1)?, int(2)?);
                self.check_peer(dest, "send destination")?;
                self.record(gid, MpiOp::Send, MpiParams::send(dest, count, tag));
                Ok(Value::Int(0))
            }
            Builtin::Recv => {
                let (src, count, tag) = (int(0)?, int(1)?, int(2)?);
                self.check_src(src)?;
                self.record(gid, MpiOp::Recv, MpiParams::recv(src, count, tag));
                Ok(Value::Int(0))
            }
            Builtin::Isend => {
                let (dest, count, tag) = (int(0)?, int(1)?, int(2)?);
                self.check_peer(dest, "isend destination")?;
                let req = self.next_req;
                self.next_req += 1;
                self.req_gids.insert(req, gid);
                self.note_req_high_water();
                self.record(gid, MpiOp::Isend, MpiParams::send(dest, count, tag));
                Ok(Value::Req(req))
            }
            Builtin::Irecv => {
                let (src, count, tag) = (int(0)?, int(1)?, int(2)?);
                self.check_src(src)?;
                let req = self.next_req;
                self.next_req += 1;
                self.req_gids.insert(req, gid);
                self.note_req_high_water();
                self.record(gid, MpiOp::Irecv, MpiParams::recv(src, count, tag));
                Ok(Value::Req(req))
            }
            Builtin::Wait => {
                let req = args[0].as_req()?;
                let post_gid = self
                    .req_gids
                    .remove(&req)
                    .ok_or_else(|| RuntimeError("wait on unknown/completed request".into()))?;
                self.record(gid, MpiOp::Wait, MpiParams::completion(vec![post_gid]));
                Ok(Value::Int(0))
            }
            Builtin::Waitall => {
                let mut gids = Vec::with_capacity(args.len());
                for a in &args {
                    let req = a.as_req()?;
                    let post_gid = self.req_gids.remove(&req).ok_or_else(|| {
                        RuntimeError("waitall on unknown/completed request".into())
                    })?;
                    gids.push(post_gid);
                }
                self.record(gid, MpiOp::Waitall, MpiParams::completion(gids));
                Ok(Value::Int(0))
            }
            Builtin::Waitany => {
                // Partial completion (§IV-A): exactly one of the listed
                // requests completes. Which one is non-deterministic in real
                // MPI; this runtime deterministically completes the first
                // still-outstanding request in argument order, and the trace
                // records the completed request's posting GID so replay can
                // re-pair it.
                let mut completed = None;
                for a in &args {
                    let req = a.as_req()?;
                    if let Some(post_gid) = self.req_gids.remove(&req) {
                        completed = Some(post_gid);
                        break;
                    }
                }
                let post_gid = completed
                    .ok_or_else(|| RuntimeError("waitany with no outstanding request".into()))?;
                self.record(gid, MpiOp::Waitany, MpiParams::completion(vec![post_gid]));
                Ok(Value::Int(0))
            }
            Builtin::Barrier => {
                self.record(gid, MpiOp::Barrier, MpiParams::collective(0));
                Ok(Value::Int(0))
            }
            Builtin::Bcast => {
                let (root, count) = (int(0)?, int(1)?);
                self.check_peer(root, "bcast root")?;
                self.record(gid, MpiOp::Bcast, MpiParams::rooted(root, count));
                Ok(Value::Int(0))
            }
            Builtin::Reduce => {
                let (root, count) = (int(0)?, int(1)?);
                self.check_peer(root, "reduce root")?;
                self.record(gid, MpiOp::Reduce, MpiParams::rooted(root, count));
                Ok(Value::Int(0))
            }
            Builtin::Allreduce => {
                self.record(gid, MpiOp::Allreduce, MpiParams::collective(int(0)?));
                Ok(Value::Int(0))
            }
            Builtin::Alltoall => {
                self.record(gid, MpiOp::Alltoall, MpiParams::collective(int(0)?));
                Ok(Value::Int(0))
            }
            Builtin::Allgather => {
                self.record(gid, MpiOp::Allgather, MpiParams::collective(int(0)?));
                Ok(Value::Int(0))
            }
            Builtin::Sendrecv => {
                let (dest, count, tag) = (int(0)?, int(1)?, int(2)?);
                let (src, rcount, rtag) = (int(3)?, int(4)?, int(5)?);
                self.check_peer(dest, "sendrecv destination")?;
                self.check_src(src)?;
                self.record(
                    gid,
                    MpiOp::Sendrecv,
                    MpiParams::sendrecv(dest, count, tag, src, rcount, rtag),
                );
                Ok(Value::Int(0))
            }
        }
    }

    fn check_peer(&self, r: i64, what: &str) -> RunResult<()> {
        if r < 0 || r >= self.nprocs {
            return Err(RuntimeError(format!(
                "{what} {r} out of range 0..{} on rank {}",
                self.nprocs, self.rank
            )));
        }
        Ok(())
    }

    fn check_src(&self, r: i64) -> RunResult<()> {
        if r == ANY_SOURCE {
            return Ok(());
        }
        self.check_peer(r, "receive source")
    }

    /// Virtual time accumulated so far.
    pub fn clock(&self) -> u64 {
        self.clock
    }
}

/// Convenience: does this event sequence carry a given MPI op?
pub fn has_op(events: &[Event], op: MpiOp) -> bool {
    events
        .iter()
        .any(|e| matches!(e, Event::Mpi(r) if r.op == op))
}

/// Check an event stream's structural sanity: every `Exit` matches the most
/// recent unmatched `Enter`-ed structure *or* closes an enclosing loop whose
/// iterations re-`Enter` (the protocol of §IV-A). Used by tests.
pub fn well_nested(events: &[Event]) -> bool {
    let mut stack: Vec<u32> = Vec::new();
    for e in events {
        match e {
            Event::Enter { gid } => {
                // Loop iterations re-enter the same gid: collapse.
                if stack.last() != Some(gid) {
                    stack.push(*gid);
                }
            }
            Event::Exit { gid } => {
                // Pop until we close `gid`.
                loop {
                    match stack.pop() {
                        Some(g) if g == *gid => break,
                        Some(_) => continue,
                        None => return false,
                    }
                }
            }
            Event::Mpi(_) => {}
        }
    }
    true
}

#[allow(unused)]
fn _static_assert_none_is_distinct() {
    // ANY_SOURCE and NONE must stay distinct for `check_src`.
    const _: () = assert!(ANY_SOURCE != NONE);
}
