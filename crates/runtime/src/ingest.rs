//! Pipelined ingest: interpreters produce, compression consumes, a bounded
//! [`ring`](crate::ring) per rank sits between them.
//!
//! The sequential path runs `interpret → compress` in lockstep on one
//! thread: every event is compressed before the next statement executes.
//! This module splits the boundary instead. Each rank's interpreter writes
//! into a [`RingSink`] — an [`EventSink`] that buffers events into batches
//! and hands whole batches to an SPSC ring — while a consumer thread drains
//! every rank's ring into that rank's compression session concurrently.
//!
//! The hand-off protocol ([`IngestMsg`]) is:
//!
//! 1. zero or more `Batch(events)` messages, each at most
//!    [`DEFAULT_BATCH_EVENTS`] events (the last may be short);
//! 2. on interpreter success, one `Finish(app_time)` carrying the rank's
//!    total virtual time, then ring close;
//! 3. on interpreter failure, close *without* `Finish` — the consumer
//!    drains what was published (never blocking on the dead producer) and
//!    discards the rank's partial state.
//!
//! Checkpoint boundaries are preserved by construction: consumers feed
//! batches through `push_batch`-style entry points that split at the
//! session's checkpoint cadence internally, so footprint samples land on
//! exactly the same event indices as the sequential path and the resulting
//! CTTs are byte-identical (pinned by `tests/pipelined.rs`).

use crate::interp::{RunResult, RuntimeError};
use crate::ring::{self, Producer};
use cypress_trace::event::{Event, EventSink};
use std::sync::Mutex;

/// Events per hand-off batch. One ring push/pop then synchronizes this many
/// events, so the per-event boundary cost is a `Vec::push`; at ~100 B per
/// event a batch is ~25 KiB, small enough that a handful in flight per rank
/// stays cache-friendly.
pub const DEFAULT_BATCH_EVENTS: usize = 256;

/// Default ring capacity in *batches* when the caller does not pick one.
pub const DEFAULT_RING_CAPACITY: usize = 8;

/// One message over a rank's ingest ring.
pub enum IngestMsg {
    /// A batch of interpreter events, in emission order.
    Batch(Vec<Event>),
    /// The rank finished; payload is its total virtual app time (ns).
    Finish(u64),
}

/// The producer side of the boundary: an [`EventSink`] that batches events
/// and pushes whole batches into an SPSC ring, blocking (backpressure) when
/// the compression side falls behind.
pub struct RingSink {
    prod: Producer<IngestMsg>,
    buf: Vec<Event>,
    batch_events: usize,
}

impl RingSink {
    /// Wrap a ring producer; batches flush every `batch_events` events.
    pub fn new(prod: Producer<IngestMsg>, batch_events: usize) -> Self {
        let batch_events = batch_events.max(1);
        RingSink {
            prod,
            buf: Vec::with_capacity(batch_events),
            batch_events,
        }
    }

    /// Hand the current partial batch to the ring (no-op when empty).
    pub fn flush(&mut self) {
        if !self.buf.is_empty() {
            let batch = std::mem::replace(&mut self.buf, Vec::with_capacity(self.batch_events));
            self.prod.push(IngestMsg::Batch(batch));
        }
    }

    /// Drain-on-finish: flush the tail batch, publish the rank's app time,
    /// and close the ring. Dropping a `RingSink` without calling this (the
    /// interpreter-error path) closes the ring without a `Finish`, which the
    /// consumer treats as "drain, then discard".
    pub fn finish(mut self, app_time: u64) {
        self.flush();
        self.prod.push(IngestMsg::Finish(app_time));
        // Producer closes on drop.
    }
}

impl EventSink for RingSink {
    fn event(&mut self, ev: Event) {
        self.buf.push(ev);
        if self.buf.len() >= self.batch_events {
            self.flush();
        }
    }

    fn events(&mut self, evs: &[Event]) {
        for ev in evs {
            self.event(ev.clone());
        }
    }
}

/// Run `nprocs` producers on a work-stealing pool of `threads` workers with
/// one ring (capacity `capacity` batches) per rank, draining every ring on a
/// dedicated consumer thread.
///
/// Per rank the consumer holds a state `S` (`new_consumer`), feeds it every
/// batch in order (`feed`), and on the producer's `Finish` converts it into
/// the rank's result (`finish`). Producers that fail close their ring
/// without `Finish`; the first such error aborts the whole run (after all
/// ranks settle) exactly like the sequential path.
// Four of the eight arguments are the producer/consumer closures — the
// boundary itself; bundling them into a struct would just rename them.
#[allow(clippy::too_many_arguments)]
pub fn run_ranks_pipelined<S, T, P, N, F, Z>(
    nprocs: u32,
    threads: usize,
    capacity: usize,
    batch_events: usize,
    produce: P,
    new_consumer: N,
    feed: F,
    finish: Z,
) -> RunResult<Vec<T>>
where
    S: Send,
    T: Send,
    P: Fn(u32, &mut RingSink) -> RunResult<u64> + Sync,
    N: Fn(u32) -> S + Sync,
    F: Fn(&mut S, &[Event]) + Sync,
    Z: Fn(S, u64) -> T + Sync,
{
    let n = nprocs as usize;
    if n == 0 {
        return Ok(Vec::new());
    }
    let mut producers = Vec::with_capacity(n);
    let mut consumers = Vec::with_capacity(n);
    for _ in 0..n {
        let (p, c) = ring::ring::<IngestMsg>(capacity);
        producers.push(Mutex::new(Some(p)));
        consumers.push(c);
    }

    std::thread::scope(|scope| {
        let producers = &producers;
        let produce = &produce;
        let new_consumer = &new_consumer;
        let feed = &feed;
        let finish = &finish;

        // Consumer: one thread round-robin-drains all rings. Compression is
        // an order of magnitude cheaper per event than interpretation, so a
        // single consumer keeps up with a full producer pool; when it ever
        // falls behind, rings fill and producers block — bounded memory.
        let consumer = std::thread::Builder::new()
            .name("cypress-ingest-consumer".into())
            .spawn_scoped(scope, move || {
                let _t = cypress_obs::trace_span("ingest", "consumer");
                let mut rings = consumers;
                let mut states: Vec<Option<S>> =
                    (0..nprocs).map(|r| Some(new_consumer(r))).collect();
                let mut outs: Vec<Option<T>> = (0..n).map(|_| None).collect();
                let mut done = vec![false; n];
                let mut open = n;
                let mut idle = 0u32;
                // Fairness bound: cap how many batches one ring may yield per
                // round-robin pass, so a producer that refills as fast as we
                // drain cannot starve the other ranks' full rings.
                const MAX_POPS_PER_PASS: usize = 64;
                while open > 0 {
                    let mut progressed = false;
                    for r in 0..n {
                        if done[r] {
                            continue;
                        }
                        // Observe closed *before* draining. The producer
                        // publishes its final push before the closed flag, so
                        // if closed was already set here and the drain below
                        // then runs the ring empty, nothing can arrive after
                        // it — the rank is done. (Checking closed after the
                        // drain instead would race: a last push + close
                        // landing between drain and check could be popped and
                        // discarded by the emptiness probe.)
                        let closed = rings[r].is_closed();
                        let mut emptied = false;
                        for _ in 0..MAX_POPS_PER_PASS {
                            let Some(msg) = rings[r].try_pop() else {
                                emptied = true;
                                break;
                            };
                            progressed = true;
                            match msg {
                                IngestMsg::Batch(batch) => {
                                    if let Some(s) = states[r].as_mut() {
                                        feed(s, &batch);
                                    }
                                }
                                IngestMsg::Finish(app_time) => {
                                    if let Some(s) = states[r].take() {
                                        outs[r] = Some(finish(s, app_time));
                                    }
                                }
                            }
                        }
                        if closed && emptied {
                            done[r] = true;
                            open -= 1;
                            progressed = true;
                        }
                    }
                    if progressed {
                        idle = 0;
                    } else {
                        ring::backoff(idle);
                        idle = idle.saturating_add(1);
                    }
                }
                outs
            })
            .expect("spawn ingest consumer");

        // Producers: interpreters on the big-stack work-stealing pool.
        let errors = crate::sched::run_ranks(nprocs, threads, move |rank| {
            let prod = producers[rank as usize]
                .lock()
                .expect("ring producer slot poisoned")
                .take()
                .expect("each rank's producer is taken once");
            let mut sink = RingSink::new(prod, batch_events);
            match produce(rank, &mut sink) {
                Ok(app_time) => {
                    sink.finish(app_time);
                    Ok(())
                }
                // Dropping the sink closes the ring without Finish: the
                // consumer drains what was published and discards the rank.
                Err(e) => Err(e),
            }
        });

        let outs = consumer
            .join()
            .map_err(|_| RuntimeError("ingest consumer thread panicked".into()))?;

        let mut results = Vec::with_capacity(n);
        for (r, (err, out)) in errors.into_iter().zip(outs).enumerate() {
            err?;
            results.push(out.ok_or_else(|| {
                RuntimeError(format!("rank {r} produced no result (missing Finish)"))
            })?);
        }
        Ok(results)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cypress_trace::event::MpiRecord;
    use cypress_trace::{MpiOp, MpiParams};

    fn mpi(gid: u32, i: u64) -> Event {
        Event::Mpi(MpiRecord {
            gid,
            op: MpiOp::Barrier,
            params: MpiParams::collective(i as i64),
            t_start: i,
            dur: 1,
        })
    }

    /// Synthetic producers/consumers: every event arrives exactly once, in
    /// order, and `Finish` carries the app time through.
    #[test]
    fn pipelined_runner_preserves_order_and_app_time() {
        for (threads, capacity, batch) in [(1, 1, 1), (2, 2, 3), (8, 7, 16)] {
            let got = run_ranks_pipelined(
                5,
                threads,
                capacity,
                batch,
                |rank, sink| {
                    for i in 0..103u64 {
                        sink.event(mpi(rank, i));
                    }
                    Ok(1000 + rank as u64)
                },
                |_rank| Vec::<Event>::new(),
                |acc, batch| acc.extend_from_slice(batch),
                |acc, app_time| (acc, app_time),
            )
            .unwrap();
            assert_eq!(got.len(), 5);
            for (rank, (evs, app_time)) in got.iter().enumerate() {
                assert_eq!(*app_time, 1000 + rank as u64);
                assert_eq!(evs.len(), 103, "threads={threads} capacity={capacity}");
                for (i, ev) in evs.iter().enumerate() {
                    assert_eq!(ev, &mpi(rank as u32, i as u64));
                }
            }
        }
    }

    /// A failing producer aborts the run but never deadlocks the consumer.
    #[test]
    fn producer_error_surfaces_without_deadlock() {
        let err = run_ranks_pipelined(
            4,
            2,
            2,
            8,
            |rank, sink| {
                for i in 0..50u64 {
                    sink.event(mpi(rank, i));
                }
                if rank == 2 {
                    Err(RuntimeError("rank 2 died mid-stream".into()))
                } else {
                    Ok(1)
                }
            },
            |_| 0usize,
            |n, batch| *n += batch.len(),
            |n, _| n,
        )
        .unwrap_err();
        assert!(err.0.contains("rank 2 died"), "{err}");
    }

    /// Regression for the done-detection race: a producer's final
    /// `Batch`/`Finish` push racing its close must never be discarded by the
    /// consumer's emptiness probe. Many short runs over capacity-1 rings with
    /// single-event batches put the final push squarely in that window.
    #[test]
    fn finish_never_lost_under_close_race() {
        for iter in 0..200u64 {
            let events = iter % 7;
            let got = run_ranks_pipelined(
                4,
                4,
                1,
                1,
                |rank, sink| {
                    for i in 0..events {
                        sink.event(mpi(rank, i));
                    }
                    Ok(rank as u64)
                },
                |_| 0usize,
                |n, batch| *n += batch.len(),
                |n, app_time| (n, app_time),
            )
            .unwrap();
            for (rank, (n, app_time)) in got.iter().enumerate() {
                assert_eq!(*app_time, rank as u64, "iter {iter}");
                assert_eq!(*n as u64, events, "iter {iter} rank {rank}");
            }
        }
    }

    #[test]
    fn zero_ranks_is_empty() {
        let got: Vec<u32> =
            run_ranks_pipelined(0, 4, 4, 4, |_, _| Ok(0), |_| (), |_, _| {}, |_, _| 0u32).unwrap();
        assert!(got.is_empty());
    }
}
