//! Bounded SPSC ring buffers for pipelined ingest.
//!
//! The interpreter→session boundary used to be a synchronous call: every
//! event the interpreter emitted was compressed inline on the same thread
//! before the next statement executed. This module decouples the two sides
//! so a rank can *generate* and *compress* concurrently — the same
//! producer/consumer split Recorder uses between per-process capture and
//! aggregation (arXiv:2501.04654), applied one level down.
//!
//! Design:
//!
//! * **Single producer, single consumer.** Each ring connects exactly one
//!   interpreter (producer) to one compression session (consumer); the
//!   [`Producer`]/[`Consumer`] handles own their side, so the SPSC contract
//!   is enforced by move semantics rather than runtime checks.
//! * **Bounded, std-only, lock-free.** A fixed slot array with cache-line
//!   padded head/tail counters ([`CachePadded`]): the producer writes a slot
//!   and publishes with a release store of `tail`; the consumer reads with
//!   an acquire load and retires with a release store of `head`. Capacity is
//!   arbitrary (1, 2, odd — no power-of-two requirement); monotone `u64`
//!   counters make full/empty tests plain subtraction.
//! * **Batch granularity.** Ring items are whole event *batches*
//!   (`Vec<Event>` via [`RingSink`]), so one push/pop synchronizes hundreds
//!   of events; the per-event cost of the boundary is a `Vec::push`.
//! * **Backpressure.** [`Producer::push`] blocks (spin → yield → sleep) when
//!   the consumer falls behind and the ring is full; stalls are counted in
//!   the `ring` obs scope so the imbalance is visible in reports.
//! * **Drain on finish.** [`Producer::close`] (also called on drop)
//!   publishes a closed flag *after* the last batch; the consumer keeps
//!   draining until the ring is both closed and empty, so a clean shutdown
//!   never loses a batch and a mid-stream producer death (interpreter
//!   error) still leaves every already-published batch consumable.

use cypress_obs::Counter;
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Ring instrumentation handles (scope `ring`), shared by all rings.
struct RingMetrics {
    /// Items (batches) pushed through any ring.
    batches: Counter,
    /// Producer-side full-ring stalls (backpressure events).
    producer_stalls: Counter,
    /// Consumer-side empty-ring stalls while the producer was still open.
    consumer_stalls: Counter,
}

fn obs() -> &'static RingMetrics {
    static M: OnceLock<RingMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let s = cypress_obs::scope("ring");
        RingMetrics {
            batches: s.counter("batches"),
            producer_stalls: s.counter("producer_stalls"),
            consumer_stalls: s.counter("consumer_stalls"),
        }
    })
}

/// Pad-and-align wrapper keeping the producer's and consumer's hot counters
/// on separate cache lines, so head/tail updates never false-share.
#[repr(align(128))]
struct CachePadded<T>(T);

struct Shared<T> {
    /// Slot storage; slot `i % capacity` is owned by the producer until the
    /// corresponding `tail` increment publishes it, then by the consumer
    /// until the corresponding `head` increment retires it.
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Next slot the consumer will read (monotone; wraps via `% capacity`).
    head: CachePadded<AtomicU64>,
    /// Next slot the producer will write (monotone).
    tail: CachePadded<AtomicU64>,
    /// Producer finished (set after its final release store of `tail`).
    closed: AtomicBool,
    /// Consumer dropped without draining; producers stop blocking and
    /// discard instead (nothing will ever read the ring again).
    abandoned: AtomicBool,
}

// SAFETY: slots are only touched through the SPSC ownership protocol above;
// `T: Send` is all that crossing the boundary requires.
unsafe impl<T: Send> Send for Shared<T> {}
unsafe impl<T: Send> Sync for Shared<T> {}

impl<T> Drop for Shared<T> {
    fn drop(&mut self) {
        // Both endpoints are gone (the Arc count hit zero), so [head, tail)
        // is exactly the set of published-but-unconsumed items — e.g. pushes
        // that landed after an abandoned consumer stopped draining.
        let cap = self.slots.len() as u64;
        let head = *self.head.0.get_mut();
        let tail = *self.tail.0.get_mut();
        for i in head..tail {
            // SAFETY: exclusive access; every slot in [head, tail) holds an
            // initialized item by the publication protocol.
            unsafe {
                (*self.slots[(i % cap) as usize].get()).assume_init_drop();
            }
        }
    }
}

/// Create a bounded SPSC ring of the given capacity (clamped to ≥ 1).
/// Returns the two endpoint handles; each is `Send` but not `Clone`.
pub fn ring<T: Send>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    let capacity = capacity.max(1);
    let slots = (0..capacity)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect::<Vec<_>>()
        .into_boxed_slice();
    let shared = Arc::new(Shared {
        slots,
        head: CachePadded(AtomicU64::new(0)),
        tail: CachePadded(AtomicU64::new(0)),
        closed: AtomicBool::new(false),
        abandoned: AtomicBool::new(false),
    });
    (
        Producer {
            shared: Arc::clone(&shared),
            cached_head: 0,
            closed: false,
        },
        Consumer {
            shared,
            cached_tail: 0,
        },
    )
}

/// Backoff ladder for both endpoints: spin briefly (the partner is usually
/// mid-batch for only a few hundred ns), then yield the core (essential on
/// single-core hosts, where spinning just burns the partner's quantum), then
/// sleep in short slices so an idle endpoint costs nothing.
#[inline]
pub(crate) fn backoff(step: u32) {
    if step < 6 {
        std::hint::spin_loop();
    } else if step < 24 {
        std::thread::yield_now();
    } else {
        std::thread::sleep(std::time::Duration::from_micros(50));
    }
}

/// Producer endpoint: the interpreter side of the boundary.
pub struct Producer<T: Send> {
    shared: Arc<Shared<T>>,
    /// Last observed consumer position; refreshed only when the ring looks
    /// full, so the common-case push does no cross-core load at all.
    cached_head: u64,
    closed: bool,
}

impl<T: Send> Producer<T> {
    /// Push one item, blocking while the ring is full (backpressure).
    /// Returns `false` if the item was dropped: the consumer is gone, or
    /// this producer already closed (a closed ring's consumer may have
    /// observed closed+empty and exited, so a late push would vanish).
    pub fn push(&mut self, item: T) -> bool {
        debug_assert!(!self.closed, "push after close");
        if self.closed {
            return false;
        }
        if self.shared.abandoned.load(Ordering::Relaxed) {
            return false; // consumer gone; drop the item instead of queueing
        }
        let cap = self.shared.slots.len() as u64;
        let tail = self.shared.tail.0.load(Ordering::Relaxed);
        if tail - self.cached_head >= cap {
            self.cached_head = self.shared.head.0.load(Ordering::Acquire);
            let mut step = 0u32;
            while tail - self.cached_head >= cap {
                if self.shared.abandoned.load(Ordering::Acquire) {
                    return false; // nothing will ever drain us
                }
                if step == 0 && cypress_obs::enabled() {
                    obs().producer_stalls.inc();
                }
                if step == 0 {
                    cypress_obs::trace_instant("ring", "stall_full", tail);
                }
                backoff(step);
                step = step.saturating_add(1);
                self.cached_head = self.shared.head.0.load(Ordering::Acquire);
            }
        }
        // SAFETY: `tail - head < cap` ⇒ this slot is retired (or never used);
        // the producer is the only writer.
        unsafe {
            (*self.shared.slots[(tail % cap) as usize].get()).write(item);
        }
        self.shared.tail.0.store(tail + 1, Ordering::Release);
        if cypress_obs::enabled() {
            obs().batches.inc();
        }
        true
    }

    /// Number of items currently in flight (approximate; for telemetry).
    pub fn in_flight(&self) -> usize {
        let tail = self.shared.tail.0.load(Ordering::Relaxed);
        let head = self.shared.head.0.load(Ordering::Acquire);
        (tail - head) as usize
    }

    /// Publish end-of-stream. The consumer drains whatever is still queued,
    /// then sees the ring closed. Idempotent; also runs on drop, so a
    /// producer that dies mid-stream (interpreter error, panic) still lets
    /// the consumer finish cleanly.
    pub fn close(mut self) {
        self.do_close();
    }

    fn do_close(&mut self) {
        if !self.closed {
            self.closed = true;
            self.shared.closed.store(true, Ordering::Release);
        }
    }
}

impl<T: Send> Drop for Producer<T> {
    fn drop(&mut self) {
        self.do_close();
    }
}

/// Consumer endpoint: the compression side of the boundary.
pub struct Consumer<T: Send> {
    shared: Arc<Shared<T>>,
    /// Last observed producer position; refreshed only when the ring looks
    /// empty (mirror of the producer's `cached_head`).
    cached_tail: u64,
}

impl<T: Send> Consumer<T> {
    /// Pop one item if immediately available.
    pub fn try_pop(&mut self) -> Option<T> {
        let cap = self.shared.slots.len() as u64;
        let head = self.shared.head.0.load(Ordering::Relaxed);
        if head == self.cached_tail {
            self.cached_tail = self.shared.tail.0.load(Ordering::Acquire);
            if head == self.cached_tail {
                return None;
            }
        }
        // SAFETY: `head < tail` ⇒ this slot was published by a release store
        // of `tail`; the consumer is the only reader.
        let item = unsafe { (*self.shared.slots[(head % cap) as usize].get()).assume_init_read() };
        self.shared.head.0.store(head + 1, Ordering::Release);
        Some(item)
    }

    /// Pop one item, blocking until one arrives or the stream ends.
    /// `None` means closed *and* fully drained — the drain-on-finish
    /// protocol: a `close()` racing with queued items never truncates.
    pub fn pop(&mut self) -> Option<T> {
        let mut step = 0u32;
        loop {
            if let Some(item) = self.try_pop() {
                return Some(item);
            }
            // Empty. Re-check emptiness *after* observing closed: the
            // producer publishes its last batch before the closed flag.
            if self.shared.closed.load(Ordering::Acquire) {
                return self.try_pop();
            }
            if step == 0 && cypress_obs::enabled() {
                obs().consumer_stalls.inc();
            }
            backoff(step);
            step = step.saturating_add(1);
        }
    }

    /// Has the producer closed its side? (The ring may still hold items.)
    pub fn is_closed(&self) -> bool {
        self.shared.closed.load(Ordering::Acquire)
    }
}

impl<T: Send> Drop for Consumer<T> {
    fn drop(&mut self) {
        // Unblock (and future-proof) the producer, then free queued items.
        self.shared.abandoned.store(true, Ordering::Release);
        while self.try_pop().is_some() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_all_capacities() {
        for cap in [1usize, 2, 3, 7, 64] {
            let (mut p, mut c) = ring::<u64>(cap);
            let producer = std::thread::spawn(move || {
                for i in 0..1000u64 {
                    assert!(p.push(i));
                }
                p.close();
            });
            let mut got = Vec::new();
            while let Some(v) = c.pop() {
                got.push(v);
            }
            producer.join().unwrap();
            assert_eq!(got, (0..1000).collect::<Vec<_>>(), "capacity {cap}");
        }
    }

    #[test]
    fn close_without_items_ends_stream() {
        let (p, mut c) = ring::<u8>(4);
        p.close();
        assert_eq!(c.pop(), None);
        assert!(c.is_closed());
    }

    #[test]
    fn items_before_close_all_drain() {
        let (mut p, mut c) = ring::<u32>(8);
        for i in 0..5 {
            assert!(p.push(i));
        }
        p.close();
        let drained: Vec<u32> = std::iter::from_fn(|| c.pop()).collect();
        assert_eq!(drained, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn dropped_producer_closes_stream() {
        let (mut p, mut c) = ring::<u32>(4);
        assert!(p.push(7));
        drop(p); // mid-stream death: no explicit close
        assert_eq!(c.pop(), Some(7));
        assert_eq!(c.pop(), None);
    }

    #[test]
    fn abandoned_consumer_unblocks_producer() {
        let (mut p, c) = ring::<u32>(1);
        assert!(p.push(1)); // fills the ring
        drop(c);
        // Ring is full and nobody will drain: push must return, not hang.
        assert!(!p.push(2));
    }

    #[test]
    fn capacity_one_ping_pongs() {
        let (mut p, mut c) = ring::<usize>(1);
        let t = std::thread::spawn(move || {
            for i in 0..200 {
                assert!(p.push(i));
            }
            p.close();
        });
        let mut n = 0;
        while let Some(v) = c.pop() {
            assert_eq!(v, n);
            n += 1;
        }
        t.join().unwrap();
        assert_eq!(n, 200);
    }

    #[test]
    fn drops_clean_up_queued_items() {
        // Arc payloads: every queued item must be dropped exactly once.
        let payload = Arc::new(());
        let (mut p, c) = ring::<Arc<()>>(8);
        for _ in 0..6 {
            assert!(p.push(Arc::clone(&payload)));
        }
        drop(c);
        drop(p);
        assert_eq!(Arc::strong_count(&payload), 1);
    }
}
