//! # cypress-runtime — instrumented SPMD execution substrate
//!
//! The dynamic half of the tracing pipeline: a deterministic per-rank
//! interpreter of MiniMPI programs that emits the same event stream the
//! paper's PMPI-based library would observe — `PMPI_COMM_Structure`-style
//! enter/exit markers around every (surviving) control structure, plus one
//! [`cypress_trace::MpiRecord`] per MPI invocation, with request handles
//! mapped to posting-operation GIDs.
//!
//! Ranks execute independently (MiniMPI control flow never depends on
//! message payloads); message matching, wildcard resolution, and global
//! timing live in `cypress-simmpi`.

pub mod driver;
pub mod ingest;
pub mod interp;
pub mod ring;
pub mod sched;

pub use driver::{run_rank_with_sink, trace_program, trace_program_parallel, trace_rank};
pub use ingest::{
    run_ranks_pipelined, IngestMsg, RingSink, DEFAULT_BATCH_EVENTS, DEFAULT_RING_CAPACITY,
};
pub use interp::{has_op, well_nested, EventSink, Interp, InterpConfig, RunResult, RuntimeError};
pub use ring::{ring, Consumer, Producer};
pub use sched::{run_ranks, WORKER_STACK_BYTES};
