//! Wire-codec and slab-equivalence pinning for the query engine.
//!
//! Two invariants the trace store leans on:
//!
//! 1. The canonical wire encoding of [`QueryResult`] roundtrips exactly, so
//!    a daemon response decodes to the same value the server computed.
//! 2. Querying pooled [`CttSlab`]s yields byte-identical results (wire and
//!    JSON) to querying the owned [`Ctt`]s they decode from — the zero-copy
//!    read path changes representation, never answers.

use cypress_core::{compress_trace, CompressConfig, Ctt, CttSlab};
use cypress_cst::analyze_program;
use cypress_minilang::{check_program, parse};
use cypress_query::{query_ctts, QueryOptions, QueryResult, Strategy};
use cypress_runtime::{trace_program, InterpConfig};
use cypress_trace::Codec;

fn build_ctts(src: &str, nprocs: u32) -> (cypress_cst::Cst, Vec<Ctt>) {
    let prog = parse(src).unwrap();
    check_program(&prog).unwrap();
    let info = analyze_program(&prog);
    let traces = trace_program(&prog, &info, nprocs, &InterpConfig::default()).unwrap();
    let ctts = traces
        .iter()
        .map(|t| compress_trace(&info.cst, t, &CompressConfig::default()))
        .collect();
    (info.cst, ctts)
}

const PROGRAM: &str = r#"fn main() {
    for i in 0..50 {
        if rank() % 2 == 0 { send(rank() + 1, 1024, 7); }
        else { recv(rank() - 1, 1024, 7); }
        allreduce(8);
    }
    barrier();
}"#;

#[test]
fn query_result_wire_roundtrip() {
    let (cst, ctts) = build_ctts(PROGRAM, 4);
    let q = query_ctts(&cst, &ctts, &QueryOptions::default()).unwrap();
    let bytes = q.to_bytes();
    let back = QueryResult::from_bytes(&bytes).unwrap();
    assert_eq!(back, q);
    assert_eq!(back.to_bytes(), bytes, "canonical: re-encode is identical");
    assert_eq!(back.render_json(), q.render_json());
}

#[test]
fn slab_queries_match_ctt_queries_byte_for_byte() {
    let (cst, ctts) = build_ctts(PROGRAM, 4);
    let slabs: Vec<CttSlab> = ctts
        .iter()
        .map(|c| CttSlab::from_bytes(&c.to_bytes()).unwrap())
        .collect();
    for strategy in [
        Strategy::Auto,
        Strategy::Symbolic,
        Strategy::PartialExpansion,
    ] {
        let opts = QueryOptions {
            strategy,
            ..QueryOptions::default()
        };
        let from_ctt = query_ctts(&cst, &ctts, &opts).unwrap();
        let from_slab = query_ctts(&cst, &slabs, &opts).unwrap();
        assert_eq!(from_slab, from_ctt, "strategy {strategy:?}");
        assert_eq!(from_slab.to_bytes(), from_ctt.to_bytes());
        assert_eq!(from_slab.render_json(), from_ctt.render_json());
    }
}

#[test]
fn json_parses_structurally() {
    let (cst, ctts) = build_ctts(PROGRAM, 4);
    let q = query_ctts(&cst, &ctts, &QueryOptions::default()).unwrap();
    let json = q.render_json();
    assert!(json.starts_with("{\"nprocs\":4,"));
    assert!(json.contains("\"matrix\":[["));
    assert!(json.contains("\"MPI_Allreduce\":{\"calls\":"));
    assert!(json.contains("\"hotspots\":[{"));
    assert!(json.ends_with("]}"));
    // Balanced braces/brackets outside string literals — a cheap structural
    // sanity check that doubles as an escaping test.
    let (mut depth, mut in_str, mut esc) = (0i32, false, false);
    for c in json.chars() {
        if in_str {
            if esc {
                esc = false;
            } else if c == '\\' {
                esc = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' | '[' => depth += 1,
            '}' | ']' => depth -= 1,
            _ => {}
        }
        assert!(depth >= 0);
    }
    assert_eq!(depth, 0);
    assert!(!in_str);
}
