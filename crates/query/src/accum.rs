//! The shared accumulator every evaluation path feeds.
//!
//! Symbolic folds call [`Accum::add`] once per (rank, merged record) with
//! `times = record.count`; partial expansion and the decompress-then-analyze
//! reference call it once per replayed event with `times = 1`. Because all
//! supported queries are multiset aggregates, routing both through one code
//! path makes "compressed-domain result equals decompressed result" a
//! property of the evaluation order alone — and the accumulation arithmetic
//! (`CommMatrix::add_send`, `Profile::add_repeated`) is the same code the
//! raw-trace builders use, so all three worlds agree by construction.

use crate::hotspot::HotSpot;
use crate::{QueryResult, RankTotals, StrategyUsed};
use cypress_core::ReplayOp;
use cypress_cst::Cst;
use cypress_trace::{CommMatrix, MpiOp, Profile};

#[derive(Clone, Copy, Default)]
struct GidAcc {
    calls: u64,
    bytes: u64,
}

pub(crate) struct Accum {
    nprocs: u32,
    matrix: CommMatrix,
    profile: Profile,
    totals: Vec<RankTotals>,
    /// Indexed by CST GID.
    by_gid: Vec<GidAcc>,
}

impl Accum {
    pub fn new(nprocs: u32, n_vertices: usize) -> Accum {
        Accum {
            nprocs,
            matrix: CommMatrix::new(nprocs as usize),
            profile: Profile::new(nprocs as usize),
            totals: vec![RankTotals::default(); nprocs as usize],
            by_gid: vec![GidAcc::default(); n_vertices],
        }
    }

    pub fn set_app_time(&mut self, rank: u32, app_time: u64) {
        self.profile.set_app_time(rank as usize, app_time);
    }

    /// Accumulate `times` identical calls made by `rank` at CST vertex
    /// `gid`. `dest` is the already-resolved absolute destination rank
    /// (negative for wildcards/inapplicable); `count`/`rcount` are the
    /// posted element counts; `dur` the per-call duration.
    #[allow(clippy::too_many_arguments)]
    pub fn add(
        &mut self,
        rank: u32,
        gid: u32,
        op: MpiOp,
        dest: i64,
        count: i64,
        rcount: i64,
        dur: u64,
        times: u64,
    ) {
        if times == 0 {
            return;
        }
        self.profile
            .add_repeated(rank as usize, op, count, dur, times);
        if let Some(t) = self.totals.get_mut(rank as usize) {
            t.calls += times;
            if op.is_send_like() {
                t.send_bytes += count.max(0) as u64 * times;
            }
            if op.is_recv_like() {
                let posted = if op == MpiOp::Sendrecv { rcount } else { count };
                t.recv_bytes += posted.max(0) as u64 * times;
            }
        }
        if let Some(g) = self.by_gid.get_mut(gid as usize) {
            g.calls += times;
            // Hot-spot volume uses the matrix's exact attribution rule so
            // the per-GID report sums to the matrix total.
            if op.is_send_like() && dest >= 0 && (dest as usize) < self.nprocs as usize {
                g.bytes += count.max(0) as u64 * times;
            }
        }
        if op.is_send_like() {
            self.matrix.add_send(rank as usize, dest, count, times);
        }
    }

    /// Accumulate one replayed event from `rank` (expansion / reference).
    pub fn add_replay(&mut self, rank: u32, op: &ReplayOp) {
        self.add(
            rank,
            op.gid,
            op.op,
            op.params.dest,
            op.params.count,
            op.params.rcount,
            op.mean_dur,
            1,
        );
    }

    /// Close out: rank hot spots (heaviest volume first, then calls, then
    /// GID) and assemble the result.
    pub fn finish(self, cst: &Cst, strategy: StrategyUsed, loop_trips: u64) -> QueryResult {
        let mut hotspots: Vec<HotSpot> = self
            .by_gid
            .iter()
            .enumerate()
            .filter(|(_, g)| g.calls > 0)
            .map(|(gid, g)| HotSpot::new(cst, gid as u32, g.calls, g.bytes))
            .collect();
        hotspots.sort_by(|a, b| {
            b.bytes
                .cmp(&a.bytes)
                .then(b.calls.cmp(&a.calls))
                .then(a.gid.cmp(&b.gid))
        });
        QueryResult {
            nprocs: self.nprocs,
            strategy,
            matrix: self.matrix,
            profile: self.profile,
            totals: self.totals,
            hotspots,
            loop_trips,
        }
    }
}
