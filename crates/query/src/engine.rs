//! Query evaluation: symbolic folds, partial expansion, and the
//! decompress-then-analyze reference oracle.

use crate::accum::Accum;
use crate::{QueryError, QueryOptions, QueryResult, Strategy, StrategyUsed, Window};
use cypress_core::{
    decompress, decompress_into, fold_ctt, fold_merged, replay_to_records, Ctt, CttFold, CttSource,
    LeafRecord, MergedCtt, RankScope, SeqRef,
};
use cypress_cst::tree::VertexKind;
use cypress_cst::Cst;
use cypress_obs::{Counter, Histogram};
use cypress_trace::raw::RawTrace;
use cypress_trace::{CommMatrix, Event, MpiOp, Profile};
use std::sync::OnceLock;

/// Query instrumentation handles (scope `query`).
struct QueryMetrics {
    /// Queries evaluated (any strategy).
    runs: Counter,
    /// Merged leaf records folded symbolically.
    symbolic_records: Counter,
    /// Events streamed through partial expansion.
    expanded_events: Counter,
    /// `Strategy::Auto` decisions that fell back to partial expansion.
    fallbacks: Counter,
    /// Wall time per query.
    query_ns: Histogram,
}

fn obs() -> &'static QueryMetrics {
    static M: OnceLock<QueryMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let s = cypress_obs::scope("query");
        QueryMetrics {
            runs: s.counter("runs"),
            symbolic_records: s.counter("symbolic_records"),
            expanded_events: s.counter("expanded_events"),
            fallbacks: s.counter("fallbacks"),
            query_ns: s.histogram("query_ns", &cypress_obs::TIME_BOUNDS_NS),
        }
    })
}

/// Does this program require partial expansion for replay-exact results?
/// True iff the CST contains a recursion pseudo-loop — the one construct
/// whose replay is multiset- rather than sequence-exact, so stored record
/// counts and replayed occurrence counts may be attributed differently.
pub fn needs_expansion(cst: &Cst) -> bool {
    cst.vertices
        .iter()
        .any(|v| matches!(v.kind, VertexKind::Loop { pseudo: true, .. }))
}

fn resolve_strategy(requested: Strategy, cst: &Cst, window: Option<Window>) -> StrategyUsed {
    if window.is_some() {
        // Timestamps only exist on the replay clock; a window can never be
        // evaluated symbolically.
        return StrategyUsed::PartialExpansion;
    }
    match requested {
        Strategy::Symbolic => StrategyUsed::Symbolic,
        Strategy::PartialExpansion => StrategyUsed::PartialExpansion,
        Strategy::Auto => {
            if needs_expansion(cst) {
                if cypress_obs::enabled() {
                    obs().fallbacks.inc();
                }
                StrategyUsed::PartialExpansion
            } else {
                StrategyUsed::Symbolic
            }
        }
    }
}

/// World size of a per-rank CTT set (must agree across ranks).
fn world_size<S: CttSource>(ctts: &[S]) -> Result<u32, QueryError> {
    let first = ctts
        .first()
        .ok_or_else(|| QueryError::Invalid("no CTTs to query".into()))?
        .nprocs();
    for c in ctts {
        if c.nprocs() != first {
            return Err(QueryError::Invalid(format!(
                "CTTs disagree on world size: {} vs {}",
                first,
                c.nprocs()
            )));
        }
    }
    Ok(first)
}

fn check_shape(cst: &Cst, data_len: usize) -> Result<(), QueryError> {
    if data_len != cst.len() {
        return Err(QueryError::Invalid(format!(
            "CTT has {} vertices but CST has {}",
            data_len,
            cst.len()
        )));
    }
    Ok(())
}

/// Symbolic evaluation: one [`Accum::add`] per (member rank, leaf record),
/// `times = record.count` — never proportional to loop trips or events.
struct SymbolicFold<'a> {
    acc: &'a mut Accum,
    records: u64,
}

impl CttFold for SymbolicFold<'_> {
    fn on_record(&mut self, gid: u32, _slot: usize, ranks: RankScope, rec: &LeafRecord) {
        self.records += 1;
        let dur = rec.time.mean().round() as u64;
        let p = &rec.params;
        for r in ranks.iter() {
            let dest = p.dest.resolve(r as i64);
            self.acc
                .add(r, gid, p.op, dest, p.count, p.rcount, dur, rec.count);
        }
    }
}

/// Closed-form total loop trips: Σ over loop groups of `counts.sum() × |ranks|`.
struct TripsFold {
    trips: u64,
}

impl CttFold for TripsFold {
    fn on_loop(&mut self, _gid: u32, ranks: RankScope, counts: SeqRef<'_>) {
        self.trips += counts.sum().max(0) as u64 * ranks.len();
    }
    fn on_record(&mut self, _gid: u32, _slot: usize, _ranks: RankScope, _rec: &LeafRecord) {}
}

/// Query a set of per-rank CTTs directly in the compressed domain.
///
/// Generic over [`CttSource`], so owned [`Ctt`]s and the trace store's
/// pooled `CttSlab`s evaluate through exactly the same folds in the same
/// order — results are identical (bit for bit) for identical tree contents.
pub fn query_ctts<S: CttSource>(
    cst: &Cst,
    ctts: &[S],
    opts: &QueryOptions,
) -> Result<QueryResult, QueryError> {
    let _span = cypress_obs::enabled().then(|| obs().query_ns.start_span());
    let nprocs = world_size(ctts)?;
    for c in ctts {
        check_shape(cst, c.vertex_count())?;
    }
    let used = resolve_strategy(opts.strategy, cst, opts.window);
    let mut acc = Accum::new(nprocs, cst.len());
    let mut trips = TripsFold { trips: 0 };
    for ctt in ctts {
        acc.set_app_time(ctt.rank(), ctt.app_time());
        ctt.fold(&mut trips);
    }
    match used {
        StrategyUsed::Symbolic => {
            let mut f = SymbolicFold {
                acc: &mut acc,
                records: 0,
            };
            for ctt in ctts {
                ctt.fold(&mut f);
            }
            note_run(f.records, 0);
        }
        _ => {
            let mut events = 0u64;
            for ctt in ctts {
                let rank = ctt.rank();
                let owned = ctt.as_ctt();
                expand_into(cst, &owned, opts.window, |op| {
                    acc.add_replay(rank, op);
                    events += 1;
                });
            }
            note_run(0, events);
        }
    }
    Ok(acc.finish(cst, used, trips.trips))
}

/// Query a whole job's merged CTT directly in the compressed domain. Each
/// rank group is expanded symbolically — relative encodings resolve per
/// member rank — without materializing per-rank trees (partial expansion,
/// when selected, extracts them one at a time).
pub fn query_merged(
    cst: &Cst,
    merged: &MergedCtt,
    opts: &QueryOptions,
) -> Result<QueryResult, QueryError> {
    let _span = cypress_obs::enabled().then(|| obs().query_ns.start_span());
    check_shape(cst, merged.vertices.len())?;
    let nprocs = merged.nprocs;
    let used = resolve_strategy(opts.strategy, cst, opts.window);
    let mut acc = Accum::new(nprocs, cst.len());
    let app_times = merged.app_times.to_vec();
    for r in 0..nprocs {
        let t = app_times.get(r as usize).copied().unwrap_or(0).max(0) as u64;
        acc.set_app_time(r, t);
    }
    let mut trips = TripsFold { trips: 0 };
    fold_merged(merged, &mut trips);
    match used {
        StrategyUsed::Symbolic => {
            let mut f = SymbolicFold {
                acc: &mut acc,
                records: 0,
            };
            fold_merged(merged, &mut f);
            note_run(f.records, 0);
        }
        _ => {
            let mut events = 0u64;
            for rank in 0..nprocs {
                let ctt = merged.extract_rank(rank, cst);
                expand_into(cst, &ctt, opts.window, |op| {
                    acc.add_replay(rank, op);
                    events += 1;
                });
            }
            note_run(0, events);
        }
    }
    Ok(acc.finish(cst, used, trips.trips))
}

/// Stream-decompress one rank into `sink`, optionally restricted to ops
/// whose reconstructed start time (the `replay_to_records` clock: gap, then
/// op) falls inside `window`.
fn expand_into(
    cst: &Cst,
    ctt: &Ctt,
    window: Option<Window>,
    mut sink: impl FnMut(&cypress_core::ReplayOp),
) {
    let mut t = 0u64;
    decompress_into(cst, ctt, |op| {
        t += op.mean_gap;
        let t_start = t;
        t += op.mean_dur;
        if window.is_none_or(|w| w.contains(t_start)) {
            sink(&op);
        }
    });
}

fn note_run(symbolic_records: u64, expanded_events: u64) {
    if cypress_obs::enabled() {
        let m = obs();
        m.runs.inc();
        m.symbolic_records.add(symbolic_records);
        m.expanded_events.add(expanded_events);
    }
}

/// The reference oracle: fully decompress every rank to a materialized
/// record stream, then run the classic O(events) analyses over it. Matrix
/// and profile go through the production iterator-based builders; per-rank
/// totals and GID attribution are recomputed here from the replayed ops so
/// the oracle's arithmetic is independent of [`Accum`].
pub fn query_by_decompression(cst: &Cst, ctts: &[Ctt]) -> Result<QueryResult, QueryError> {
    query_by_decompression_windowed(cst, ctts, None)
}

/// The windowed reference oracle: decompress, reconstruct the replay clock,
/// drop every op starting outside `window`, then run the classic analyses
/// over what remains.
pub fn query_by_decompression_windowed(
    cst: &Cst,
    ctts: &[Ctt],
    window: Option<Window>,
) -> Result<QueryResult, QueryError> {
    let nprocs = world_size(ctts)?;
    for c in ctts {
        check_shape(cst, c.data.len())?;
    }
    let mut matrix = CommMatrix::new(nprocs as usize);
    let mut profile = Profile::new(nprocs as usize);
    let mut totals = vec![crate::RankTotals::default(); nprocs as usize];
    let mut gid_calls = vec![0u64; cst.len()];
    let mut gid_bytes = vec![0u64; cst.len()];
    let mut trips = TripsFold { trips: 0 };
    for ctt in ctts {
        fold_ctt(ctt, &mut trips);
        let rank = ctt.rank as usize;
        let mut ops = decompress(cst, ctt);
        let mut records = replay_to_records(&ops);
        if let Some(w) = window {
            let keep: Vec<bool> = records.iter().map(|r| w.contains(r.t_start)).collect();
            let mut it = keep.iter();
            ops.retain(|_| *it.next().unwrap());
            let mut it = keep.iter();
            records.retain(|_| *it.next().unwrap());
        }
        let mut raw = RawTrace::new(ctt.rank, nprocs);
        raw.app_time = ctt.app_time;
        raw.events = records.into_iter().map(Event::Mpi).collect();
        matrix.add_rank_events(rank, raw.mpi_records());
        profile.set_app_time(rank, raw.app_time);
        profile.add_rank_events(rank, raw.mpi_records());
        for op in &ops {
            if let Some(t) = totals.get_mut(rank) {
                t.calls += 1;
                if op.op.is_send_like() {
                    t.send_bytes += op.params.count.max(0) as u64;
                }
                if op.op.is_recv_like() {
                    let posted = if op.op == MpiOp::Sendrecv {
                        op.params.rcount
                    } else {
                        op.params.count
                    };
                    t.recv_bytes += posted.max(0) as u64;
                }
            }
            let gid = op.gid as usize;
            if gid < gid_calls.len() {
                gid_calls[gid] += 1;
                if op.op.is_send_like()
                    && op.params.dest >= 0
                    && (op.params.dest as usize) < nprocs as usize
                {
                    gid_bytes[gid] += op.params.count.max(0) as u64;
                }
            }
        }
    }
    let mut hotspots: Vec<crate::HotSpot> = gid_calls
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .map(|(gid, &c)| crate::HotSpot::new(cst, gid as u32, c, gid_bytes[gid]))
        .collect();
    hotspots.sort_by(|a, b| {
        b.bytes
            .cmp(&a.bytes)
            .then(b.calls.cmp(&a.calls))
            .then(a.gid.cmp(&b.gid))
    });
    Ok(QueryResult {
        nprocs,
        strategy: StrategyUsed::Reference,
        matrix,
        profile,
        totals,
        hotspots,
        loop_trips: trips.trips,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Strategy;
    use cypress_core::{compress_trace, merge_all, CompressConfig};
    use cypress_cst::analyze_program;
    use cypress_minilang::{check_program, parse};
    use cypress_runtime::{trace_program, InterpConfig};

    fn compile(src: &str, nprocs: u32) -> (Cst, Vec<Ctt>) {
        let p = parse(src).unwrap();
        check_program(&p).unwrap();
        let info = analyze_program(&p);
        let traces = trace_program(&p, &info, nprocs, &InterpConfig::default()).unwrap();
        let ctts = traces
            .iter()
            .map(|t| compress_trace(&info.cst, t, &CompressConfig::default()))
            .collect();
        (info.cst, ctts)
    }

    const STENCIL: &str = r#"fn main() {
        for it in 0..30 {
            if rank() > 0 { send(rank() - 1, 2048, 0); }
            if rank() < size() - 1 {
                let h = irecv(any_source(), 2048, 0);
                waitall(h);
            }
            if it % 5 == 0 { allreduce(16); }
        }
        barrier();
    }"#;

    fn assert_equivalent(got: &QueryResult, want: &QueryResult) {
        assert_eq!(got.matrix, want.matrix);
        assert_eq!(got.profile, want.profile);
        assert_eq!(got.totals, want.totals);
        assert_eq!(got.hotspots, want.hotspots);
        assert_eq!(got.loop_trips, want.loop_trips);
        assert_eq!(got.nprocs, want.nprocs);
    }

    #[test]
    fn symbolic_equals_reference_per_rank() {
        let (cst, ctts) = compile(STENCIL, 5);
        let sym = query_ctts(&cst, &ctts, &QueryOptions::default()).unwrap();
        assert_eq!(sym.strategy, StrategyUsed::Symbolic);
        let reference = query_by_decompression(&cst, &ctts).unwrap();
        assert_equivalent(&sym, &reference);
        assert!(sym.total_volume() > 0);
        assert_eq!(sym.hotspot_volume(), sym.total_volume());
    }

    #[test]
    fn merged_symbolic_equals_reference() {
        let (cst, ctts) = compile(STENCIL, 6);
        let merged = merge_all(&ctts);
        let sym = query_merged(&cst, &merged, &QueryOptions::default()).unwrap();
        // Reference over the extracted per-rank views: timing in the merged
        // tree is group-aggregated, so the oracle must see the same data.
        let extracted: Vec<Ctt> = (0..6).map(|r| merged.extract_rank(r, &cst)).collect();
        let reference = query_by_decompression(&cst, &extracted).unwrap();
        assert_equivalent(&sym, &reference);
    }

    #[test]
    fn partial_expansion_equals_symbolic() {
        let (cst, ctts) = compile(STENCIL, 4);
        let sym = query_ctts(
            &cst,
            &ctts,
            &QueryOptions {
                strategy: Strategy::Symbolic,
                ..Default::default()
            },
        )
        .unwrap();
        let exp = query_ctts(
            &cst,
            &ctts,
            &QueryOptions {
                strategy: Strategy::PartialExpansion,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(exp.strategy, StrategyUsed::PartialExpansion);
        assert_equivalent(&sym, &exp);
    }

    #[test]
    fn recursion_falls_back_and_matches_reference() {
        let (cst, ctts) = compile(
            r#"
            fn updown(n) {
                if n > 0 {
                    send((rank() + 1) % size(), 128, 0);
                    updown(n - 1);
                    recv((rank() + size() - 1) % size(), 128, 0);
                }
            }
            fn main() { updown(7); }
            "#,
            3,
        );
        assert!(needs_expansion(&cst));
        let auto = query_ctts(&cst, &ctts, &QueryOptions::default()).unwrap();
        assert_eq!(auto.strategy, StrategyUsed::PartialExpansion);
        let reference = query_by_decompression(&cst, &ctts).unwrap();
        assert_equivalent(&auto, &reference);
    }

    #[test]
    fn render_mentions_hotspots_and_ranks() {
        let (cst, ctts) = compile(STENCIL, 4);
        let q = query_ctts(&cst, &ctts, &QueryOptions::default()).unwrap();
        let text = q.render(5);
        assert!(text.contains("Hot spots by GID"));
        assert!(text.contains("Per-rank totals"));
        assert!(text.contains("MPI_Send"));
        assert!(text.contains("Loop#"));
    }

    #[test]
    fn windowed_query_matches_windowed_oracle_and_restricts() {
        let (cst, ctts) = compile(STENCIL, 4);
        let full = query_ctts(&cst, &ctts, &QueryOptions::default()).unwrap();
        // Find a midpoint that actually splits the op stream.
        let span: u64 = ctts.iter().map(|c| c.app_time).max().unwrap();
        let w = Window {
            start_ns: 0,
            end_ns: span / 2,
        };
        let opts = QueryOptions {
            window: Some(w),
            ..Default::default()
        };
        let got = query_ctts(&cst, &ctts, &opts).unwrap();
        assert_eq!(got.strategy, StrategyUsed::PartialExpansion);
        let oracle = query_by_decompression_windowed(&cst, &ctts, Some(w)).unwrap();
        assert_eq!(got.matrix, oracle.matrix);
        assert_eq!(got.profile, oracle.profile);
        assert_eq!(got.totals, oracle.totals);
        assert_eq!(got.hotspots, oracle.hotspots);
        assert!(got.total_calls() < full.total_calls());
        assert!(got.total_calls() > 0);
        // Full-span window equals the unwindowed expansion result.
        let all = query_ctts(
            &cst,
            &ctts,
            &QueryOptions {
                window: Some(Window {
                    start_ns: 0,
                    end_ns: u64::MAX,
                }),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(all.matrix, full.matrix);
        assert_eq!(all.profile, full.profile);
        assert_eq!(all.totals, full.totals);
    }

    #[test]
    fn empty_input_is_an_error() {
        let (cst, _) = compile("fn main() { barrier(); }", 1);
        assert!(matches!(
            query_ctts::<Ctt>(&cst, &[], &QueryOptions::default()),
            Err(QueryError::Invalid(_))
        ));
    }
}
