//! Per-GID hot-spot attribution with call-path provenance.
//!
//! A decompressed record stream can tell you *which op* was hot; only the
//! tree can tell you *where in the program* — which loop nest and which
//! branch arm the volume came from. Each [`HotSpot`] carries the CST
//! call path from the root to the communication leaf, rendered from the
//! vertex tags (`Loop`, `PseudoLoop`, `BrT`/`BrE`) plus GIDs so spots are
//! clickable back into `cypress dump`'s tree view.

use cypress_cst::tree::VertexKind;
use cypress_cst::Cst;
use cypress_trace::MpiOp;

/// Communication volume attributed to one CST leaf.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HotSpot {
    /// CST GID of the communication leaf.
    pub gid: u32,
    pub op: MpiOp,
    /// Total calls at this leaf across all ranks.
    pub calls: u64,
    /// Sender-attributed point-to-point bytes (same rule as the
    /// communication matrix, so hot-spot volumes sum to the matrix total).
    pub bytes: u64,
    /// Loop/branch provenance: the leaf's ancestor chain rendered as
    /// `Loop#3 > BrT#5`, empty for a top-level call.
    pub path: String,
}

impl HotSpot {
    pub(crate) fn new(cst: &Cst, gid: u32, calls: u64, bytes: u64) -> HotSpot {
        let v = cst.vertex(gid as usize);
        let op = match v.kind {
            VertexKind::Mpi { op, .. } => op,
            // Non-leaf GIDs never accumulate calls; keep a stable value for
            // robustness against malformed inputs.
            _ => MpiOp::Barrier,
        };
        HotSpot {
            gid,
            op,
            calls,
            bytes,
            path: render_path(cst, gid as usize),
        }
    }
}

/// Render the ancestor chain of `gid` (root and the leaf itself excluded).
fn render_path(cst: &Cst, gid: usize) -> String {
    let mut chain = Vec::new();
    let mut cur = cst.vertex(gid).parent;
    while let Some(p) = cur {
        let v = cst.vertex(p);
        if !matches!(v.kind, VertexKind::Root) {
            chain.push(format!("{}#{}", v.kind.tag(), p));
        }
        cur = v.parent;
    }
    chain.reverse();
    chain.join(" > ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cypress_cst::analyze_program;
    use cypress_minilang::{check_program, parse};

    #[test]
    fn path_names_loop_and_branch_ancestors() {
        let p = parse(
            r#"fn main() {
                for i in 0..4 {
                    if rank() == 0 { send(1, 64, 0); }
                }
            }"#,
        )
        .unwrap();
        check_program(&p).unwrap();
        let info = analyze_program(&p);
        let send_gid = (0..info.cst.len())
            .find(|&i| info.cst.vertex(i).kind.is_mpi())
            .expect("has a send leaf");
        let h = HotSpot::new(&info.cst, send_gid as u32, 4, 256);
        assert_eq!(h.op, MpiOp::Send);
        assert!(h.path.contains("Loop#"), "path: {}", h.path);
        assert!(h.path.contains("BrT#"), "path: {}", h.path);
        assert!(h.path.contains(" > "), "path: {}", h.path);
    }
}
