//! Container-backed query entry points: analyze a `.cytc` file in place.
//!
//! This is the payoff of the compressed-domain engine — a container is no
//! longer an archive you must decompress to use, but a directly servable
//! analysis artifact. Per-rank CTT sections are preferred when the file
//! carries a complete set (per-rank timing is exact); otherwise the query
//! runs on the merged tree, whose group-aggregated timing is what the
//! format stores.

use crate::engine::{query_ctts, query_merged};
use crate::{QueryError, QueryOptions, QueryResult};
use cypress_core::Ctt;
use cypress_cst::Cst;
use cypress_trace::{Codec, Container, ContainerError, SectionKind};
use std::path::Path;

/// Query an already-parsed container.
pub fn query_container(c: &Container, opts: &QueryOptions) -> Result<QueryResult, QueryError> {
    let cst_section = c.find(SectionKind::CstText).ok_or(QueryError::Container(
        ContainerError::MissingSection("cst-text"),
    ))?;
    let cst_text = std::str::from_utf8(&cst_section.payload)
        .map_err(|e| QueryError::BadCst(format!("cst section is not utf-8: {e}")))?;
    let cst = Cst::from_text(cst_text).map_err(QueryError::BadCst)?;

    let rank_ctts: Vec<Ctt> = c
        .rank_sections()
        .map(|s| Ctt::from_bytes(&s.payload))
        .collect::<Result<_, _>>()?;
    // A complete per-rank set (one CTT per rank 0..nprocs) gives exact
    // per-rank timing; anything less falls through to the merged tree.
    let complete = rank_ctts.len() as u32 == c.nprocs
        && (0..c.nprocs).all(|r| rank_ctts.iter().any(|ctt| ctt.rank == r));
    if complete && c.nprocs > 0 {
        return query_ctts(&cst, &rank_ctts, opts);
    }
    if let Some(s) = c.find(SectionKind::MergedCtt) {
        let merged = cypress_core::MergedCtt::from_bytes(&s.payload)?;
        return query_merged(&cst, &merged, opts);
    }
    Err(QueryError::Container(ContainerError::MissingSection(
        "merged-ctt or complete rank-ctt set",
    )))
}

/// Parse a container image and query it.
pub fn query_container_bytes(bytes: &[u8], opts: &QueryOptions) -> Result<QueryResult, QueryError> {
    let c = Container::from_bytes(bytes)?;
    query_container(&c, opts)
}

/// Read, verify, and query a `.cytc` file.
pub fn query_container_path(
    path: impl AsRef<Path>,
    opts: &QueryOptions,
) -> Result<QueryResult, QueryError> {
    let c = Container::read_file(path)?;
    query_container(&c, opts)
}
