//! Compressed-domain query engine: analyze traces directly on the CTT.
//!
//! Every analysis the repo had so far — communication matrices
//! ([`cypress_trace::CommMatrix`]), mpiP-style profiles
//! ([`cypress_trace::Profile`]), the simulator feed — first decompressed the
//! CTT back into an O(events) record stream, paying event-proportional time
//! and memory and throwing away the structure the compressor worked to keep.
//! This crate evaluates the same analyses **directly on the compressed
//! representation** in O(|CTT|): a leaf record whose `count` says its
//! parameters repeated a million times contributes to every aggregate with
//! one multiplication, relative-rank encodings (`rank ± c`) are resolved
//! per member rank of a merged group without materializing per-rank trees,
//! and loop iteration-count sequences yield total trip counts from their
//! stride segments in closed form ([`cypress_core::IntSeq::sum`]).
//!
//! The engine answers five queries in one pass (one [`QueryResult`]):
//!
//! * the P×P point-to-point **communication-volume matrix**,
//! * the mpiP-style **per-op profile** (calls, bytes, min/mean/max time,
//!   message-size histogram, per-rank MPI/app time),
//! * per-rank **send/recv byte totals** and call counts,
//! * total **op/call counts**,
//! * a **hot-spot report** attributing volume to CST GIDs with full
//!   loop/branch call-path provenance — something a decompressed record
//!   stream cannot produce at all, because decompression erases the tree.
//!
//! ## Symbolic vs partial expansion
//!
//! All supported analyses are *multiset* functions — order-independent
//! aggregates — so the symbolic fold is exact whenever decompression itself
//! is sequence-exact. The one approximate corner of the format is recursion:
//! pseudo-loop replay is multiset-preserving per iteration but its leaf
//! cursors may redistribute occurrences across visits. For such programs
//! [`Strategy::Auto`] falls back to **bounded partial expansion**: the CTT
//! is streamed through [`cypress_core::decompress_into`] directly into the
//! same accumulators — O(events) time but O(1) extra memory, never a
//! materialized trace. Wildcard receives need no fallback: volume is
//! attributed at the sender, and receive byte totals come from the posted
//! counts, not the resolved source.
//!
//! Results are pinned byte-for-byte against the decompress-then-analyze
//! reference ([`query_by_decompression`]) across the bundled workloads and
//! the random-program suite (`tests/query_equivalence.rs`,
//! `tests/random_programs.rs` in the umbrella crate).

mod accum;
mod container;
mod engine;
mod hotspot;
mod wire;

pub use container::{query_container, query_container_bytes, query_container_path};
pub use engine::{
    needs_expansion, query_by_decompression, query_by_decompression_windowed, query_ctts,
    query_merged,
};
pub use hotspot::HotSpot;
pub use wire::{json_escape, QUERY_WIRE_VERSION, QUERY_WIRE_VERSION_WINDOWED};

use cypress_trace::{CommMatrix, MpiOp, Profile};
use std::fmt;

/// How to evaluate a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Symbolic when exact, partial expansion when the program's CST
    /// contains recursion pseudo-loops (the format's one approximate
    /// construct). The right default.
    #[default]
    Auto,
    /// Always evaluate symbolically in O(|CTT|). For recursive programs
    /// this aggregates the stored records directly, which may differ from
    /// replay-based results when pseudo-loop replay redistributes
    /// occurrences.
    Symbolic,
    /// Always stream-decompress into the accumulators (O(events) time,
    /// O(1) extra memory).
    PartialExpansion,
}

/// Which evaluation path actually ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategyUsed {
    /// Closed-form fold over the CTT.
    Symbolic,
    /// Streaming replay into the accumulators.
    PartialExpansion,
    /// The decompress-then-analyze oracle ([`query_by_decompression`]).
    Reference,
}

impl StrategyUsed {
    pub fn name(self) -> &'static str {
        match self {
            StrategyUsed::Symbolic => "symbolic",
            StrategyUsed::PartialExpansion => "partial-expansion",
            StrategyUsed::Reference => "reference",
        }
    }
}

/// A half-open time interval `[start_ns, end_ns)` over reconstructed replay
/// timestamps (the clock `cypress_core::replay_to_records` rebuilds from
/// the compressed gap/duration statistics). Windowed queries restrict which
/// *operations* are aggregated — an op counts iff its start time falls in
/// the window; whole-trace quantities that are not per-op (per-rank app
/// time, total loop trips) are reported unrestricted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Window {
    pub start_ns: u64,
    pub end_ns: u64,
}

impl Window {
    pub fn contains(&self, t_ns: u64) -> bool {
        t_ns >= self.start_ns && t_ns < self.end_ns
    }
}

/// Query knobs.
#[derive(Debug, Clone)]
pub struct QueryOptions {
    pub strategy: Strategy,
    /// Maximum hot spots retained in [`QueryResult::hotspots`] *rendering*;
    /// the result always accumulates every GID so volumes sum exactly.
    pub hotspot_limit: usize,
    /// Restrict aggregation to ops starting within this window. Timestamps
    /// require the replay clock, so a window always evaluates via partial
    /// expansion (O(events)), whatever strategy was requested.
    pub window: Option<Window>,
}

impl Default for QueryOptions {
    fn default() -> Self {
        QueryOptions {
            strategy: Strategy::Auto,
            hotspot_limit: 10,
            window: None,
        }
    }
}

/// Per-rank point-to-point byte totals and call counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RankTotals {
    /// Bytes this rank sent via send-like ops (`count`, clamped at 0).
    pub send_bytes: u64,
    /// Bytes this rank received via recv-like ops (posted counts; the
    /// receive side of `Sendrecv` uses `rcount`).
    pub recv_bytes: u64,
    /// All MPI calls made by this rank.
    pub calls: u64,
}

/// The combined answer of one query pass.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    pub nprocs: u32,
    pub strategy: StrategyUsed,
    /// P×P point-to-point volume matrix (sender-attributed).
    pub matrix: CommMatrix,
    /// mpiP-style per-op/per-rank profile.
    pub profile: Profile,
    /// Per-rank totals, indexed by rank.
    pub totals: Vec<RankTotals>,
    /// Per-GID volume attribution, heaviest first (all GIDs with calls).
    pub hotspots: Vec<HotSpot>,
    /// Total loop iterations executed across all ranks (closed-form from
    /// the stored iteration-count sequences).
    pub loop_trips: u64,
}

impl QueryResult {
    /// Total point-to-point communication volume (matrix sum).
    pub fn total_volume(&self) -> u64 {
        self.matrix.total()
    }

    /// Sum of per-GID hot-spot volumes; equals [`QueryResult::total_volume`]
    /// because both apply the same sender-attribution rule.
    pub fn hotspot_volume(&self) -> u64 {
        self.hotspots.iter().map(|h| h.bytes).sum()
    }

    /// Per-op call counts, in stable op order.
    pub fn op_counts(&self) -> Vec<(MpiOp, u64)> {
        self.profile
            .by_op
            .iter()
            .map(|(op, s)| (*op, s.calls))
            .collect()
    }

    /// Total MPI calls across ranks.
    pub fn total_calls(&self) -> u64 {
        self.profile.total_calls()
    }

    /// Render a human-readable report: profile, per-rank totals, and the
    /// top-`limit` hot spots with call-path provenance.
    pub fn render(&self, limit: usize) -> String {
        use std::fmt::Write;
        let mut out = self.profile.report();
        writeln!(
            out,
            "\nPer-rank totals ({} ranks, {} p2p bytes total):",
            self.nprocs,
            self.total_volume()
        )
        .unwrap();
        writeln!(
            out,
            "{:<6} {:>14} {:>14} {:>10}",
            "rank", "send_bytes", "recv_bytes", "calls"
        )
        .unwrap();
        for (r, t) in self.totals.iter().enumerate() {
            writeln!(
                out,
                "{:<6} {:>14} {:>14} {:>10}",
                r, t.send_bytes, t.recv_bytes, t.calls
            )
            .unwrap();
        }
        writeln!(
            out,
            "\nHot spots by GID (top {} of {}, {} loop trips total):",
            limit.min(self.hotspots.len()),
            self.hotspots.len(),
            self.loop_trips
        )
        .unwrap();
        writeln!(
            out,
            "{:<6} {:<14} {:>10} {:>14}  path",
            "gid", "op", "calls", "bytes"
        )
        .unwrap();
        for h in self.hotspots.iter().take(limit) {
            writeln!(
                out,
                "{:<6} {:<14} {:>10} {:>14}  {}",
                h.gid,
                h.op.name(),
                h.calls,
                h.bytes,
                h.path
            )
            .unwrap();
        }
        out
    }
}

/// Query-engine errors (container access, malformed payloads, bad inputs).
#[derive(Debug)]
pub enum QueryError {
    Container(cypress_trace::ContainerError),
    Decode(cypress_trace::DecodeError),
    /// CST text section failed to parse.
    BadCst(String),
    /// Structurally invalid input (empty CTT set, rank out of range, …).
    Invalid(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Container(e) => write!(f, "query container error: {e}"),
            QueryError::Decode(e) => write!(f, "query decode error: {e}"),
            QueryError::BadCst(e) => write!(f, "query cst error: {e}"),
            QueryError::Invalid(e) => write!(f, "invalid query input: {e}"),
        }
    }
}

impl std::error::Error for QueryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QueryError::Container(e) => Some(e),
            QueryError::Decode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<cypress_trace::ContainerError> for QueryError {
    fn from(e: cypress_trace::ContainerError) -> Self {
        QueryError::Container(e)
    }
}

impl From<cypress_trace::DecodeError> for QueryError {
    fn from(e: cypress_trace::DecodeError) -> Self {
        QueryError::Decode(e)
    }
}
