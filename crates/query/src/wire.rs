//! Canonical wire and JSON serializations of query inputs and answers.
//!
//! The resident query daemon (`cypress queryd`) ships [`QueryOptions`]
//! request blobs and [`QueryResult`] response blobs over the net transport.
//! Both are self-versioned: the first byte is [`QUERY_WIRE_VERSION`], so the
//! frame layer can treat them as opaque bytes and the daemon can reject
//! mismatched clients with a clean error instead of a mis-parse. The
//! encoding is canonical — equal results produce identical bytes — which is
//! what lets the remote-query tests assert byte-for-byte identity against
//! local evaluation.
//!
//! [`QueryResult::render_json`] is the script-facing twin: a deterministic,
//! dependency-free JSON rendering with stable key order, used by
//! `cypress query --json` / `cypress inspect --json` so the queryd smoke
//! test can diff local and remote answers structurally.

use crate::{HotSpot, QueryOptions, QueryResult, RankTotals, Strategy, StrategyUsed, Window};
use cypress_trace::{
    Codec, CommMatrix, DecodeError, DecodeResult, Decoder, Encoder, MpiOp, Profile,
};

/// Version byte leading every [`QueryOptions`] / [`QueryResult`] blob.
pub const QUERY_WIRE_VERSION: u8 = 1;

/// Options version used only when a [`Window`] is present. Windowless
/// options still encode as version 1 byte-for-byte, so new clients talk to
/// old daemons unchanged; an old daemon receiving version-2 options rejects
/// them with a clean version error instead of a mis-parse.
pub const QUERY_WIRE_VERSION_WINDOWED: u8 = 2;

fn check_version(dec: &mut Decoder<'_>, what: &str) -> DecodeResult<()> {
    let v = dec.get_u8()?;
    if v != QUERY_WIRE_VERSION {
        return Err(DecodeError(format!(
            "{what} wire version {v} unsupported (expected {QUERY_WIRE_VERSION})"
        )));
    }
    Ok(())
}

impl Codec for RankTotals {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_uvar(self.send_bytes);
        enc.put_uvar(self.recv_bytes);
        enc.put_uvar(self.calls);
    }

    fn decode(dec: &mut Decoder<'_>) -> DecodeResult<Self> {
        Ok(RankTotals {
            send_bytes: dec.get_uvar()?,
            recv_bytes: dec.get_uvar()?,
            calls: dec.get_uvar()?,
        })
    }
}

impl Codec for HotSpot {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_uvar(self.gid as u64);
        enc.put_u8(self.op.code());
        enc.put_uvar(self.calls);
        enc.put_uvar(self.bytes);
        enc.put_str(&self.path);
    }

    fn decode(dec: &mut Decoder<'_>) -> DecodeResult<Self> {
        let gid = dec.get_uvar()? as u32;
        let code = dec.get_u8()?;
        let op = MpiOp::from_code(code)
            .ok_or_else(|| DecodeError(format!("unknown MPI op code {code} in hot spot")))?;
        Ok(HotSpot {
            gid,
            op,
            calls: dec.get_uvar()?,
            bytes: dec.get_uvar()?,
            path: dec.get_str()?,
        })
    }
}

impl StrategyUsed {
    fn code(self) -> u8 {
        match self {
            StrategyUsed::Symbolic => 0,
            StrategyUsed::PartialExpansion => 1,
            StrategyUsed::Reference => 2,
        }
    }

    fn from_code(c: u8) -> Option<StrategyUsed> {
        Some(match c {
            0 => StrategyUsed::Symbolic,
            1 => StrategyUsed::PartialExpansion,
            2 => StrategyUsed::Reference,
            _ => return None,
        })
    }
}

impl Strategy {
    fn code(self) -> u8 {
        match self {
            Strategy::Auto => 0,
            Strategy::Symbolic => 1,
            Strategy::PartialExpansion => 2,
        }
    }

    fn from_code(c: u8) -> Option<Strategy> {
        Some(match c {
            0 => Strategy::Auto,
            1 => Strategy::Symbolic,
            2 => Strategy::PartialExpansion,
            _ => return None,
        })
    }
}

impl Codec for QueryOptions {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(if self.window.is_some() {
            QUERY_WIRE_VERSION_WINDOWED
        } else {
            QUERY_WIRE_VERSION
        });
        enc.put_u8(self.strategy.code());
        enc.put_uvar(self.hotspot_limit as u64);
        if let Some(w) = self.window {
            enc.put_uvar(w.start_ns);
            enc.put_uvar(w.end_ns);
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> DecodeResult<Self> {
        let v = dec.get_u8()?;
        if v != QUERY_WIRE_VERSION && v != QUERY_WIRE_VERSION_WINDOWED {
            return Err(DecodeError(format!(
                "query options wire version {v} unsupported (expected {QUERY_WIRE_VERSION} or {QUERY_WIRE_VERSION_WINDOWED})"
            )));
        }
        let code = dec.get_u8()?;
        let strategy = Strategy::from_code(code)
            .ok_or_else(|| DecodeError(format!("unknown strategy code {code}")))?;
        let hotspot_limit = dec.get_uvar()? as usize;
        let window = if v == QUERY_WIRE_VERSION_WINDOWED {
            Some(Window {
                start_ns: dec.get_uvar()?,
                end_ns: dec.get_uvar()?,
            })
        } else {
            None
        };
        Ok(QueryOptions {
            strategy,
            hotspot_limit,
            window,
        })
    }
}

impl Codec for QueryResult {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(QUERY_WIRE_VERSION);
        enc.put_uvar(self.nprocs as u64);
        enc.put_u8(self.strategy.code());
        self.matrix.encode(enc);
        self.profile.encode(enc);
        enc.put_uvar(self.totals.len() as u64);
        for t in &self.totals {
            t.encode(enc);
        }
        enc.put_uvar(self.hotspots.len() as u64);
        for h in &self.hotspots {
            h.encode(enc);
        }
        enc.put_uvar(self.loop_trips);
    }

    fn decode(dec: &mut Decoder<'_>) -> DecodeResult<Self> {
        check_version(dec, "query result")?;
        let nprocs = dec.get_uvar()? as u32;
        let code = dec.get_u8()?;
        let strategy = StrategyUsed::from_code(code)
            .ok_or_else(|| DecodeError(format!("unknown strategy-used code {code}")))?;
        let matrix = CommMatrix::decode(dec)?;
        let profile = Profile::decode(dec)?;
        let ntotals = dec.get_uvar()? as usize;
        if ntotals > dec.remaining() {
            return Err(DecodeError(format!(
                "query result claims {ntotals} rank totals but only {} bytes remain",
                dec.remaining()
            )));
        }
        let mut totals = Vec::with_capacity(ntotals);
        for _ in 0..ntotals {
            totals.push(RankTotals::decode(dec)?);
        }
        let nspots = dec.get_uvar()? as usize;
        if nspots > dec.remaining() {
            return Err(DecodeError(format!(
                "query result claims {nspots} hot spots but only {} bytes remain",
                dec.remaining()
            )));
        }
        let mut hotspots = Vec::with_capacity(nspots);
        for _ in 0..nspots {
            hotspots.push(HotSpot::decode(dec)?);
        }
        Ok(QueryResult {
            nprocs,
            strategy,
            matrix,
            profile,
            totals,
            hotspots,
            loop_trips: dec.get_uvar()?,
        })
    }
}

/// Escape a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn push_u64_array(out: &mut String, vals: impl Iterator<Item = u64>) {
    use std::fmt::Write;
    out.push('[');
    for (i, v) in vals.enumerate() {
        if i > 0 {
            out.push(',');
        }
        write!(out, "{v}").unwrap();
    }
    out.push(']');
}

impl QueryResult {
    /// Deterministic JSON rendering with stable key order — the structural
    /// twin of the wire encoding, consumed by `--json` CLI modes and the
    /// queryd loopback smoke test. No floats are emitted (mean times are
    /// derivable from totals), so output is bit-stable across platforms.
    pub fn render_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        write!(
            out,
            "{{\"nprocs\":{},\"strategy\":\"{}\",\"loop_trips\":{},\"total_volume\":{},\"total_calls\":{}",
            self.nprocs,
            self.strategy.name(),
            self.loop_trips,
            self.total_volume(),
            self.total_calls()
        )
        .unwrap();

        out.push_str(",\"matrix\":[");
        for s in 0..self.matrix.nprocs {
            if s > 0 {
                out.push(',');
            }
            push_u64_array(
                &mut out,
                (0..self.matrix.nprocs).map(|d| self.matrix.get(s, d)),
            );
        }
        out.push(']');

        out.push_str(",\"profile\":{\"by_op\":{");
        for (i, (op, s)) in self.profile.by_op.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write!(
                out,
                "\"{}\":{{\"calls\":{},\"total_bytes\":{},\"total_time_ns\":{},\"min_time_ns\":{},\"max_time_ns\":{}}}",
                json_escape(op.name()),
                s.calls,
                s.total_bytes,
                s.total_time_ns,
                s.min_time_ns,
                s.max_time_ns
            )
            .unwrap();
        }
        out.push_str("},\"rank_mpi_time\":");
        push_u64_array(&mut out, self.profile.rank_mpi_time.iter().copied());
        out.push_str(",\"rank_app_time\":");
        push_u64_array(&mut out, self.profile.rank_app_time.iter().copied());
        out.push_str(",\"size_buckets\":");
        push_u64_array(&mut out, self.profile.size_buckets.iter().copied());
        out.push('}');

        out.push_str(",\"totals\":[");
        for (i, t) in self.totals.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write!(
                out,
                "{{\"rank\":{},\"send_bytes\":{},\"recv_bytes\":{},\"calls\":{}}}",
                i, t.send_bytes, t.recv_bytes, t.calls
            )
            .unwrap();
        }
        out.push(']');

        out.push_str(",\"hotspots\":[");
        for (i, h) in self.hotspots.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write!(
                out,
                "{{\"gid\":{},\"op\":\"{}\",\"calls\":{},\"bytes\":{},\"path\":\"{}\"}}",
                h.gid,
                json_escape(h.op.name()),
                h.calls,
                h.bytes,
                json_escape(&h.path)
            )
            .unwrap();
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_roundtrip_and_version_gate() {
        let opts = QueryOptions {
            strategy: Strategy::Symbolic,
            hotspot_limit: 25,
            window: None,
        };
        let bytes = opts.to_bytes();
        assert_eq!(bytes[0], QUERY_WIRE_VERSION);
        let back = QueryOptions::from_bytes(&bytes).unwrap();
        assert_eq!(back.strategy, Strategy::Symbolic);
        assert_eq!(back.hotspot_limit, 25);
        assert_eq!(back.window, None);

        let mut bad = bytes.clone();
        bad[0] = 99;
        let err = QueryOptions::from_bytes(&bad).unwrap_err();
        assert!(err.0.contains("wire version 99"), "{}", err.0);
    }

    #[test]
    fn windowed_options_use_v2_and_roundtrip() {
        let opts = QueryOptions {
            strategy: Strategy::Auto,
            hotspot_limit: 10,
            window: Some(Window {
                start_ns: 1_000,
                end_ns: 9_999,
            }),
        };
        let bytes = opts.to_bytes();
        assert_eq!(bytes[0], QUERY_WIRE_VERSION_WINDOWED);
        let back = QueryOptions::from_bytes(&bytes).unwrap();
        assert_eq!(
            back.window,
            Some(Window {
                start_ns: 1_000,
                end_ns: 9_999
            })
        );
        // Windowless encoding is still plain v1 — byte-compatible with old
        // daemons.
        assert_eq!(QueryOptions::default().to_bytes()[0], QUERY_WIRE_VERSION);
    }

    #[test]
    fn json_escape_controls_and_quotes() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
