//! Streaming compression sessions.
//!
//! The paper's PMPI layer compresses *online*: every traced call lands in
//! the CTT immediately and only the finished per-process trees are merged at
//! `MPI_Finalize` (§IV, Fig. 13). [`CompressSession`] is that layer as a
//! first-class object: a per-rank [`IntraCompressor`] plus the accounting a
//! long-running tracer needs —
//!
//! * **periodic CTT size checkpoints** (every [`SessionConfig::checkpoint_every`]
//!   events the live footprint is sampled and the peak retained), the
//!   Fig. 16 "flat compressor memory" claim measured continuously instead of
//!   once at the end;
//! * **backpressure accounting** against an optional soft byte budget —
//!   a real deployment would throttle or spill when the CTT outgrows its
//!   arena; we count the violations so schedulers can react.
//!
//! A session holds **bounded memory**: the CTT plus O(open-structures)
//! bookkeeping, never the raw event stream. Feeding a session during
//! execution produces a byte-identical CTT to offline
//! [`compress_trace`](crate::compress::compress_trace) on a recorded trace
//! (pinned by `online_sink_equals_offline_compression` and the
//! streaming-vs-batch suite in the umbrella crate).

use crate::compress::{CompressConfig, IntraCompressor};
use crate::ctt::Ctt;
use cypress_cst::Cst;
use cypress_obs::{Counter, Gauge};
use cypress_trace::event::{Event, EventSink};
use std::sync::OnceLock;

/// Session instrumentation handles (scope `session`), aggregated across all
/// concurrently live sessions in the process.
struct SessionMetrics {
    /// Sessions opened.
    opened: Counter,
    /// Sessions finished into a CTT.
    finished: Counter,
    /// Events streamed through sessions.
    events: Counter,
    /// Size checkpoints taken.
    checkpoints: Counter,
    /// Checkpoints that found the CTT above the soft budget.
    budget_violations: Counter,
    /// High-water live CTT footprint over all sessions.
    peak_ctt_bytes: Gauge,
}

fn obs() -> &'static SessionMetrics {
    static M: OnceLock<SessionMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let s = cypress_obs::scope("session");
        SessionMetrics {
            opened: s.counter("opened"),
            finished: s.counter("finished"),
            events: s.counter("events"),
            checkpoints: s.counter("checkpoints"),
            budget_violations: s.counter("budget_violations"),
            peak_ctt_bytes: s.gauge("peak_ctt_bytes"),
        }
    })
}

/// Streaming-session knobs (orthogonal to [`CompressConfig`], which shapes
/// the compression itself).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionConfig {
    /// Sample the live CTT footprint every this many events. Sampling walks
    /// the vertex data (O(vertices)), so it is periodic rather than
    /// per-event.
    pub checkpoint_every: u64,
    /// Soft budget on the live CTT footprint; checkpoints above it count as
    /// backpressure violations in [`SessionStats::budget_violations`].
    /// `None` disables the check.
    pub soft_budget_bytes: Option<usize>,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            checkpoint_every: 4096,
            soft_budget_bytes: None,
        }
    }
}

/// Progress and footprint accounting of one session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionStats {
    /// Total events pushed (structure markers + MPI records).
    pub events: u64,
    /// MPI records among them.
    pub mpi_events: u64,
    /// Serialized size of the raw MPI records streamed through the session
    /// — the "uncompressed trace" numerator of the container's compression
    /// ratio, accounted online so it never requires keeping the raw trace.
    pub raw_mpi_bytes: u64,
    /// Size checkpoints taken.
    pub checkpoints: u64,
    /// Checkpoints that found the CTT above the soft budget.
    pub budget_violations: u64,
    /// Largest live CTT footprint observed at any checkpoint (or finish).
    pub peak_ctt_bytes: usize,
    /// Live CTT footprint at finish.
    pub final_ctt_bytes: usize,
}

impl SessionStats {
    /// Peak resident bytes per streamed event — the bounded-memory headline
    /// (a raw tracer's resident set grows linearly; a session's stays flat).
    pub fn peak_bytes_per_event(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.peak_ctt_bytes as f64 / self.events as f64
        }
    }
}

/// A per-rank online compression session. Feed events with
/// [`CompressSession::push`] (or via [`EventSink`]), then call
/// [`CompressSession::finish`] to obtain the CTT and the session stats.
pub struct CompressSession<'a> {
    inner: IntraCompressor<'a>,
    cfg: SessionConfig,
    stats: SessionStats,
    /// Timeline-trace accumulator: first push timestamp and total ns spent
    /// inside the session (push/push_batch/checkpoint). The session's work
    /// interleaves with the interpreter on the same thread, so at finish we
    /// emit one synthetic `Complete` span of the *accumulated* duration
    /// anchored at the first push — it nests inside the enclosing rank span
    /// and splits interpreter-vs-session time exactly.
    trace_first_ns: Option<u64>,
    trace_accum_ns: u64,
}

impl<'a> CompressSession<'a> {
    pub fn new(
        cst: &'a Cst,
        rank: u32,
        nprocs: u32,
        compress: CompressConfig,
        cfg: SessionConfig,
    ) -> Self {
        if cypress_obs::enabled() {
            obs().opened.inc();
        }
        CompressSession {
            inner: IntraCompressor::new(cst, rank, nprocs, compress),
            cfg,
            stats: SessionStats::default(),
            trace_first_ns: None,
            trace_accum_ns: 0,
        }
    }

    #[inline]
    fn trace_start(&mut self) -> Option<u64> {
        if cypress_obs::trace_enabled() {
            let now = cypress_obs::trace_now_ns();
            if self.trace_first_ns.is_none() {
                self.trace_first_ns = Some(now);
            }
            Some(now)
        } else {
            None
        }
    }

    #[inline]
    fn trace_stop(&mut self, t0: Option<u64>) {
        if let Some(t0) = t0 {
            self.trace_accum_ns += cypress_obs::trace_now_ns().saturating_sub(t0);
        }
    }

    /// Feed one event; periodically samples the live footprint.
    pub fn push(&mut self, ev: &Event) {
        let t0 = self.trace_start();
        self.inner.push(ev);
        self.stats.events += 1;
        if let Event::Mpi(rec) = ev {
            self.stats.mpi_events += 1;
            // Arithmetic varint sizing — the raw-trace numerator without
            // serializing each record into a scratch buffer.
            self.stats.raw_mpi_bytes += rec.encoded_len() as u64;
        }
        if self
            .stats
            .events
            .is_multiple_of(self.cfg.checkpoint_every.max(1))
        {
            self.checkpoint();
        }
        self.trace_stop(t0);
    }

    /// Feed a batch of events through the compressor's batched fast path.
    /// Equivalent to pushing each event in order — the batch is split at
    /// checkpoint boundaries so footprint sampling, budget accounting, and
    /// stats land on exactly the same event indices as the per-event path.
    pub fn push_batch(&mut self, evs: &[Event]) {
        let t0 = self.trace_start();
        let every = self.cfg.checkpoint_every.max(1);
        let mut rest = evs;
        while !rest.is_empty() {
            let until_checkpoint = (every - self.stats.events % every) as usize;
            let (chunk, tail) = rest.split_at(until_checkpoint.min(rest.len()));
            self.inner.push_batch(chunk);
            self.stats.events += chunk.len() as u64;
            for ev in chunk {
                if let Event::Mpi(rec) = ev {
                    self.stats.mpi_events += 1;
                    self.stats.raw_mpi_bytes += rec.encoded_len() as u64;
                }
            }
            if self.stats.events.is_multiple_of(every) {
                self.checkpoint();
            }
            rest = tail;
        }
        self.trace_stop(t0);
    }

    /// Sample the live CTT footprint now; returns the sampled byte count.
    pub fn checkpoint(&mut self) -> usize {
        let bytes = self.inner.approx_bytes();
        self.stats.checkpoints += 1;
        self.stats.peak_ctt_bytes = self.stats.peak_ctt_bytes.max(bytes);
        if let Some(budget) = self.cfg.soft_budget_bytes {
            if bytes > budget {
                self.stats.budget_violations += 1;
                if cypress_obs::enabled() {
                    obs().budget_violations.inc();
                }
            }
        }
        if cypress_obs::enabled() {
            let m = obs();
            m.checkpoints.inc();
            m.peak_ctt_bytes.set_max(bytes as i64);
        }
        cypress_obs::trace_instant("session", "checkpoint", bytes as u64);
        bytes
    }

    /// Accounting so far (peak bytes reflect the last checkpoint).
    pub fn stats(&self) -> &SessionStats {
        &self.stats
    }

    /// Current live CTT footprint (without recording a checkpoint).
    pub fn live_bytes(&self) -> usize {
        self.inner.approx_bytes()
    }

    /// Close the session: flush deferred wildcard receives, close open
    /// structures, and return the per-process CTT plus final stats.
    pub fn finish(mut self, app_time: u64) -> (Ctt, SessionStats) {
        let t0 = self.trace_start();
        let bytes = self.checkpoint();
        self.stats.final_ctt_bytes = bytes;
        if cypress_obs::enabled() {
            let m = obs();
            m.finished.inc();
            m.events.add(self.stats.events);
        }
        let ctt = self.inner.finish(app_time);
        if let Some(t0) = t0 {
            self.trace_accum_ns += cypress_obs::trace_now_ns().saturating_sub(t0);
        }
        if let Some(first) = self.trace_first_ns {
            // One synthetic span for the whole session: accumulated active
            // time anchored at the first push (see the field docs).
            cypress_obs::trace_complete(
                "session",
                "compress",
                first,
                self.trace_accum_ns,
                self.stats.events,
            );
        }
        (ctt, self.stats)
    }
}

impl EventSink for CompressSession<'_> {
    fn event(&mut self, ev: Event) {
        self.push(&ev);
    }

    fn events(&mut self, evs: &[Event]) {
        self.push_batch(evs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::compress_trace;
    use cypress_cst::analyze_program;
    use cypress_minilang::{check_program, parse};
    use cypress_runtime::{run_rank_with_sink, trace_rank, InterpConfig};

    const RING: &str = r#"fn main() {
        for k in 0..200 {
            let a = isend((rank() + 1) % size(), 256, 0);
            let b = irecv((rank() + size() - 1) % size(), 256, 0);
            waitall(a, b);
        }
        allreduce(8);
    }"#;

    #[test]
    fn session_equals_offline_compression() {
        let p = parse(RING).unwrap();
        check_program(&p).unwrap();
        let info = analyze_program(&p);
        for rank in 0..4u32 {
            let mut s = CompressSession::new(
                &info.cst,
                rank,
                4,
                CompressConfig::default(),
                SessionConfig::default(),
            );
            let app_time =
                run_rank_with_sink(&p, &info, rank, 4, &InterpConfig::default(), &mut s).unwrap();
            let (ctt, stats) = s.finish(app_time);
            let trace = trace_rank(&p, &info, rank, 4, &InterpConfig::default()).unwrap();
            let offline = compress_trace(&info.cst, &trace, &CompressConfig::default());
            assert_eq!(ctt, offline, "rank {rank}");
            assert_eq!(stats.events as usize, trace.events.len());
            assert_eq!(stats.mpi_events as usize, trace.mpi_count());
        }
    }

    #[test]
    fn checkpoints_track_peak_footprint() {
        let p = parse(RING).unwrap();
        check_program(&p).unwrap();
        let info = analyze_program(&p);
        let mut s = CompressSession::new(
            &info.cst,
            0,
            2,
            CompressConfig::default(),
            SessionConfig {
                checkpoint_every: 16,
                soft_budget_bytes: None,
            },
        );
        let app_time =
            run_rank_with_sink(&p, &info, 0, 2, &InterpConfig::default(), &mut s).unwrap();
        let (_, stats) = s.finish(app_time);
        assert!(stats.checkpoints > 10, "got {}", stats.checkpoints);
        assert!(stats.peak_ctt_bytes > 0);
        assert!(stats.final_ctt_bytes <= stats.peak_ctt_bytes);
        // 200 identical iterations stream through bounded memory: far below
        // one record per iteration.
        assert!(
            stats.peak_ctt_bytes < 16 * 1024,
            "CTT footprint should stay flat, got {}",
            stats.peak_ctt_bytes
        );
    }

    #[test]
    fn soft_budget_counts_violations() {
        let p = parse(RING).unwrap();
        check_program(&p).unwrap();
        let info = analyze_program(&p);
        let mut s = CompressSession::new(
            &info.cst,
            0,
            2,
            CompressConfig::default(),
            SessionConfig {
                checkpoint_every: 8,
                soft_budget_bytes: Some(1), // everything violates
            },
        );
        let app_time =
            run_rank_with_sink(&p, &info, 0, 2, &InterpConfig::default(), &mut s).unwrap();
        let (_, stats) = s.finish(app_time);
        assert_eq!(stats.budget_violations, stats.checkpoints);
        assert!(stats.peak_bytes_per_event() > 0.0);
    }
}
