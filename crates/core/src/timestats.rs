//! Communication-time recording (paper §IV-A).
//!
//! When repeated operations merge into one record, their durations are kept
//! statistically. The paper supports two modes: average + standard deviation,
//! and a histogram of the time distribution; both are implemented here.
//! Timing never participates in record *equality* — only the communication
//! parameters do.
//!
//! Mean/stddev aggregates are kept as **exact integer moment sums**
//! (`n`, `Σx`, `Σx²` in 128-bit arithmetic) rather than floating-point
//! Welford state. Integer addition is associative and commutative, so
//! [`TimeStats::merge`] yields bit-identical results no matter how a set of
//! partial aggregates is parenthesised — the property the distributed
//! binomial merge (ranks arriving over the network in any order) and
//! `merge_all_parallel` (machine-dependent chunking) both rely on for
//! canonical, byte-stable merged encodings. Mean and deviation are derived
//! on demand.

use cypress_trace::codec::{Codec, DecodeError, DecodeResult, Decoder, Encoder};

/// Which time representation the compressor keeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TimeMode {
    /// Mean and standard deviation (exact moment sums).
    #[default]
    MeanStd,
    /// Power-of-two bucket histogram of durations.
    Histogram,
    /// Record no timing at all (smallest traces).
    None,
}

/// Number of log2 buckets in histogram mode (bucket i holds durations in
/// `[2^i, 2^(i+1))` ns; bucket 0 holds `[0, 2)`).
pub const HIST_BUCKETS: usize = 40;

/// Aggregated timing of a merged record.
#[derive(Debug, Clone, PartialEq)]
pub enum TimeStats {
    MeanStd {
        n: u64,
        /// Exact Σx over all recorded durations (wrapping at 2^128, which is
        /// unreachable for ns-scale virtual times).
        sum: u128,
        /// Exact Σx².
        sumsq: u128,
        min: u64,
        max: u64,
    },
    Histogram {
        n: u64,
        buckets: Vec<u32>,
    },
    None,
}

impl TimeStats {
    pub fn new(mode: TimeMode) -> Self {
        match mode {
            TimeMode::MeanStd => TimeStats::MeanStd {
                n: 0,
                sum: 0,
                sumsq: 0,
                min: u64::MAX,
                max: 0,
            },
            TimeMode::Histogram => TimeStats::Histogram {
                n: 0,
                buckets: vec![0; HIST_BUCKETS],
            },
            TimeMode::None => TimeStats::None,
        }
    }

    /// Record one duration (ns).
    pub fn add(&mut self, dur: u64) {
        match self {
            TimeStats::MeanStd {
                n,
                sum,
                sumsq,
                min,
                max,
            } => {
                *n += 1;
                let x = dur as u128;
                *sum = sum.wrapping_add(x);
                *sumsq = sumsq.wrapping_add(x * x);
                *min = (*min).min(dur);
                *max = (*max).max(dur);
            }
            TimeStats::Histogram { n, buckets } => {
                *n += 1;
                let b = (64 - dur.leading_zeros()).min(HIST_BUCKETS as u32 - 1) as usize;
                buckets[b] += 1;
            }
            TimeStats::None => {}
        }
    }

    /// Merge another aggregate into this one (same mode required). Integer
    /// moment sums make this exactly associative and commutative.
    pub fn merge(&mut self, other: &TimeStats) {
        match (self, other) {
            (
                TimeStats::MeanStd {
                    n,
                    sum,
                    sumsq,
                    min,
                    max,
                },
                TimeStats::MeanStd {
                    n: n2,
                    sum: sum2,
                    sumsq: sumsq2,
                    min: min2,
                    max: max2,
                },
            ) => {
                *n += *n2;
                *sum = sum.wrapping_add(*sum2);
                *sumsq = sumsq.wrapping_add(*sumsq2);
                *min = (*min).min(*min2);
                *max = (*max).max(*max2);
            }
            (TimeStats::Histogram { n, buckets }, TimeStats::Histogram { n: n2, buckets: b2 }) => {
                *n += *n2;
                for (a, b) in buckets.iter_mut().zip(b2) {
                    *a += *b;
                }
            }
            (TimeStats::None, TimeStats::None) => {}
            _ => panic!("merging TimeStats of different modes"),
        }
    }

    pub fn count(&self) -> u64 {
        match self {
            TimeStats::MeanStd { n, .. } | TimeStats::Histogram { n, .. } => *n,
            TimeStats::None => 0,
        }
    }

    /// Mean duration (ns); histogram mode returns the bucket-midpoint mean.
    pub fn mean(&self) -> f64 {
        match self {
            TimeStats::MeanStd { n, sum, .. } => {
                if *n == 0 {
                    0.0
                } else {
                    *sum as f64 / *n as f64
                }
            }
            TimeStats::Histogram { n, buckets } => {
                if *n == 0 {
                    return 0.0;
                }
                let mut sum = 0.0;
                for (i, &c) in buckets.iter().enumerate() {
                    if c > 0 {
                        // Midpoint of [2^(i-1), 2^i) except bucket 0.
                        let mid = if i == 0 {
                            1.0
                        } else {
                            (1u64 << (i - 1)) as f64 * 1.5
                        };
                        sum += mid * c as f64;
                    }
                }
                sum / *n as f64
            }
            TimeStats::None => 0.0,
        }
    }

    /// Sample standard deviation (0 for <2 samples or histogram/none modes'
    /// approximation).
    pub fn stddev(&self) -> f64 {
        match self {
            TimeStats::MeanStd { n, sum, sumsq, .. } if *n >= 2 => {
                let nf = *n as f64;
                let s = *sum as f64;
                let var = ((*sumsq as f64 - s * s / nf) / (nf - 1.0)).max(0.0);
                var.sqrt()
            }
            _ => 0.0,
        }
    }

    pub fn approx_bytes(&self) -> usize {
        match self {
            TimeStats::MeanStd { .. } => 56,
            TimeStats::Histogram { buckets, .. } => 16 + buckets.len() * 4,
            TimeStats::None => 0,
        }
    }
}

/// Legacy quantized mean/std encoding (read-only compatibility).
const TAG_MEANSTD_V1: u8 = 0;
const TAG_HIST: u8 = 1;
const TAG_NONE: u8 = 2;
/// Exact integer-moment encoding (current writer).
const TAG_MEANSTD: u8 = 3;

fn put_u128(enc: &mut Encoder, v: u128) {
    enc.put_uvar((v >> 64) as u64);
    enc.put_uvar(v as u64);
}

fn get_u128(dec: &mut Decoder<'_>) -> DecodeResult<u128> {
    let hi = dec.get_uvar()? as u128;
    let lo = dec.get_uvar()? as u128;
    Ok((hi << 64) | lo)
}

impl Codec for TimeStats {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            TimeStats::MeanStd {
                n,
                sum,
                sumsq,
                min,
                max,
            } => {
                // Exact moments: re-encoding a decoded aggregate is
                // byte-stable, and merge order can never perturb the bytes.
                enc.put_u8(TAG_MEANSTD);
                enc.put_uvar(*n);
                put_u128(enc, *sum);
                put_u128(enc, *sumsq);
                enc.put_uvar(if *min == u64::MAX { 0 } else { *min });
                enc.put_uvar(*max);
            }
            TimeStats::Histogram { n, buckets } => {
                enc.put_u8(TAG_HIST);
                enc.put_uvar(*n);
                // Sparse encoding: only non-zero buckets.
                let nz = buckets.iter().filter(|&&c| c > 0).count();
                enc.put_uvar(nz as u64);
                for (i, &c) in buckets.iter().enumerate() {
                    if c > 0 {
                        enc.put_uvar(i as u64);
                        enc.put_uvar(c as u64);
                    }
                }
            }
            TimeStats::None => enc.put_u8(TAG_NONE),
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> DecodeResult<Self> {
        match dec.get_u8()? {
            TAG_MEANSTD => {
                let n = dec.get_uvar()?;
                let sum = get_u128(dec)?;
                let sumsq = get_u128(dec)?;
                let min = dec.get_uvar()?;
                let max = dec.get_uvar()?;
                Ok(TimeStats::MeanStd {
                    n,
                    sum,
                    sumsq,
                    min: if n == 0 { u64::MAX } else { min },
                    max,
                })
            }
            TAG_MEANSTD_V1 => {
                // Containers written before the exact-moment encoding stored
                // whole-ns mean and deviation; reconstruct approximate
                // moments so old files stay readable (statistics are within
                // the quantization error they already carried).
                let n = dec.get_uvar()?;
                let mean = dec.get_uvar()? as f64;
                let std = dec.get_uvar()? as f64;
                let min = dec.get_uvar()?;
                let max = dec.get_uvar()?;
                let sum = (mean * n as f64).round() as u128;
                let sumsq = if n >= 2 {
                    let nf = n as f64;
                    (std * std * (nf - 1.0) + mean * mean * nf).round() as u128
                } else {
                    (mean * mean * n as f64).round() as u128
                };
                Ok(TimeStats::MeanStd {
                    n,
                    sum,
                    sumsq,
                    min: if n == 0 { u64::MAX } else { min },
                    max,
                })
            }
            TAG_HIST => {
                let n = dec.get_uvar()?;
                let nz = dec.get_uvar()? as usize;
                let mut buckets = vec![0u32; HIST_BUCKETS];
                for _ in 0..nz {
                    let i = dec.get_uvar()? as usize;
                    let c = dec.get_uvar()? as u32;
                    if i >= HIST_BUCKETS {
                        return Err(DecodeError(format!("bucket index {i} out of range")));
                    }
                    buckets[i] = c;
                }
                Ok(TimeStats::Histogram { n, buckets })
            }
            TAG_NONE => Ok(TimeStats::None),
            t => Err(DecodeError(format!("bad TimeStats tag {t}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cypress_obs::rng::Rng;

    #[test]
    fn mean_and_stddev_basic() {
        let mut s = TimeStats::new(TimeMode::MeanStd);
        for d in [10u64, 20, 30] {
            s.add(d);
        }
        assert_eq!(s.count(), 3);
        assert!((s.mean() - 20.0).abs() < 1e-9);
        assert!((s.stddev() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn merge_matches_pooled_computation() {
        let xs = [3u64, 7, 7, 12, 100, 41];
        let mut a = TimeStats::new(TimeMode::MeanStd);
        let mut b = TimeStats::new(TimeMode::MeanStd);
        for &x in &xs[..3] {
            a.add(x);
        }
        for &x in &xs[3..] {
            b.add(x);
        }
        let mut all = TimeStats::new(TimeMode::MeanStd);
        for &x in &xs {
            all.add(x);
        }
        a.merge(&b);
        // Integer moments: the merged aggregate IS the pooled aggregate.
        assert_eq!(a, all);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = TimeStats::new(TimeMode::MeanStd);
        a.add(5);
        let b = TimeStats::new(TimeMode::MeanStd);
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged, a);
        let mut c = TimeStats::new(TimeMode::MeanStd);
        c.merge(&a);
        assert_eq!(c, a);
    }

    /// The property the distributed binomial merge depends on: any
    /// parenthesisation of any permutation-preserving partition of the same
    /// samples produces bit-identical aggregates and bytes.
    #[test]
    fn merge_is_exactly_associative_random() {
        let mut rng = Rng::new(0x0b10_ba55);
        for _ in 0..200 {
            let n = rng.range_usize(1..60);
            let xs: Vec<u64> = (0..n).map(|_| rng.range_u64(0..1_000_000_000)).collect();
            // Split into three parts, merge as (a+b)+c and a+(b+c).
            let i = rng.range_usize(0..n + 1);
            let j = rng.range_usize(i..n + 1);
            let agg = |slice: &[u64]| {
                let mut s = TimeStats::new(TimeMode::MeanStd);
                for &x in slice {
                    s.add(x);
                }
                s
            };
            let (a, b, c) = (agg(&xs[..i]), agg(&xs[i..j]), agg(&xs[j..]));
            let mut left = a.clone();
            left.merge(&b);
            left.merge(&c);
            let mut bc = b.clone();
            bc.merge(&c);
            let mut right = a.clone();
            right.merge(&bc);
            assert_eq!(left, right);
            assert_eq!(left.to_bytes(), right.to_bytes());
            assert_eq!(left, agg(&xs));
        }
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let mut s = TimeStats::new(TimeMode::Histogram);
        s.add(0);
        s.add(1);
        s.add(1024);
        s.add(1500);
        assert_eq!(s.count(), 4);
        let TimeStats::Histogram { buckets, .. } = &s else {
            panic!()
        };
        assert_eq!(buckets.iter().sum::<u32>(), 4);
        assert_eq!(buckets[11], 2); // 1024 and 1500 share [1024, 2048)
    }

    #[test]
    fn histogram_mean_is_plausible() {
        let mut s = TimeStats::new(TimeMode::Histogram);
        for _ in 0..100 {
            s.add(1000);
        }
        let m = s.mean();
        assert!(m > 500.0 && m < 2000.0, "mean {m}");
    }

    #[test]
    fn none_mode_records_nothing() {
        let mut s = TimeStats::new(TimeMode::None);
        s.add(42);
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn codec_round_trips_all_modes() {
        for mode in [TimeMode::MeanStd, TimeMode::Histogram, TimeMode::None] {
            let mut s = TimeStats::new(mode);
            for d in [5u64, 9, 9, 1000] {
                s.add(d);
            }
            let back = TimeStats::from_bytes(&s.to_bytes()).unwrap();
            // Exact moments round trip losslessly, and the encoding is
            // canonical: re-encoding is byte-stable.
            assert_eq!(back, s);
            assert_eq!(back.to_bytes(), s.to_bytes());
        }
    }

    #[test]
    fn codec_empty_and_single_sample() {
        for samples in [vec![], vec![77u64]] {
            let mut s = TimeStats::new(TimeMode::MeanStd);
            for d in &samples {
                s.add(*d);
            }
            let back = TimeStats::from_bytes(&s.to_bytes()).unwrap();
            assert_eq!(back.count(), samples.len() as u64);
            assert_eq!(back, s);
            assert_eq!(back.to_bytes(), s.to_bytes());
        }
    }

    /// Pre-exact-moment containers carried whole-ns mean/std (tag 0); they
    /// must still decode to statistics within their own quantization error.
    #[test]
    fn legacy_quantized_encoding_still_decodes() {
        let mut enc = Encoder::new();
        enc.put_u8(TAG_MEANSTD_V1);
        enc.put_uvar(4); // n
        enc.put_uvar(100); // mean ns
        enc.put_uvar(10); // std ns
        enc.put_uvar(88); // min
        enc.put_uvar(115); // max
        let bytes = enc.finish();
        let s = TimeStats::from_bytes(&bytes).unwrap();
        assert_eq!(s.count(), 4);
        assert!((s.mean() - 100.0).abs() <= 1.0, "mean {}", s.mean());
        assert!((s.stddev() - 10.0).abs() <= 1.0, "std {}", s.stddev());
        let TimeStats::MeanStd { min, max, .. } = s else {
            panic!()
        };
        assert_eq!((min, max), (88, 115));
    }

    #[test]
    fn mean_matches_naive_random() {
        let mut rng = Rng::new(0x3e1f);
        for _ in 0..256 {
            let n = rng.range_usize(1..100);
            let xs: Vec<u64> = (0..n).map(|_| rng.range_u64(0..1_000_000)).collect();
            let mut s = TimeStats::new(TimeMode::MeanStd);
            for &x in &xs {
                s.add(x);
            }
            let naive = xs.iter().sum::<u64>() as f64 / xs.len() as f64;
            assert!((s.mean() - naive).abs() < 1e-6 * naive.max(1.0));
        }
    }

    #[test]
    fn merge_associative_in_count_random() {
        let mut rng = Rng::new(0xa550);
        for _ in 0..256 {
            let nx = rng.range_usize(0..40);
            let ny = rng.range_usize(0..40);
            let xs: Vec<u64> = (0..nx).map(|_| rng.range_u64(0..10_000)).collect();
            let ys: Vec<u64> = (0..ny).map(|_| rng.range_u64(0..10_000)).collect();
            let mut a = TimeStats::new(TimeMode::MeanStd);
            for &x in &xs {
                a.add(x);
            }
            let mut b = TimeStats::new(TimeMode::MeanStd);
            for &y in &ys {
                b.add(y);
            }
            a.merge(&b);
            assert_eq!(a.count(), (xs.len() + ys.len()) as u64);
        }
    }
}
