//! Inter-process trace compression (paper §IV-B, Fig. 13).
//!
//! Because every per-process CTT shares the CST's shape, merging two
//! compressed traces is a *vertex-by-vertex* walk — O(n) in the number of
//! vertices/records — instead of the O(n²) sequence-alignment search
//! dynamic-only tools need. Per vertex, processes whose recorded data is
//! identical (after relative-rank encoding) collapse into one *rank group*;
//! a process that never executed a call path simply contributes nothing at
//! those vertices.
//!
//! Granularity follows the paper's Fig. 13: control vertices group ranks by
//! their whole recorded sequence (`<p0,p1: k>` / `<p0: 0,k,1, p1: null>`),
//! while communication vertices group ranks **per record slot** of the
//! per-vertex linked list — so ranks that agree on their first record but
//! diverge later still share the common slots.
//!
//! [`merge_all_parallel`] reduces the per-process CTTs over a binomial tree
//! with std scoped threads — the O(n log P) schedule the paper
//! describes for end-of-job merging inside `MPI_Finalize`.

use crate::ctt::{Ctt, LeafRecord, VertexData};
use crate::intseq::IntSeq;
use cypress_obs::{obs_log, Counter, Gauge, Histogram, Level};
use cypress_trace::codec::{Codec, DecodeError, DecodeResult, Decoder, Encoder};
use std::sync::OnceLock;

/// Merge instrumentation handles (scope `merge`).
struct MergeMetrics {
    /// Pairwise `absorb` operations performed.
    pair_merges: Counter,
    /// New rank groups opened because no existing group was compatible.
    groups_formed: Counter,
    /// Final group count of the last full merge.
    merged_groups: Gauge,
    /// Levels of the (binomial) parallel reduction tree.
    parallel_levels: Gauge,
    /// Chunks handed to worker threads by `merge_all_parallel`.
    parallel_chunks: Counter,
    /// Wall time per pairwise absorb.
    pair_merge_ns: Histogram,
    /// Wall time per whole-job merge.
    merge_ns: Histogram,
    /// High-water depth of the incremental binomial buddy tree.
    binomial_depth: Gauge,
    /// Partial blocks currently resident in a [`BinomialMerger`].
    binomial_blocks: Gauge,
}

fn obs() -> &'static MergeMetrics {
    static M: OnceLock<MergeMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let s = cypress_obs::scope("merge");
        MergeMetrics {
            pair_merges: s.counter("pair_merges"),
            groups_formed: s.counter("groups_formed"),
            merged_groups: s.gauge("merged_groups"),
            parallel_levels: s.gauge("parallel_levels"),
            parallel_chunks: s.counter("parallel_chunks"),
            pair_merge_ns: s.histogram("pair_merge_ns", &cypress_obs::TIME_BOUNDS_NS),
            merge_ns: s.histogram("merge_ns", &cypress_obs::TIME_BOUNDS_NS),
            binomial_depth: s.gauge("binomial_depth"),
            binomial_blocks: s.gauge("binomial_blocks"),
        }
    })
}

/// A compressed set of ranks (stride-encoded: "ranks 1..size-2" is one
/// segment).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RankSet(IntSeq);

impl RankSet {
    pub fn singleton(rank: u32) -> Self {
        RankSet(IntSeq::from_slice(&[rank as i64]))
    }

    pub fn len(&self) -> u64 {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn contains(&self, rank: u32) -> bool {
        let mut r = self.0.reader();
        while let Some(v) = r.next() {
            if v == rank as i64 {
                return true;
            }
        }
        false
    }

    pub fn ranks(&self) -> Vec<u32> {
        self.0.to_vec().into_iter().map(|v| v as u32).collect()
    }

    /// Allocation-free iteration over the member ranks, in stored order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        let mut r = self.0.reader();
        std::iter::from_fn(move || r.next().map(|v| v as u32))
    }

    /// Append all ranks of `other` (callers maintain sorted order by merging
    /// lower-rank halves first).
    pub fn extend(&mut self, other: &RankSet) {
        let mut r = other.0.reader();
        while let Some(v) = r.next() {
            self.0.push(v);
        }
    }

    pub fn approx_bytes(&self) -> usize {
        self.0.approx_bytes()
    }
}

impl Codec for RankSet {
    fn encode(&self, enc: &mut Encoder) {
        self.0.encode(enc);
    }

    fn decode(dec: &mut Decoder<'_>) -> DecodeResult<Self> {
        Ok(RankSet(IntSeq::decode(dec)?))
    }
}

/// Merged data of one CST vertex.
#[derive(Debug, Clone, PartialEq)]
pub enum MergedVertex {
    /// Root, or a vertex no rank ever reached.
    Empty,
    /// Loop/branch vertex: ranks grouped by their whole recorded sequence.
    Control(Vec<(RankSet, VertexData)>),
    /// Communication vertex: per record-slot rank groups.
    Leaf(Vec<Vec<(RankSet, LeafRecord)>>),
}

impl MergedVertex {
    fn group_count(&self) -> usize {
        match self {
            MergedVertex::Empty => 0,
            MergedVertex::Control(g) => g.len(),
            MergedVertex::Leaf(slots) => slots.iter().map(|s| s.len()).sum(),
        }
    }

    fn approx_bytes(&self) -> usize {
        match self {
            MergedVertex::Empty => 0,
            MergedVertex::Control(g) => g
                .iter()
                .map(|(rs, d)| rs.approx_bytes() + d.approx_bytes())
                .sum(),
            MergedVertex::Leaf(slots) => slots
                .iter()
                .flat_map(|s| s.iter())
                .map(|(rs, r)| rs.approx_bytes() + r.approx_bytes())
                .sum(),
        }
    }
}

/// The merged (inter-process compressed) trace of a whole job.
#[derive(Debug, Clone, PartialEq)]
pub struct MergedCtt {
    pub nprocs: u32,
    /// Indexed by CST GID.
    pub vertices: Vec<MergedVertex>,
    /// Per-rank application times, stride-compressed in rank order.
    pub app_times: IntSeq,
}

/// Control-data compatibility: identical sequences (timing is not part of
/// control data).
pub fn control_mergeable(a: &VertexData, b: &VertexData) -> bool {
    match (a, b) {
        (VertexData::Loop { counts: x }, VertexData::Loop { counts: y }) => x == y,
        (VertexData::Branch { taken: x }, VertexData::Branch { taken: y }) => x == y,
        _ => false,
    }
}

/// Record compatibility: parameters and repeat count match ("all but the
/// communication time", §IV-A).
pub fn record_mergeable(a: &LeafRecord, b: &LeafRecord) -> bool {
    a.params == b.params && a.count == b.count
}

impl MergedCtt {
    /// Lift one per-process CTT into a (singleton-groups) merged form.
    pub fn from_ctt(ctt: &Ctt) -> Self {
        let rank = ctt.rank;
        let vertices = ctt
            .data
            .iter()
            .map(|vd| match vd {
                VertexData::Root => MergedVertex::Empty,
                // Empty data = the rank never reached this vertex: it
                // contributes nothing there (paper: "if a process has not
                // executed a certain call path, the path is ignored").
                VertexData::Loop { counts } if counts.is_empty() => MergedVertex::Empty,
                VertexData::Branch { taken } if taken.is_empty() => MergedVertex::Empty,
                VertexData::Leaf { records } => {
                    if records.is_empty() {
                        MergedVertex::Empty
                    } else {
                        MergedVertex::Leaf(
                            records
                                .iter()
                                .map(|r| vec![(RankSet::singleton(rank), r.clone())])
                                .collect(),
                        )
                    }
                }
                other => MergedVertex::Control(vec![(RankSet::singleton(rank), other.clone())]),
            })
            .collect();
        let mut app_times = IntSeq::new();
        app_times.push(ctt.app_time as i64);
        MergedCtt {
            nprocs: ctt.nprocs,
            vertices,
            app_times,
        }
    }

    /// Merge `other` into `self`, vertex by vertex. Ranks in `other` must be
    /// greater than ranks in `self` (reduce contiguous halves) so rank sets
    /// stay sorted and stride-compressible.
    pub fn absorb(&mut self, other: MergedCtt) {
        assert_eq!(self.vertices.len(), other.vertices.len());
        let _span = obs().pair_merge_ns.start_span();
        if cypress_obs::enabled() {
            obs().pair_merges.inc();
        }
        for (mine, theirs) in self.vertices.iter_mut().zip(other.vertices) {
            match theirs {
                MergedVertex::Empty => {}
                MergedVertex::Control(groups) => {
                    let dst = match mine {
                        MergedVertex::Control(g) => g,
                        MergedVertex::Empty => {
                            *mine = MergedVertex::Control(Vec::new());
                            let MergedVertex::Control(g) = mine else {
                                unreachable!()
                            };
                            g
                        }
                        MergedVertex::Leaf(_) => {
                            unreachable!("CTTs share the CST shape: control vs leaf mismatch")
                        }
                    };
                    for (ranks, data) in groups {
                        match dst.iter_mut().find(|(_, d)| control_mergeable(d, &data)) {
                            Some((rs, _)) => rs.extend(&ranks),
                            None => {
                                if cypress_obs::enabled() {
                                    obs().groups_formed.inc();
                                }
                                dst.push((ranks, data));
                            }
                        }
                    }
                }
                MergedVertex::Leaf(slots) => {
                    let dst = match mine {
                        MergedVertex::Leaf(s) => s,
                        MergedVertex::Empty => {
                            *mine = MergedVertex::Leaf(Vec::new());
                            let MergedVertex::Leaf(s) = mine else {
                                unreachable!()
                            };
                            s
                        }
                        MergedVertex::Control(_) => {
                            unreachable!("CTTs share the CST shape: leaf vs control mismatch")
                        }
                    };
                    if dst.len() < slots.len() {
                        dst.resize_with(slots.len(), Vec::new);
                    }
                    for (si, groups) in slots.into_iter().enumerate() {
                        for (ranks, rec) in groups {
                            match dst[si].iter_mut().find(|(_, r)| record_mergeable(r, &rec)) {
                                Some((rs, r)) => {
                                    rs.extend(&ranks);
                                    r.time.merge(&rec.time);
                                    r.gap.merge(&rec.gap);
                                }
                                None => {
                                    if cypress_obs::enabled() {
                                        obs().groups_formed.inc();
                                    }
                                    dst[si].push((ranks, rec));
                                }
                            }
                        }
                    }
                }
            }
        }
        let mut r = other.app_times.reader();
        while let Some(v) = r.next() {
            self.app_times.push(v);
        }
    }

    /// Total group count across vertices (the merged trace's record
    /// measure).
    pub fn group_count(&self) -> usize {
        self.vertices.iter().map(|v| v.group_count()).sum()
    }

    /// Extract one rank's view back out as a per-process CTT (inverse of the
    /// merge, used for per-rank decompression and replay).
    pub fn extract_rank(&self, rank: u32, cst: &cypress_cst::Cst) -> Ctt {
        use cypress_cst::tree::VertexKind;
        let data = self
            .vertices
            .iter()
            .enumerate()
            .map(|(i, mv)| {
                match mv {
                    MergedVertex::Control(groups) => {
                        for (rs, d) in groups {
                            if rs.contains(rank) {
                                return d.clone();
                            }
                        }
                    }
                    MergedVertex::Leaf(slots) => {
                        let mut records = Vec::new();
                        for slot in slots {
                            for (rs, r) in slot {
                                if rs.contains(rank) {
                                    records.push(r.clone());
                                    break;
                                }
                            }
                        }
                        return VertexData::Leaf { records };
                    }
                    MergedVertex::Empty => {}
                }
                // The rank never reached this vertex: empty data of the
                // right shape.
                match &cst.vertex(i).kind {
                    VertexKind::Root => VertexData::Root,
                    VertexKind::Loop { .. } => VertexData::Loop {
                        counts: IntSeq::new(),
                    },
                    VertexKind::Branch { .. } => VertexData::Branch {
                        taken: IntSeq::new(),
                    },
                    VertexKind::Mpi { .. } | VertexKind::UserCall { .. } => VertexData::Leaf {
                        records: Vec::new(),
                    },
                }
            })
            .collect();
        let app_time = self
            .app_times
            .to_vec()
            .get(rank as usize)
            .copied()
            .unwrap_or(0) as u64;
        Ctt {
            rank,
            nprocs: self.nprocs,
            app_time,
            data,
        }
    }

    pub fn approx_bytes(&self) -> usize {
        self.vertices
            .iter()
            .map(|v| v.approx_bytes())
            .sum::<usize>()
            + self.app_times.approx_bytes()
    }
}

/// Sequentially merge all per-process CTTs (must be in rank order).
pub fn merge_all(ctts: &[Ctt]) -> MergedCtt {
    assert!(!ctts.is_empty(), "merge_all needs at least one CTT");
    let _span = obs().merge_ns.start_span();
    let mut t = cypress_obs::trace_span("merge", "merge_all");
    t.set_arg(ctts.len() as u64);
    let mut acc = MergedCtt::from_ctt(&ctts[0]);
    for c in &ctts[1..] {
        acc.absorb(MergedCtt::from_ctt(c));
    }
    if cypress_obs::enabled() {
        obs().merged_groups.set_max(acc.group_count() as i64);
    }
    obs_log!(
        Level::Info,
        "merge",
        "merged {} ctts into {} groups",
        ctts.len(),
        acc.group_count()
    );
    acc
}

/// Merge with a binomial reduction tree across `threads` workers — the
/// parallel O(n log P) schedule of §IV-B.
///
/// `threads` is advisory and clamped to `1..=ctts.len()`: `0` (an
/// uninitialised pool size) degrades to sequential, and more threads than
/// CTTs would only spawn idle workers. Because [`TimeStats`] aggregation is
/// exactly associative, the result is **byte-identical** to [`merge_all`]
/// for every thread count.
///
/// [`TimeStats`]: crate::timestats::TimeStats
pub fn merge_all_parallel(ctts: &[Ctt], threads: usize) -> MergedCtt {
    assert!(
        !ctts.is_empty(),
        "merge_all_parallel needs at least one CTT"
    );
    let threads = threads.clamp(1, ctts.len());
    if threads == 1 {
        return merge_all(ctts);
    }
    let chunk = ctts.len().div_ceil(threads);
    let nchunks = ctts.len().div_ceil(chunk);
    if cypress_obs::enabled() {
        let m = obs();
        m.parallel_chunks.add(nchunks as u64);
        // Depth of the binomial reduction over the per-thread partials.
        m.parallel_levels
            .set_max(nchunks.next_power_of_two().trailing_zeros() as i64);
    }
    let mut partials: Vec<Option<MergedCtt>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = ctts
            .chunks(chunk)
            .map(|part| scope.spawn(move || merge_all(part)))
            .collect();
        partials = handles
            .into_iter()
            .map(|h| Some(h.join().expect("merge worker panicked")))
            .collect();
    });
    // Reduce the per-thread partials in rank order.
    let mut iter = partials.into_iter().flatten();
    let mut acc = iter.next().expect("at least one partial");
    for p in iter {
        acc.absorb(p);
    }
    if cypress_obs::enabled() {
        obs().merged_groups.set_max(acc.group_count() as i64);
    }
    acc
}

/// Incremental binomial reduction over per-rank CTTs arriving in **any
/// order** — the event-driven form of the paper's `MPI_Finalize` merge
/// schedule, used by the network collector to reduce rank CTTs as they
/// complete instead of barriering for the full set.
///
/// Blocks of merged ranks live on the fixed *buddy tree* over rank indices:
/// a block covering `[start, start+len)` (with `len` a power of two and
/// `start % len == 0`) merges with its sibling `[start+len, start+2·len)`
/// the moment both are complete. At most `⌈log2 P⌉ + 1` partial merges are
/// resident at any time, and each rank's CTT participates in at most
/// `log2 P` pairwise merges — O(n log P) total work.
///
/// The association tree is determined by rank indices alone (never by
/// arrival order), and [`TimeStats`] aggregation is exactly associative, so
/// [`BinomialMerger::finish`] is byte-identical to [`merge_all`] over the
/// same CTTs in rank order — the invariant `tests/net_collect.rs` pins for
/// out-of-order network submission.
///
/// [`TimeStats`]: crate::timestats::TimeStats
pub struct BinomialMerger {
    nprocs: u32,
    /// Completed buddy blocks, keyed by start rank → (len, partial merge).
    blocks: std::collections::BTreeMap<u32, (u32, MergedCtt)>,
    /// Bitset of ranks already accepted.
    seen: Vec<u64>,
    received: u32,
}

impl BinomialMerger {
    pub fn new(nprocs: u32) -> Self {
        assert!(nprocs > 0, "BinomialMerger needs at least one rank");
        BinomialMerger {
            nprocs,
            blocks: std::collections::BTreeMap::new(),
            seen: vec![0u64; (nprocs as usize).div_ceil(64)],
            received: 0,
        }
    }

    /// Offer one rank's finished CTT. Returns `false` (and changes nothing)
    /// if this rank was already merged — a retried client re-submitting a
    /// rank the collector completed earlier is a no-op, not corruption.
    pub fn add(&mut self, ctt: &Ctt) -> bool {
        assert_eq!(
            ctt.nprocs, self.nprocs,
            "CTT job size {} does not match merger size {}",
            ctt.nprocs, self.nprocs
        );
        assert!(
            ctt.rank < self.nprocs,
            "rank {} out of range for {} procs",
            ctt.rank,
            self.nprocs
        );
        let (w, bit) = (ctt.rank as usize / 64, 1u64 << (ctt.rank % 64));
        if self.seen[w] & bit != 0 {
            return false;
        }
        self.seen[w] |= bit;
        self.received += 1;

        let mut t = cypress_obs::trace_span("merge", "binomial_add");
        t.set_arg(ctt.rank as u64);
        self.fold_block(ctt.rank, 1, MergedCtt::from_ctt(ctt));
        true
    }

    /// Climb the buddy tree from an aligned block `[start, start+len)`:
    /// blocks are always power-of-two sized and len-aligned, so
    /// `start % (2·len)` is 0 (we are the lower sibling) or `len` (we are
    /// the upper sibling). Shared by [`add`](Self::add) (len 1) and
    /// [`add_block`](Self::add_block) (relay-forwarded partial merges).
    fn fold_block(&mut self, mut start: u32, mut len: u32, mut cur: MergedCtt) {
        loop {
            if start.is_multiple_of(2 * len) {
                let buddy = start + len;
                if self.blocks.get(&buddy).is_some_and(|(l, _)| *l == len) {
                    let (_, upper) = self.blocks.remove(&buddy).unwrap();
                    cur.absorb(upper);
                    len *= 2;
                    continue;
                }
            } else {
                let buddy = start - len;
                if self.blocks.get(&buddy).is_some_and(|(l, _)| *l == len) {
                    let (_, mut lower) = self.blocks.remove(&buddy).unwrap();
                    lower.absorb(cur);
                    cur = lower;
                    start = buddy;
                    len *= 2;
                    continue;
                }
            }
            break;
        }
        self.blocks.insert(start, (len, cur));
        if cypress_obs::enabled() {
            let m = obs();
            m.binomial_depth.set_max(len.trailing_zeros() as i64);
            m.binomial_blocks.set_max(self.blocks.len() as i64);
        }
    }

    /// Offer an already-merged aligned buddy block covering ranks
    /// `[first, first+count)` — what a relay collector forwards upstream.
    ///
    /// A block a *global-sized* merger produced for any subset of ranks is
    /// necessarily aligned on the global buddy tree (power-of-two `count`,
    /// `first % count == 0`), so absorbing it here continues the exact same
    /// association as if the ranks had arrived individually — the
    /// byte-identity invariant survives relaying.
    ///
    /// Returns `Ok(false)` when every covered rank was already merged (a
    /// relay retry; no-op like a duplicate rank in [`add`](Self::add)),
    /// `Err` on a misaligned/out-of-range block or one that partially
    /// overlaps merged ranks (protocol corruption, not a benign retry).
    pub fn add_block(&mut self, first: u32, count: u32, block: MergedCtt) -> Result<bool, String> {
        if count == 0 || !count.is_power_of_two() {
            return Err(format!("block rank count {count} is not a power of two"));
        }
        if !first.is_multiple_of(count) {
            return Err(format!(
                "block [{first}, {}) is not aligned on the buddy tree",
                first + count
            ));
        }
        if first + count > self.nprocs {
            return Err(format!(
                "block [{first}, {}) exceeds job size {}",
                first + count,
                self.nprocs
            ));
        }
        let seen: u32 = (first..first + count)
            .map(|r| self.has_rank(r) as u32)
            .sum();
        if seen == count {
            return Ok(false);
        }
        if seen != 0 {
            return Err(format!(
                "block [{first}, {}) partially overlaps {seen} already-merged ranks",
                first + count
            ));
        }
        for r in first..first + count {
            self.seen[r as usize / 64] |= 1u64 << (r % 64);
        }
        self.received += count;
        let mut t = cypress_obs::trace_span("merge", "binomial_add_block");
        t.set_arg(first as u64);
        self.fold_block(first, count, block);
        Ok(true)
    }

    /// Consume the merger, yielding its resident blocks in ascending start
    /// order as `(first_rank, rank_count, partial)` — the payload a relay
    /// forwards upstream. Unlike [`finish`](Self::finish) this does not
    /// require completeness: a relay's rank range is an arbitrary contiguous
    /// slice of the job, which folds into ≤ 2·log2(P) aligned blocks.
    pub fn into_blocks(self) -> Vec<(u32, u32, MergedCtt)> {
        self.blocks
            .into_iter()
            .map(|(start, (len, part))| (start, len, part))
            .collect()
    }

    /// Ranks accepted so far.
    pub fn received(&self) -> u32 {
        self.received
    }

    /// Whether every rank `0..nprocs` has been merged.
    pub fn is_complete(&self) -> bool {
        self.received == self.nprocs
    }

    /// Whether this rank's CTT was already accepted.
    pub fn has_rank(&self, rank: u32) -> bool {
        rank < self.nprocs && self.seen[rank as usize / 64] & (1u64 << (rank % 64)) != 0
    }

    /// Partial blocks currently resident (≤ ⌈log2 P⌉ + 1 once complete).
    pub fn pending_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Depth of the largest merged buddy block: log2 of its rank count
    /// (0 when nothing has merged yet).
    pub fn max_depth(&self) -> u32 {
        self.blocks
            .values()
            .map(|(len, _)| len.trailing_zeros())
            .max()
            .unwrap_or(0)
    }

    /// Ranks not yet submitted, in ascending order.
    pub fn missing_ranks(&self) -> Vec<u32> {
        (0..self.nprocs)
            .filter(|r| self.seen[*r as usize / 64] & (1u64 << (r % 64)) == 0)
            .collect()
    }

    /// Fold the remaining blocks (ascending start rank; non-power-of-two
    /// job sizes leave a short tail) into the final merged trace.
    ///
    /// Panics unless [`is_complete`](Self::is_complete) — callers decide how
    /// to handle missing ranks (the collector reports them by number).
    pub fn finish(self) -> MergedCtt {
        assert!(
            self.is_complete(),
            "binomial merge incomplete: missing ranks {:?}",
            self.missing_ranks()
        );
        let _span = obs().merge_ns.start_span();
        let mut iter = self.blocks.into_values();
        let (_, mut acc) = iter.next().expect("complete merger has blocks");
        for (_, part) in iter {
            acc.absorb(part);
        }
        if cypress_obs::enabled() {
            obs().merged_groups.set_max(acc.group_count() as i64);
        }
        obs_log!(
            Level::Info,
            "merge",
            "binomial merge of {} ranks complete ({} groups)",
            self.nprocs,
            acc.group_count()
        );
        acc
    }
}

const MV_EMPTY: u8 = 0;
const MV_CONTROL: u8 = 1;
const MV_LEAF: u8 = 2;

impl Codec for MergedCtt {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_uvar(self.nprocs as u64);
        self.app_times.encode(enc);
        enc.put_uvar(self.vertices.len() as u64);
        for mv in &self.vertices {
            match mv {
                MergedVertex::Empty => enc.put_u8(MV_EMPTY),
                MergedVertex::Control(groups) => {
                    enc.put_u8(MV_CONTROL);
                    enc.put_uvar(groups.len() as u64);
                    for (rs, d) in groups {
                        rs.encode(enc);
                        d.encode(enc);
                    }
                }
                MergedVertex::Leaf(slots) => {
                    enc.put_u8(MV_LEAF);
                    enc.put_uvar(slots.len() as u64);
                    for slot in slots {
                        enc.put_uvar(slot.len() as u64);
                        for (rs, r) in slot {
                            rs.encode(enc);
                            r.encode(enc);
                        }
                    }
                }
            }
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> DecodeResult<Self> {
        let nprocs = dec.get_uvar()? as u32;
        let app_times = IntSeq::decode(dec)?;
        let nv = dec.get_uvar()? as usize;
        if nv > 1 << 26 {
            return Err(DecodeError(format!("absurd vertex count {nv}")));
        }
        let mut vertices = Vec::with_capacity(nv.min(1 << 16));
        for _ in 0..nv {
            vertices.push(match dec.get_u8()? {
                MV_EMPTY => MergedVertex::Empty,
                MV_CONTROL => {
                    let ng = dec.get_uvar()? as usize;
                    if ng > 1 << 24 {
                        return Err(DecodeError(format!("absurd group count {ng}")));
                    }
                    let mut groups = Vec::with_capacity(ng.min(1 << 12));
                    for _ in 0..ng {
                        let rs = RankSet::decode(dec)?;
                        let d = VertexData::decode(dec)?;
                        groups.push((rs, d));
                    }
                    MergedVertex::Control(groups)
                }
                MV_LEAF => {
                    let ns = dec.get_uvar()? as usize;
                    if ns > 1 << 24 {
                        return Err(DecodeError(format!("absurd slot count {ns}")));
                    }
                    let mut slots = Vec::with_capacity(ns.min(1 << 12));
                    for _ in 0..ns {
                        let ng = dec.get_uvar()? as usize;
                        if ng > 1 << 24 {
                            return Err(DecodeError(format!("absurd group count {ng}")));
                        }
                        let mut groups = Vec::with_capacity(ng.min(1 << 12));
                        for _ in 0..ng {
                            let rs = RankSet::decode(dec)?;
                            let r = LeafRecord::decode(dec)?;
                            groups.push((rs, r));
                        }
                        slots.push(groups);
                    }
                    MergedVertex::Leaf(slots)
                }
                t => return Err(DecodeError(format!("bad MergedVertex tag {t}"))),
            });
        }
        Ok(MergedCtt {
            nprocs,
            vertices,
            app_times,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::{compress_trace, CompressConfig};
    use crate::decompress::decompress;
    use cypress_cst::analyze_program;
    use cypress_minilang::{check_program, parse};
    use cypress_runtime::{trace_program, InterpConfig};

    fn pipeline(src: &str, nprocs: u32) -> (cypress_cst::StaticInfo, Vec<Ctt>) {
        let p = parse(src).unwrap();
        check_program(&p).unwrap();
        let info = analyze_program(&p);
        let traces = trace_program(&p, &info, nprocs, &InterpConfig::default()).unwrap();
        let ctts = traces
            .iter()
            .map(|t| compress_trace(&info.cst, t, &CompressConfig::default()))
            .collect();
        (info, ctts)
    }

    const JACOBI: &str = r#"fn main() {
        let r = rank(); let s = size();
        for k in 0..10 {
            if r < s - 1 { send(r + 1, 1024, 0); }
            if r > 0 { recv(r - 1, 1024, 0); }
            if r > 0 { send(r - 1, 1024, 1); }
            if r < s - 1 { recv(r + 1, 1024, 1); }
        }
    }"#;

    #[test]
    fn jacobi_merges_into_few_groups_fig13() {
        let (_, ctts) = pipeline(JACOBI, 16);
        let merged = merge_all(&ctts);
        // Every vertex has at most 2 groups: the send/recv leaves merge
        // across all participating ranks thanks to relative encoding, and
        // the branch outcomes split only edge vs interior ranks.
        for v in &merged.vertices {
            assert!(v.group_count() <= 2, "groups: {}", v.group_count());
        }
        // The merged trace is far smaller than the sum of per-process CTTs.
        let merged_sz = merged.encoded_size();
        let sum_sz: usize = ctts.iter().map(|c| c.encoded_size()).sum();
        assert!(merged_sz * 4 < sum_sz, "merged {merged_sz} vs sum {sum_sz}");
    }

    #[test]
    fn merged_trace_size_nearly_constant_in_p() {
        let (_, ctts16) = pipeline(JACOBI, 16);
        let (_, ctts64) = pipeline(JACOBI, 64);
        let s16 = merge_all(&ctts16).encoded_size();
        let s64 = merge_all(&ctts64).encoded_size();
        // Sub-linear: 4x the processes should cost well under 2x the bytes.
        assert!((s64 as f64) < (s16 as f64) * 2.0, "s16={s16} s64={s64}");
    }

    #[test]
    fn extract_rank_round_trips_through_merge() {
        let (info, ctts) = pipeline(JACOBI, 8);
        let merged = merge_all(&ctts);
        for (rank, ctt) in ctts.iter().enumerate() {
            let extracted = merged.extract_rank(rank as u32, &info.cst);
            let a = decompress(&info.cst, ctt);
            let b = decompress(&info.cst, &extracted);
            // Identical op sequences (params included); timing becomes the
            // group aggregate, so compare (gid, op, params).
            let strip = |ops: &[crate::decompress::ReplayOp]| {
                ops.iter()
                    .map(|o| (o.gid, o.op, o.params.clone()))
                    .collect::<Vec<_>>()
            };
            assert_eq!(strip(&a), strip(&b), "rank {rank}");
        }
    }

    #[test]
    fn slotwise_grouping_shares_common_prefixes() {
        // Ranks share their first record (send to rank+1 mod P with equal
        // size) but diverge on the second (rank-dependent size). Slot-wise
        // grouping keeps slot 0 fully shared.
        let (_, ctts) = pipeline(
            r#"fn main() {
                send((rank() + 1) % size(), 64, 0);
                recv(any_source(), 64, 0);
                send((rank() + 1) % size(), 64 + rank() * 8, 1);
                recv(any_source(), 64 + rank() * 8, 1);
            }"#,
            8,
        );
        let merged = merge_all(&ctts);
        let leaf_slotcounts: Vec<Vec<usize>> = merged
            .vertices
            .iter()
            .filter_map(|v| match v {
                MergedVertex::Leaf(slots) => Some(slots.iter().map(|s| s.len()).collect()),
                _ => None,
            })
            .collect();
        // Four leaves; the equal-size ones have 1 group, the rank-dependent
        // ones have 8 groups — but they are separate call sites here, so
        // check totals: at least one leaf fully merged.
        assert!(leaf_slotcounts.iter().any(|s| s == &vec![1]));
        assert!(leaf_slotcounts.iter().any(|s| s[0] == 8));
    }

    #[test]
    fn butterfly_groups_stay_logarithmic() {
        // CG-style butterfly: per-stage partner deltas differ in sign across
        // ranks; slot-wise grouping yields ≤2 groups per stage, not P.
        let (_, ctts) = pipeline(
            r#"fn main() {
                let stage = 1;
                while stage < size() {
                    let partner = 0;
                    if (rank() / stage) % 2 == 0 { partner = rank() + stage; }
                    else { partner = rank() - stage; }
                    let a = irecv(partner, 512, 5);
                    send(partner, 512, 5);
                    wait(a);
                    stage = stage * 2;
                }
            }"#,
            16,
        );
        let merged = merge_all(&ctts);
        for v in &merged.vertices {
            if let MergedVertex::Leaf(slots) = v {
                for (si, slot) in slots.iter().enumerate() {
                    assert!(
                        slot.len() <= 2,
                        "slot {si} has {} groups (want ≤2)",
                        slot.len()
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_merge_equals_sequential() {
        let (_, ctts) = pipeline(JACOBI, 32);
        let seq = merge_all(&ctts);
        for threads in [2, 3, 8] {
            let par = merge_all_parallel(&ctts, threads);
            assert_eq!(par.nprocs, seq.nprocs);
            assert_eq!(par.group_count(), seq.group_count());
            for (vs, vp) in seq.vertices.iter().zip(&par.vertices) {
                assert_eq!(vs.group_count(), vp.group_count());
            }
        }
    }

    #[test]
    fn parallel_merge_byte_identical_for_any_thread_count() {
        // 19 ranks: non-power-of-two, so chunk boundaries differ per thread
        // count. Exact TimeStats make every association byte-identical.
        let (_, ctts) = pipeline(JACOBI, 19);
        let seq = merge_all(&ctts).to_bytes();
        for threads in [0, 1, 2, 3, 5, 8, 19, 64] {
            let par = merge_all_parallel(&ctts, threads).to_bytes();
            assert_eq!(par, seq, "threads={threads} diverged from sequential");
        }
    }

    #[test]
    fn parallel_merge_clamps_zero_threads() {
        let (_, ctts) = pipeline(JACOBI, 4);
        // threads == 0 (e.g. an unconfigured pool) degrades to sequential.
        let m = merge_all_parallel(&ctts, 0);
        assert_eq!(m.to_bytes(), merge_all(&ctts).to_bytes());
    }

    #[test]
    fn parallel_merge_clamps_excess_threads() {
        let (_, ctts) = pipeline(JACOBI, 3);
        // More workers than CTTs must not spawn empty chunks or panic.
        let m = merge_all_parallel(&ctts, 1000);
        assert_eq!(m.to_bytes(), merge_all(&ctts).to_bytes());
    }

    #[test]
    fn parallel_merge_single_rank_input() {
        let (_, ctts) = pipeline("fn main() { barrier(); }", 1);
        for threads in [0, 1, 7] {
            let m = merge_all_parallel(&ctts[..1], threads);
            assert_eq!(m.nprocs, 1);
            assert_eq!(m.to_bytes(), merge_all(&ctts[..1]).to_bytes());
        }
    }

    #[test]
    fn binomial_merger_matches_merge_all_in_rank_order() {
        for nprocs in [1u32, 2, 3, 5, 8, 13, 16] {
            let (_, ctts) = pipeline(JACOBI, nprocs);
            let mut bm = BinomialMerger::new(nprocs);
            for c in &ctts {
                assert!(bm.add(c));
            }
            assert!(bm.is_complete());
            assert_eq!(bm.finish().to_bytes(), merge_all(&ctts).to_bytes());
        }
    }

    #[test]
    fn binomial_merger_is_arrival_order_independent() {
        let (_, ctts) = pipeline(JACOBI, 13);
        let want = merge_all(&ctts).to_bytes();
        let mut rng = cypress_obs::rng::Rng::new(0xcafe);
        for _ in 0..16 {
            // Fisher–Yates shuffle of submission order.
            let mut order: Vec<usize> = (0..ctts.len()).collect();
            for i in (1..order.len()).rev() {
                order.swap(i, rng.range_usize(0..i + 1));
            }
            let mut bm = BinomialMerger::new(13);
            for &i in &order {
                bm.add(&ctts[i]);
            }
            assert_eq!(bm.finish().to_bytes(), want, "order {order:?}");
        }
    }

    #[test]
    fn binomial_merger_bounds_resident_blocks() {
        let (_, ctts) = pipeline(JACOBI, 32);
        let mut bm = BinomialMerger::new(32);
        let mut peak = 0;
        for c in &ctts {
            bm.add(c);
            peak = peak.max(bm.pending_blocks());
        }
        // In rank order the buddy tree keeps at most log2(P)+1 partials.
        assert!(peak <= 6, "peak resident blocks {peak}");
        assert_eq!(bm.pending_blocks(), 1);
    }

    #[test]
    fn binomial_merger_ignores_duplicate_ranks() {
        let (_, ctts) = pipeline(JACOBI, 6);
        let mut bm = BinomialMerger::new(6);
        assert!(bm.add(&ctts[2]));
        // A retried client re-submitting the same rank is discarded.
        assert!(!bm.add(&ctts[2]));
        assert_eq!(bm.received(), 1);
        assert_eq!(bm.missing_ranks(), vec![0, 1, 3, 4, 5]);
        for c in &ctts {
            bm.add(c);
        }
        assert!(bm.is_complete());
        assert_eq!(bm.finish().to_bytes(), merge_all(&ctts).to_bytes());
    }

    #[test]
    #[should_panic(expected = "missing ranks")]
    fn binomial_merger_finish_requires_all_ranks() {
        let (_, ctts) = pipeline(JACOBI, 4);
        let mut bm = BinomialMerger::new(4);
        bm.add(&ctts[0]);
        bm.add(&ctts[3]);
        let _ = bm.finish();
    }

    #[test]
    fn relayed_blocks_reproduce_merge_all_bytes() {
        // The collector-tree invariant: relays run global-sized mergers
        // over contiguous rank shards, forward their resident blocks, and
        // the root absorbing those blocks is byte-identical to merge_all —
        // including ragged (non-power-of-two, unevenly split) shards.
        for (nprocs, cuts) in [
            (16u32, vec![0u32, 8, 16]),
            (16, vec![0, 5, 16]),
            (13, vec![0, 4, 9, 13]),
            (6, vec![0, 3, 6]),
            (7, vec![0, 2, 5, 7]),
        ] {
            let (_, ctts) = pipeline(JACOBI, nprocs);
            let want = merge_all(&ctts).to_bytes();
            let mut root = BinomialMerger::new(nprocs);
            for shard in cuts.windows(2) {
                let (a, b) = (shard[0], shard[1]);
                let mut relay = BinomialMerger::new(nprocs);
                for r in a..b {
                    assert!(relay.add(&ctts[r as usize]));
                }
                for (first, count, part) in relay.into_blocks() {
                    assert!(count.is_power_of_two(), "{nprocs}p shard [{a},{b})");
                    assert!(first.is_multiple_of(count));
                    assert!(root.add_block(first, count, part).unwrap());
                }
            }
            assert!(root.is_complete(), "{nprocs}p cuts {cuts:?}");
            assert_eq!(root.finish().to_bytes(), want, "{nprocs}p cuts {cuts:?}");
        }
    }

    #[test]
    fn relayed_blocks_arrival_order_independent() {
        let (_, ctts) = pipeline(JACOBI, 11);
        let want = merge_all(&ctts).to_bytes();
        // Gather every shard's blocks, then feed them to the root in
        // scrambled orders.
        let mut blocks = Vec::new();
        for shard in [0u32..4, 4..9, 9..11] {
            let mut relay = BinomialMerger::new(11);
            for r in shard {
                relay.add(&ctts[r as usize]);
            }
            blocks.extend(relay.into_blocks());
        }
        let mut rng = cypress_obs::rng::Rng::new(0xbeef);
        for _ in 0..8 {
            let mut order: Vec<usize> = (0..blocks.len()).collect();
            for i in (1..order.len()).rev() {
                order.swap(i, rng.range_usize(0..i + 1));
            }
            let mut root = BinomialMerger::new(11);
            for &i in &order {
                let (first, count, part) = blocks[i].clone();
                assert!(root.add_block(first, count, part).unwrap());
            }
            assert_eq!(root.finish().to_bytes(), want, "order {order:?}");
        }
    }

    #[test]
    fn add_block_rejects_bad_and_duplicate_blocks() {
        let (_, ctts) = pipeline(JACOBI, 8);
        let one = MergedCtt::from_ctt(&ctts[0]);
        let mut bm = BinomialMerger::new(8);
        // Misaligned, non-power-of-two, and out-of-range blocks are errors.
        assert!(bm.add_block(1, 2, one.clone()).is_err());
        assert!(bm.add_block(0, 3, one.clone()).is_err());
        assert!(bm.add_block(8, 1, one.clone()).is_err());
        assert!(bm.add_block(4, 8, one.clone()).is_err());
        assert_eq!(bm.received(), 0);
        // A fully-duplicate block is a benign no-op; partial overlap is not.
        let mut relay = BinomialMerger::new(8);
        for ctt in &ctts[..4] {
            relay.add(ctt);
        }
        let (first, count, part) = relay.into_blocks().remove(0);
        assert!(bm.add_block(first, count, part.clone()).unwrap());
        assert!(!bm.add_block(first, count, part.clone()).unwrap());
        assert_eq!(bm.received(), 4);
        assert!(bm.add_block(0, 8, part).is_err());
    }

    #[test]
    fn merged_codec_round_trip() {
        let (_, ctts) = pipeline(JACOBI, 4);
        let merged = merge_all(&ctts);
        let back = MergedCtt::from_bytes(&merged.to_bytes()).unwrap();
        assert_eq!(back.nprocs, merged.nprocs);
        assert_eq!(back.group_count(), merged.group_count());
        assert_eq!(back.app_times.to_vec(), merged.app_times.to_vec());
        // Canonical encoding: decode → encode is byte-stable.
        assert_eq!(back.to_bytes(), merged.to_bytes());
    }

    #[test]
    fn rank_set_stride_compresses_contiguous_ranks() {
        let mut rs = RankSet::singleton(1);
        for r in 2..63u32 {
            rs.extend(&RankSet::singleton(r));
        }
        assert_eq!(rs.len(), 62);
        assert!(rs.contains(30));
        assert!(!rs.contains(0));
        // One arithmetic-progression segment regardless of P.
        assert!(rs.approx_bytes() <= 256, "contiguous ranks must stay tiny");
    }

    #[test]
    fn spmd_uniform_program_merges_to_one_group_per_vertex() {
        let (_, ctts) = pipeline(
            "fn main() { for i in 0..50 { allreduce(64); barrier(); } }",
            12,
        );
        let merged = merge_all(&ctts);
        for v in merged.vertices.iter().skip(1) {
            assert_eq!(v.group_count(), 1);
        }
    }

    #[test]
    fn divergent_rank_forms_its_own_group() {
        let (_, ctts) = pipeline(
            r#"fn main() {
                if rank() == 0 {
                    for i in 0..5 { bcast(0, 8); }
                } else {
                    for i in 0..5 { bcast(0, 8); barrier(); }
                }
            }"#,
            6,
        );
        let merged = merge_all(&ctts);
        // The barrier leaf exists only for ranks 1..5.
        let mut found = false;
        for v in &merged.vertices {
            if let MergedVertex::Leaf(slots) = v {
                for slot in slots {
                    for (rs, r) in slot {
                        if r.params.op == cypress_trace::event::MpiOp::Barrier {
                            assert_eq!(rs.ranks(), vec![1, 2, 3, 4, 5]);
                            found = true;
                        }
                    }
                }
            }
        }
        assert!(found, "barrier group missing");
    }
}
