//! # cypress-core — the CYPRESS compressor (paper §IV–§V)
//!
//! The dynamic half of CYPRESS: top-down intra-process compression into the
//! Compressed Trace Tree, O(n)-per-pair inter-process merging with rank
//! groups, and sequence-preserving decompression.
//!
//! ```
//! use cypress_minilang::{parse, check_program};
//! use cypress_cst::analyze_program;
//! use cypress_runtime::{trace_program, InterpConfig};
//! use cypress_core::{compress_trace, decompress, merge_all, CompressConfig};
//!
//! let prog = parse("fn main() { for i in 0..100 { allreduce(64); } }").unwrap();
//! check_program(&prog).unwrap();
//! let info = analyze_program(&prog);
//! let traces = trace_program(&prog, &info, 8, &InterpConfig::default()).unwrap();
//!
//! // 100 ops per rank compress to 1 record per rank…
//! let ctts: Vec<_> = traces.iter()
//!     .map(|t| compress_trace(&info.cst, t, &CompressConfig::default()))
//!     .collect();
//! assert_eq!(ctts[0].record_count(), 1);
//!
//! // …and all 8 ranks merge into a single rank group.
//! let merged = merge_all(&ctts);
//! assert_eq!(merged.group_count(), 2); // loop vertex + leaf vertex
//!
//! // Decompression preserves the exact sequence.
//! assert_eq!(decompress(&info.cst, &ctts[3]).len(), 100);
//! ```

pub mod compress;
pub mod ctt;
pub mod decompress;
pub mod intseq;
pub mod merge;
pub mod session;
pub mod slab;
pub mod timestats;
pub mod visit;

pub use compress::{compress_trace, CompressConfig, IntraCompressor};
pub use ctt::{intern_gids, Ctt, EncParams, LeafRecord, RankEnc, VertexData};
pub use decompress::{decompress, decompress_into, replay_to_records, ReplayOp};
pub use intseq::{IntSeq, IntSeqReader, Seg, SeqRef};
pub use merge::{merge_all, merge_all_parallel, BinomialMerger, MergedCtt, MergedVertex, RankSet};
pub use session::{CompressSession, SessionConfig, SessionStats};
pub use slab::CttSlab;
pub use timestats::{TimeMode, TimeStats, HIST_BUCKETS};
pub use visit::{fold_ctt, fold_merged, CttFold, CttSource, RankScope};
