//! The Compressed Trace Tree (CTT) — paper §IV.
//!
//! An ordered tree with the same shape as the CST whose vertices carry the
//! runtime information gathered top-down during execution: iteration-count
//! sequences for loop vertices, taken-visit indices for branch vertices, and
//! merged communication records for leaves. Process ranks inside
//! communication parameters are encoded *relatively* (`rank ± c`,
//! paper §IV-B) so that SPMD-symmetric operations compare equal across
//! processes during inter-process merging.

use crate::intseq::IntSeq;
use crate::timestats::TimeStats;
use cypress_trace::codec::{Codec, DecodeError, DecodeResult, Decoder, Encoder};
use cypress_trace::event::{MpiOp, MpiParams, ANY_SOURCE, NONE};
use std::sync::{Arc, OnceLock};

/// The shared empty request-GID list. Almost every record has no request
/// GIDs (only completion ops carry them), so the empty case must not
/// allocate — every `EncParams` without requests shares this one slice.
fn empty_gids() -> Arc<[u32]> {
    static EMPTY: OnceLock<Arc<[u32]>> = OnceLock::new();
    EMPTY.get_or_init(|| Arc::from(Vec::new())).clone()
}

/// Intern a request-GID list behind a refcounted slice: cloning the result
/// (and any `EncParams` holding it) is a refcount bump, not a heap copy.
pub fn intern_gids(gids: &[u32]) -> Arc<[u32]> {
    if gids.is_empty() {
        empty_gids()
    } else {
        Arc::from(gids)
    }
}

/// A rank-valued parameter field, possibly encoded relative to the owning
/// process's rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RankEnc {
    /// Field not applicable.
    None,
    /// `MPI_ANY_SOURCE` wildcard.
    Any,
    /// Absolute rank (used for collective roots, which are typically the
    /// same constant on every process).
    Abs(i64),
    /// Relative to the owning rank: actual = rank + delta (used for
    /// point-to-point peers, which are typically `rank ± c` in stencils).
    Rel(i64),
}

impl RankEnc {
    fn encode_peer(v: i64, rank: i64) -> RankEnc {
        match v {
            NONE => RankEnc::None,
            ANY_SOURCE => RankEnc::Any,
            v => RankEnc::Rel(v - rank),
        }
    }

    fn encode_root(v: i64) -> RankEnc {
        match v {
            NONE => RankEnc::None,
            v => RankEnc::Abs(v),
        }
    }

    /// Decode back to an absolute rank value for process `rank` ([`NONE`]
    /// for inapplicable fields, [`ANY_SOURCE`] for wildcards).
    pub fn resolve(&self, rank: i64) -> i64 {
        match self {
            RankEnc::None => NONE,
            RankEnc::Any => ANY_SOURCE,
            RankEnc::Abs(v) => *v,
            RankEnc::Rel(d) => rank + d,
        }
    }
}

/// Rank-relative encoded communication parameters (the compared payload of a
/// merged record).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct EncParams {
    pub op: MpiOp,
    pub dest: RankEnc,
    pub src: RankEnc,
    pub root: RankEnc,
    pub count: i64,
    pub rcount: i64,
    pub tag: i64,
    pub rtag: i64,
    pub comm: i64,
    /// Request GIDs for completion ops, interned behind a refcounted slice
    /// so record cloning (merge, decode) never copies the list.
    pub req_gids: Arc<[u32]>,
}

impl EncParams {
    /// Encode raw parameters relative to `rank`.
    pub fn encode(rank: i64, op: MpiOp, p: &MpiParams) -> Self {
        Self::encode_with(rank, op, p, true)
    }

    /// Encode with an explicit choice of peer encoding: `relative = false`
    /// keeps absolute ranks (the ablation knob for §IV-B's relative-ranking
    /// method).
    pub fn encode_with(rank: i64, op: MpiOp, p: &MpiParams, relative: bool) -> Self {
        let peer = |v: i64| {
            if relative {
                RankEnc::encode_peer(v, rank)
            } else {
                match v {
                    NONE => RankEnc::None,
                    ANY_SOURCE => RankEnc::Any,
                    v => RankEnc::Abs(v),
                }
            }
        };
        EncParams {
            op,
            dest: peer(p.dest),
            src: peer(p.src),
            root: RankEnc::encode_root(p.root),
            count: p.count,
            rcount: p.rcount,
            tag: p.tag,
            rtag: p.rtag,
            comm: p.comm,
            req_gids: intern_gids(&p.req_gids),
        }
    }

    /// Allocation-free equality against raw parameters: would encoding
    /// `(op, p)` for `rank` produce exactly `self`? This is the hot path of
    /// the paper's compare-with-last-record merge — called once per event,
    /// so it must not clone `req_gids`.
    pub fn matches_raw(&self, rank: i64, op: MpiOp, p: &MpiParams, relative: bool) -> bool {
        let peer = |v: i64| {
            if relative {
                RankEnc::encode_peer(v, rank)
            } else {
                match v {
                    NONE => RankEnc::None,
                    ANY_SOURCE => RankEnc::Any,
                    v => RankEnc::Abs(v),
                }
            }
        };
        self.op == op
            && self.count == p.count
            && self.rcount == p.rcount
            && self.tag == p.tag
            && self.rtag == p.rtag
            && self.comm == p.comm
            && self.dest == peer(p.dest)
            && self.src == peer(p.src)
            && self.root == RankEnc::encode_root(p.root)
            && self.req_gids[..] == p.req_gids[..]
    }

    /// Decode back to absolute parameters for process `rank`.
    pub fn decode(&self, rank: i64) -> MpiParams {
        MpiParams {
            dest: self.dest.resolve(rank),
            src: self.src.resolve(rank),
            count: self.count,
            rcount: self.rcount,
            tag: self.tag,
            rtag: self.rtag,
            root: self.root.resolve(rank),
            comm: self.comm,
            req_gids: self.req_gids.to_vec(),
        }
    }
}

/// One merged communication record of a leaf vertex: `count` consecutive
/// occurrences with identical parameters, plus aggregated timing (operation
/// duration and preceding computation gap).
#[derive(Debug, Clone, PartialEq)]
pub struct LeafRecord {
    pub params: EncParams,
    pub count: u64,
    /// Aggregated operation durations.
    pub time: TimeStats,
    /// Aggregated computation gap since the previous traced operation (used
    /// by trace-driven replay as the sequential-computation input).
    pub gap: TimeStats,
}

impl LeafRecord {
    /// Records merge when their communication parameters (not timing) match.
    pub fn matches(&self, params: &EncParams) -> bool {
        self.params == *params
    }

    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.params.req_gids.len() * 4
            + self.time.approx_bytes()
            + self.gap.approx_bytes()
    }
}

/// Per-vertex runtime data (the "linked list" of paper Fig. 10/13).
#[derive(Debug, Clone, PartialEq)]
pub enum VertexData {
    Root,
    /// Per-visit iteration counts.
    Loop {
        counts: IntSeq,
    },
    /// Parent-visit indices at which this arm was taken.
    Branch {
        taken: IntSeq,
    },
    /// Merged communication records, in first-occurrence order.
    Leaf {
        records: Vec<LeafRecord>,
    },
}

impl VertexData {
    pub fn approx_bytes(&self) -> usize {
        match self {
            VertexData::Root => 0,
            VertexData::Loop { counts } => counts.approx_bytes(),
            VertexData::Branch { taken } => taken.approx_bytes(),
            VertexData::Leaf { records } => {
                records.iter().map(|r| r.approx_bytes()).sum::<usize>() + 24
            }
        }
    }
}

/// One process's compressed trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Ctt {
    pub rank: u32,
    pub nprocs: u32,
    /// Total virtual application time (ns).
    pub app_time: u64,
    /// Indexed by CST GID.
    pub data: Vec<VertexData>,
}

impl Ctt {
    /// Approximate live memory footprint (Fig. 16's memory-overhead metric).
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self
                .data
                .iter()
                .map(|d| d.approx_bytes() + std::mem::size_of::<VertexData>())
                .sum::<usize>()
    }

    /// Total merged record count across leaves (the paper's `n`, the length
    /// of the compressed per-process trace).
    pub fn record_count(&self) -> usize {
        self.data
            .iter()
            .map(|d| match d {
                VertexData::Leaf { records } => records.len(),
                _ => 0,
            })
            .sum()
    }

    /// Total uncompressed MPI operation count represented.
    pub fn op_count(&self) -> u64 {
        self.data
            .iter()
            .map(|d| match d {
                VertexData::Leaf { records } => records.iter().map(|r| r.count).sum(),
                _ => 0,
            })
            .sum()
    }
}

const TAG_NONE: u8 = 0;
const TAG_ANY: u8 = 1;
const TAG_ABS: u8 = 2;
const TAG_REL: u8 = 3;

impl Codec for RankEnc {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            RankEnc::None => enc.put_u8(TAG_NONE),
            RankEnc::Any => enc.put_u8(TAG_ANY),
            RankEnc::Abs(v) => {
                enc.put_u8(TAG_ABS);
                enc.put_ivar(*v);
            }
            RankEnc::Rel(d) => {
                enc.put_u8(TAG_REL);
                enc.put_ivar(*d);
            }
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> DecodeResult<Self> {
        Ok(match dec.get_u8()? {
            TAG_NONE => RankEnc::None,
            TAG_ANY => RankEnc::Any,
            TAG_ABS => RankEnc::Abs(dec.get_ivar()?),
            TAG_REL => RankEnc::Rel(dec.get_ivar()?),
            t => return Err(DecodeError(format!("bad RankEnc tag {t}"))),
        })
    }
}

impl Codec for EncParams {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(self.op.code());
        self.dest.encode(enc);
        self.src.encode(enc);
        self.root.encode(enc);
        enc.put_ivar(self.count);
        enc.put_ivar(self.rcount);
        enc.put_ivar(self.tag);
        enc.put_ivar(self.rtag);
        enc.put_ivar(self.comm);
        enc.put_uvar(self.req_gids.len() as u64);
        for &g in self.req_gids.iter() {
            enc.put_uvar(g as u64);
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> DecodeResult<Self> {
        let code = dec.get_u8()?;
        let op =
            MpiOp::from_code(code).ok_or_else(|| DecodeError(format!("bad op code {code}")))?;
        let dest = RankEnc::decode(dec)?;
        let src = RankEnc::decode(dec)?;
        let root = RankEnc::decode(dec)?;
        let count = dec.get_ivar()?;
        let rcount = dec.get_ivar()?;
        let tag = dec.get_ivar()?;
        let rtag = dec.get_ivar()?;
        let comm = dec.get_ivar()?;
        let n = dec.get_uvar()? as usize;
        if n > 1 << 24 {
            return Err(DecodeError(format!("absurd req_gids length {n}")));
        }
        let mut gids = Vec::with_capacity(n);
        for _ in 0..n {
            gids.push(dec.get_uvar()? as u32);
        }
        let req_gids = intern_gids(&gids);
        Ok(EncParams {
            op,
            dest,
            src,
            root,
            count,
            rcount,
            tag,
            rtag,
            comm,
            req_gids,
        })
    }
}

impl Codec for LeafRecord {
    fn encode(&self, enc: &mut Encoder) {
        self.params.encode(enc);
        enc.put_uvar(self.count);
        self.time.encode(enc);
        self.gap.encode(enc);
    }

    fn decode(dec: &mut Decoder<'_>) -> DecodeResult<Self> {
        Ok(LeafRecord {
            params: <EncParams as Codec>::decode(dec)?,
            count: dec.get_uvar()?,
            time: TimeStats::decode(dec)?,
            gap: TimeStats::decode(dec)?,
        })
    }
}

pub(crate) const VD_ROOT: u8 = 0;
pub(crate) const VD_LOOP: u8 = 1;
pub(crate) const VD_BRANCH: u8 = 2;
pub(crate) const VD_LEAF: u8 = 3;

impl Codec for VertexData {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            VertexData::Root => enc.put_u8(VD_ROOT),
            VertexData::Loop { counts } => {
                enc.put_u8(VD_LOOP);
                counts.encode(enc);
            }
            VertexData::Branch { taken } => {
                enc.put_u8(VD_BRANCH);
                taken.encode(enc);
            }
            VertexData::Leaf { records } => {
                enc.put_u8(VD_LEAF);
                enc.put_uvar(records.len() as u64);
                for r in records {
                    r.encode(enc);
                }
            }
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> DecodeResult<Self> {
        Ok(match dec.get_u8()? {
            VD_ROOT => VertexData::Root,
            VD_LOOP => VertexData::Loop {
                counts: IntSeq::decode(dec)?,
            },
            VD_BRANCH => VertexData::Branch {
                taken: IntSeq::decode(dec)?,
            },
            VD_LEAF => {
                let n = dec.get_uvar()? as usize;
                if n > 1 << 26 {
                    return Err(DecodeError(format!("absurd record count {n}")));
                }
                let mut records = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    records.push(LeafRecord::decode(dec)?);
                }
                VertexData::Leaf { records }
            }
            t => return Err(DecodeError(format!("bad VertexData tag {t}"))),
        })
    }
}

impl Codec for Ctt {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_uvar(self.rank as u64);
        enc.put_uvar(self.nprocs as u64);
        enc.put_uvar(self.app_time);
        enc.put_uvar(self.data.len() as u64);
        for d in &self.data {
            d.encode(enc);
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> DecodeResult<Self> {
        let rank = dec.get_uvar()? as u32;
        let nprocs = dec.get_uvar()? as u32;
        let app_time = dec.get_uvar()?;
        let n = dec.get_uvar()? as usize;
        if n > 1 << 26 {
            return Err(DecodeError(format!("absurd vertex count {n}")));
        }
        let mut data = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            data.push(VertexData::decode(dec)?);
        }
        Ok(Ctt {
            rank,
            nprocs,
            app_time,
            data,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timestats::TimeMode;

    #[test]
    fn relative_encoding_makes_stencil_params_rank_invariant() {
        let p0 = MpiParams::send(1, 64, 0); // rank 0 sends to 1
        let p5 = MpiParams::send(6, 64, 0); // rank 5 sends to 6
        let e0 = EncParams::encode(0, MpiOp::Send, &p0);
        let e5 = EncParams::encode(5, MpiOp::Send, &p5);
        assert_eq!(e0, e5);
        assert_eq!(e0.dest, RankEnc::Rel(1));
    }

    #[test]
    fn root_encoding_stays_absolute() {
        let p = MpiParams::rooted(0, 8);
        let e3 = EncParams::encode(3, MpiOp::Bcast, &p);
        let e9 = EncParams::encode(9, MpiOp::Bcast, &p);
        assert_eq!(e3, e9);
        assert_eq!(e3.root, RankEnc::Abs(0));
    }

    #[test]
    fn encode_decode_inverse_for_every_field() {
        let p = MpiParams::sendrecv(7, 100, 1, 3, 200, 2);
        let e = EncParams::encode(5, MpiOp::Sendrecv, &p);
        assert_eq!(e.decode(5), p);
    }

    #[test]
    fn wildcard_source_round_trips() {
        let p = MpiParams::recv(ANY_SOURCE, 8, 0);
        let e = EncParams::encode(2, MpiOp::Irecv, &p);
        assert_eq!(e.src, RankEnc::Any);
        assert_eq!(e.decode(2).src, ANY_SOURCE);
    }

    #[test]
    fn req_gid_interning_preserves_async_semantics() {
        // Completion records carry request GIDs; moving them behind a
        // refcounted slice must not change encode/compare/decode semantics.
        let p = MpiParams::completion(vec![4, 7]);
        let e = EncParams::encode(3, MpiOp::Waitall, &p);
        assert_eq!(e.req_gids[..], [4, 7]);
        assert!(e.matches_raw(3, MpiOp::Waitall, &p, true));
        assert_eq!(e.decode(3).req_gids, vec![4, 7]);
        // A different GID list no longer matches.
        let other = MpiParams::completion(vec![4, 8]);
        assert!(!e.matches_raw(3, MpiOp::Waitall, &other, true));
        // Cloning is a refcount bump, not a copy…
        let c = e.clone();
        assert!(Arc::ptr_eq(&e.req_gids, &c.req_gids));
        // …and the (dominant) empty case shares one allocation everywhere.
        let a = EncParams::encode(0, MpiOp::Send, &MpiParams::send(1, 8, 0));
        let b = EncParams::encode(5, MpiOp::Recv, &MpiParams::recv(4, 8, 0));
        assert!(Arc::ptr_eq(&a.req_gids, &b.req_gids));
        // Codec round trip preserves the list.
        let back = EncParams::from_bytes(&e.to_bytes()).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn ctt_codec_round_trip() {
        let mut time = TimeStats::new(TimeMode::MeanStd);
        time.add(120);
        time.add(130);
        let ctt = Ctt {
            rank: 3,
            nprocs: 8,
            app_time: 999,
            data: vec![
                VertexData::Root,
                VertexData::Loop {
                    counts: IntSeq::from_slice(&[10]),
                },
                VertexData::Branch {
                    taken: IntSeq::from_slice(&[0, 2, 4]),
                },
                VertexData::Leaf {
                    records: vec![LeafRecord {
                        params: EncParams::encode(3, MpiOp::Send, &MpiParams::send(4, 64, 0)),
                        count: 5,
                        time,
                        gap: TimeStats::new(TimeMode::MeanStd),
                    }],
                },
            ],
        };
        let back = Ctt::from_bytes(&ctt.to_bytes()).unwrap();
        // Timing statistics are quantized by the codec; the encoding itself
        // is canonical (re-encoding is byte-stable), and everything except
        // timing round-trips exactly.
        assert_eq!(back.to_bytes(), ctt.to_bytes());
        assert_eq!(back.rank, ctt.rank);
        assert_eq!(back.record_count(), ctt.record_count());
        assert_eq!(back.op_count(), ctt.op_count());
    }

    #[test]
    fn record_and_op_counts() {
        let ctt = Ctt {
            rank: 0,
            nprocs: 1,
            app_time: 0,
            data: vec![
                VertexData::Root,
                VertexData::Leaf {
                    records: vec![
                        LeafRecord {
                            params: EncParams::encode(0, MpiOp::Barrier, &MpiParams::collective(0)),
                            count: 7,
                            time: TimeStats::None,
                            gap: TimeStats::None,
                        },
                        LeafRecord {
                            params: EncParams::encode(0, MpiOp::Bcast, &MpiParams::rooted(0, 4)),
                            count: 3,
                            time: TimeStats::None,
                            gap: TimeStats::None,
                        },
                    ],
                },
            ],
        };
        assert_eq!(ctt.record_count(), 2);
        assert_eq!(ctt.op_count(), 10);
        assert!(ctt.approx_bytes() > 0);
    }
}
