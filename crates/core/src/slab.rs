//! Pooled ("slab") CTT decoding for the zero-copy trace store.
//!
//! [`Ctt`]'s owned representation allocates per vertex: every loop/branch
//! sequence is its own `Vec<Seg>`, every leaf its own `Vec<LeafRecord>`.
//! That is fine for a compressor building trees incrementally, but a query
//! daemon that decodes thousands of rank CTTs per second wants the decoded
//! form to be a handful of large allocations with good locality, not a
//! fresh heap object per CST vertex.
//!
//! [`CttSlab`] decodes the exact same wire format as `Ctt` into three flat
//! pools — one vertex-table entry per GID, one shared segment vector, one
//! shared record vector — with each vertex holding index ranges into the
//! pools. Borrowed [`SeqRef`] views (and `&LeafRecord`s) are handed to
//! [`CttFold`] callbacks in exactly the order [`fold_ctt`](crate::fold_ctt)
//! would produce, so any fold-based analysis (the whole compressed-domain
//! query engine) runs on a slab with byte-identical results. The
//! partial-expansion fallback materializes an owned [`Ctt`] on demand via
//! [`CttSource::as_ctt`].

use crate::ctt::{Ctt, LeafRecord, VertexData, VD_BRANCH, VD_LEAF, VD_LOOP, VD_ROOT};
use crate::intseq::{decode_segs_into, Seg, SeqRef};
use crate::visit::{CttFold, CttSource, RankScope};
use cypress_trace::codec::{Codec, DecodeError, DecodeResult, Decoder};
use std::borrow::Cow;

/// One vertex's slot: index ranges into the shared pools. Mirrors
/// [`VertexData`] without owning any allocation.
#[derive(Debug, Clone, Copy, PartialEq)]
enum SlabVertex {
    Root,
    Loop { segs: (u32, u32), total: u64 },
    Branch { segs: (u32, u32), total: u64 },
    Leaf { records: (u32, u32) },
}

/// One process's compressed trace, decoded into pooled storage. Same wire
/// format as [`Ctt`]; see the module docs for why the in-memory shape
/// differs.
#[derive(Debug, Clone, PartialEq)]
pub struct CttSlab {
    pub rank: u32,
    pub nprocs: u32,
    /// Total virtual application time (ns).
    pub app_time: u64,
    verts: Vec<SlabVertex>,
    /// Every loop/branch sequence's segments, contiguous in GID order.
    segs: Vec<Seg>,
    /// Every leaf's records, contiguous in GID order.
    records: Vec<LeafRecord>,
}

impl CttSlab {
    /// Decode a full buffer (the payload of a `RankCtt` container section),
    /// rejecting trailing bytes — the slab twin of `Ctt::from_bytes`.
    pub fn from_bytes(buf: &[u8]) -> DecodeResult<CttSlab> {
        let mut dec = Decoder::new(buf);
        let slab = CttSlab::decode(&mut dec)?;
        if !dec.is_done() {
            return Err(DecodeError(format!(
                "{} trailing bytes after CttSlab",
                dec.remaining()
            )));
        }
        Ok(slab)
    }

    /// Decode from a decoder position (same guards as `Ctt::decode`).
    pub fn decode(dec: &mut Decoder<'_>) -> DecodeResult<CttSlab> {
        let rank = dec.get_uvar()? as u32;
        let nprocs = dec.get_uvar()? as u32;
        let app_time = dec.get_uvar()?;
        let n = dec.get_uvar()? as usize;
        if n > 1 << 26 {
            return Err(DecodeError(format!("absurd vertex count {n}")));
        }
        let mut slab = CttSlab {
            rank,
            nprocs,
            app_time,
            verts: Vec::with_capacity(n.min(1 << 16)),
            segs: Vec::new(),
            records: Vec::new(),
        };
        for _ in 0..n {
            let v = match dec.get_u8()? {
                VD_ROOT => SlabVertex::Root,
                VD_LOOP => {
                    let (segs, total) = decode_pooled_seq(dec, &mut slab.segs)?;
                    SlabVertex::Loop { segs, total }
                }
                VD_BRANCH => {
                    let (segs, total) = decode_pooled_seq(dec, &mut slab.segs)?;
                    SlabVertex::Branch { segs, total }
                }
                VD_LEAF => {
                    let k = dec.get_uvar()? as usize;
                    if k > 1 << 26 {
                        return Err(DecodeError(format!("absurd record count {k}")));
                    }
                    let lo = slab.records.len() as u32;
                    slab.records.reserve(k.min(1 << 16));
                    for _ in 0..k {
                        slab.records.push(LeafRecord::decode(dec)?);
                    }
                    SlabVertex::Leaf {
                        records: (lo, slab.records.len() as u32),
                    }
                }
                t => return Err(DecodeError(format!("bad VertexData tag {t}"))),
            };
            slab.verts.push(v);
        }
        Ok(slab)
    }

    fn seq(&self, range: (u32, u32), total: u64) -> SeqRef<'_> {
        SeqRef::from_parts(&self.segs[range.0 as usize..range.1 as usize], total)
    }

    /// Number of CTT vertices (mirrors the CST shape).
    pub fn vertex_count(&self) -> usize {
        self.verts.len()
    }

    /// Total merged record count across leaves.
    pub fn record_count(&self) -> usize {
        self.records.len()
    }

    /// Total uncompressed MPI operation count represented.
    pub fn op_count(&self) -> u64 {
        self.records.iter().map(|r| r.count).sum()
    }

    /// Approximate live memory footprint — the store's byte-budget input.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.verts.capacity() * std::mem::size_of::<SlabVertex>()
            + self.segs.capacity() * std::mem::size_of::<Seg>()
            + self.records.iter().map(|r| r.approx_bytes()).sum::<usize>()
    }

    /// Materialize the equivalent owned [`Ctt`] (used by the
    /// partial-expansion query fallback, which replays through `decompress`).
    pub fn to_ctt(&self) -> Ctt {
        let data = self
            .verts
            .iter()
            .map(|v| match *v {
                SlabVertex::Root => VertexData::Root,
                SlabVertex::Loop { segs, total } => VertexData::Loop {
                    counts: self.seq(segs, total).to_int_seq(),
                },
                SlabVertex::Branch { segs, total } => VertexData::Branch {
                    taken: self.seq(segs, total).to_int_seq(),
                },
                SlabVertex::Leaf { records } => VertexData::Leaf {
                    records: self.records[records.0 as usize..records.1 as usize].to_vec(),
                },
            })
            .collect();
        Ctt {
            rank: self.rank,
            nprocs: self.nprocs,
            app_time: self.app_time,
            data,
        }
    }
}

fn decode_pooled_seq(
    dec: &mut Decoder<'_>,
    pool: &mut Vec<Seg>,
) -> DecodeResult<((u32, u32), u64)> {
    let lo = pool.len() as u32;
    let total = decode_segs_into(dec, pool)?;
    Ok(((lo, pool.len() as u32), total))
}

impl CttSource for CttSlab {
    fn rank(&self) -> u32 {
        self.rank
    }
    fn nprocs(&self) -> u32 {
        self.nprocs
    }
    fn app_time(&self) -> u64 {
        self.app_time
    }
    fn vertex_count(&self) -> usize {
        self.verts.len()
    }
    /// Same walk, same callback order, same borrowed data as
    /// [`fold_ctt`](crate::fold_ctt) over the equivalent [`Ctt`].
    fn fold<F: CttFold>(&self, f: &mut F) {
        let scope = RankScope::One(self.rank);
        for (gid, v) in self.verts.iter().enumerate() {
            let gid = gid as u32;
            match *v {
                SlabVertex::Root => {}
                SlabVertex::Loop { segs, total } => f.on_loop(gid, scope, self.seq(segs, total)),
                SlabVertex::Branch { segs, total } => {
                    f.on_branch(gid, scope, self.seq(segs, total))
                }
                SlabVertex::Leaf { records } => {
                    let recs = &self.records[records.0 as usize..records.1 as usize];
                    for (slot, rec) in recs.iter().enumerate() {
                        f.on_record(gid, slot, scope, rec);
                    }
                }
            }
        }
    }
    fn as_ctt(&self) -> Cow<'_, Ctt> {
        Cow::Owned(self.to_ctt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::{compress_trace, CompressConfig};
    use cypress_cst::analyze_program;
    use cypress_minilang::{check_program, parse};
    use cypress_runtime::{trace_program, InterpConfig};

    fn sample_ctts(nprocs: u32) -> Vec<Ctt> {
        let src = r#"fn main() {
            for i in 0..30 {
                if rank() > 0 { send(rank() - 1, 64, 0); }
                if rank() < size() - 1 { recv(rank() + 1, 64, 0); }
                for j in 0..i { barrier(); }
            }
            allreduce(8);
        }"#;
        let p = parse(src).unwrap();
        check_program(&p).unwrap();
        let info = analyze_program(&p);
        let traces = trace_program(&p, &info, nprocs, &InterpConfig::default()).unwrap();
        traces
            .iter()
            .map(|t| compress_trace(&info.cst, t, &CompressConfig::default()))
            .collect()
    }

    /// Records every callback so per-Ctt and per-slab walks can be diffed.
    #[derive(Default, PartialEq, Debug)]
    struct RecordingFold {
        events: Vec<String>,
    }

    impl CttFold for RecordingFold {
        fn on_loop(&mut self, gid: u32, ranks: RankScope, counts: SeqRef<'_>) {
            self.events.push(format!(
                "loop g{gid} r{:?} sum{} len{} segs{:?}",
                ranks.iter().collect::<Vec<_>>(),
                counts.sum(),
                counts.len(),
                counts.segments()
            ));
        }
        fn on_branch(&mut self, gid: u32, ranks: RankScope, taken: SeqRef<'_>) {
            self.events.push(format!(
                "branch g{gid} r{:?} sum{} len{}",
                ranks.iter().collect::<Vec<_>>(),
                taken.sum(),
                taken.len()
            ));
        }
        fn on_record(&mut self, gid: u32, slot: usize, ranks: RankScope, rec: &LeafRecord) {
            self.events.push(format!(
                "rec g{gid} s{slot} r{:?} {:?}",
                ranks.iter().collect::<Vec<_>>(),
                rec
            ));
        }
    }

    #[test]
    fn slab_decodes_ctt_wire_format_and_round_trips() {
        for ctt in sample_ctts(4) {
            let bytes = ctt.to_bytes();
            let slab = CttSlab::from_bytes(&bytes).unwrap();
            assert_eq!(slab.rank, ctt.rank);
            assert_eq!(slab.nprocs, ctt.nprocs);
            assert_eq!(slab.app_time, ctt.app_time);
            assert_eq!(slab.vertex_count(), ctt.data.len());
            assert_eq!(slab.record_count(), ctt.record_count());
            assert_eq!(slab.op_count(), ctt.op_count());
            assert_eq!(slab.to_ctt(), ctt, "to_ctt must reconstruct exactly");
        }
    }

    #[test]
    fn slab_fold_matches_ctt_fold_exactly() {
        for ctt in sample_ctts(6) {
            let slab = CttSlab::from_bytes(&ctt.to_bytes()).unwrap();
            let mut on_ctt = RecordingFold::default();
            crate::visit::fold_ctt(&ctt, &mut on_ctt);
            let mut on_slab = RecordingFold::default();
            slab.fold(&mut on_slab);
            assert_eq!(on_ctt, on_slab, "rank {}", ctt.rank);
        }
    }

    #[test]
    fn slab_rejects_what_ctt_rejects() {
        let ctt = sample_ctts(2).remove(1);
        let bytes = ctt.to_bytes();
        for cut in 0..bytes.len() {
            assert_eq!(
                CttSlab::from_bytes(&bytes[..cut]).is_err(),
                Ctt::from_bytes(&bytes[..cut]).is_err(),
                "cut {cut}"
            );
        }
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(CttSlab::from_bytes(&trailing).is_err());
    }

    #[test]
    fn slab_is_leaner_than_owned_ctt() {
        // The point of pooling: fewer, larger allocations. The footprint
        // should never exceed the owned tree's.
        let ctts = sample_ctts(4);
        for ctt in &ctts {
            let slab = CttSlab::from_bytes(&ctt.to_bytes()).unwrap();
            assert!(
                slab.approx_bytes() <= ctt.approx_bytes() + 64,
                "slab {} vs ctt {}",
                slab.approx_bytes(),
                ctt.approx_bytes()
            );
        }
    }
}
