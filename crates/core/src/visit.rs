//! Structure-preserving traversal of compressed trace trees.
//!
//! The compressed-domain query engine (`cypress-query`) and any other
//! CTT-shaped analysis share one access pattern: walk every vertex's recorded
//! data exactly once, knowing which ranks the data applies to. This module
//! provides that walk as a fold so analyses run in O(|CTT|) — proportional to
//! the number of stored segments/records, never the number of original
//! events.
//!
//! [`fold_ctt`] visits a single process's tree (every callback scoped to that
//! one rank); [`fold_merged`] visits an inter-process [`MergedCtt`], handing
//! each group's [`RankSet`] to the callback so per-rank quantities can be
//! expanded symbolically (e.g. resolving `rank ± c` relative encodings per
//! member rank) without materializing per-rank trees.

use crate::ctt::{Ctt, LeafRecord, VertexData};
use crate::intseq::SeqRef;
use crate::merge::{MergedCtt, MergedVertex, RankSet};
use std::borrow::Cow;

/// The set of ranks a folded datum applies to: a single process's rank when
/// folding a per-rank [`Ctt`], or a merged group's [`RankSet`].
#[derive(Clone, Copy)]
pub enum RankScope<'a> {
    One(u32),
    Set(&'a RankSet),
}

impl RankScope<'_> {
    /// Number of ranks in scope.
    pub fn len(&self) -> u64 {
        match self {
            RankScope::One(_) => 1,
            RankScope::Set(rs) => rs.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterate the member ranks without allocating.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        let (one, set) = match self {
            RankScope::One(r) => (Some(*r), None),
            RankScope::Set(rs) => (None, Some(rs.iter())),
        };
        one.into_iter().chain(set.into_iter().flatten())
    }
}

/// Callbacks for one pass over a compressed trace tree. Control-vertex hooks
/// default to no-ops so record-only analyses (volume, profiles) stay terse;
/// hot-spot provenance implements `on_loop` to recover trip counts.
pub trait CttFold {
    /// A loop vertex's per-visit iteration-count sequence.
    fn on_loop(&mut self, _gid: u32, _ranks: RankScope, _counts: SeqRef<'_>) {}
    /// A branch vertex's taken-visit-index sequence.
    fn on_branch(&mut self, _gid: u32, _ranks: RankScope, _taken: SeqRef<'_>) {}
    /// One merged leaf record. `slot` is the record's first-occurrence index
    /// within its leaf; `rec.count` is the total occurrence count for *each*
    /// rank in scope (merging requires equal counts, so the group total is
    /// `rec.count * ranks.len()`).
    fn on_record(&mut self, gid: u32, slot: usize, ranks: RankScope, rec: &LeafRecord);
}

/// Fold one process's CTT. Every callback receives `RankScope::One(ctt.rank)`.
pub fn fold_ctt<F: CttFold>(ctt: &Ctt, f: &mut F) {
    let scope = RankScope::One(ctt.rank);
    for (gid, vd) in ctt.data.iter().enumerate() {
        let gid = gid as u32;
        match vd {
            VertexData::Root => {}
            VertexData::Loop { counts } => f.on_loop(gid, scope, counts.view()),
            VertexData::Branch { taken } => f.on_branch(gid, scope, taken.view()),
            VertexData::Leaf { records } => {
                for (slot, rec) in records.iter().enumerate() {
                    f.on_record(gid, slot, scope, rec);
                }
            }
        }
    }
}

/// Anything a fold (and the query engine) can treat as one process's
/// compressed trace tree: an owned [`Ctt`], or a pooled
/// [`CttSlab`](crate::slab::CttSlab) whose vertices live in shared arena
/// vectors. Keeping the engine generic over this trait is what lets the
/// trace store query slab-decoded jobs through exactly the same fold code
/// paths as owned CTTs — identical callback order, identical results.
pub trait CttSource {
    fn rank(&self) -> u32;
    fn nprocs(&self) -> u32;
    fn app_time(&self) -> u64;
    /// Number of CTT vertices (must mirror the CST shape).
    fn vertex_count(&self) -> usize;
    /// Walk the tree, invoking `f` exactly as [`fold_ctt`] would.
    fn fold<F: CttFold>(&self, f: &mut F);
    /// An owned (or borrowed) [`Ctt`] with identical contents — the
    /// partial-expansion fallback decompresses through this.
    fn as_ctt(&self) -> Cow<'_, Ctt>;
}

/// A shared reference to a source is itself a source, so callers can build
/// reordered views (`Vec<&CttSlab>` sorted by rank) without cloning trees.
impl<S: CttSource> CttSource for &S {
    fn rank(&self) -> u32 {
        (**self).rank()
    }
    fn nprocs(&self) -> u32 {
        (**self).nprocs()
    }
    fn app_time(&self) -> u64 {
        (**self).app_time()
    }
    fn vertex_count(&self) -> usize {
        (**self).vertex_count()
    }
    fn fold<F: CttFold>(&self, f: &mut F) {
        (**self).fold(f);
    }
    fn as_ctt(&self) -> Cow<'_, Ctt> {
        (**self).as_ctt()
    }
}

impl CttSource for Ctt {
    fn rank(&self) -> u32 {
        self.rank
    }
    fn nprocs(&self) -> u32 {
        self.nprocs
    }
    fn app_time(&self) -> u64 {
        self.app_time
    }
    fn vertex_count(&self) -> usize {
        self.data.len()
    }
    fn fold<F: CttFold>(&self, f: &mut F) {
        fold_ctt(self, f);
    }
    fn as_ctt(&self) -> Cow<'_, Ctt> {
        Cow::Borrowed(self)
    }
}

/// Fold a merged CTT. Each callback receives its group's [`RankSet`]; the
/// walk is O(total groups), independent of `nprocs * events`.
pub fn fold_merged<F: CttFold>(m: &MergedCtt, f: &mut F) {
    for (gid, mv) in m.vertices.iter().enumerate() {
        let gid = gid as u32;
        match mv {
            MergedVertex::Empty => {}
            MergedVertex::Control(groups) => {
                for (rs, vd) in groups {
                    match vd {
                        VertexData::Loop { counts } => {
                            f.on_loop(gid, RankScope::Set(rs), counts.view())
                        }
                        VertexData::Branch { taken } => {
                            f.on_branch(gid, RankScope::Set(rs), taken.view())
                        }
                        _ => {}
                    }
                }
            }
            MergedVertex::Leaf(slots) => {
                for (slot, groups) in slots.iter().enumerate() {
                    for (rs, rec) in groups {
                        f.on_record(gid, slot, RankScope::Set(rs), rec);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::{compress_trace, CompressConfig};
    use crate::merge::merge_all;
    use cypress_cst::analyze_program;
    use cypress_minilang::{check_program, parse};
    use cypress_runtime::{trace_program, InterpConfig};

    struct CountFold {
        loops: usize,
        records: usize,
        total_occurrences: u64,
    }

    impl CttFold for CountFold {
        fn on_loop(&mut self, _gid: u32, _ranks: RankScope, _counts: SeqRef<'_>) {
            self.loops += 1;
        }
        fn on_record(&mut self, _gid: u32, _slot: usize, ranks: RankScope, rec: &LeafRecord) {
            self.records += 1;
            self.total_occurrences += rec.count * ranks.len();
        }
    }

    fn compile_and_trace(src: &str, nprocs: u32) -> (cypress_cst::Cst, Vec<Ctt>) {
        let p = parse(src).unwrap();
        check_program(&p).unwrap();
        let info = analyze_program(&p);
        let traces = trace_program(&p, &info, nprocs, &InterpConfig::default()).unwrap();
        let ctts = traces
            .iter()
            .map(|t| compress_trace(&info.cst, t, &CompressConfig::default()))
            .collect();
        (info.cst, ctts)
    }

    #[test]
    fn fold_ctt_and_merged_agree_on_occurrence_totals() {
        let (_cst, ctts) = compile_and_trace(
            r#"fn main() {
                for i in 0..20 {
                    if rank() > 0 { send(rank() - 1, 64, 0); }
                    if rank() < size() - 1 { recv(rank() + 1, 64, 0); }
                }
            }"#,
            4,
        );
        let mut per_rank = CountFold {
            loops: 0,
            records: 0,
            total_occurrences: 0,
        };
        for ctt in &ctts {
            fold_ctt(ctt, &mut per_rank);
        }
        let merged = merge_all(&ctts);
        let mut m = CountFold {
            loops: 0,
            records: 0,
            total_occurrences: 0,
        };
        fold_merged(&merged, &mut m);
        // SPMD symmetry: merging collapses groups, so the merged fold sees
        // fewer (or equal) callbacks but the same total occurrence count.
        assert!(m.records <= per_rank.records);
        assert_eq!(m.total_occurrences, per_rank.total_occurrences);
        let events: u64 = ctts.iter().map(|c| c.op_count()).sum();
        assert_eq!(m.total_occurrences, events);
    }

    #[test]
    fn rank_scope_iteration() {
        let one = RankScope::One(7);
        assert_eq!(one.iter().collect::<Vec<_>>(), vec![7]);
        assert_eq!(one.len(), 1);
        let mut rs = RankSet::singleton(1);
        rs.extend(&RankSet::singleton(2));
        rs.extend(&RankSet::singleton(3));
        let set = RankScope::Set(&rs);
        assert_eq!(set.iter().collect::<Vec<_>>(), vec![1, 2, 3]);
        assert_eq!(set.len(), 3);
        assert!(!set.is_empty());
    }
}
