//! Stride/run-length compressed integer sequences.
//!
//! The paper compresses loop iteration counts and branch outcomes with
//! run-length notation (`a×n`) and striding tuples (`<first,last,stride>`,
//! e.g. "iteration count goes 0..k-1 with stride 1"). [`IntSeq`] generalizes
//! both: a sequence of *segments*, each an arithmetic progression
//! `(start, stride, len)` optionally repeated `reps` times, so that a
//! triangular inner-loop count sequence `0,1,2,…,k-1` is one segment, a
//! constant sequence is one segment with stride 0, and a periodic pattern
//! (inner counts repeating every outer iteration) folds into `reps`.
//!
//! Lossless: `decompress(compress(xs)) == xs` for every `Vec<i64>`
//! (property-tested).

use cypress_trace::codec::{Codec, DecodeError, DecodeResult, Decoder, Encoder};

/// One arithmetic-progression segment, repeated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Seg {
    pub start: i64,
    pub stride: i64,
    /// Number of terms in the progression (≥ 1).
    pub len: u32,
    /// How many times the whole progression repeats (≥ 1).
    pub reps: u32,
}

impl Seg {
    /// Total values this segment expands to.
    pub fn total(&self) -> u64 {
        self.len as u64 * self.reps as u64
    }

    /// Value at position `i` within a single repetition.
    fn value_at(&self, i: u32) -> i64 {
        self.start.wrapping_add(self.stride.wrapping_mul(i as i64))
    }
}

/// A compressed sequence of `i64`s.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct IntSeq {
    segs: Vec<Seg>,
    /// Terms accumulated in the trailing, still-open progression.
    /// (Invariant maintained by `push`: the last segment may still grow.)
    total: u64,
}

impl IntSeq {
    pub fn new() -> Self {
        IntSeq::default()
    }

    /// Build from a slice.
    pub fn from_slice(xs: &[i64]) -> Self {
        let mut s = IntSeq::new();
        for &x in xs {
            s.push(x);
        }
        s
    }

    /// Number of values in the (logical) sequence.
    pub fn len(&self) -> u64 {
        self.total
    }

    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Number of physical segments (the compressed size driver).
    pub fn seg_count(&self) -> usize {
        self.segs.len()
    }

    pub fn segments(&self) -> &[Seg] {
        &self.segs
    }

    /// Append one value, extending the trailing segment when possible.
    pub fn push(&mut self, v: i64) {
        self.total += 1;
        if let Some(last) = self.segs.last_mut() {
            if last.reps == 1 {
                // Open progression: try to extend.
                if last.len == 1 {
                    last.stride = v.wrapping_sub(last.start);
                    last.len = 2;
                    self.try_fold_reps();
                    return;
                }
                let expected = last.value_at(last.len);
                if v == expected {
                    last.len += 1;
                    self.try_fold_reps();
                    return;
                }
            }
            // Closed (repeated) segment, or open progression that `v` does
            // not continue: start a new segment below. Periodic patterns
            // re-accumulate in the new segment and fold into `reps` once it
            // replicates its predecessor (try_fold_reps).
        }
        self.segs.push(Seg {
            start: v,
            stride: 0,
            len: 1,
            reps: 1,
        });
        self.try_fold_reps();
    }

    /// If the trailing segment exactly replicates its predecessor's
    /// progression, fold it into `reps`.
    fn try_fold_reps(&mut self) {
        let n = self.segs.len();
        if n < 2 {
            return;
        }
        let (prev, last) = {
            let (a, b) = self.segs.split_at(n - 1);
            (a[n - 2], b[0])
        };
        if last.reps == 1
            && last.len == prev.len
            && last.start == prev.start
            && (last.stride == prev.stride || prev.len == 1)
        {
            self.segs[n - 2].reps = prev.reps + 1;
            self.segs.pop();
        }
    }

    /// Expand to a `Vec` (tests / small sequences).
    pub fn to_vec(&self) -> Vec<i64> {
        let mut out = Vec::with_capacity(self.total as usize);
        for s in &self.segs {
            for _ in 0..s.reps {
                for i in 0..s.len {
                    out.push(s.value_at(i));
                }
            }
        }
        out
    }

    /// Sequential reader over the values.
    pub fn reader(&self) -> IntSeqReader<'_> {
        self.view().reader()
    }

    /// Approximate in-memory footprint in bytes.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.segs.capacity() * std::mem::size_of::<Seg>()
    }

    /// Sum of all values, computed in O(segments) with the closed form for
    /// arithmetic progressions — the symbolic-evaluation primitive of the
    /// compressed-domain query engine (total loop trip counts come from here
    /// without expanding the sequence). Wraps on overflow, matching
    /// [`Seg::value_at`]'s wrapping semantics.
    pub fn sum(&self) -> i64 {
        self.view().sum()
    }

    /// A borrowed [`SeqRef`] view of this sequence.
    pub fn view(&self) -> SeqRef<'_> {
        SeqRef {
            segs: &self.segs,
            total: self.total,
        }
    }
}

/// A borrowed view of a compressed integer sequence: the shape shared by
/// [`IntSeq`] (which owns its segments) and pooled storage like
/// `CttSlab` (where every sequence's segments live in one contiguous
/// arena vector). `Copy`, so it passes by value; this is what
/// [`CttFold`](crate::visit::CttFold) callbacks receive.
#[derive(Debug, Clone, Copy)]
pub struct SeqRef<'a> {
    segs: &'a [Seg],
    total: u64,
}

impl<'a> SeqRef<'a> {
    /// View over raw parts. `total` must equal the sum of `seg.total()`s.
    pub fn from_parts(segs: &'a [Seg], total: u64) -> SeqRef<'a> {
        debug_assert_eq!(total, segs.iter().map(Seg::total).sum::<u64>());
        SeqRef { segs, total }
    }

    /// Number of values in the (logical) sequence.
    pub fn len(&self) -> u64 {
        self.total
    }

    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Number of physical segments (the compressed size driver).
    pub fn seg_count(&self) -> usize {
        self.segs.len()
    }

    pub fn segments(&self) -> &'a [Seg] {
        self.segs
    }

    /// Closed-form sum in O(segments); see [`IntSeq::sum`].
    pub fn sum(&self) -> i64 {
        let mut total = 0i64;
        for s in self.segs {
            let n = s.len as i64;
            let one = s
                .start
                .wrapping_mul(n)
                .wrapping_add(s.stride.wrapping_mul(n.wrapping_mul(n - 1) / 2));
            total = total.wrapping_add(one.wrapping_mul(s.reps as i64));
        }
        total
    }

    /// Sequential reader over the values.
    pub fn reader(&self) -> IntSeqReader<'a> {
        IntSeqReader {
            segs: self.segs,
            seg: 0,
            rep: 0,
            idx: 0,
        }
    }

    /// Materialize an owning [`IntSeq`] with the same contents.
    pub fn to_int_seq(&self) -> IntSeq {
        IntSeq {
            segs: self.segs.to_vec(),
            total: self.total,
        }
    }
}

/// Sequential consumer of a compressed sequence (supports peek, used by
/// branch outcome matching during decompression). Works over any segment
/// slice, so it serves both [`IntSeq`] and [`SeqRef`].
#[derive(Debug, Clone)]
pub struct IntSeqReader<'a> {
    segs: &'a [Seg],
    seg: usize,
    rep: u32,
    idx: u32,
}

#[allow(clippy::should_implement_trait)]
impl IntSeqReader<'_> {
    /// Look at the next value without consuming it.
    pub fn peek(&self) -> Option<i64> {
        let s = self.segs.get(self.seg)?;
        Some(s.value_at(self.idx))
    }

    /// Consume and return the next value.
    pub fn next(&mut self) -> Option<i64> {
        let s = self.segs.get(self.seg)?;
        let v = s.value_at(self.idx);
        self.idx += 1;
        if self.idx == s.len {
            self.idx = 0;
            self.rep += 1;
            if self.rep == s.reps {
                self.rep = 0;
                self.seg += 1;
            }
        }
        Some(v)
    }

    /// How many values remain.
    pub fn remaining(&self) -> u64 {
        let mut rem = 0u64;
        for (i, s) in self.segs.iter().enumerate().skip(self.seg) {
            if i == self.seg {
                let done = self.rep as u64 * s.len as u64 + self.idx as u64;
                rem += s.total() - done;
            } else {
                rem += s.total();
            }
        }
        rem
    }

    /// Unconditionally consume `n` values in O(segments), never O(n).
    /// Returns false (leaving the reader exhausted) if fewer than `n`
    /// values remain.
    pub fn skip(&mut self, mut n: u64) -> bool {
        while n > 0 {
            let Some(s) = self.segs.get(self.seg) else {
                return false;
            };
            let done = self.rep as u64 * s.len as u64 + self.idx as u64;
            let left_in_seg = s.total() - done;
            if n >= left_in_seg {
                n -= left_in_seg;
                self.seg += 1;
                self.rep = 0;
                self.idx = 0;
            } else {
                let pos = done + n;
                self.rep = (pos / s.len as u64) as u32;
                self.idx = (pos % s.len as u64) as u32;
                return true;
            }
        }
        true
    }

    /// Consume the next `m` values iff they form the arithmetic progression
    /// `first, first+stride, first+2·stride, …` (a constant run when
    /// `stride == 0`). On success the values are consumed and `true` is
    /// returned; on failure the reader is left untouched. Cost is
    /// O(segments touched), never O(m) — this is the bulk-verification
    /// primitive the compressed-domain schedule lowering uses to check loop
    /// bodies repeat without expanding trip counts.
    pub fn take_arith(&mut self, m: u64, first: i64, stride: i64) -> bool {
        if m == 0 {
            return true;
        }
        let mut probe = self.clone();
        let mut expect = first;
        let mut left = m;
        while left > 0 {
            let Some(s) = probe.segs.get(probe.seg) else {
                return false;
            };
            // The current chunk of equal-stride values: the rest of the whole
            // segment when it is constant (stride 0 or single-term runs),
            // else the rest of the current repetition (values reset at rep
            // boundaries, breaking any progression unless constant).
            let constant = s.stride == 0 || s.len == 1;
            let (chunk_first, chunk_stride, chunk_len) = if constant {
                let done = probe.rep as u64 * s.len as u64 + probe.idx as u64;
                (s.start, 0i64, s.total() - done)
            } else {
                (s.value_at(probe.idx), s.stride, (s.len - probe.idx) as u64)
            };
            if chunk_first != expect {
                return false;
            }
            let take = if chunk_stride == stride {
                chunk_len.min(left)
            } else {
                1
            };
            if take < left && take < chunk_len {
                // Stride mismatch with more values needed from this chunk:
                // the next chunk value cannot continue the progression.
                return false;
            }
            probe.skip(take);
            expect = expect.wrapping_add(stride.wrapping_mul(take as i64));
            left -= take;
        }
        *self = probe;
        true
    }
}

impl Codec for IntSeq {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_uvar(self.segs.len() as u64);
        for s in &self.segs {
            enc.put_ivar(s.start);
            enc.put_ivar(s.stride);
            enc.put_uvar(s.len as u64);
            enc.put_uvar(s.reps as u64);
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> DecodeResult<Self> {
        let mut segs = Vec::new();
        let total = decode_segs_into(dec, &mut segs)?;
        Ok(IntSeq { segs, total })
    }
}

/// Decode the wire form of an [`IntSeq`], appending its segments to `out`
/// instead of allocating a fresh vector — the primitive pooled (slab) CTT
/// decoding is built on. Returns the logical length of the sequence.
pub(crate) fn decode_segs_into(dec: &mut Decoder<'_>, out: &mut Vec<Seg>) -> DecodeResult<u64> {
    let n = dec.get_uvar()? as usize;
    if n > 1 << 28 {
        return Err(DecodeError(format!("absurd segment count {n}")));
    }
    out.reserve(n.min(1 << 16));
    let mut total = 0u64;
    for _ in 0..n {
        let start = dec.get_ivar()?;
        let stride = dec.get_ivar()?;
        let len = dec.get_uvar()? as u32;
        let reps = dec.get_uvar()? as u32;
        if len == 0 || reps == 0 {
            return Err(DecodeError("zero-length segment".into()));
        }
        total += len as u64 * reps as u64;
        out.push(Seg {
            start,
            stride,
            len,
            reps,
        });
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cypress_obs::rng::Rng;

    fn round_trip(xs: &[i64]) {
        let s = IntSeq::from_slice(xs);
        assert_eq!(s.to_vec(), xs, "segments: {:?}", s.segments());
        assert_eq!(s.len(), xs.len() as u64);
    }

    #[test]
    fn constant_run_is_one_segment() {
        let s = IntSeq::from_slice(&[7; 100]);
        assert_eq!(s.seg_count(), 1);
        assert_eq!(s.to_vec(), vec![7; 100]);
    }

    #[test]
    fn arithmetic_progression_is_one_segment() {
        let xs: Vec<i64> = (0..50).collect();
        let s = IntSeq::from_slice(&xs);
        assert_eq!(s.seg_count(), 1);
        assert_eq!(
            s.segments()[0],
            Seg {
                start: 0,
                stride: 1,
                len: 50,
                reps: 1
            }
        );
    }

    #[test]
    fn strided_progression_compresses() {
        // The paper's <0,8,2> example: branch taken at 0,2,4,6,8.
        let s = IntSeq::from_slice(&[0, 2, 4, 6, 8]);
        assert_eq!(s.seg_count(), 1);
        assert_eq!(s.segments()[0].stride, 2);
    }

    #[test]
    fn alternating_pattern_folds_into_reps() {
        // 1,0,1,0,... : pairs (1,0) repeated.
        let xs: Vec<i64> = (0..40).map(|i| (i + 1) % 2).collect();
        let s = IntSeq::from_slice(&xs);
        round_trip(&xs);
        assert!(s.seg_count() <= 3, "segments: {:?}", s.segments());
    }

    #[test]
    fn periodic_ap_folds_into_reps() {
        // 0,1,2,3 repeated 10 times (inner loop counts under an outer loop).
        let mut xs = Vec::new();
        for _ in 0..10 {
            xs.extend(0..4i64);
        }
        let s = IntSeq::from_slice(&xs);
        round_trip(&xs);
        assert!(s.seg_count() <= 3, "segments: {:?}", s.segments());
    }

    #[test]
    fn empty_and_singleton() {
        round_trip(&[]);
        round_trip(&[42]);
        assert!(IntSeq::new().is_empty());
    }

    #[test]
    fn reader_sequential_and_peek() {
        let s = IntSeq::from_slice(&[5, 5, 5, 1, 2, 3]);
        let mut r = s.reader();
        assert_eq!(r.peek(), Some(5));
        assert_eq!(r.remaining(), 6);
        let got: Vec<i64> = std::iter::from_fn(|| r.next()).collect();
        assert_eq!(got, vec![5, 5, 5, 1, 2, 3]);
        assert_eq!(r.peek(), None);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn take_arith_constant_and_strided() {
        let s = IntSeq::from_slice(&[3, 3, 3, 3, 0, 2, 4, 6, 7]);
        let mut r = s.reader();
        assert!(r.take_arith(4, 3, 0));
        assert!(!r.take_arith(4, 0, 1), "stride mismatch must not consume");
        assert_eq!(r.peek(), Some(0));
        assert!(r.take_arith(4, 0, 2));
        assert_eq!(r.next(), Some(7));
        assert!(r.take_arith(0, 99, 99), "empty take always succeeds");
        assert!(!r.take_arith(1, 7, 0), "exhausted reader fails");
    }

    #[test]
    fn take_arith_spans_segments_and_reps() {
        // 5 repeated 100× then 8 repeated 50×: constant runs across the
        // internal rep/segment structure.
        let mut xs = vec![5i64; 100];
        xs.extend(vec![8i64; 50]);
        let s = IntSeq::from_slice(&xs);
        let mut r = s.reader();
        assert!(r.take_arith(100, 5, 0));
        assert!(r.take_arith(50, 8, 0));
        assert_eq!(r.peek(), None);
    }

    #[test]
    fn take_arith_matches_scalar_consume_random() {
        let mut rng = Rng::new(0xa717);
        for _ in 0..256 {
            let xs = random_vec(&mut rng, -4, 4, 120);
            let s = IntSeq::from_slice(&xs);
            let m = rng.range_usize(0..xs.len() + 2) as u64;
            let first = rng.range_i64(-4..5);
            let stride = rng.range_i64(-2..3);
            let mut bulk = s.reader();
            let ok = bulk.take_arith(m, first, stride);
            // Scalar oracle: peek-and-next one value at a time.
            let mut scalar = s.reader();
            let mut scalar_ok = true;
            for i in 0..m {
                let want = first.wrapping_add(stride.wrapping_mul(i as i64));
                if scalar.next() != Some(want) {
                    scalar_ok = false;
                    break;
                }
            }
            assert_eq!(
                ok, scalar_ok,
                "xs={xs:?} m={m} first={first} stride={stride}"
            );
            if ok {
                assert_eq!(bulk.remaining(), s.len() - m);
                let mut a = Vec::new();
                while let Some(v) = bulk.next() {
                    a.push(v);
                }
                assert_eq!(a, xs[m as usize..].to_vec());
            }
        }
    }

    #[test]
    fn skip_matches_scalar_random() {
        let mut rng = Rng::new(0x5517);
        for _ in 0..256 {
            let xs = random_vec(&mut rng, -6, 6, 150);
            let s = IntSeq::from_slice(&xs);
            let n = rng.range_usize(0..xs.len() + 3) as u64;
            let mut r = s.reader();
            let ok = r.skip(n);
            assert_eq!(ok, n <= xs.len() as u64);
            if ok {
                assert_eq!(r.remaining(), xs.len() as u64 - n);
                assert_eq!(r.peek(), xs.get(n as usize).copied());
            } else {
                assert_eq!(r.peek(), None);
            }
        }
    }

    #[test]
    fn codec_round_trip() {
        let s = IntSeq::from_slice(&[0, 2, 4, 9, 9, 9, -1]);
        let b = s.to_bytes();
        assert_eq!(IntSeq::from_bytes(&b).unwrap(), s);
    }

    #[test]
    fn codec_rejects_zero_len_segment() {
        let mut enc = Encoder::new();
        enc.put_uvar(1);
        enc.put_ivar(0);
        enc.put_ivar(0);
        enc.put_uvar(0); // len 0
        enc.put_uvar(1);
        assert!(IntSeq::from_bytes(&enc.finish()).is_err());
    }

    fn random_vec(rng: &mut Rng, lo: i64, hi: i64, max_len: usize) -> Vec<i64> {
        let n = rng.range_usize(0..max_len);
        (0..n).map(|_| rng.range_i64(lo..hi)).collect()
    }

    #[test]
    fn round_trip_random_narrow() {
        let mut rng = Rng::new(0x5e91);
        for _ in 0..256 {
            round_trip(&random_vec(&mut rng, -20, 20, 200));
        }
    }

    #[test]
    fn round_trip_random_wide() {
        let mut rng = Rng::new(0x51de);
        for _ in 0..256 {
            let n = rng.range_usize(0..60);
            let xs: Vec<i64> = (0..n).map(|_| rng.next_u64() as i64).collect();
            round_trip(&xs);
        }
    }

    #[test]
    fn codec_round_trip_random() {
        let mut rng = Rng::new(0xc0dec);
        for _ in 0..256 {
            let xs = random_vec(&mut rng, -5, 5, 100);
            let s = IntSeq::from_slice(&xs);
            let back = IntSeq::from_bytes(&s.to_bytes()).unwrap();
            assert_eq!(back.to_vec(), xs);
        }
    }

    #[test]
    fn reader_matches_to_vec_random() {
        let mut rng = Rng::new(0x4ead);
        for _ in 0..256 {
            let xs = random_vec(&mut rng, -8, 8, 150);
            let s = IntSeq::from_slice(&xs);
            let mut r = s.reader();
            let got: Vec<i64> = std::iter::from_fn(|| r.next()).collect();
            assert_eq!(got, s.to_vec());
        }
    }

    #[test]
    fn compression_no_worse_than_linear_random() {
        let mut rng = Rng::new(0x11ea);
        for _ in 0..256 {
            let mut xs = random_vec(&mut rng, -4, 4, 120);
            if xs.is_empty() {
                xs.push(0);
            }
            let s = IntSeq::from_slice(&xs);
            assert!(s.seg_count() <= xs.len());
        }
    }
}
