//! Online intra-process trace compression (paper §IV-A).
//!
//! [`IntraCompressor`] consumes the instrumented event stream *during
//! execution* (it implements [`EventSink`]) and fills the CTT top-down:
//!
//! * **Communication vertices** — each incoming operation is compared with
//!   the last record at its leaf (configurable sliding window) and merged
//!   when all parameters match; timing is aggregated statistically.
//! * **Loop vertices** — `Enter` fires once per iteration and `Exit` once
//!   when the loop finishes, so per-visit iteration counts are recovered and
//!   pushed into a stride-compressed sequence (nested loops record inner
//!   counts per outer iteration, paper Fig. 10).
//! * **Branch vertices** — each taking records the parent structure's current
//!   visit index; stride tuples capture alternating patterns (Fig. 11).
//! * **Asynchronous completion** — `wait`/`waitall` records carry posting-op
//!   GIDs (the request-handle → GID mapping of Fig. 12).
//! * **Non-deterministic events** — wildcard (`MPI_ANY_SOURCE`) non-blocking
//!   receives are cached and their compression deferred until the matching
//!   checking function executes (§IV-A "Non-Deterministic Events").
//!
//! The compressor never searches: the event's GID names its CTT vertex
//! directly. That is the paper's core claim — the static tree removes the
//! dynamic pattern-matching cost entirely.

use crate::ctt::{Ctt, EncParams, LeafRecord, VertexData};
use crate::intseq::IntSeq;
use crate::timestats::{TimeMode, TimeStats};
use cypress_cst::tree::{Cst, VertexKind};
use cypress_obs::{Counter, Gauge, Histogram};
use cypress_trace::event::{Event, EventSink, MpiOp, MpiRecord, ANY_SOURCE};
use cypress_trace::raw::RawTrace;
use std::sync::OnceLock;

/// Compressor-wide instrumentation handles (scope `compressor`), aggregated
/// across all ranks/compressor instances in the process.
struct CompressorMetrics {
    /// Incoming leaf events folded into an existing record.
    fold_hits: Counter,
    /// Incoming leaf events that opened a new record.
    fold_misses: Counter,
    /// Wildcard (`MPI_ANY_SOURCE`) non-blocking receives cached for deferral.
    wildcard_cached: Counter,
    /// Cached wildcard receives flushed by a matching completion op.
    wildcard_flushed: Counter,
    /// Stride segments held by loop/branch IntSeqs at finish().
    intseq_segments: Counter,
    /// High-water live footprint of a single compressor at finish().
    ctt_live_bytes: Gauge,
    /// Wall time of whole-trace offline compression calls.
    compress_ns: Histogram,
}

fn obs() -> &'static CompressorMetrics {
    static M: OnceLock<CompressorMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let s = cypress_obs::scope("compressor");
        CompressorMetrics {
            fold_hits: s.counter("leaf_fold_hits"),
            fold_misses: s.counter("leaf_fold_misses"),
            wildcard_cached: s.counter("wildcard_cached"),
            wildcard_flushed: s.counter("wildcard_flushed"),
            intseq_segments: s.counter("intseq_segments"),
            ctt_live_bytes: s.gauge("ctt_live_bytes"),
            compress_ns: s.histogram("compress_ns", &cypress_obs::TIME_BOUNDS_NS),
        }
    })
}

/// Compression knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressConfig {
    /// How many trailing records per leaf to consider for merging. The paper
    /// compares with the last record only (window = 1); larger windows trade
    /// compression time for ratio and give up exact ordering (ablation knob).
    pub window: usize,
    /// Timing representation.
    pub time_mode: TimeMode,
    /// Encode point-to-point peers relative to the owning rank (§IV-B).
    /// Disabling this is the ablation that shows why relative ranking is
    /// essential for inter-process merging.
    pub relative_ranks: bool,
}

impl Default for CompressConfig {
    fn default() -> Self {
        CompressConfig {
            window: 1,
            time_mode: TimeMode::MeanStd,
            relative_ranks: true,
        }
    }
}

struct Open {
    vertex: usize,
    /// Iterations observed in the current visit (loops only).
    iters: u64,
}

/// Online per-process compressor. Feed events via [`EventSink::event`] (or
/// [`IntraCompressor::push`]), then call [`IntraCompressor::finish`].
pub struct IntraCompressor<'a> {
    cst: &'a Cst,
    cfg: CompressConfig,
    rank: i64,
    nprocs: u32,
    data: Vec<VertexData>,
    open: Vec<Open>,
    /// Monotone visit counter per vertex (loops: total iterations; branches:
    /// total takings; root: 1).
    visits: Vec<u64>,
    /// Outstanding force-closes per vertex whose matching `Exit` is still in
    /// flight (recursion-induced; see module docs of `decompress`).
    stale_exits: Vec<u32>,
    /// Wildcard non-blocking receives cached until their checking function.
    pending_wild: Vec<PendingWild>,
    /// End timestamp of the previous traced operation (for compute gaps).
    prev_end: u64,
    /// Adaptive fold-run credit for [`IntraCompressor::push_batch`]. Runs of
    /// length ≥ 2 earn credit, length-1 runs spend it; at zero the batch path
    /// stops scanning ahead (the scan is pure overhead on alternating-gid
    /// streams like sp) and dispatches per event for a probe period before
    /// trying runs again. Negative values count down the probe skip.
    run_credit: i32,
}

/// Initial and ceiling values for the fold-run credit, and how many events
/// the degraded mode dispatches per-event before re-probing for runs.
const RUN_CREDIT_START: i32 = 16;
const RUN_CREDIT_MAX: i32 = 64;
const RUN_PROBE_SKIP: i32 = 64;

struct PendingWild {
    vertex: usize,
    params: EncParams,
    dur: u64,
    gap: u64,
}

impl<'a> IntraCompressor<'a> {
    pub fn new(cst: &'a Cst, rank: u32, nprocs: u32, cfg: CompressConfig) -> Self {
        let n = cst.len();
        let mut data = Vec::with_capacity(n);
        for v in &cst.vertices {
            data.push(match &v.kind {
                VertexKind::Root => VertexData::Root,
                VertexKind::Loop { .. } => VertexData::Loop {
                    counts: IntSeq::new(),
                },
                VertexKind::Branch { .. } => VertexData::Branch {
                    taken: IntSeq::new(),
                },
                VertexKind::Mpi { .. } => VertexData::Leaf {
                    records: Vec::new(),
                },
                VertexKind::UserCall { .. } => {
                    unreachable!("finalized CSTs contain no user-call vertices")
                }
            });
        }
        let mut visits = vec![0u64; n];
        visits[0] = 1; // the root is visited exactly once
        IntraCompressor {
            cst,
            cfg,
            rank: rank as i64,
            nprocs,
            data,
            open: Vec::new(),
            visits,
            stale_exits: vec![0; n],
            pending_wild: Vec::new(),
            prev_end: 0,
            run_credit: RUN_CREDIT_START,
        }
    }

    /// Feed one event.
    pub fn push(&mut self, ev: &Event) {
        match ev {
            Event::Enter { gid } => self.enter(*gid as usize),
            Event::Exit { gid } => self.exit(*gid as usize),
            Event::Mpi(rec) => self.mpi(rec),
        }
    }

    /// Feed a batch of events, equivalent to pushing each in order but with
    /// the per-event dispatch hoisted out of loop bodies: runs of MPI records
    /// naming the same leaf (the dominant shape inside compressed loops)
    /// resolve the GID → vertex lookup and borrow the leaf's record list
    /// once per run instead of once per event.
    pub fn push_batch(&mut self, evs: &[Event]) {
        let mut i = 0;
        while i < evs.len() {
            match &evs[i] {
                Event::Mpi(rec) if self.cfg.window <= 1 && Self::run_eligible(rec) => {
                    if self.run_credit < 0 {
                        // Degraded mode: the stream hasn't been forming runs,
                        // so skip the look-ahead entirely and dispatch like
                        // the per-event path until the probe counter expires.
                        self.run_credit += 1;
                        if self.run_credit == 0 {
                            self.run_credit = RUN_CREDIT_START;
                        }
                        self.mpi(rec);
                        i += 1;
                        continue;
                    }
                    let gid = rec.gid;
                    let mut j = i + 1;
                    while j < evs.len() {
                        match &evs[j] {
                            Event::Mpi(r) if r.gid == gid && Self::run_eligible(r) => j += 1,
                            _ => break,
                        }
                    }
                    if j - i >= 2 {
                        self.run_credit = (self.run_credit + 2).min(RUN_CREDIT_MAX);
                        self.mpi_run(&evs[i..j]);
                    } else {
                        // A length-1 "run": the scan bought nothing. Spend
                        // credit; on exhaustion switch to degraded mode for
                        // the next RUN_PROBE_SKIP eligible records.
                        self.run_credit -= 1;
                        if self.run_credit == 0 {
                            self.run_credit = -RUN_PROBE_SKIP;
                        }
                        self.mpi(rec);
                    }
                    i = j;
                }
                ev => {
                    self.push(ev);
                    i += 1;
                }
            }
        }
    }

    /// Records the batched fast path may handle directly: anything except the
    /// deferred-compression wildcard receives and the completion ops that
    /// flush them (those fall back to the general per-event path).
    fn run_eligible(rec: &MpiRecord) -> bool {
        !(rec.op.is_completion() || rec.op == MpiOp::Irecv && rec.params.src == ANY_SOURCE)
    }

    /// Fold a run of same-leaf MPI records with the leaf borrowed once.
    /// Semantically identical to calling [`Self::mpi`] per record at
    /// window ≤ 1: fold into the last record when all parameters match,
    /// otherwise open a new record.
    fn mpi_run(&mut self, evs: &[Event]) {
        let Some(Event::Mpi(first)) = evs.first() else {
            return;
        };
        let v = first.gid as usize;
        debug_assert!(
            v < self.data.len() && matches!(self.data[v], VertexData::Leaf { .. }),
            "MPI record with gid {v} does not name a CTT leaf"
        );
        let rank = self.rank;
        let relative = self.cfg.relative_ranks;
        let time_mode = self.cfg.time_mode;
        let mut prev_end = self.prev_end;
        let (mut hits, mut misses) = (0u64, 0u64);
        if let VertexData::Leaf { records } = &mut self.data[v] {
            for ev in evs {
                let Event::Mpi(rec) = ev else { continue };
                let gap = rec.t_start.saturating_sub(prev_end);
                prev_end = rec.t_start + rec.dur;
                match records.last_mut() {
                    Some(r) if r.params.matches_raw(rank, rec.op, &rec.params, relative) => {
                        r.count += 1;
                        r.time.add(rec.dur);
                        r.gap.add(gap);
                        hits += 1;
                    }
                    _ => {
                        misses += 1;
                        let params = EncParams::encode_with(rank, rec.op, &rec.params, relative);
                        let mut time = TimeStats::new(time_mode);
                        time.add(rec.dur);
                        let mut g = TimeStats::new(time_mode);
                        g.add(gap);
                        records.push(LeafRecord {
                            params,
                            count: 1,
                            time,
                            gap: g,
                        });
                    }
                }
            }
        }
        self.prev_end = prev_end;
        if cypress_obs::enabled() {
            let m = obs();
            m.fold_hits.add(hits);
            m.fold_misses.add(misses);
        }
    }

    fn enter(&mut self, v: usize) {
        if let Some(pos) = self.open.iter().rposition(|o| o.vertex == v) {
            // Re-entering an open loop: the next iteration. Anything still
            // open beneath it belongs to the previous iteration (this only
            // happens for recursion back-calls) — force-close it.
            while self.open.len() > pos + 1 {
                self.force_close_top();
            }
            let o = self.open.last_mut().expect("position pos exists");
            o.iters += 1;
            self.visits[v] += 1;
            return;
        }
        match &self.cst.vertex(v).kind {
            VertexKind::Loop { .. } => {
                self.visits[v] += 1;
                self.open.push(Open {
                    vertex: v,
                    iters: 1,
                });
            }
            VertexKind::Branch { .. } => {
                let parent = self.cst.vertex(v).parent.expect("branches have parents");
                let parent_idx = self.visits[parent].saturating_sub(1);
                if let VertexData::Branch { taken } = &mut self.data[v] {
                    taken.push(parent_idx as i64);
                }
                self.visits[v] += 1;
                self.open.push(Open {
                    vertex: v,
                    iters: 0,
                });
            }
            other => {
                debug_assert!(false, "Enter on non-structure vertex {other:?}");
            }
        }
    }

    fn exit(&mut self, v: usize) {
        if let Some(pos) = self.open.iter().rposition(|o| o.vertex == v) {
            while self.open.len() > pos + 1 {
                self.force_close_top();
            }
            let o = self.open.pop().expect("position pos exists");
            self.close(o);
            return;
        }
        // Not on the stack: either a stale exit after a recursion-induced
        // force-close, or a zero-iteration loop visit.
        if self.stale_exits[v] > 0 {
            self.stale_exits[v] -= 1;
            return;
        }
        if let VertexData::Loop { counts } = &mut self.data[v] {
            counts.push(0);
        }
    }

    fn force_close_top(&mut self) {
        let o = self.open.pop().expect("force_close with open stack");
        self.stale_exits[o.vertex] += 1;
        self.close(o);
    }

    fn close(&mut self, o: Open) {
        if let VertexData::Loop { counts } = &mut self.data[o.vertex] {
            counts.push(o.iters as i64);
        }
    }

    fn mpi(&mut self, rec: &MpiRecord) {
        let v = rec.gid as usize;
        debug_assert!(
            v < self.data.len() && matches!(self.data[v], VertexData::Leaf { .. }),
            "MPI record with gid {v} does not name a CTT leaf"
        );
        let gap = rec.t_start.saturating_sub(self.prev_end);
        self.prev_end = rec.t_start + rec.dur;

        // Cache wildcard non-blocking receives until completion.
        if rec.op == MpiOp::Irecv && rec.params.src == ANY_SOURCE {
            let params =
                EncParams::encode_with(self.rank, rec.op, &rec.params, self.cfg.relative_ranks);
            self.pending_wild.push(PendingWild {
                vertex: v,
                params,
                dur: rec.dur,
                gap,
            });
            if cypress_obs::enabled() {
                obs().wildcard_cached.inc();
            }
            return;
        }
        if rec.op.is_completion() {
            self.flush_pending(&rec.params.req_gids);
        }

        // Fast path: the paper's compare-with-last-record merge, without
        // allocating an encoded parameter block for the incoming event.
        if self.cfg.window <= 1 {
            if let VertexData::Leaf { records } = &mut self.data[v] {
                if let Some(r) = records.last_mut() {
                    if r.params
                        .matches_raw(self.rank, rec.op, &rec.params, self.cfg.relative_ranks)
                    {
                        r.count += 1;
                        r.time.add(rec.dur);
                        r.gap.add(gap);
                        if cypress_obs::enabled() {
                            obs().fold_hits.inc();
                        }
                        return;
                    }
                }
            }
        }

        let params =
            EncParams::encode_with(self.rank, rec.op, &rec.params, self.cfg.relative_ranks);
        self.append(v, params, rec.dur, gap);
    }

    /// Flush cached wildcard receives whose posting GID is being completed.
    fn flush_pending(&mut self, completed_gids: &[u32]) {
        if self.pending_wild.is_empty() {
            return;
        }
        let mut remaining = Vec::with_capacity(self.pending_wild.len());
        for p in std::mem::take(&mut self.pending_wild) {
            if completed_gids.contains(&(p.vertex as u32)) {
                self.append(p.vertex, p.params, p.dur, p.gap);
                if cypress_obs::enabled() {
                    obs().wildcard_flushed.inc();
                }
            } else {
                remaining.push(p);
            }
        }
        self.pending_wild = remaining;
    }

    fn append(&mut self, v: usize, params: EncParams, dur: u64, gap: u64) {
        let time_mode = self.cfg.time_mode;
        let window = self.cfg.window.max(1);
        let VertexData::Leaf { records } = &mut self.data[v] else {
            return;
        };
        let n = records.len();
        let lo = n.saturating_sub(window);
        if let Some(r) = records[lo..n].iter_mut().rev().find(|r| r.matches(&params)) {
            r.count += 1;
            r.time.add(dur);
            r.gap.add(gap);
            if cypress_obs::enabled() {
                obs().fold_hits.inc();
            }
            return;
        }
        if cypress_obs::enabled() {
            obs().fold_misses.inc();
        }
        let mut time = TimeStats::new(time_mode);
        time.add(dur);
        let mut g = TimeStats::new(time_mode);
        g.add(gap);
        records.push(LeafRecord {
            params,
            count: 1,
            time,
            gap: g,
        });
    }

    /// Close out the compression and produce the per-process CTT.
    pub fn finish(mut self, app_time: u64) -> Ctt {
        // Flush any never-completed wildcard receives in arrival order.
        for p in std::mem::take(&mut self.pending_wild) {
            self.append(p.vertex, p.params, p.dur, p.gap);
        }
        while let Some(o) = self.open.pop() {
            self.close(o);
        }
        if cypress_obs::enabled() {
            let m = obs();
            m.ctt_live_bytes.set_max(self.approx_bytes() as i64);
            let segs: usize = self
                .data
                .iter()
                .map(|d| match d {
                    VertexData::Loop { counts } => counts.seg_count(),
                    VertexData::Branch { taken } => taken.seg_count(),
                    _ => 0,
                })
                .sum();
            m.intseq_segments.add(segs as u64);
        }
        Ctt {
            rank: self.rank as u32,
            nprocs: self.nprocs,
            app_time,
            data: self.data,
        }
    }

    /// Live memory footprint of the compressor state (Fig. 16 metric).
    pub fn approx_bytes(&self) -> usize {
        self.data
            .iter()
            .map(|d| d.approx_bytes() + std::mem::size_of::<VertexData>())
            .sum::<usize>()
            + self.visits.len() * 8
            + self.open.capacity() * std::mem::size_of::<Open>()
    }
}

impl EventSink for IntraCompressor<'_> {
    fn event(&mut self, ev: Event) {
        self.push(&ev);
    }
}

/// Compress a recorded raw trace (offline convenience used by benches; the
/// work performed is identical to the online path).
pub fn compress_trace(cst: &Cst, trace: &RawTrace, cfg: &CompressConfig) -> Ctt {
    let _span = obs().compress_ns.start_span();
    let mut t = cypress_obs::trace_span("session", "compress_trace");
    t.set_arg(trace.events.len() as u64);
    let mut c = IntraCompressor::new(cst, trace.rank, trace.nprocs, cfg.clone());
    c.push_batch(&trace.events);
    c.finish(trace.app_time)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cypress_cst::analyze_program;
    use cypress_minilang::{check_program, parse};
    use cypress_runtime::{trace_program, InterpConfig};

    fn compress_src(src: &str, nprocs: u32) -> (cypress_cst::StaticInfo, Vec<RawTrace>, Vec<Ctt>) {
        let p = parse(src).unwrap();
        check_program(&p).unwrap();
        let info = analyze_program(&p);
        let traces = trace_program(&p, &info, nprocs, &InterpConfig::default()).unwrap();
        let ctts = traces
            .iter()
            .map(|t| compress_trace(&info.cst, t, &CompressConfig::default()))
            .collect();
        (info, traces, ctts)
    }

    #[test]
    fn identical_iterations_merge_to_one_record() {
        let (_, traces, ctts) = compress_src("fn main() { for i in 0..1000 { bcast(0, 64); } }", 1);
        assert_eq!(traces[0].mpi_count(), 1000);
        assert_eq!(ctts[0].record_count(), 1);
        assert_eq!(ctts[0].op_count(), 1000);
        // The loop vertex recorded one visit of 1000 iterations.
        let loops: Vec<&IntSeq> = ctts[0]
            .data
            .iter()
            .filter_map(|d| match d {
                VertexData::Loop { counts } => Some(counts),
                _ => None,
            })
            .collect();
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].to_vec(), vec![1000]);
    }

    #[test]
    fn nested_loop_counts_recorded_per_outer_iteration() {
        // Fig. 10: inner count goes 0,1,2,...,k-1.
        let (_, _, ctts) = compress_src(
            "fn main() { for i in 0..10 { bcast(0, 8); for j in 0..i { barrier(); } } }",
            1,
        );
        let loops: Vec<&IntSeq> = ctts[0]
            .data
            .iter()
            .filter_map(|d| match d {
                VertexData::Loop { counts } => Some(counts),
                _ => None,
            })
            .collect();
        assert_eq!(loops.len(), 2);
        // Outer: one visit of 10; inner: counts 0..9 as one stride segment.
        assert_eq!(loops[0].to_vec(), vec![10]);
        assert_eq!(loops[1].to_vec(), (0..10).collect::<Vec<i64>>());
        assert_eq!(
            loops[1].seg_count(),
            1,
            "triangular counts compress to one stride tuple"
        );
    }

    #[test]
    fn alternating_branch_records_stride_pattern() {
        // Fig. 11: branch taken at iterations 0,2,4,6,8 / 1,3,5,7,9.
        let (_, _, ctts) = compress_src(
            r#"fn main() {
                for i in 0..10 {
                    if i % 2 == 0 { let a = isend(0, 8, 0); wait(a); }
                    else { let b = irecv(0, 8, 0); wait(b); }
                    barrier();
                }
            }"#,
            1,
        );
        let branches: Vec<Vec<i64>> = ctts[0]
            .data
            .iter()
            .filter_map(|d| match d {
                VertexData::Branch { taken } => Some(taken.to_vec()),
                _ => None,
            })
            .collect();
        assert_eq!(branches.len(), 2);
        assert_eq!(branches[0], vec![0, 2, 4, 6, 8]);
        assert_eq!(branches[1], vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn varying_message_size_prevents_merge() {
        let (_, _, ctts) =
            compress_src("fn main() { for i in 0..6 { bcast(0, 8 * (i + 1)); } }", 1);
        // Six different sizes → six records.
        assert_eq!(ctts[0].record_count(), 6);
    }

    #[test]
    fn relative_ranks_make_stencil_records_match_across_ranks() {
        let (_, _, ctts) = compress_src(
            r#"fn main() {
                if rank() < size() - 1 { send(rank() + 1, 64, 0); }
                if rank() > 0 { recv(rank() - 1, 64, 0); }
            }"#,
            4,
        );
        // Ranks 0..2 all have the same single send record.
        let send_rec = |ctt: &Ctt| {
            ctt.data
                .iter()
                .find_map(|d| match d {
                    VertexData::Leaf { records } if !records.is_empty() => {
                        (records[0].params.op == MpiOp::Send).then(|| records[0].params.clone())
                    }
                    _ => None,
                })
                .unwrap()
        };
        assert_eq!(send_rec(&ctts[0]), send_rec(&ctts[1]));
        assert_eq!(send_rec(&ctts[1]), send_rec(&ctts[2]));
    }

    #[test]
    fn wildcard_recv_compression_deferred_until_wait() {
        let src = r#"fn main() {
            let a = isend((rank() + 1) % size(), 8, 0);
            let b = irecv(any_source(), 8, 0);
            waitall(a, b);
        }"#;
        let p = parse(src).unwrap();
        check_program(&p).unwrap();
        let info = analyze_program(&p);
        let traces = trace_program(&p, &info, 2, &InterpConfig::default()).unwrap();
        let mut c = IntraCompressor::new(&info.cst, 0, 2, CompressConfig::default());
        // Feed up to (but not including) the waitall: the irecv must be
        // cached, not yet in the CTT.
        let evs = &traces[0].events;
        for ev in &evs[..evs.len() - 1] {
            c.push(ev);
        }
        let cached_before = c.pending_wild.len();
        assert_eq!(cached_before, 1);
        c.push(&evs[evs.len() - 1]);
        assert_eq!(c.pending_wild.len(), 0);
        let ctt = c.finish(traces[0].app_time);
        assert_eq!(ctt.op_count(), 3);
    }

    #[test]
    fn zero_iteration_loops_record_zero_counts() {
        let (_, _, ctts) = compress_src(
            // Inner loop runs 0 times for every i <= 1.
            "fn main() { for i in 0..4 { for j in 1..i { barrier(); } bcast(0,8); } }",
            1,
        );
        let inner = ctts[0]
            .data
            .iter()
            .filter_map(|d| match d {
                VertexData::Loop { counts } => Some(counts.to_vec()),
                _ => None,
            })
            .nth(1)
            .unwrap();
        assert_eq!(inner, vec![0, 0, 1, 2]);
    }

    #[test]
    fn window_2_merges_ab_alternation() {
        let src = r#"fn main() {
            for i in 0..20 {
                if i % 2 == 0 { bcast(0, 8); } else { bcast(0, 16); }
            }
        }"#;
        let p = parse(src).unwrap();
        check_program(&p).unwrap();
        let info = analyze_program(&p);
        let traces = trace_program(&p, &info, 1, &InterpConfig::default()).unwrap();
        // The two bcasts are *different leaves* (different call sites), so
        // window has no effect here — craft a same-leaf alternation instead:
        // a single bcast whose size alternates via arithmetic.
        let src2 = "fn main() { for i in 0..20 { bcast(0, 8 + 8 * (i % 2)); } }";
        let p2 = parse(src2).unwrap();
        check_program(&p2).unwrap();
        let info2 = analyze_program(&p2);
        let traces2 = trace_program(&p2, &info2, 1, &InterpConfig::default()).unwrap();
        let w1 = compress_trace(
            &info2.cst,
            &traces2[0],
            &CompressConfig {
                window: 1,
                ..Default::default()
            },
        );
        let w2 = compress_trace(
            &info2.cst,
            &traces2[0],
            &CompressConfig {
                window: 2,
                ..Default::default()
            },
        );
        assert_eq!(w1.record_count(), 20, "window 1 cannot fold A,B,A,B,...");
        assert_eq!(w2.record_count(), 2, "window 2 folds the alternation");
        // And the two-call-site variant compresses perfectly with window 1.
        let ctt = compress_trace(&info.cst, &traces[0], &CompressConfig::default());
        assert_eq!(ctt.record_count(), 2);
    }

    #[test]
    fn online_sink_equals_offline_compression() {
        // The compressor is an EventSink: feeding it during execution (the
        // paper's "on-the-fly" intra-process phase) must produce exactly the
        // same CTT as compressing a recorded trace afterwards.
        use cypress_runtime::run_rank_with_sink;
        let src = r#"fn main() {
            for i in 0..25 {
                if rank() % 2 == 0 { send((rank() + 1) % size(), 64, 0); }
                else { recv((rank() + size() - 1) % size(), 64, 0); }
                allreduce(8);
            }
        }"#;
        let p = parse(src).unwrap();
        check_program(&p).unwrap();
        let info = analyze_program(&p);
        for rank in 0..4u32 {
            let mut online = IntraCompressor::new(&info.cst, rank, 4, CompressConfig::default());
            let app_time =
                run_rank_with_sink(&p, &info, rank, 4, &InterpConfig::default(), &mut online)
                    .unwrap();
            let online_ctt = online.finish(app_time);
            let trace =
                cypress_runtime::trace_rank(&p, &info, rank, 4, &InterpConfig::default()).unwrap();
            let offline_ctt = compress_trace(&info.cst, &trace, &CompressConfig::default());
            assert_eq!(online_ctt, offline_ctt, "rank {rank}");
        }
    }

    #[test]
    fn push_batch_equals_per_event_push_on_async_workload() {
        // The batched fast path must be observationally identical to the
        // per-event path, including around its fallbacks: wildcard receives
        // (deferred compression) and completion ops (pending flush) embedded
        // in otherwise mergeable loop bodies.
        let src = r#"fn main() {
            for i in 0..50 {
                let a = isend((rank() + 1) % size(), 64, 0);
                let b = irecv(any_source(), 64, 0);
                waitall(a, b);
                allreduce(8);
            }
            barrier();
        }"#;
        let p = parse(src).unwrap();
        check_program(&p).unwrap();
        let info = analyze_program(&p);
        let traces = trace_program(&p, &info, 4, &InterpConfig::default()).unwrap();
        for t in &traces {
            let mut per_event =
                IntraCompressor::new(&info.cst, t.rank, t.nprocs, CompressConfig::default());
            for ev in &t.events {
                per_event.push(ev);
            }
            let reference = per_event.finish(t.app_time);

            // Whole trace in one batch.
            let mut whole =
                IntraCompressor::new(&info.cst, t.rank, t.nprocs, CompressConfig::default());
            whole.push_batch(&t.events);
            assert_eq!(whole.finish(t.app_time), reference, "rank {}", t.rank);

            // Awkward chunk sizes that split runs mid-way.
            for chunk in [1usize, 3, 7, 64] {
                let mut chunked =
                    IntraCompressor::new(&info.cst, t.rank, t.nprocs, CompressConfig::default());
                for c in t.events.chunks(chunk) {
                    chunked.push_batch(c);
                }
                assert_eq!(
                    chunked.finish(t.app_time),
                    reference,
                    "rank {} chunk {chunk}",
                    t.rank
                );
            }
        }
    }

    #[test]
    fn push_batch_respects_window_config() {
        // Window > 1 disables the batched leaf fast path; results must still
        // match the per-event path exactly.
        let src = "fn main() { for i in 0..20 { bcast(0, 8 + 8 * (i % 2)); } }";
        let p = parse(src).unwrap();
        check_program(&p).unwrap();
        let info = analyze_program(&p);
        let t = &trace_program(&p, &info, 1, &InterpConfig::default()).unwrap()[0];
        let cfg = CompressConfig {
            window: 2,
            ..Default::default()
        };
        let mut per_event = IntraCompressor::new(&info.cst, 0, 1, cfg.clone());
        for ev in &t.events {
            per_event.push(ev);
        }
        let mut batched = IntraCompressor::new(&info.cst, 0, 1, cfg);
        batched.push_batch(&t.events);
        let reference = per_event.finish(t.app_time);
        assert_eq!(batched.finish(t.app_time), reference);
        assert_eq!(reference.record_count(), 2);
    }

    #[test]
    fn compressor_memory_is_small_and_stable() {
        let (_, _, ctts) = compress_src(
            "fn main() { for i in 0..10000 { if rank() % 2 == 0 { barrier(); } else { barrier(); } } }",
            2,
        );
        // 10k iterations compress to O(1) records; memory far below raw.
        assert!(
            ctts[0].approx_bytes() < 4096,
            "got {}",
            ctts[0].approx_bytes()
        );
    }
}
